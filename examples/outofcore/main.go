// Outofcore: the bounded-memory pipeline end to end, the way the system
// would process a graph that never fits in RAM:
//
//  1. the input arrives as a binary edge stream (graph.BinaryStream) and is
//     partitioned by the external preprocessor, which spills per-interval
//     runs to disk and never holds more than one grid row (that is exactly
//     how P is chosen);
//
//  2. the engine runs with chunked sub-block streaming (peak residency =
//     one chunk) and persisted vertex values (real on-device array);
//
//  3. an I/O trace records every device operation, and its summary shows
//     the access pattern is overwhelmingly sequential — the whole point of
//     an out-of-core design.
//
//     go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iotrace"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "graphsd-outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stage the input as a binary file, then forget the in-memory graph:
	// everything downstream consumes the file as a stream.
	g, err := gen.RMAT(13, 12, gen.Graph500, 99)
	if err != nil {
		log.Fatal(err)
	}
	rawPath := filepath.Join(dir, "input.bin")
	rawFile, err := os.Create(rawPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.WriteBinary(rawFile, g); err != nil {
		log.Fatal(err)
	}
	rawFile.Close()
	fmt.Printf("staged %d vertices / %d edges to %s\n", g.NumVertices, g.NumEdges(), rawPath)
	numVertices := g.NumVertices
	g = nil // the rest of the pipeline must not touch the in-memory graph

	// External preprocessing from the stream, bounded by one grid row.
	in, err := os.Open(rawPath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	stream, err := graph.NewBinaryStream(in)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := storage.OpenDevice(filepath.Join(dir, "layout"), storage.ScaledHDD)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := partition.BuildExternal(dev, stream, numVertices, stream.Weighted, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("external preprocessing done: P=%d, %s of edge data\n",
		layout.Meta.P, storage.FormatBytes(layout.Meta.EdgeBytesTotal()))

	// Trace every device operation during the run.
	tracePath := filepath.Join(dir, "run.trace")
	traceFile, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	rec := iotrace.NewRecorder(traceFile)
	rec.Attach(dev)

	res, err := core.Run(layout, &algorithms.PageRankDelta{Iterations: 20, Tolerance: 1e-6}, core.Options{
		DefaultBuffer:    true,
		StreamChunkBytes: 64 << 10, // 64 KiB residency per cell read
		PersistValues:    true,     // vertex values live on the device
	})
	if err != nil {
		log.Fatal(err)
	}
	dev.SetTracer(nil)
	if err := rec.Close(); err != nil {
		log.Fatal(err)
	}
	traceFile.Close()
	fmt.Printf("run: %v\n\n", res)

	// Summarize the access pattern.
	tf, err := os.Open(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	sum, err := iotrace.Analyze(tf, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("I/O trace summary (top 5 files):")
	if err := sum.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
