// Quickstart: generate a small social-network-like graph, preprocess it
// into GraphSD's on-disk 2-D grid layout, run five iterations of PageRank
// with the state- and dependency-aware engine, and print the most
// influential vertices.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	// 1. A scale-12 R-MAT graph: 4096 vertices, ~65k edges, heavy-tailed
	//    degrees like a real social network.
	g, err := gen.RMAT(12, 16, gen.Graph500, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	// 2. Preprocess into a P×P grid of sorted, indexed sub-blocks on a
	//    simulated HDD. P is sized so one edge block fits the paper's "5%
	//    of graph data" memory budget.
	dir, err := os.MkdirTemp("", "graphsd-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dev, err := storage.OpenDevice(dir, storage.ScaledHDD)
	if err != nil {
		log.Fatal(err)
	}
	p := partition.ChooseP(g.Bytes(), g.Bytes()/20, 16)
	layout, err := partition.Build(dev, g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessed into a %d x %d grid under %s\n", p, p, dir)

	// 3. Run PageRank. The engine schedules I/O per iteration (on-demand vs
	//    full), computes next-iteration values in the same pass where the
	//    grid's dependency structure allows, and buffers the twice-read
	//    secondary sub-blocks.
	res, err := core.Run(layout, &algorithms.PageRank{Iterations: 5}, core.Options{DefaultBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %v\n", res)
	fmt.Printf("I/O detail: %v\n", res.IO)

	// 4. Top pages.
	type ranked struct {
		v    int
		rank float64
	}
	top := make([]ranked, len(res.Outputs))
	for v, r := range res.Outputs {
		top[v] = ranked{v, r}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Println("top 5 vertices by PageRank:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %-6d rank %.6f\n", t.v, t.rank)
	}
}
