// Socialrank: the paper's motivating workload — ranking a Twitter-like
// social graph — run under all four systems (GraphSD, HUS-Graph, Lumos,
// GridGraph) with both plain PageRank and PageRank-Delta, demonstrating
// where each optimization pays off:
//
//   - on PR (every vertex active every iteration) GraphSD still wins via
//     cross-iteration updates and secondary sub-block buffering;
//
//   - on PR-D (shrinking active set) the state-aware scheduler adds
//     selective loading on top, widening the gap.
//
//     go run ./examples/socialrank
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/baseline"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	g, err := gen.RMAT(13, 16, gen.Graph500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("twitter-like graph: %d vertices, %d edges (%s on disk)\n",
		g.NumVertices, g.NumEdges(), storage.FormatBytes(g.Bytes()))

	dir, err := os.MkdirTemp("", "graphsd-socialrank-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const p = 8
	prof := storage.ScaledHDD

	// Preprocess once per system format.
	gsdDev := mustDevice(dir+"/graphsd", prof)
	gsdLayout, err := partition.Build(gsdDev, g, p)
	must(err)
	husDev := mustDevice(dir+"/husgraph", prof)
	husLayout, err := partition.BuildHUSGraph(husDev, g, p)
	must(err)
	lumDev := mustDevice(dir+"/lumos", prof)
	lumLayout, err := partition.BuildLumos(lumDev, g, p)
	must(err)

	for _, alg := range []struct {
		name string
		mk   func() core.Program
	}{
		{"PageRank (5 iters)", func() core.Program { return &algorithms.PageRank{Iterations: 5} }},
		{"PageRank-Delta (20 iters)", func() core.Program { return &algorithms.PageRankDelta{Iterations: 20, Tolerance: 1e-6} }},
	} {
		t := metrics.NewTable(alg.name, "system", "exec time", "I/O traffic", "vs graphsd")
		gsd, err := core.Run(gsdLayout, alg.mk(), core.Options{DefaultBuffer: true})
		must(err)
		t.AddRow("graphsd", metrics.Dur(gsd.ExecTime()), storage.FormatBytes(gsd.IO.TotalBytes()), "1.00x")

		hus, err := baseline.RunHUSGraph(husLayout, alg.mk(), baseline.Options{})
		must(err)
		t.AddRow("husgraph", metrics.Dur(hus.ExecTime()), storage.FormatBytes(hus.IO.TotalBytes()),
			metrics.Ratio(hus.ExecTime(), gsd.ExecTime()))

		lum, err := baseline.RunLumos(lumLayout, alg.mk(), baseline.Options{})
		must(err)
		t.AddRow("lumos", metrics.Dur(lum.ExecTime()), storage.FormatBytes(lum.IO.TotalBytes()),
			metrics.Ratio(lum.ExecTime(), gsd.ExecTime()))

		grid, err := baseline.RunGridGraph(lumLayout, alg.mk(), baseline.Options{})
		must(err)
		t.AddRow("gridgraph", metrics.Dur(grid.ExecTime()), storage.FormatBytes(grid.IO.TotalBytes()),
			metrics.Ratio(grid.ExecTime(), gsd.ExecTime()))

		must(t.Render(os.Stdout))
	}
}

func mustDevice(dir string, prof storage.Profile) *storage.Device {
	dev, err := storage.OpenDevice(dir, prof)
	must(err)
	return dev
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
