// Roadtrip: single-source shortest paths over a weighted locality-heavy
// graph (a road-network stand-in). SSSP's frontier stays small for most of
// the run, so this example prints the per-iteration scheduler trace to
// show the state-aware I/O scheduling strategy at work: the engine starts
// on-demand (tiny frontier), switches to full passes with cross-iteration
// updates while the frontier is wide, and drops back to selective loads as
// the wavefront dies out — the behaviour of the paper's Figure 10.
//
//	go run ./examples/roadtrip
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	// Mostly-local links mimic a road network's bounded degree and high
	// diameter; weights in (1, 16] are travel costs.
	g, err := gen.WebLike(20000, 120000, 0.97, 11)
	if err != nil {
		log.Fatal(err)
	}
	gen.Weighted(g, 16, 12)
	fmt.Printf("road-like graph: %d junctions, %d segments\n", g.NumVertices, g.NumEdges())

	dir, err := os.MkdirTemp("", "graphsd-roadtrip-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dev, err := storage.OpenDevice(dir, storage.ScaledHDD)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := partition.Build(dev, g, 10)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Run(layout, &algorithms.SSSP{Source: 0}, core.Options{DefaultBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n\n", res)

	t := metrics.NewTable("scheduler trace (state-aware I/O model selection)",
		"iter", "path", "active", "I/O bytes", "I/O time")
	for _, st := range res.IterStats {
		t.AddRow(fmt.Sprint(st.Index), st.Path, fmt.Sprint(st.Active),
			storage.FormatBytes(st.IO.TotalBytes()), metrics.Dur(st.IOTime))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	reached, sum := 0, 0.0
	far, farDist := 0, 0.0
	for v, d := range res.Outputs {
		if !math.IsInf(d, 1) {
			reached++
			sum += d
			if d > farDist {
				far, farDist = v, d
			}
		}
	}
	fmt.Printf("reached %d/%d junctions; mean travel cost %.2f; farthest junction %d at cost %.2f\n",
		reached, g.NumVertices, sum/float64(reached), far, farDist)
}
