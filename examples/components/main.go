// Components: connected components over a clustered graph, demonstrating
// (a) convergence of label propagation under the out-of-core engine,
// (b) the effect of the secondary sub-block buffering scheme (the paper's
// Figure 12 experiment in miniature), and (c) result verification against
// the in-memory reference oracle.
//
//	go run ./examples/components
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	// 12 communities of 600 vertices, sparsely bridged, symmetrized so the
	// components are genuine undirected components.
	g, err := gen.Clustered(12, 600, 3000, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range append([]graph.Edge(nil), g.Edges...) {
		g.Edges = append(g.Edges, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	fmt.Printf("clustered graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	dir, err := os.MkdirTemp("", "graphsd-components-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	build := func(sub string) *partition.Layout {
		dev, err := storage.OpenDevice(dir+"/"+sub, storage.ScaledHDD)
		if err != nil {
			log.Fatal(err)
		}
		l, err := partition.Build(dev, g, 8)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	withBuf, err := core.Run(build("buffered"), &algorithms.ConnectedComponents{}, core.Options{DefaultBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	noBuf, err := core.Run(build("unbuffered"), &algorithms.ConnectedComponents{}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	t := metrics.NewTable("buffering scheme (Figure 12 in miniature)",
		"variant", "exec time", "I/O traffic", "buffer hits", "bytes saved")
	t.AddRow("with buffering", metrics.Dur(withBuf.ExecTime()),
		storage.FormatBytes(withBuf.IO.TotalBytes()),
		fmt.Sprint(withBuf.Buffer.Hits), storage.FormatBytes(withBuf.Buffer.BytesSaved))
	t.AddRow("without", metrics.Dur(noBuf.ExecTime()),
		storage.FormatBytes(noBuf.IO.TotalBytes()), "0", "0B")
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Verify against the in-memory oracle and count components.
	want, _ := core.RunReference(g, &algorithms.ConnectedComponents{}, 0)
	comps := map[float64]int{}
	for v := range want {
		if withBuf.Outputs[v] != want[v] {
			log.Fatalf("vertex %d: engine label %v, oracle %v", v, withBuf.Outputs[v], want[v])
		}
		comps[want[v]]++
	}
	fmt.Printf("verified against in-memory oracle: %d components found in %d iterations\n",
		len(comps), withBuf.Iterations)
	largest := 0
	for _, size := range comps {
		if size > largest {
			largest = size
		}
	}
	fmt.Printf("largest component: %d vertices\n", largest)
}
