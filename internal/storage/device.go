package storage

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Device is a directory-backed simulated disk. Every operation performs the
// real file I/O and charges simulated time from the device Profile; the
// charge is recorded in per-class counters retrievable with Stats.
//
// Reads that fail with a transient error (see IsTransient) are retried
// under the installed RetryPolicy with capped exponential backoff; the
// backoff is charged as simulated device time, never slept. Writes are
// published atomically (write-temp + fsync + rename) so a crash mid-write
// can never leave a torn file under the final name.
//
// Device methods are safe for concurrent use.
type Device struct {
	dir   string
	prof  Profile
	stats stats

	// fault, when non-nil, is consulted before every operation and may
	// return an error to inject a failure (tests only). tracer, when
	// non-nil, observes every accounted operation (SetTracer).
	mu     sync.RWMutex
	fault  func(op, name string) error
	tracer func(TraceEvent)

	// retry configures transient-read retries; the zero policy disables
	// them. retryRng drives the backoff jitter. Guarded by retryMu.
	retryMu  sync.Mutex
	retry    RetryPolicy
	retryRng *rand.Rand
}

// OpenDevice opens (creating if needed) a device rooted at dir.
func OpenDevice(dir string, prof Profile) (*Device, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating device dir: %w", err)
	}
	return &Device{dir: dir, prof: prof}, nil
}

// Dir returns the backing directory.
func (d *Device) Dir() string { return d.dir }

// Profile returns the device's cost profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a snapshot of the I/O counters.
func (d *Device) Stats() Snapshot {
	var s Snapshot
	for c := 0; c < int(numClasses); c++ {
		s.Bytes[c] = d.stats.bytes[c].Load()
		s.Ops[c] = d.stats.ops[c].Load()
		s.Time[c] = time.Duration(d.stats.nanos[c].Load())
	}
	s.Retries = d.stats.retries.Load()
	return s
}

// ResetStats zeroes the I/O counters.
func (d *Device) ResetStats() {
	for c := 0; c < int(numClasses); c++ {
		d.stats.bytes[c].Store(0)
		d.stats.ops[c].Store(0)
		d.stats.nanos[c].Store(0)
	}
	d.stats.retries.Store(0)
}

// Charge records an I/O of n bytes in class c without touching any file.
// Engines use it for modelled transfers whose payload is already resident
// (e.g. the vertex-value write-back, which lives in memory but must be
// persisted once per iteration in the paper's cost model).
func (d *Device) Charge(c Class, n int64) time.Duration {
	cost := d.prof.Cost(c, n)
	d.stats.add(c, n, cost)
	d.emit("charge", c, "", -1, n, cost, 0)
	return cost
}

// SetFaultInjector installs fn, which is consulted before every file
// operation with the operation name ("create", "write", "read", "readat",
// "remove") and file name; a non-nil return aborts the operation with that
// error. With a RetryPolicy installed, transiently failing reads re-consult
// the injector on every attempt. Pass nil to clear. For tests.
func (d *Device) SetFaultInjector(fn func(op, name string) error) {
	d.mu.Lock()
	d.fault = fn
	d.mu.Unlock()
}

// SetRetryPolicy installs p for transient-read retries. The zero policy
// (the default) disables retrying.
func (d *Device) SetRetryPolicy(p RetryPolicy) {
	d.retryMu.Lock()
	d.retry = p
	d.retryRng = rand.New(rand.NewSource(p.Seed))
	d.retryMu.Unlock()
}

// retryRead runs attempt, re-running it after transient failures until it
// succeeds, fails permanently, or exhausts the policy's retry budget. It
// returns the number of retries performed and the cumulative backoff
// delay; the caller folds the delay into the operation's simulated cost —
// the wall clock never sleeps, keeping chaos tests fast and deterministic.
func (d *Device) retryRead(attempt func() error) (retries int, backoff time.Duration, err error) {
	for try := 0; ; try++ {
		err = attempt()
		d.retryMu.Lock()
		pol := d.retry
		d.retryMu.Unlock()
		if err == nil || try >= pol.MaxRetries || !IsTransient(err) {
			return retries, backoff, err
		}
		backoff += d.backoffDelay(pol, try)
		retries++
	}
}

// backoffDelay computes the backoff before retry number attempt (0-based):
// exponential growth from BaseDelay, capped at MaxDelay, with uniform
// jitter in [delay/2, delay) drawn from the policy's seeded source.
func (d *Device) backoffDelay(pol RetryPolicy, attempt int) time.Duration {
	base := pol.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt > 30 {
		attempt = 30 // shift guard; real budgets are single digits
	}
	delay := base << uint(attempt)
	if delay <= 0 || (pol.MaxDelay > 0 && delay > pol.MaxDelay) {
		delay = pol.MaxDelay
		if delay <= 0 {
			delay = base
		}
	}
	d.retryMu.Lock()
	rng := d.retryRng
	var j float64
	if rng != nil {
		j = rng.Float64()
	}
	d.retryMu.Unlock()
	half := delay / 2
	return half + time.Duration(j*float64(half))
}

func (d *Device) checkFault(op, name string) error {
	d.mu.RLock()
	fn := d.fault
	d.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(op, name)
}

func (d *Device) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return "", fmt.Errorf("storage: invalid file name %q", name)
	}
	return filepath.Join(d.dir, filepath.FromSlash(name)), nil
}

// WriteFile writes data to name as one sequential stream, replacing any
// existing file, and charges a sequential write. The write is atomic: data
// lands in a temp file in the same directory, is fsynced, and is renamed
// over name, so a crash (or injected torn write) leaves either the old
// intact file or nothing — never a torn one.
func (d *Device) WriteFile(name string, data []byte) error {
	fault := d.checkFault("write", name)
	if fault != nil && !errors.Is(fault, ErrTornWrite) {
		return fault
	}
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: creating parent dir: %w", err)
	}
	tmp := p + ".tmp"
	if fault != nil {
		// Injected torn write: the crash lands mid-stream, after a prefix
		// of the payload reached the temp file and before the publishing
		// rename — the final name is never touched.
		_ = os.WriteFile(tmp, data[:len(data)/2], 0o644)
		return fault
	}
	if err := writeFileAtomic(p, tmp, data); err != nil {
		return fmt.Errorf("storage: writing %s: %w", name, err)
	}
	cost := d.prof.Cost(SeqWrite, int64(len(data)))
	d.stats.add(SeqWrite, int64(len(data)), cost)
	d.emit("write", SeqWrite, name, -1, int64(len(data)), cost, 0)
	return nil
}

// writeFileAtomic publishes data at p via tmp: write, fsync, rename.
func writeFileAtomic(p, tmp string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, p)
}

// ReadFile reads the whole of name as one sequential stream and charges a
// sequential read plus one positioning seek.
func (d *Device) ReadFile(name string) ([]byte, error) {
	return d.ReadFileInto(name, nil)
}

// ReadFileInto is ReadFile reading into buf, growing it only when its
// capacity is insufficient. Accounting and fault semantics are identical;
// the buffer reuse is what lets the I/O pipeline's fetch workers load block
// after block without allocating.
func (d *Device) ReadFileInto(name string, buf []byte) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	var size int64
	retries, backoff, err := d.retryRead(func() error {
		if err := d.checkFault("read", name); err != nil {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("storage: reading %s: %w", name, err)
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			return fmt.Errorf("storage: reading %s: %w", name, err)
		}
		size = fi.Size()
		if int64(cap(buf)) < size {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if size > 0 {
			if _, err := io.ReadFull(f, buf); err != nil {
				return fmt.Errorf("storage: reading %s: %w", name, err)
			}
		}
		return nil
	})
	d.stats.addRetries(int64(retries))
	if err != nil {
		return nil, err
	}
	cost := d.prof.SeqCost(SeqRead, size) + d.prof.SeekLatency + backoff
	d.stats.add(SeqRead, size, cost)
	d.emit("read", SeqRead, name, -1, size, cost, retries)
	return buf, nil
}

// Remove deletes name. Removing a missing file is an error.
func (d *Device) Remove(name string) error {
	if err := d.checkFault("remove", name); err != nil {
		return err
	}
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return fmt.Errorf("storage: removing %s: %w", name, err)
	}
	return nil
}

// Exists reports whether name exists on the device.
func (d *Device) Exists(name string) bool {
	p, err := d.path(name)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Size returns the size of name in bytes.
func (d *Device) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	return fi.Size(), nil
}

// List returns the device-relative names of all regular files, sorted.
func (d *Device) List() ([]string, error) {
	var names []string
	err := filepath.Walk(d.dir, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.Mode().IsRegular() {
			rel, err := filepath.Rel(d.dir, p)
			if err != nil {
				return err
			}
			names = append(names, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: listing device: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Create opens name for sequential writing, truncating any existing file.
func (d *Device) Create(name string) (*Writer, error) {
	if err := d.checkFault("create", name); err != nil {
		return nil, err
	}
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating parent dir: %w", err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", name, err)
	}
	return &Writer{dev: d, name: name, f: f}, nil
}

// Open opens name for reading.
func (d *Device) Open(name string) (*Reader, error) {
	if err := d.checkFault("open", name); err != nil {
		return nil, err
	}
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("storage: opening %s: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	return &Reader{dev: d, name: name, f: f, size: fi.Size(), lastEnd: -1}, nil
}

// Writer is a sequential file writer on a Device. Writes are charged as
// sequential writes. Not safe for concurrent use.
type Writer struct {
	dev  *Device
	name string
	f    *os.File
	n    int64
}

// Write appends p to the file and charges a sequential write.
func (w *Writer) Write(p []byte) (int, error) {
	if err := w.dev.checkFault("write", w.name); err != nil {
		return 0, err
	}
	n, err := w.f.Write(p)
	cost := w.dev.prof.SeqCost(SeqWrite, int64(n))
	w.dev.stats.add(SeqWrite, int64(n), cost)
	w.dev.emit("append", SeqWrite, w.name, w.n, int64(n), cost, 0)
	w.n += int64(n)
	if err != nil {
		return n, fmt.Errorf("storage: writing %s: %w", w.name, err)
	}
	return n, nil
}

// BytesWritten returns the number of bytes written so far.
func (w *Writer) BytesWritten() int64 { return w.n }

// Close flushes the file to stable storage and closes it.
func (w *Writer) Close() error {
	serr := w.f.Sync()
	cerr := w.f.Close()
	if err := errors.Join(serr, cerr); err != nil {
		return fmt.Errorf("storage: closing %s: %w", w.name, err)
	}
	return nil
}

// Reader is a positional file reader on a Device. The caller states the
// access class of every read; the engines classify contiguous active-edge
// runs as sequential and scattered ones as random, exactly the S_seq/S_ran
// split of the paper's cost model. Reader is safe for concurrent ReadAt
// calls (accounting is atomic, classification is per-call).
type Reader struct {
	dev  *Device
	name string
	f    *os.File
	size int64

	// lastEnd tracks the end offset of the previous read for AutoReadAt's
	// contiguity detection. Guarded by mu.
	mu      sync.Mutex
	lastEnd int64
}

// Size returns the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// Name returns the device-relative file name.
func (r *Reader) Name() string { return r.name }

// ReadAt reads len(p) bytes at off, charging class c.
func (r *Reader) ReadAt(p []byte, off int64, c Class) (int, error) {
	if !c.IsRead() {
		return 0, fmt.Errorf("storage: ReadAt with write class %v", c)
	}
	var n int
	var eof error
	retries, backoff, err := r.dev.retryRead(func() error {
		if err := r.dev.checkFault("readat", r.name); err != nil {
			return err
		}
		var rerr error
		n, rerr = r.f.ReadAt(p, off)
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("storage: reading %s@%d: %w", r.name, off, rerr)
		}
		eof = rerr
		return nil
	})
	r.dev.stats.addRetries(int64(retries))
	if err != nil {
		return 0, err
	}
	var cost time.Duration
	if c == SeqRead {
		cost = r.dev.prof.SeqCost(c, int64(n))
	} else {
		cost = r.dev.prof.Cost(c, int64(n))
	}
	cost += backoff
	r.dev.stats.add(c, int64(n), cost)
	r.dev.emit("readat", c, r.name, off, int64(n), cost, retries)
	return n, eof
}

// AutoReadAt reads len(p) bytes at off, classifying the access itself: a
// read that starts exactly where the previous read on this Reader ended is
// sequential, anything else is random. This mirrors how a real disk head
// behaves when the engine walks an index in offset order.
func (r *Reader) AutoReadAt(p []byte, off int64) (int, error) {
	r.mu.Lock()
	c := RandRead
	if off == r.lastEnd {
		c = SeqRead
	}
	r.lastEnd = off + int64(len(p))
	r.mu.Unlock()
	return r.ReadAt(p, off, c)
}

// ReadAll reads the remaining whole file sequentially (one seek + stream).
func (r *Reader) ReadAll() ([]byte, error) {
	return r.ReadAllInto(nil)
}

// ReadAllInto reads the whole file sequentially into buf, growing it only
// when its capacity is insufficient, and returns the filled slice. The
// accounting is identical to ReadAll (one seek + sequential stream); the
// buffer reuse is what lets the I/O pipeline's fetch workers read block
// after block without allocating.
func (r *Reader) ReadAllInto(buf []byte) ([]byte, error) {
	if int64(cap(buf)) < r.size {
		buf = make([]byte, r.size)
	}
	buf = buf[:r.size]
	if r.size == 0 {
		return buf, nil
	}
	retries, backoff, err := r.dev.retryRead(func() error {
		if err := r.dev.checkFault("readat", r.name); err != nil {
			return err
		}
		if _, err := r.f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return fmt.Errorf("storage: reading %s: %w", r.name, err)
		}
		return nil
	})
	r.dev.stats.addRetries(int64(retries))
	if err != nil {
		return nil, err
	}
	cost := r.dev.prof.SeqCost(SeqRead, r.size) + r.dev.prof.SeekLatency + backoff
	r.dev.stats.add(SeqRead, r.size, cost)
	r.dev.emit("readall", SeqRead, r.name, 0, r.size, cost, retries)
	r.mu.Lock()
	r.lastEnd = r.size
	r.mu.Unlock()
	return buf, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("storage: closing %s: %w", r.name, err)
	}
	return nil
}
