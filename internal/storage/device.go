package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Device is a directory-backed simulated disk. Every operation performs the
// real file I/O and charges simulated time from the device Profile; the
// charge is recorded in per-class counters retrievable with Stats.
//
// Device methods are safe for concurrent use.
type Device struct {
	dir   string
	prof  Profile
	stats stats

	// fault, when non-nil, is consulted before every operation and may
	// return an error to inject a failure (tests only). tracer, when
	// non-nil, observes every accounted operation (SetTracer).
	mu     sync.RWMutex
	fault  func(op, name string) error
	tracer func(TraceEvent)
}

// OpenDevice opens (creating if needed) a device rooted at dir.
func OpenDevice(dir string, prof Profile) (*Device, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating device dir: %w", err)
	}
	return &Device{dir: dir, prof: prof}, nil
}

// Dir returns the backing directory.
func (d *Device) Dir() string { return d.dir }

// Profile returns the device's cost profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a snapshot of the I/O counters.
func (d *Device) Stats() Snapshot {
	var s Snapshot
	for c := 0; c < int(numClasses); c++ {
		s.Bytes[c] = d.stats.bytes[c].Load()
		s.Ops[c] = d.stats.ops[c].Load()
		s.Time[c] = time.Duration(d.stats.nanos[c].Load())
	}
	return s
}

// ResetStats zeroes the I/O counters.
func (d *Device) ResetStats() {
	for c := 0; c < int(numClasses); c++ {
		d.stats.bytes[c].Store(0)
		d.stats.ops[c].Store(0)
		d.stats.nanos[c].Store(0)
	}
}

// Charge records an I/O of n bytes in class c without touching any file.
// Engines use it for modelled transfers whose payload is already resident
// (e.g. the vertex-value write-back, which lives in memory but must be
// persisted once per iteration in the paper's cost model).
func (d *Device) Charge(c Class, n int64) time.Duration {
	cost := d.prof.Cost(c, n)
	d.stats.add(c, n, cost)
	d.emit("charge", c, "", -1, n, cost)
	return cost
}

// SetFaultInjector installs fn, which is consulted before every file
// operation with the operation name ("create", "write", "read", "readat",
// "remove") and file name; a non-nil return aborts the operation with that
// error. Pass nil to clear. For tests.
func (d *Device) SetFaultInjector(fn func(op, name string) error) {
	d.mu.Lock()
	d.fault = fn
	d.mu.Unlock()
}

func (d *Device) checkFault(op, name string) error {
	d.mu.RLock()
	fn := d.fault
	d.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(op, name)
}

func (d *Device) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return "", fmt.Errorf("storage: invalid file name %q", name)
	}
	return filepath.Join(d.dir, filepath.FromSlash(name)), nil
}

// WriteFile writes data to name as one sequential stream, replacing any
// existing file, and charges a sequential write.
func (d *Device) WriteFile(name string, data []byte) error {
	if err := d.checkFault("write", name); err != nil {
		return err
	}
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: creating parent dir: %w", err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("storage: writing %s: %w", name, err)
	}
	cost := d.prof.Cost(SeqWrite, int64(len(data)))
	d.stats.add(SeqWrite, int64(len(data)), cost)
	d.emit("write", SeqWrite, name, -1, int64(len(data)), cost)
	return nil
}

// ReadFile reads the whole of name as one sequential stream and charges a
// sequential read plus one positioning seek.
func (d *Device) ReadFile(name string) ([]byte, error) {
	return d.ReadFileInto(name, nil)
}

// ReadFileInto is ReadFile reading into buf, growing it only when its
// capacity is insufficient. Accounting and fault semantics are identical;
// the buffer reuse is what lets the I/O pipeline's fetch workers load block
// after block without allocating.
func (d *Device) ReadFileInto(name string, buf []byte) ([]byte, error) {
	if err := d.checkFault("read", name); err != nil {
		return nil, err
	}
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", name, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", name, err)
	}
	size := fi.Size()
	if int64(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if size > 0 {
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, fmt.Errorf("storage: reading %s: %w", name, err)
		}
	}
	cost := d.prof.SeqCost(SeqRead, size) + d.prof.SeekLatency
	d.stats.add(SeqRead, size, cost)
	d.emit("read", SeqRead, name, -1, size, cost)
	return buf, nil
}

// Remove deletes name. Removing a missing file is an error.
func (d *Device) Remove(name string) error {
	if err := d.checkFault("remove", name); err != nil {
		return err
	}
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return fmt.Errorf("storage: removing %s: %w", name, err)
	}
	return nil
}

// Exists reports whether name exists on the device.
func (d *Device) Exists(name string) bool {
	p, err := d.path(name)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Size returns the size of name in bytes.
func (d *Device) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	return fi.Size(), nil
}

// List returns the device-relative names of all regular files, sorted.
func (d *Device) List() ([]string, error) {
	var names []string
	err := filepath.Walk(d.dir, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.Mode().IsRegular() {
			rel, err := filepath.Rel(d.dir, p)
			if err != nil {
				return err
			}
			names = append(names, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: listing device: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Create opens name for sequential writing, truncating any existing file.
func (d *Device) Create(name string) (*Writer, error) {
	if err := d.checkFault("create", name); err != nil {
		return nil, err
	}
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating parent dir: %w", err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", name, err)
	}
	return &Writer{dev: d, name: name, f: f}, nil
}

// Open opens name for reading.
func (d *Device) Open(name string) (*Reader, error) {
	if err := d.checkFault("open", name); err != nil {
		return nil, err
	}
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("storage: opening %s: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	return &Reader{dev: d, name: name, f: f, size: fi.Size(), lastEnd: -1}, nil
}

// Writer is a sequential file writer on a Device. Writes are charged as
// sequential writes. Not safe for concurrent use.
type Writer struct {
	dev  *Device
	name string
	f    *os.File
	n    int64
}

// Write appends p to the file and charges a sequential write.
func (w *Writer) Write(p []byte) (int, error) {
	if err := w.dev.checkFault("write", w.name); err != nil {
		return 0, err
	}
	n, err := w.f.Write(p)
	cost := w.dev.prof.SeqCost(SeqWrite, int64(n))
	w.dev.stats.add(SeqWrite, int64(n), cost)
	w.dev.emit("append", SeqWrite, w.name, w.n, int64(n), cost)
	w.n += int64(n)
	if err != nil {
		return n, fmt.Errorf("storage: writing %s: %w", w.name, err)
	}
	return n, nil
}

// BytesWritten returns the number of bytes written so far.
func (w *Writer) BytesWritten() int64 { return w.n }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: closing %s: %w", w.name, err)
	}
	return nil
}

// Reader is a positional file reader on a Device. The caller states the
// access class of every read; the engines classify contiguous active-edge
// runs as sequential and scattered ones as random, exactly the S_seq/S_ran
// split of the paper's cost model. Reader is safe for concurrent ReadAt
// calls (accounting is atomic, classification is per-call).
type Reader struct {
	dev  *Device
	name string
	f    *os.File
	size int64

	// lastEnd tracks the end offset of the previous read for AutoReadAt's
	// contiguity detection. Guarded by mu.
	mu      sync.Mutex
	lastEnd int64
}

// Size returns the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// Name returns the device-relative file name.
func (r *Reader) Name() string { return r.name }

// ReadAt reads len(p) bytes at off, charging class c.
func (r *Reader) ReadAt(p []byte, off int64, c Class) (int, error) {
	if !c.IsRead() {
		return 0, fmt.Errorf("storage: ReadAt with write class %v", c)
	}
	if err := r.dev.checkFault("readat", r.name); err != nil {
		return 0, err
	}
	n, err := r.f.ReadAt(p, off)
	var cost time.Duration
	if c == SeqRead {
		cost = r.dev.prof.SeqCost(c, int64(n))
	} else {
		cost = r.dev.prof.Cost(c, int64(n))
	}
	r.dev.stats.add(c, int64(n), cost)
	r.dev.emit("readat", c, r.name, off, int64(n), cost)
	if err != nil && err != io.EOF {
		return n, fmt.Errorf("storage: reading %s@%d: %w", r.name, off, err)
	}
	return n, err
}

// AutoReadAt reads len(p) bytes at off, classifying the access itself: a
// read that starts exactly where the previous read on this Reader ended is
// sequential, anything else is random. This mirrors how a real disk head
// behaves when the engine walks an index in offset order.
func (r *Reader) AutoReadAt(p []byte, off int64) (int, error) {
	r.mu.Lock()
	c := RandRead
	if off == r.lastEnd {
		c = SeqRead
	}
	r.lastEnd = off + int64(len(p))
	r.mu.Unlock()
	return r.ReadAt(p, off, c)
}

// ReadAll reads the remaining whole file sequentially (one seek + stream).
func (r *Reader) ReadAll() ([]byte, error) {
	return r.ReadAllInto(nil)
}

// ReadAllInto reads the whole file sequentially into buf, growing it only
// when its capacity is insufficient, and returns the filled slice. The
// accounting is identical to ReadAll (one seek + sequential stream); the
// buffer reuse is what lets the I/O pipeline's fetch workers read block
// after block without allocating.
func (r *Reader) ReadAllInto(buf []byte) ([]byte, error) {
	if int64(cap(buf)) < r.size {
		buf = make([]byte, r.size)
	}
	buf = buf[:r.size]
	if r.size == 0 {
		return buf, nil
	}
	if err := r.dev.checkFault("readat", r.name); err != nil {
		return nil, err
	}
	if _, err := r.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("storage: reading %s: %w", r.name, err)
	}
	cost := r.dev.prof.SeqCost(SeqRead, r.size) + r.dev.prof.SeekLatency
	r.dev.stats.add(SeqRead, r.size, cost)
	r.dev.emit("readall", SeqRead, r.name, 0, r.size, cost)
	r.mu.Lock()
	r.lastEnd = r.size
	r.mu.Unlock()
	return buf, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("storage: closing %s: %w", r.name, err)
	}
	return nil
}
