package storage_test

import (
	"fmt"
	"log"
	"os"

	"github.com/graphsd/graphsd/internal/storage"
)

// Example shows the device's accounting: real file I/O charged by a disk
// cost model, with per-class byte and simulated-time counters.
func Example() {
	dir, err := os.MkdirTemp("", "storage-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dev, err := storage.OpenDevice(dir, storage.HDD)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.WriteFile("block.bin", make([]byte, 4096)); err != nil {
		log.Fatal(err)
	}
	r, err := dev.Open("block.bin")
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 512)
	if _, err := r.ReadAt(buf, 0, storage.RandRead); err != nil {
		log.Fatal(err)
	}
	s := dev.Stats()
	fmt.Printf("wrote=%dB read=%dB random-ops=%d\n",
		s.Bytes[storage.SeqWrite], s.Bytes[storage.RandRead], s.Ops[storage.RandRead])
	// Output: wrote=4096B read=512B random-ops=1
}
