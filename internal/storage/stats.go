package storage

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// stats accumulates per-class counters with atomic updates so concurrent
// engine workers can share one Device.
type stats struct {
	bytes   [numClasses]atomic.Int64
	ops     [numClasses]atomic.Int64
	nanos   [numClasses]atomic.Int64
	retries atomic.Int64
}

func (s *stats) add(c Class, n int64, d time.Duration) {
	s.bytes[c].Add(n)
	s.ops[c].Add(1)
	s.nanos[c].Add(int64(d))
}

func (s *stats) addRetries(n int64) {
	if n != 0 {
		s.retries.Add(n)
	}
}

// Snapshot is a point-in-time copy of a device's I/O counters.
type Snapshot struct {
	Bytes [4]int64
	Ops   [4]int64
	Time  [4]time.Duration
	// Retries counts read attempts repeated after a transient fault under
	// the device's RetryPolicy; the corresponding backoff is folded into
	// the class Time of the retried operations.
	Retries int64
}

// TotalBytes returns the total bytes moved across all classes.
func (s Snapshot) TotalBytes() int64 {
	var t int64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// ReadBytes returns bytes moved by read classes.
func (s Snapshot) ReadBytes() int64 { return s.Bytes[SeqRead] + s.Bytes[RandRead] }

// WriteBytes returns bytes moved by write classes.
func (s Snapshot) WriteBytes() int64 { return s.Bytes[SeqWrite] + s.Bytes[RandWrite] }

// TotalOps returns the total operation count.
func (s Snapshot) TotalOps() int64 {
	var t int64
	for _, o := range s.Ops {
		t += o
	}
	return t
}

// TotalTime returns the total simulated I/O time.
func (s Snapshot) TotalTime() time.Duration {
	var t time.Duration
	for _, d := range s.Time {
		t += d
	}
	return t
}

// Sub returns the delta s - prev, counter-wise. Use it to attribute I/O to a
// phase: snapshot before, snapshot after, subtract.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var out Snapshot
	for c := 0; c < int(numClasses); c++ {
		out.Bytes[c] = s.Bytes[c] - prev.Bytes[c]
		out.Ops[c] = s.Ops[c] - prev.Ops[c]
		out.Time[c] = s.Time[c] - prev.Time[c]
	}
	out.Retries = s.Retries - prev.Retries
	return out
}

// Add returns the counter-wise sum of s and other.
func (s Snapshot) Add(other Snapshot) Snapshot {
	var out Snapshot
	for c := 0; c < int(numClasses); c++ {
		out.Bytes[c] = s.Bytes[c] + other.Bytes[c]
		out.Ops[c] = s.Ops[c] + other.Ops[c]
		out.Time[c] = s.Time[c] + other.Time[c]
	}
	out.Retries = s.Retries + other.Retries
	return out
}

// String renders the snapshot compactly for logs and reports.
func (s Snapshot) String() string {
	var b strings.Builder
	for c := Class(0); c < numClasses; c++ {
		if s.Ops[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s/%dops/%v", c, FormatBytes(s.Bytes[c]), s.Ops[c], s.Time[c].Round(time.Microsecond))
	}
	if b.Len() == 0 {
		return "no I/O"
	}
	if s.Retries > 0 {
		fmt.Fprintf(&b, " retries=%d", s.Retries)
	}
	return b.String()
}

// FormatBytes renders a byte count in human units.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
