package storage

import (
	"errors"
	"syscall"
	"time"
)

// transientError marks an error as transient: the operation failed for a
// reason that retrying may fix (a flaky cable, an interrupted syscall, a
// momentarily busy device), as opposed to a permanent condition such as a
// missing file or corrupt payload.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so that IsTransient reports true for it. Fault
// injectors use it to distinguish recoverable read faults from permanent
// failures. Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient classifies err for the retry machinery: true for errors
// marked with Transient anywhere in the chain and for OS errors a disk can
// recover from by retrying (interrupted or temporarily unavailable
// syscalls). Missing files, invalid names, and corrupt payloads are
// permanent.
func IsTransient(err error) bool {
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.ETIMEDOUT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// ErrTornWrite is the fault-injection directive for a torn write: when a
// fault injector returns an error wrapping it from a "write" op, the device
// simulates a crash mid-write — a prefix of the payload reaches the
// temporary file and the publishing rename never happens, so the final name
// is left untouched (absent, or holding its previous intact contents).
var ErrTornWrite = errors.New("storage: torn write")

// RetryPolicy configures how a Device retries reads that fail with a
// transient error. The zero value disables retrying, which is the device
// default — fault-injection tests that expect a single attempt keep their
// semantics unless a policy is installed.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure;
	// 0 disables retrying.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it, capped at MaxDelay. Backoff is charged as
	// simulated device time, never slept, so runs stay fast and
	// reproducible. Zero selects 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff. Zero means uncapped.
	MaxDelay time.Duration
	// Seed seeds the jitter source; equal seeds give identical backoff
	// sequences, keeping simulated costs reproducible.
	Seed int64
}

// DefaultRetryPolicy is a sensible production policy: a few quick retries
// with exponential backoff capped well below a human-noticeable stall.
var DefaultRetryPolicy = RetryPolicy{
	MaxRetries: 3,
	BaseDelay:  time.Millisecond,
	MaxDelay:   100 * time.Millisecond,
}
