package storage

import "time"

// TraceEvent describes one device operation for observability tooling
// (internal/iotrace). Offset is -1 for whole-file and modelled operations.
// Retries is the number of transient-fault retries the operation needed
// (0 for a clean first attempt); their backoff is included in Cost.
type TraceEvent struct {
	Op      string
	Class   Class
	Name    string
	Offset  int64
	Bytes   int64
	Cost    time.Duration
	Retries int
}

// SetTracer installs fn to be invoked synchronously for every accounted
// device operation. Pass nil to disable. The tracer must be fast and safe
// for concurrent invocation; it runs on the engine's I/O paths.
func (d *Device) SetTracer(fn func(TraceEvent)) {
	d.mu.Lock()
	d.tracer = fn
	d.mu.Unlock()
}

// emit reports an accounted operation to the tracer, if any.
func (d *Device) emit(op string, c Class, name string, off, n int64, cost time.Duration, retries int) {
	d.mu.RLock()
	fn := d.tracer
	d.mu.RUnlock()
	if fn != nil {
		fn(TraceEvent{Op: op, Class: c, Name: name, Offset: off, Bytes: n, Cost: cost, Retries: retries})
	}
}
