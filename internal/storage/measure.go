package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"
)

// MeasureProfile estimates a real bandwidth profile for the filesystem at
// dir by timing short sequential and random transfers, in the spirit of the
// fio measurements the paper uses to parameterize its cost model. The
// result is noisy (page caches, small sample) and is intended for the CLI's
// informational `stats` command; experiments default to the fixed HDD
// profile for reproducibility.
func MeasureProfile(dir string, sampleBytes int) (Profile, error) {
	if sampleBytes < 1<<20 {
		sampleBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Profile{}, fmt.Errorf("storage: measure dir: %w", err)
	}
	path := filepath.Join(dir, ".graphsd-measure.tmp")
	defer os.Remove(path)

	data := make([]byte, sampleBytes)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}

	// Sequential write.
	t0 := time.Now()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return Profile{}, fmt.Errorf("storage: measure write: %w", err)
	}
	seqW := rate(sampleBytes, time.Since(t0))

	// Sequential read.
	t0 = time.Now()
	if _, err := os.ReadFile(path); err != nil {
		return Profile{}, fmt.Errorf("storage: measure read: %w", err)
	}
	seqR := rate(sampleBytes, time.Since(t0))

	// Random 4 KiB reads.
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, fmt.Errorf("storage: measure open: %w", err)
	}
	defer f.Close()
	const block = 4096
	buf := make([]byte, block)
	const trials = 256
	t0 = time.Now()
	for i := 0; i < trials; i++ {
		off := int64(rng.Intn(sampleBytes - block))
		if _, err := f.ReadAt(buf, off); err != nil {
			return Profile{}, fmt.Errorf("storage: measure random read: %w", err)
		}
	}
	randElapsed := time.Since(t0)
	randR := rate(block*trials, randElapsed)

	p := Profile{
		SeqReadBps:   seqR,
		SeqWriteBps:  seqW,
		RandReadBps:  randR,
		RandWriteBps: randR * 0.9,
		SeekLatency:  randElapsed / trials,
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		d = time.Nanosecond
	}
	return float64(n) / d.Seconds()
}
