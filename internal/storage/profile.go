// Package storage provides the disk substrate for the out-of-core engines:
// real files layered with a deterministic disk cost model.
//
// The paper evaluates on two 500 GB HDDs with the page cache disabled and
// direct I/O. That hardware is unavailable here, so every read and write
// goes through a Device that (a) performs the real file operation, so all
// offsets, indexes and buffering logic are genuinely exercised, and (b)
// charges simulated time from a bandwidth/seek profile and records the
// bytes moved per access class. Experiment "execution time" is simulated
// I/O time plus measured compute time, which removes host page-cache noise
// and reproduces the paper's I/O-bound behaviour deterministically
// (DESIGN.md §2).
package storage

import (
	"fmt"
	"time"
)

// Class identifies a disk access class, mirroring the bandwidth vector of
// the paper's cost model (Table 2): B_sr, B_rr, B_sw, B_rw.
type Class int

const (
	// SeqRead is a sequential read at media transfer rate.
	SeqRead Class = iota
	// RandRead is a read that requires a head seek first.
	RandRead
	// SeqWrite is a sequential write at media transfer rate.
	SeqWrite
	// RandWrite is a write that requires a head seek first.
	RandWrite
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case SeqRead:
		return "seq-read"
	case RandRead:
		return "rand-read"
	case SeqWrite:
		return "seq-write"
	case RandWrite:
		return "rand-write"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// IsRead reports whether the class is a read class.
func (c Class) IsRead() bool { return c == SeqRead || c == RandRead }

// Profile models a disk: transfer bandwidths per class plus a seek latency
// charged once per random operation and once when a sequential stream is
// (re)positioned. The paper measures these with fio; we default to HDD-class
// constants and let callers substitute measured values (MeasureProfile).
type Profile struct {
	// SeqReadBps and SeqWriteBps are sequential transfer rates in bytes/s.
	SeqReadBps  float64
	SeqWriteBps float64
	// RandReadBps and RandWriteBps are post-seek transfer rates in bytes/s.
	RandReadBps  float64
	RandWriteBps float64
	// SeekLatency is the head positioning cost for a random access.
	SeekLatency time.Duration
}

// HDD is the default profile, modelled on the paper's 500 GB 7200 rpm
// drives: ~150 MB/s streaming, 8 ms average seek.
var HDD = Profile{
	SeqReadBps:   150e6,
	SeqWriteBps:  140e6,
	RandReadBps:  120e6,
	RandWriteBps: 110e6,
	SeekLatency:  8 * time.Millisecond,
}

// ScaledHDD is the HDD profile with the seek latency scaled down by the
// same ~10³ factor that separates the paper's multi-GB datasets from this
// repository's MB-scale synthetic stand-ins. Holding the seek-time to
// full-scan-time ratio constant preserves the position of the
// on-demand/full I/O crossover (Figure 10) at the reduced scale; see
// DESIGN.md §2. Experiments default to this profile.
var ScaledHDD = Profile{
	SeqReadBps:   150e6,
	SeqWriteBps:  140e6,
	RandReadBps:  120e6,
	RandWriteBps: 110e6,
	SeekLatency:  8 * time.Microsecond,
}

// SSD is a SATA-SSD-class profile for sensitivity experiments: much cheaper
// seeks shift the on-demand/full I/O crossover.
var SSD = Profile{
	SeqReadBps:   520e6,
	SeqWriteBps:  480e6,
	RandReadBps:  400e6,
	RandWriteBps: 350e6,
	SeekLatency:  80 * time.Microsecond,
}

// PMem models an Intel-Optane-class persistent memory module, the device
// the paper's conclusion names as future work ("exploit emerging storage
// devices such as Intel Optane PMM"). Random access is nearly free, which
// pushes the on-demand/full crossover far toward the full model's side —
// the ext-storage extension experiment quantifies the shift.
var PMem = Profile{
	SeqReadBps:   2500e6,
	SeqWriteBps:  2000e6,
	RandReadBps:  2300e6,
	RandWriteBps: 1800e6,
	SeekLatency:  300 * time.Nanosecond,
}

// Validate checks that all rates are positive and the seek latency is
// non-negative.
func (p Profile) Validate() error {
	if p.SeqReadBps <= 0 || p.SeqWriteBps <= 0 || p.RandReadBps <= 0 || p.RandWriteBps <= 0 {
		return fmt.Errorf("storage: profile bandwidths must be positive: %+v", p)
	}
	if p.SeekLatency < 0 {
		return fmt.Errorf("storage: negative seek latency %v", p.SeekLatency)
	}
	return nil
}

// bandwidth returns the transfer rate for a class in bytes/s.
func (p Profile) bandwidth(c Class) float64 {
	switch c {
	case SeqRead:
		return p.SeqReadBps
	case RandRead:
		return p.RandReadBps
	case SeqWrite:
		return p.SeqWriteBps
	case RandWrite:
		return p.RandWriteBps
	default:
		panic(fmt.Sprintf("storage: unknown class %d", int(c)))
	}
}

// Cost returns the simulated duration of moving n bytes in class c,
// including the seek for random classes. This exact function is also used
// by the state-aware I/O scheduler to predict iteration costs, so the
// scheduler's predictions and the device's charges agree by construction.
func (p Profile) Cost(c Class, n int64) time.Duration {
	d := time.Duration(float64(n) / p.bandwidth(c) * float64(time.Second))
	if c == RandRead || c == RandWrite {
		d += p.SeekLatency
	}
	return d
}

// SeqCost returns the cost of a pure sequential transfer of n bytes.
func (p Profile) SeqCost(c Class, n int64) time.Duration {
	return time.Duration(float64(n) / p.bandwidth(c) * float64(time.Second))
}
