package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func retryDevice(t *testing.T) *Device {
	t.Helper()
	dev, err := OpenDevice(t.TempDir(), HDD)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestTransientClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
	if IsTransient(errors.New("boom")) {
		t.Fatal("plain error classified transient")
	}
	err := Transient(errors.New("flaky"))
	if !IsTransient(err) {
		t.Fatal("marked error not classified transient")
	}
	if !IsTransient(fmt.Errorf("outer: %w", err)) {
		t.Fatal("wrapped marked error not classified transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
}

func TestRetryRecoversTransientRead(t *testing.T) {
	dev := retryDevice(t)
	if err := dev.WriteFile("f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	dev.SetRetryPolicy(RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond})

	var attempts atomic.Int64
	dev.SetFaultInjector(func(op, name string) error {
		if op != "read" {
			return nil
		}
		if attempts.Add(1) <= 2 {
			return Transient(errors.New("flaky read"))
		}
		return nil
	})
	var traced TraceEvent
	dev.SetTracer(func(ev TraceEvent) {
		if ev.Op == "read" {
			traced = ev
		}
	})

	data, err := dev.ReadFile("f")
	if err != nil {
		t.Fatalf("read after transient faults: %v", err)
	}
	if string(data) != "payload" {
		t.Fatalf("payload corrupted: %q", data)
	}
	if got := dev.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if traced.Retries != 2 {
		t.Fatalf("trace Retries = %d, want 2", traced.Retries)
	}
	// Backoff is charged as simulated time: the read must cost more than a
	// clean one.
	dev.SetFaultInjector(nil)
	dev.SetTracer(nil)
	before := dev.Stats()
	if _, err := dev.ReadFile("f"); err != nil {
		t.Fatal(err)
	}
	clean := dev.Stats().Sub(before).Time[SeqRead]
	if traced.Cost <= clean {
		t.Fatalf("retried read cost %v not above clean cost %v", traced.Cost, clean)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	dev := retryDevice(t)
	if err := dev.WriteFile("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	dev.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond})
	var attempts atomic.Int64
	dev.SetFaultInjector(func(op, name string) error {
		if op == "read" {
			attempts.Add(1)
			return Transient(errors.New("always flaky"))
		}
		return nil
	})
	if _, err := dev.ReadFile("f"); !IsTransient(err) {
		t.Fatalf("want transient error after exhausted budget, got %v", err)
	}
	if got := attempts.Load(); got != 3 { // 1 attempt + 2 retries
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := dev.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	dev := retryDevice(t)
	if err := dev.WriteFile("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	dev.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond})
	var attempts atomic.Int64
	boom := errors.New("disk on fire")
	dev.SetFaultInjector(func(op, name string) error {
		if op == "read" {
			attempts.Add(1)
			return boom
		}
		return nil
	})
	if _, err := dev.ReadFile("f"); !errors.Is(err, boom) {
		t.Fatalf("want permanent error, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on permanent errors)", got)
	}
	if got := dev.Stats().Retries; got != 0 {
		t.Fatalf("Retries = %d, want 0", got)
	}
}

func TestReadAtRetries(t *testing.T) {
	dev := retryDevice(t)
	if err := dev.WriteFile("f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	dev.SetRetryPolicy(RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond})
	var attempts atomic.Int64
	dev.SetFaultInjector(func(op, name string) error {
		if op == "readat" && attempts.Add(1) == 1 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	r, err := dev.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4)
	n, err := r.ReadAt(buf, 3, RandRead)
	if err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("ReadAt = %d, %v, %q", n, err, buf)
	}
	if got := dev.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

func TestWriteFileAtomicUnderTornWrite(t *testing.T) {
	dev := retryDevice(t)
	if err := dev.WriteFile("f", []byte("old intact contents")); err != nil {
		t.Fatal(err)
	}
	dev.SetFaultInjector(func(op, name string) error {
		if op == "write" && name == "f" {
			return fmt.Errorf("chaos: %w", ErrTornWrite)
		}
		return nil
	})
	err := dev.WriteFile("f", []byte("new contents that tear"))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("want torn-write error, got %v", err)
	}
	dev.SetFaultInjector(nil)
	data, err := dev.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old intact contents" {
		t.Fatalf("torn write corrupted the published file: %q", data)
	}
}

func TestTornWriteOnFreshFileLeavesNothing(t *testing.T) {
	dev := retryDevice(t)
	dev.SetFaultInjector(func(op, name string) error {
		if op == "write" {
			return fmt.Errorf("chaos: %w", ErrTornWrite)
		}
		return nil
	})
	if err := dev.WriteFile("fresh", []byte("half of me will land in a temp file")); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("want torn-write error, got %v", err)
	}
	if dev.Exists("fresh") {
		t.Fatal("torn write published the final name")
	}
}

func TestChaosDeterministicFromSeed(t *testing.T) {
	sequence := func() []int64 {
		c := NewChaos(ChaosOptions{Seed: 7, TransientReadProb: 0.3})
		inj := c.Injector()
		var fails []int64
		for i := 0; i < 200; i++ {
			if err := inj("read", "f"); err != nil {
				if !IsTransient(err) {
					t.Fatalf("chaos read fault not transient: %v", err)
				}
				fails = append(fails, int64(i))
			}
		}
		return fails
	}
	a, b := sequence(), sequence()
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.3 over 200 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault positions at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestChaosCrashAfterOps(t *testing.T) {
	c := NewChaos(ChaosOptions{Seed: 1, CrashAfterOps: 3})
	inj := c.Injector()
	for i := 0; i < 3; i++ {
		if err := inj("read", "f"); err != nil {
			t.Fatalf("op %d before crash point failed: %v", i, err)
		}
	}
	err := inj("read", "f")
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed after crash point, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("crash error must be permanent")
	}
	if st := c.Stats(); st.Crashed != 1 || st.Ops != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChaosMatchFilter(t *testing.T) {
	c := NewChaos(ChaosOptions{
		Seed:              1,
		TransientReadProb: 1.0,
		Match:             func(op, name string) bool { return name == "target" },
	})
	inj := c.Injector()
	if err := inj("read", "other"); err != nil {
		t.Fatalf("non-matching op failed: %v", err)
	}
	if err := inj("read", "target"); err == nil {
		t.Fatal("matching op did not fail at p=1")
	}
	if st := c.Stats(); st.Ops != 1 {
		t.Fatalf("non-matching ops counted: %+v", st)
	}
}
