package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrCrashed is the permanent error a Chaos injector returns for every
// operation once its crash point is reached, simulating the process dying
// mid-run: nothing after the crash op succeeds.
var ErrCrashed = errors.New("storage: chaos: simulated crash")

// ChaosOptions configures a Chaos injector. All probabilities are per
// matching operation.
type ChaosOptions struct {
	// Seed seeds the fault sequence; equal seeds over equal op streams
	// inject identical faults.
	Seed int64
	// TransientReadProb is the probability that a "read"/"readat" op fails
	// with a Transient-marked error (recoverable by retrying).
	TransientReadProb float64
	// TornWriteProb is the probability that a "write" op fails with an
	// ErrTornWrite-wrapped error (a crash mid-write; see ErrTornWrite).
	TornWriteProb float64
	// CrashAfterOps, when positive, makes every op after the first
	// CrashAfterOps matching ops fail permanently with ErrCrashed.
	CrashAfterOps int64
	// Match, when non-nil, limits injection to ops it reports true for;
	// non-matching ops pass through uncounted.
	Match func(op, name string) bool
}

// ChaosStats counts what a Chaos injector has done.
type ChaosStats struct {
	Ops       int64 // matching operations observed
	Transient int64 // transient read faults injected
	Torn      int64 // torn writes injected
	Crashed   int64 // operations failed after the crash point
}

// Chaos is a seeded probabilistic fault injector for Device. Install its
// Injector with SetFaultInjector to subject a run to transient read faults,
// torn writes, and a crash-at-op point, all reproducible from the seed.
// Safe for concurrent use.
type Chaos struct {
	mu    sync.Mutex
	rng   *rand.Rand
	opts  ChaosOptions
	stats ChaosStats
}

// NewChaos returns a Chaos injector driven by o.
func NewChaos(o ChaosOptions) *Chaos {
	return &Chaos{rng: rand.New(rand.NewSource(o.Seed)), opts: o}
}

// Stats returns a snapshot of the injection counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Injector returns the function to install with Device.SetFaultInjector.
func (c *Chaos) Injector() func(op, name string) error {
	return func(op, name string) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.opts.Match != nil && !c.opts.Match(op, name) {
			return nil
		}
		c.stats.Ops++
		if c.opts.CrashAfterOps > 0 && c.stats.Ops > c.opts.CrashAfterOps {
			c.stats.Crashed++
			return fmt.Errorf("chaos: op %d (%s %s): %w", c.stats.Ops, op, name, ErrCrashed)
		}
		switch op {
		case "read", "readat":
			if c.opts.TransientReadProb > 0 && c.rng.Float64() < c.opts.TransientReadProb {
				c.stats.Transient++
				return Transient(fmt.Errorf("chaos: transient read fault on %s (op %d)", name, c.stats.Ops))
			}
		case "write", "append":
			// "append" is the job journal's WAL op: a torn append leaves a
			// half-frame tail for replay to truncate, the journal-side
			// analogue of a torn block write.
			if c.opts.TornWriteProb > 0 && c.rng.Float64() < c.opts.TornWriteProb {
				c.stats.Torn++
				return fmt.Errorf("chaos: torn write on %s (op %d): %w", name, c.stats.Ops, ErrTornWrite)
			}
		}
		return nil
	}
}
