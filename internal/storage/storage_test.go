package storage

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := OpenDevice(t.TempDir(), HDD)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProfileValidate(t *testing.T) {
	if err := HDD.Validate(); err != nil {
		t.Fatalf("HDD profile invalid: %v", err)
	}
	if err := SSD.Validate(); err != nil {
		t.Fatalf("SSD profile invalid: %v", err)
	}
	bad := HDD
	bad.SeqReadBps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = HDD
	bad.SeekLatency = -time.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("negative seek accepted")
	}
}

func TestProfileCost(t *testing.T) {
	p := Profile{SeqReadBps: 100e6, SeqWriteBps: 100e6, RandReadBps: 100e6, RandWriteBps: 100e6, SeekLatency: 10 * time.Millisecond}
	// 100 MB at 100 MB/s = 1 s sequential.
	if got := p.Cost(SeqRead, 100e6); got != time.Second {
		t.Fatalf("seq cost = %v, want 1s", got)
	}
	// Random adds the seek.
	if got := p.Cost(RandRead, 100e6); got != time.Second+10*time.Millisecond {
		t.Fatalf("rand cost = %v", got)
	}
	if got := p.SeqCost(RandRead, 100e6); got != time.Second {
		t.Fatalf("SeqCost = %v, want 1s", got)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		SeqRead: "seq-read", RandRead: "rand-read", SeqWrite: "seq-write", RandWrite: "rand-write",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if !SeqRead.IsRead() || !RandRead.IsRead() || SeqWrite.IsRead() || RandWrite.IsRead() {
		t.Fatal("IsRead misclassifies")
	}
}

func TestWriteReadFile(t *testing.T) {
	d := testDevice(t)
	data := []byte("hello graphsd")
	if err := d.WriteFile("sub/dir/a.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("sub/dir/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
	s := d.Stats()
	if s.Bytes[SeqWrite] != int64(len(data)) || s.Bytes[SeqRead] != int64(len(data)) {
		t.Fatalf("stats bytes wrong: %+v", s)
	}
	if s.Ops[SeqWrite] != 1 || s.Ops[SeqRead] != 1 {
		t.Fatalf("stats ops wrong: %+v", s)
	}
	if s.Time[SeqRead] <= 0 {
		t.Fatal("no simulated read time charged")
	}
}

func TestInvalidNames(t *testing.T) {
	d := testDevice(t)
	for _, name := range []string{"", "../escape", "/abs/path", "a/../../b"} {
		if err := d.WriteFile(name, nil); err == nil {
			t.Errorf("name %q accepted for write", name)
		}
		if _, err := d.ReadFile(name); err == nil {
			t.Errorf("name %q accepted for read", name)
		}
	}
}

func TestReadMissingFile(t *testing.T) {
	d := testDevice(t)
	if _, err := d.ReadFile("missing.bin"); err == nil {
		t.Fatal("reading missing file succeeded")
	}
	if _, err := d.Open("missing.bin"); err == nil {
		t.Fatal("opening missing file succeeded")
	}
	if _, err := d.Size("missing.bin"); err == nil {
		t.Fatal("stat of missing file succeeded")
	}
}

func TestExistsRemoveList(t *testing.T) {
	d := testDevice(t)
	if d.Exists("x") {
		t.Fatal("missing file Exists")
	}
	if err := d.WriteFile("x", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("dir/y", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if !d.Exists("x") {
		t.Fatal("written file does not Exist")
	}
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "dir/y" || names[1] != "x" {
		t.Fatalf("List = %v", names)
	}
	if err := d.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("x") {
		t.Fatal("removed file still Exists")
	}
	if err := d.Remove("x"); err == nil {
		t.Fatal("removing missing file succeeded")
	}
}

func TestWriterAccumulates(t *testing.T) {
	d := testDevice(t)
	w, err := d.Create("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Write(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if w.BytesWritten() != 1000 {
		t.Fatalf("BytesWritten = %d", w.BytesWritten())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sz, err := d.Size("big.bin")
	if err != nil || sz != 1000 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if d.Stats().Bytes[SeqWrite] != 1000 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestReaderClasses(t *testing.T) {
	d := testDevice(t)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := d.WriteFile("f.bin", payload); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()

	r, err := d.Open("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != 4096 || r.Name() != "f.bin" {
		t.Fatalf("Size=%d Name=%s", r.Size(), r.Name())
	}

	buf := make([]byte, 100)
	if _, err := r.ReadAt(buf, 0, RandRead); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[:100]) {
		t.Fatal("random read returned wrong data")
	}
	if _, err := r.ReadAt(buf, 100, SeqRead); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Bytes[RandRead] != 100 || s.Bytes[SeqRead] != 100 {
		t.Fatalf("class accounting wrong: %+v", s)
	}
	// The random read must be charged a seek; for equal sizes it costs more.
	if s.Time[RandRead] <= s.Time[SeqRead] {
		t.Fatalf("random read (%v) not dearer than sequential (%v)", s.Time[RandRead], s.Time[SeqRead])
	}
	if _, err := r.ReadAt(buf, 0, SeqWrite); err == nil {
		t.Fatal("ReadAt accepted a write class")
	}
}

func TestReaderAutoClassification(t *testing.T) {
	d := testDevice(t)
	if err := d.WriteFile("f.bin", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	r, err := d.Open("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 100)
	// First read: random (nothing before it).
	r.AutoReadAt(buf, 0)
	// Contiguous: sequential.
	r.AutoReadAt(buf, 100)
	r.AutoReadAt(buf, 200)
	// Jump: random again.
	r.AutoReadAt(buf, 700)
	s := d.Stats()
	if s.Ops[RandRead] != 2 || s.Ops[SeqRead] != 2 {
		t.Fatalf("auto classification wrong: %+v", s)
	}
}

func TestReadAllAndEOF(t *testing.T) {
	d := testDevice(t)
	if err := d.WriteFile("f.bin", []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	r, err := d.Open("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	all, err := r.ReadAll()
	if err != nil || string(all) != "abcdef" {
		t.Fatalf("ReadAll = %q, %v", all, err)
	}
	// Read past EOF returns io.EOF with partial data.
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 3, SeqRead)
	if n != 3 || err != io.EOF {
		t.Fatalf("ReadAt past EOF = %d, %v", n, err)
	}
	// Empty file ReadAll.
	if err := d.WriteFile("empty.bin", nil); err != nil {
		t.Fatal(err)
	}
	re, err := d.Open("empty.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	b, err := re.ReadAll()
	if err != nil || len(b) != 0 {
		t.Fatalf("empty ReadAll = %v, %v", b, err)
	}
}

func TestCharge(t *testing.T) {
	d := testDevice(t)
	cost := d.Charge(SeqWrite, 1e6)
	if cost <= 0 {
		t.Fatal("Charge returned non-positive cost")
	}
	s := d.Stats()
	if s.Bytes[SeqWrite] != 1e6 || s.Ops[SeqWrite] != 1 {
		t.Fatalf("Charge not recorded: %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	d := testDevice(t)
	d.Charge(SeqRead, 100)
	d.ResetStats()
	if d.Stats().TotalOps() != 0 {
		t.Fatal("stats survive reset")
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	d := testDevice(t)
	d.Charge(SeqRead, 100)
	before := d.Stats()
	d.Charge(SeqRead, 50)
	d.Charge(RandWrite, 10)
	delta := d.Stats().Sub(before)
	if delta.Bytes[SeqRead] != 50 || delta.Bytes[RandWrite] != 10 {
		t.Fatalf("delta = %+v", delta)
	}
	sum := delta.Add(before)
	if sum.Bytes[SeqRead] != 150 {
		t.Fatalf("sum = %+v", sum)
	}
	if delta.TotalBytes() != 60 || delta.ReadBytes() != 50 || delta.WriteBytes() != 10 {
		t.Fatalf("aggregates wrong: %+v", delta)
	}
	if delta.TotalTime() <= 0 {
		t.Fatal("no time in delta")
	}
}

func TestSnapshotString(t *testing.T) {
	var s Snapshot
	if s.String() != "no I/O" {
		t.Fatalf("empty = %q", s.String())
	}
	s.Bytes[SeqRead] = 2048
	s.Ops[SeqRead] = 2
	if got := s.String(); got == "no I/O" {
		t.Fatalf("non-empty rendered as %q", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		2048:    "2.0KiB",
		1 << 20: "1.0MiB",
		3 << 30: "3.0GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	d := testDevice(t)
	if err := d.WriteFile("ok.bin", []byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	d.SetFaultInjector(func(op, name string) error {
		if op == "read" {
			return boom
		}
		return nil
	})
	if _, err := d.ReadFile("ok.bin"); !errors.Is(err, boom) {
		t.Fatalf("fault not injected: %v", err)
	}
	d.SetFaultInjector(nil)
	if _, err := d.ReadFile("ok.bin"); err != nil {
		t.Fatalf("fault persisted after clear: %v", err)
	}
}

func TestConcurrentCharges(t *testing.T) {
	d := testDevice(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				d.Charge(SeqRead, 1)
			}
		}()
	}
	wg.Wait()
	if got := d.Stats().Bytes[SeqRead]; got != 8000 {
		t.Fatalf("concurrent charges lost: %d", got)
	}
}

func TestOpenDeviceBadProfile(t *testing.T) {
	if _, err := OpenDevice(t.TempDir(), Profile{}); err == nil {
		t.Fatal("zero profile accepted")
	}
}

func TestMeasureProfile(t *testing.T) {
	p, err := MeasureProfile(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("measured profile invalid: %v (%+v)", err, p)
	}
}

// Property: simulated cost is monotonic in byte count for every class.
func TestPropertyCostMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		for c := Class(0); c < numClasses; c++ {
			if HDD.Cost(c, lo) > HDD.Cost(c, hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stats conservation — total bytes equals the sum of per-class bytes.
func TestPropertyStatsConservation(t *testing.T) {
	d := testDevice(t)
	f := func(ops []uint16) bool {
		d.ResetStats()
		var want [4]int64
		for _, op := range ops {
			c := Class(op % 4)
			n := int64(op % 1000)
			d.Charge(c, n)
			want[c] += n
		}
		s := d.Stats()
		total := int64(0)
		for c := 0; c < 4; c++ {
			if s.Bytes[c] != want[c] {
				return false
			}
			total += want[c]
		}
		return s.TotalBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
