package metrics

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTableRendersAligned(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	tab.AddNote("a note with %d args", 2)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "longer-name", "a note with 2 args", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and separator must have equal width prefixes.
	if len(lines) < 3 || len(lines[1]) == 0 {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestTableRowPaddingAndTruncation(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("1")           // short row: second cell empty
	tab.AddRow("1", "2", "3") // long row: third cell dropped
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "3") {
		t.Fatal("overflow cell not dropped")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("nope") }

func TestTableRenderError(t *testing.T) {
	tab := NewTable("x", "a")
	if err := tab.Render(failWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestDur(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Millisecond: "1.50s",
		2500 * time.Microsecond: "2.50ms",
		750 * time.Microsecond:  "750µs",
		0:                       "0µs",
	}
	for d, want := range cases {
		if got := Dur(d); got != want {
			t.Errorf("Dur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRatios(t *testing.T) {
	if got := Ratio(3*time.Second, 2*time.Second); got != "1.50x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(time.Second, 0); got != "—" {
		t.Errorf("Ratio by zero = %q", got)
	}
	if got := RatioF(5, 2); got != "2.50x" {
		t.Errorf("RatioF = %q", got)
	}
	if got := RatioF(1, 0); got != "—" {
		t.Errorf("RatioF by zero = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(time.Second, 4*time.Second); got != "25%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(time.Second, 0); got != "—" {
		t.Errorf("Pct by zero = %q", got)
	}
}
