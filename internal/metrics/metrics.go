// Package metrics provides the report formatting used by the experiment
// harness and CLIs: plain-text aligned tables and unit helpers, so every
// regenerated paper table/figure prints as a readable terminal table.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Dur renders a duration rounded for table display.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// DurZ renders a duration like Dur, but as "—" when zero — for sparse
// table columns such as per-iteration pipeline stall/overlap.
func DurZ(d time.Duration) string {
	if d == 0 {
		return "—"
	}
	return Dur(d)
}

// Ratio renders a/b as "N.NNx"; "—" when b is zero.
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "—"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

// RatioF renders a/b for float64 operands.
func RatioF(a, b float64) string {
	if b == 0 {
		return "—"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Pct renders part/total as a percentage.
func Pct(part, total time.Duration) string {
	if total == 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(total))
}
