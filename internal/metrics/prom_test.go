package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPromOutput(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Header("graphsd_jobs_total", "counter", "Jobs by final state.")
	p.Int("graphsd_jobs_total", 3, L("state", "done"))
	p.Int("graphsd_jobs_total", 1, L("state", "failed"))
	p.Header("graphsd_cache_ratio", "gauge", "Hit ratio.")
	p.Val("graphsd_cache_ratio", 0.25, L("graph", "g1"))
	p.Val("graphsd_uptime_seconds", 12.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP graphsd_jobs_total Jobs by final state.
# TYPE graphsd_jobs_total counter
graphsd_jobs_total{state="done"} 3
graphsd_jobs_total{state="failed"} 1
# HELP graphsd_cache_ratio Hit ratio.
# TYPE graphsd_cache_ratio gauge
graphsd_cache_ratio{graph="g1"} 0.25
graphsd_uptime_seconds 12.5
`
	if got != want {
		t.Fatalf("output:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromEscaping(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Header("m", "gauge", "line1\nline2 \\slash")
	p.Val("m", 1, L("path", `a"b\c`+"\n"))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `line1\nline2 \\slash`) {
		t.Fatalf("help not escaped: %q", got)
	}
	if !strings.Contains(got, `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %q", got)
	}
}

func TestPromSpecialFloats(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Val("m", math.NaN())
	p.Val("m", math.Inf(1))
	p.Val("m", math.Inf(-1))
	got := b.String()
	for _, want := range []string{"m NaN\n", "m +Inf\n", "m -Inf\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in %q", want, got)
		}
	}
}

func TestPromErrLatched(t *testing.T) {
	p := NewProm(failingWriter{})
	p.Header("m", "gauge", "h")
	first := p.Err()
	if first == nil {
		t.Fatal("expected write error")
	}
	p.Val("m", 1)
	p.Int("m", 1)
	if p.Err() != first {
		t.Fatal("error not latched")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errBoom }

var errBoom = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
