package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prom writes Prometheus text exposition format (version 0.0.4), the format
// scraped from the server's /metrics endpoint. It is a minimal writer, not
// a client library: callers emit a Header once per metric family and then
// one Val per labelled sample, in family order. The first write error is
// latched and reported by Err; later calls are no-ops, so call sites stay
// unconditional.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm returns a Prometheus text writer over w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Err returns the first write error, if any.
func (p *Prom) Err() error { return p.err }

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the HELP and TYPE lines of a metric family. typ is
// "counter" or "gauge".
func (p *Prom) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Label is one name="value" pair. Labels render in the given order, so
// output is deterministic and scrape-diffable.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Val emits one sample line: name{labels} value. NaN and ±Inf render in
// Prometheus spelling.
func (p *Prom) Val(name string, value float64, labels ...Label) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatPromFloat(value))
	b.WriteByte('\n')
	_, p.err = io.WriteString(p.w, b.String())
}

// Int is Val for integer-valued counters and gauges, avoiding float
// formatting artifacts on large counts.
func (p *Prom) Int(name string, value int64, labels ...Label) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(&b, " %d\n", value)
	_, p.err = io.WriteString(p.w, b.String())
}

func formatPromSpecial(v float64) (string, bool) {
	switch {
	case math.IsNaN(v):
		return "NaN", true
	case math.IsInf(v, 1):
		return "+Inf", true
	case math.IsInf(v, -1):
		return "-Inf", true
	}
	return "", false
}

func formatPromFloat(v float64) string {
	if s, ok := formatPromSpecial(v); ok {
		return s
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
