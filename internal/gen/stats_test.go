package gen

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/graph"
)

func TestDegreeStatsEmptyGraph(t *testing.T) {
	s := ComputeDegreeStats(&graph.Graph{})
	if s != (DegreeStats{}) {
		t.Fatalf("empty graph stats = %+v", s)
	}
}

func TestDegreeStatsRegularGraph(t *testing.T) {
	// Directed cycle: every vertex has out-degree exactly 1.
	n := 100
	g := &graph.Graph{NumVertices: n}
	for v := 0; v < n; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + 1) % n)})
	}
	s := ComputeDegreeStats(g)
	if s.Max != 1 || s.Median != 1 || s.P99 != 1 {
		t.Fatalf("regular graph stats = %+v", s)
	}
	if math.Abs(s.Mean-1) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Gini) > 1e-9 {
		t.Fatalf("gini of regular graph = %v, want ~0", s.Gini)
	}
	if math.Abs(s.Top1PctShare-0.01) > 1e-9 {
		t.Fatalf("top-1%% share = %v, want 0.01", s.Top1PctShare)
	}
}

func TestDegreeStatsStar(t *testing.T) {
	// All edges from the hub: maximal concentration.
	g := Star(100)
	s := ComputeDegreeStats(g)
	if s.Max != 99 || s.Median != 0 {
		t.Fatalf("star stats = %+v", s)
	}
	if s.Top1PctShare != 1 {
		t.Fatalf("star top-1%% share = %v, want 1", s.Top1PctShare)
	}
	if s.Gini < 0.95 {
		t.Fatalf("star gini = %v, want near 1", s.Gini)
	}
}

func TestDegreeStatsOrderSkew(t *testing.T) {
	// R-MAT must be markedly more skewed than Erdős–Rényi of the same size.
	rmat, err := RMAT(11, 16, Graph500, 3)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(rmat.NumVertices, rmat.NumEdges(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sr := ComputeDegreeStats(rmat)
	se := ComputeDegreeStats(er)
	if sr.Gini <= se.Gini {
		t.Fatalf("rmat gini %v not above erdos-renyi %v", sr.Gini, se.Gini)
	}
	if sr.Top1PctShare <= se.Top1PctShare {
		t.Fatalf("rmat top1%% %v not above erdos-renyi %v", sr.Top1PctShare, se.Top1PctShare)
	}
	if sr.String() == "" {
		t.Fatal("empty String()")
	}
}
