package gen

import (
	"fmt"
	"sort"

	"github.com/graphsd/graphsd/internal/graph"
)

// Preset describes a named synthetic dataset that stands in for one of the
// paper's Table 3 graphs, scaled to laptop size (see DESIGN.md §2).
type Preset struct {
	Name string
	// PaperName, PaperVertices and PaperEdges document the original dataset.
	PaperName     string
	PaperVertices string
	PaperEdges    string
	// Kind describes the generator family used for the stand-in.
	Kind string
	// Build constructs the graph deterministically for the given seed.
	Build func(seed int64) (*graph.Graph, error)
}

// Presets maps the Table 3 datasets to scaled synthetic equivalents. The
// scale factors keep the relative ordering of the original dataset sizes
// (Twitter < SK < UK < UKUnion << Kron) so cross-dataset trends survive.
var Presets = []Preset{
	{
		Name:          "twitter-sim",
		PaperName:     "Twitter2010",
		PaperVertices: "42M",
		PaperEdges:    "1.5B",
		Kind:          "rmat (social)",
		Build: func(seed int64) (*graph.Graph, error) {
			return RMAT(13, 18, Graph500, seed) // 8192 vertices, ~147k edges
		},
	},
	{
		Name:          "sk-sim",
		PaperName:     "SK2005",
		PaperVertices: "51M",
		PaperEdges:    "1.9B",
		Kind:          "powerlaw (social)",
		Build: func(seed int64) (*graph.Graph, error) {
			return PowerLaw(10000, 190000, 1.9, seed)
		},
	},
	{
		Name:          "uk-sim",
		PaperName:     "UK2007",
		PaperVertices: "106M",
		PaperEdges:    "3.7B",
		Kind:          "weblike",
		Build: func(seed int64) (*graph.Graph, error) {
			return WebLike(21000, 370000, 0.8, seed)
		},
	},
	{
		Name:          "ukunion-sim",
		PaperName:     "UKUnion",
		PaperVertices: "133M",
		PaperEdges:    "5.5B",
		Kind:          "weblike",
		Build: func(seed int64) (*graph.Graph, error) {
			return WebLike(26000, 550000, 0.8, seed)
		},
	},
	{
		Name:          "kron-sim",
		PaperName:     "Kron30",
		PaperVertices: "1B",
		PaperEdges:    "32B",
		Kind:          "rmat (kronecker)",
		Build: func(seed int64) (*graph.Graph, error) {
			return RMAT(15, 20, Graph500, seed) // 32768 vertices, ~655k edges
		},
	},
}

// ByName returns the preset with the given name.
func ByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(Presets))
	for i, p := range Presets {
		names[i] = p.Name
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, names)
}
