package gen

import (
	"fmt"
	"sort"

	"github.com/graphsd/graphsd/internal/graph"
)

// DegreeStats summarizes a graph's out-degree distribution. The evaluation
// datasets must be heavy-tailed for the paper's optimizations to matter, so
// Table 3's regeneration reports these alongside the raw sizes.
type DegreeStats struct {
	Max    uint32
	Mean   float64
	Median uint32
	P99    uint32
	// Gini is the Gini coefficient of the degree distribution: 0 for a
	// perfectly regular graph, approaching 1 as edges concentrate on a few
	// hub vertices.
	Gini float64
	// Top1PctShare is the fraction of all edges owned by the 1% of
	// vertices with the highest out-degree.
	Top1PctShare float64
}

// ComputeDegreeStats computes out-degree statistics for g. It returns the
// zero value for graphs without vertices.
func ComputeDegreeStats(g *graph.Graph) DegreeStats {
	n := g.NumVertices
	if n == 0 {
		return DegreeStats{}
	}
	deg := g.OutDegrees()
	sorted := make([]uint32, n)
	copy(sorted, deg)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var s DegreeStats
	s.Max = sorted[n-1]
	s.Mean = float64(g.NumEdges()) / float64(n)
	s.Median = sorted[n/2]
	s.P99 = sorted[min(n-1, n*99/100)]

	// Gini over the sorted degrees: G = (2*Σ i*x_i)/(n*Σ x_i) - (n+1)/n.
	var sum, weighted float64
	for i, d := range sorted {
		sum += float64(d)
		weighted += float64(i+1) * float64(d)
	}
	if sum > 0 {
		s.Gini = 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
	}

	top := n / 100
	if top < 1 {
		top = 1
	}
	var topSum uint64
	for _, d := range sorted[n-top:] {
		topSum += uint64(d)
	}
	if g.NumEdges() > 0 {
		s.Top1PctShare = float64(topSum) / float64(g.NumEdges())
	}
	return s
}

// String renders the stats compactly.
func (s DegreeStats) String() string {
	return fmt.Sprintf("max=%d mean=%.1f median=%d p99=%d gini=%.2f top1%%=%.0f%%",
		s.Max, s.Mean, s.Median, s.P99, s.Gini, s.Top1PctShare*100)
}
