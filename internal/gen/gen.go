// Package gen produces deterministic synthetic graphs for tests, examples
// and the experiment harness.
//
// The paper's evaluation uses Twitter2010, SK2005, UK2007, UKUnion and a
// Graph500 Kronecker graph (Table 3), all billions of edges. Those datasets
// are unavailable here (and would not fit the environment), so each preset
// in Presets synthesizes a scaled-down graph with the same structural
// character: heavy-tailed degree distributions for the social networks
// (R-MAT with Graph500 parameters), locality-biased web-like structure for
// the UK crawls, and a pure Kronecker graph for Kron30. DESIGN.md §2
// documents the substitution.
//
// All generators take an explicit seed and are reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/graphsd/graphsd/internal/graph"
)

// RMATParams configures the recursive-matrix (Kronecker) generator.
// A, B, C, D are the quadrant probabilities; they must be positive and sum
// to ~1. Graph500 uses A=0.57 B=0.19 C=0.19 D=0.05.
type RMATParams struct {
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities at every recursion level to
	// avoid the artificial self-similarity of pure R-MAT. 0 disables it.
	Noise float64
}

// Graph500 is the standard Graph500 R-MAT parameter set.
var Graph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1}

// RMAT generates a directed graph with 2^scale vertices and edgeFactor
// edges per vertex using the R-MAT recursive quadrant model.
func RMAT(scale int, edgeFactor int, p RMATParams, seed int64) (*graph.Graph, error) {
	if scale < 0 || scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [0,30]", scale)
	}
	if edgeFactor < 0 {
		return nil, fmt.Errorf("gen: negative edge factor %d", edgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 || sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("gen: rmat probabilities %v must be positive and sum to 1", p)
	}
	n := 1 << uint(scale)
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	g := &graph.Graph{NumVertices: n, Edges: make([]graph.Edge, 0, m)}
	for i := 0; i < m; i++ {
		src, dst := rmatEdge(scale, p, rng)
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)})
	}
	return g, nil
}

func rmatEdge(scale int, p RMATParams, rng *rand.Rand) (src, dst int) {
	a, b, c := p.A, p.B, p.C
	for level := 0; level < scale; level++ {
		ai, bi, ci := a, b, c
		if p.Noise > 0 {
			ai *= 1 + p.Noise*(rng.Float64()*2-1)
			bi *= 1 + p.Noise*(rng.Float64()*2-1)
			ci *= 1 + p.Noise*(rng.Float64()*2-1)
		}
		r := rng.Float64() * (ai + bi + ci + (1 - a - b - c))
		src <<= 1
		dst <<= 1
		switch {
		case r < ai:
			// top-left quadrant: no bits set
		case r < ai+bi:
			dst |= 1
		case r < ai+bi+ci:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return src, dst
}

// ErdosRenyi generates a directed G(n, m) graph: m edges sampled uniformly
// with replacement (self-loops allowed, as in the raw edge streams the
// out-of-core systems consume).
func ErdosRenyi(n, m int, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: erdos-renyi needs positive n, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: negative edge count %d", m)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &graph.Graph{NumVertices: n, Edges: make([]graph.Edge, m)}
	for i := range g.Edges {
		g.Edges[i] = graph.Edge{
			Src: graph.VertexID(rng.Intn(n)),
			Dst: graph.VertexID(rng.Intn(n)),
		}
	}
	return g, nil
}

// PowerLaw generates a directed graph with n vertices and m edges whose
// source and destination vertices are drawn from a Zipf distribution with
// exponent s, matching the heavy-tailed degree skew of social networks.
func PowerLaw(n, m int, s float64, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: powerlaw needs positive n, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: negative edge count %d", m)
	}
	if s <= 1 {
		return nil, fmt.Errorf("gen: zipf exponent must exceed 1, got %v", s)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	if z == nil {
		return nil, fmt.Errorf("gen: invalid zipf parameters s=%v n=%d", s, n)
	}
	// Zipf favours small values; scatter hub IDs across the ID space with a
	// fixed permutation multiplier so that hubs are not all in interval 0.
	perm := rng.Perm(n)
	g := &graph.Graph{NumVertices: n, Edges: make([]graph.Edge, m)}
	for i := range g.Edges {
		g.Edges[i] = graph.Edge{
			Src: graph.VertexID(perm[int(z.Uint64())]),
			Dst: graph.VertexID(rng.Intn(n)),
		}
	}
	return g, nil
}

// WebLike generates a web-graph-like structure: mostly local links
// (destination near the source in ID space, as produced by crawl-order
// vertex numbering in the LAW datasets) with a fraction of long-range
// links, and Zipf-skewed in-degree for popular pages.
func WebLike(n, m int, locality float64, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: weblike needs positive n, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: negative edge count %d", m)
	}
	if locality < 0 || locality > 1 {
		return nil, fmt.Errorf("gen: locality %v out of [0,1]", locality)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.8, 1, uint64(n-1))
	window := n / 64
	if window < 4 {
		window = 4
	}
	g := &graph.Graph{NumVertices: n, Edges: make([]graph.Edge, m)}
	for i := range g.Edges {
		src := rng.Intn(n)
		var dst int
		if rng.Float64() < locality {
			// Local link inside the crawl window around src.
			dst = src + rng.Intn(2*window+1) - window
			if dst < 0 {
				dst += n
			}
			if dst >= n {
				dst -= n
			}
		} else {
			dst = int(z.Uint64())
		}
		g.Edges[i] = graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}
	}
	return g, nil
}

// BarabasiAlbert generates a preferential-attachment graph: vertices
// arrive in ID order and each new vertex attaches m out-edges to existing
// vertices chosen proportionally to their current degree (plus one, so
// isolated seeds are reachable). The result has the power-law in-degree of
// organically grown networks and — unlike R-MAT — genuine temporal
// structure: low IDs are the old, high-degree core.
func BarabasiAlbert(n, m int, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: barabasi-albert needs positive n, got %d", n)
	}
	if m <= 0 || m >= n {
		return nil, fmt.Errorf("gen: attachment count %d out of (0,%d)", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &graph.Graph{NumVertices: n}
	// targets is the repeated-endpoint urn: each attachment event appends
	// both endpoints, implementing degree-proportional sampling in O(1).
	targets := make([]graph.VertexID, 0, 2*n*m)
	for s := 0; s < m; s++ {
		targets = append(targets, graph.VertexID(s))
	}
	chosen := make([]graph.VertexID, 0, m)
	for v := m; v < n; v++ {
		chosen = chosen[:0]
	pick:
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if int(t) == v {
				continue
			}
			for _, c := range chosen {
				if c == t {
					continue pick
				}
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(v), Dst: t})
			targets = append(targets, graph.VertexID(v), t)
		}
	}
	return g, nil
}

// Chain returns the path graph 0→1→…→n-1.
func Chain(n int) *graph.Graph {
	g := &graph.Graph{NumVertices: n}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	return g
}

// Star returns a star with edges hub→i for every other vertex i.
func Star(n int) *graph.Graph {
	g := &graph.Graph{NumVertices: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{Src: 0, Dst: graph.VertexID(i)})
	}
	return g
}

// Complete returns the complete directed graph on n vertices (no loops).
func Complete(n int) *graph.Graph {
	g := &graph.Graph{NumVertices: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(j)})
			}
		}
	}
	return g
}

// Clustered returns k disjoint Erdős–Rényi clusters joined by a few bridge
// edges, useful for exercising connected-components workloads.
func Clustered(k, perCluster, edgesPer int, bridges int, seed int64) (*graph.Graph, error) {
	if k <= 0 || perCluster <= 0 {
		return nil, fmt.Errorf("gen: clustered needs positive k and cluster size")
	}
	rng := rand.New(rand.NewSource(seed))
	n := k * perCluster
	g := &graph.Graph{NumVertices: n}
	for c := 0; c < k; c++ {
		base := c * perCluster
		for i := 0; i < edgesPer; i++ {
			g.Edges = append(g.Edges, graph.Edge{
				Src: graph.VertexID(base + rng.Intn(perCluster)),
				Dst: graph.VertexID(base + rng.Intn(perCluster)),
			})
		}
	}
	for i := 0; i < bridges; i++ {
		c1, c2 := rng.Intn(k), rng.Intn(k)
		g.Edges = append(g.Edges, graph.Edge{
			Src: graph.VertexID(c1*perCluster + rng.Intn(perCluster)),
			Dst: graph.VertexID(c2*perCluster + rng.Intn(perCluster)),
		})
	}
	return g, nil
}

// Weighted assigns deterministic pseudo-random weights in (0, maxW] to every
// edge of g in place and marks the graph weighted.
func Weighted(g *graph.Graph, maxW float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Edges {
		g.Edges[i].Weight = 1 + rng.Float32()*(maxW-1)
	}
	g.Weighted = true
	return g
}
