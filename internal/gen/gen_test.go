package gen

import (
	"math"
	"sort"
	"testing"

	"github.com/graphsd/graphsd/internal/graph"
)

func TestRMATShape(t *testing.T) {
	g, err := RMAT(10, 16, Graph500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices)
	}
	if g.NumEdges() != 1024*16 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 1024*16)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := RMAT(8, 8, Graph500, 42)
	b, _ := RMAT(8, 8, Graph500, 42)
	c, _ := RMAT(8, 8, Graph500, 43)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same seed diverged at edge %d", i)
		}
	}
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSkew(t *testing.T) {
	// R-MAT with Graph500 parameters must produce heavy-tailed out-degrees:
	// the top 1% of vertices should own far more than 1% of the edges.
	g, err := RMAT(12, 16, Graph500, 7)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.OutDegrees()
	sorted := make([]int, len(deg))
	for i, d := range deg {
		sorted[i] = int(d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := len(sorted) / 100
	sumTop := 0
	for _, d := range sorted[:top] {
		sumTop += d
	}
	frac := float64(sumTop) / float64(g.NumEdges())
	if frac < 0.10 {
		t.Fatalf("top 1%% of vertices own only %.1f%% of edges; want heavy tail", frac*100)
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(-1, 8, Graph500, 0); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := RMAT(31, 8, Graph500, 0); err == nil {
		t.Error("scale 31 accepted")
	}
	if _, err := RMAT(4, -1, Graph500, 0); err == nil {
		t.Error("negative edge factor accepted")
	}
	if _, err := RMAT(4, 8, RMATParams{A: 0.9, B: 0.9, C: 0.1, D: 0.1}, 0); err == nil {
		t.Error("probabilities summing to 2 accepted")
	}
	if _, err := RMAT(4, 8, RMATParams{A: 0.5, B: 0.5, C: -0.1, D: 0.1}, 0); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 100 || g.NumEdges() != 500 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ErdosRenyi(0, 5, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ErdosRenyi(5, -1, 0); err == nil {
		t.Error("negative m accepted")
	}
}

func TestPowerLawSkewAndValidation(t *testing.T) {
	g, err := PowerLaw(2000, 40000, 1.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	deg := g.OutDegrees()
	maxDeg := uint32(0)
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(g.NumEdges()) / float64(g.NumVertices)
	if float64(maxDeg) < 10*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, mean)
	}
	if _, err := PowerLaw(100, 10, 0.5, 0); err == nil {
		t.Error("zipf exponent <= 1 accepted")
	}
	if _, err := PowerLaw(0, 10, 2, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestWebLikeLocality(t *testing.T) {
	n := 10000
	g, err := WebLike(n, 50000, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	local := 0
	window := n / 64
	for _, e := range g.Edges {
		d := int(e.Dst) - int(e.Src)
		if d < 0 {
			d = -d
		}
		if d <= window || n-d <= window {
			local++
		}
	}
	frac := float64(local) / float64(len(g.Edges))
	if frac < 0.7 {
		t.Fatalf("only %.1f%% local edges with locality=0.9", frac*100)
	}
	if _, err := WebLike(10, 10, 1.5, 0); err == nil {
		t.Error("locality > 1 accepted")
	}
}

func TestFixtures(t *testing.T) {
	if g := Chain(5); g.NumEdges() != 4 || g.Validate() != nil {
		t.Errorf("chain(5): %d edges", g.NumEdges())
	}
	if g := Chain(0); g.NumEdges() != 0 {
		t.Error("chain(0) has edges")
	}
	if g := Star(6); g.NumEdges() != 5 || g.Validate() != nil {
		t.Errorf("star(6): %d edges", g.NumEdges())
	}
	if g := Complete(4); g.NumEdges() != 12 || g.Validate() != nil {
		t.Errorf("complete(4): %d edges", g.NumEdges())
	}
}

func TestClustered(t *testing.T) {
	g, err := Clustered(4, 50, 200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 200 {
		t.Fatalf("vertices = %d, want 200", g.NumVertices)
	}
	if g.NumEdges() != 4*200+3 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 4*200+3)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Clustered(0, 5, 5, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestWeighted(t *testing.T) {
	g := Chain(100)
	Weighted(g, 10, 4)
	if !g.Weighted {
		t.Fatal("graph not marked weighted")
	}
	for i, e := range g.Edges {
		if e.Weight < 1 || e.Weight > 10 || math.IsNaN(float64(e.Weight)) {
			t.Fatalf("edge %d weight %v out of (1,10]", i, e.Weight)
		}
	}
}

func TestPresetsBuildAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("presets are slow in -short mode")
	}
	for _, p := range Presets {
		g, err := p.Build(1)
		if err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("preset %s produced no edges", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("twitter-sim")
	if err != nil || p.PaperName != "Twitter2010" {
		t.Fatalf("ByName(twitter-sim) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, build := range map[string]func(seed int64) (*graph.Graph, error){
		"erdos":    func(s int64) (*graph.Graph, error) { return ErdosRenyi(50, 100, s) },
		"powerlaw": func(s int64) (*graph.Graph, error) { return PowerLaw(50, 100, 2, s) },
		"weblike":  func(s int64) (*graph.Graph, error) { return WebLike(500, 1000, 0.5, s) },
		"cluster":  func(s int64) (*graph.Graph, error) { return Clustered(3, 10, 20, 2, s) },
	} {
		a, err := build(5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := build(5)
		if !edgesEqual(a.Edges, b.Edges) {
			t.Errorf("%s not deterministic", name)
		}
	}
}
