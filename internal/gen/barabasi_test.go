package gen

import (
	"sort"
	"testing"

	"github.com/graphsd/graphsd/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g, err := BarabasiAlbert(1000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// (n - m) arrivals × m attachments each.
	if want := (1000 - 4) * 4; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	// No self-loops, no duplicate targets per vertex.
	perVertex := map[graph.VertexID]map[graph.VertexID]bool{}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatalf("self-loop %v", e)
		}
		if perVertex[e.Src] == nil {
			perVertex[e.Src] = map[graph.VertexID]bool{}
		}
		if perVertex[e.Src][e.Dst] {
			t.Fatalf("duplicate attachment %v", e)
		}
		perVertex[e.Src][e.Dst] = true
	}
}

func TestBarabasiAlbertRichGetRicher(t *testing.T) {
	g, err := BarabasiAlbert(2000, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	in := g.InDegrees()
	// The old core (lowest IDs) must have far higher in-degree than the
	// newest arrivals.
	var coreSum, tailSum uint32
	for v := 0; v < 100; v++ {
		coreSum += in[v]
	}
	for v := 1900; v < 2000; v++ {
		tailSum += in[v]
	}
	if coreSum < 10*tailSum {
		t.Fatalf("no preferential attachment: core %d vs tail %d", coreSum, tailSum)
	}
	// In-degree distribution must be heavy-tailed.
	sorted := make([]int, len(in))
	for i, d := range in {
		sorted[i] = int(d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if sorted[0] < 20 {
		t.Fatalf("max in-degree %d too small for a scale-free graph", sorted[0])
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := BarabasiAlbert(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 10, 0); err == nil {
		t.Error("m=n accepted")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, _ := BarabasiAlbert(200, 2, 5)
	b, _ := BarabasiAlbert(200, 2, 5)
	if !edgesEqual(a.Edges, b.Edges) {
		t.Fatal("not deterministic for equal seeds")
	}
}
