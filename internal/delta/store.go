package delta

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
	"github.com/graphsd/graphsd/internal/wal"
)

// mutationMagic opens every mutation-WAL segment so a foreign file in the
// directory is rejected instead of replayed.
var mutationMagic = [8]byte{'G', 'S', 'D', 'M', 'U', 'T', '0', '1'}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("delta: store closed")

// ErrWALUnavailable wraps mutation-WAL append failures: the write was not
// acknowledged and the store stops accepting mutations (reads keep working).
var ErrWALUnavailable = errors.New("delta: mutation log unavailable")

// Options tunes a Store.
type Options struct {
	// WALDir is the host directory for the mutation WAL. Empty: "wal"
	// under the device directory.
	WALDir string
	// SegmentBytes is the WAL rotation threshold (0: wal default).
	SegmentBytes int64
	// MemtableBytes seals the memtable into an on-disk delta layer once its
	// estimated footprint reaches this many bytes (0: 1 MiB).
	MemtableBytes int64
	// CompactLayers triggers compaction once this many sealed layers exist
	// (0: 4).
	CompactLayers int
	// CompactBytes triggers compaction once the sealed layers' on-disk
	// payload reaches this many bytes (0: 64 MiB).
	CompactBytes int64
}

func (o Options) withDefaults(dev *storage.Device) Options {
	if o.WALDir == "" {
		o.WALDir = filepath.Join(dev.Dir(), "wal")
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.CompactLayers <= 0 {
		o.CompactLayers = 4
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 64 << 20
	}
	return o
}

// Stats is a point-in-time snapshot of a store's counters, for /metrics
// and `graphsd stats`.
type Stats struct {
	// MutationsTotal counts normalized mutations over the layout's
	// lifetime: manifest-recorded sealed mutations plus the live memtable.
	// It survives restarts and compactions.
	MutationsTotal int64
	// Accepted counts mutations acknowledged by this process.
	Accepted int64
	// Batches counts Apply calls acknowledged by this process.
	Batches int64
	// Seals counts memtable seals by this process; SealFailures counts
	// seal attempts abandoned on a device error (retried on later writes).
	Seals        int64
	SealFailures int64
	// Generation is the base layout generation (equals the number of
	// compactions over the layout's lifetime).
	Generation int
	// Layers and LayerBytes describe sealed-but-uncompacted delta layers;
	// LayerBytes is the pending-compaction on-disk footprint.
	Layers     int
	LayerBytes int64
	// MemtableKeys and MemtableBytes describe the live (unsealed)
	// memtable.
	MemtableKeys  int64
	MemtableBytes int64
	// Pins is the number of live read snapshots; RetiredFiles counts
	// files awaiting garbage collection behind pinned snapshots.
	Pins         int
	RetiredFiles int
	// WAL is the mutation log's activity.
	WAL wal.Stats
}

// blockKey addresses one cell of the P×P grid.
type blockKey struct{ i, j int }

// memVal is the latest state of one (src,dst) key in the memtable: an
// upsert with weight w, or a tombstone.
type memVal struct {
	w   float32
	del bool
}

// memEntryBytes is the rough in-RAM footprint charged per memtable key
// (map overhead included) when deciding to seal.
const memEntryBytes = 48

// memtable is the unsealed write buffer. All fields are guarded by the
// store mutex.
type memtable struct {
	blocks map[blockKey]map[uint64]memVal
	// countDelta is the net merged-edge-count change per block contributed
	// by this memtable (inserts of absent keys minus deletes of present
	// keys, counting duplicate base copies).
	countDelta map[blockKey]int64
	// degDelta is the net out-degree change per source vertex.
	degDelta map[graph.VertexID]int32
	// mutations counts normalized mutations absorbed (keys written).
	mutations int64
	bytes     int64
}

func newMemtable() *memtable {
	return &memtable{
		blocks:     make(map[blockKey]map[uint64]memVal),
		countDelta: make(map[blockKey]int64),
		degDelta:   make(map[graph.VertexID]int32),
	}
}

// layer is a sealed delta layer: its manifest record plus the resolved,
// sorted per-block overlay entries kept in RAM (layers are bounded by the
// memtable threshold, so this mirrors what the memtable held).
type layer struct {
	ref    partition.LayerRef
	blocks map[blockKey][]partition.OverlayEdge
}

// retired is a set of files superseded by a compaction at generation gen;
// they are deleted once no snapshot pinned before that generation remains.
type retired struct {
	gen   int
	files []string
}

// Store is the mutable write path over one published layout. All methods
// are safe for concurrent use.
type Store struct {
	dev  *storage.Device
	opts Options
	log  *wal.Log

	mu sync.Mutex
	// meta is the published base manifest (never carries merged counts).
	meta   *partition.Manifest
	layers []*layer
	mem    *memtable
	// vers holds per-block logical content versions: bumped on every
	// mutation batch touching the block, never by seal or compaction
	// (those leave merged content identical), so generation-scoped cache
	// entries stay valid exactly as long as the bytes they hold.
	vers [][]int64
	// degDelta is the total out-degree adjustment (layers + memtable) per
	// vertex; nil when empty. degShared marks it as captured by a snapshot
	// and forces copy-on-write.
	degDelta  []int32
	degShared bool
	seq       int64
	// sealedThrough is the highest batch sequence covered by a published
	// layer; replay skips batches at or below it.
	sealedThrough int64
	pins          map[int]int
	retiredFiles  []retired
	closed        bool
	stats         Stats

	// compactMu serialises compactions (Seal and Apply only take mu).
	compactMu sync.Mutex
}

// Open loads the layout's published manifest, rebuilds the sealed layers
// it references, replays the mutation WAL (batches past the last seal
// marker are re-applied), and sweeps orphan files left by a crash between
// a layer/compaction write and its manifest publish.
func Open(dev *storage.Device, opts Options) (*Store, error) {
	layout, err := partition.Load(dev)
	if err != nil {
		return nil, err
	}
	m := layout.Meta
	if m.System != "graphsd" {
		return nil, fmt.Errorf("delta: layout system %q is not mutable (grid layouts only)", m.System)
	}
	if m.BlockBytes == nil || m.BlockSums == nil {
		return nil, fmt.Errorf("delta: layout predates block accounting; rebuild it to make it mutable")
	}
	s := &Store{
		dev:  dev,
		opts: opts.withDefaults(dev),
		meta: &m,
		mem:  newMemtable(),
		pins: make(map[int]int),
	}
	s.vers = make([][]int64, m.P)
	for i := range s.vers {
		s.vers[i] = make([]int64, m.P)
	}
	for _, ref := range m.DeltaLayers {
		l, err := s.loadLayer(ref)
		if err != nil {
			return nil, err
		}
		s.layers = append(s.layers, l)
		s.addLayerDegrees(ref, 1)
	}
	weighted := m.Weighted
	log, err := wal.Open(s.opts.WALDir, wal.Options{
		Prefix:       "mutations",
		Magic:        mutationMagic,
		SegmentBytes: s.opts.SegmentBytes,
		Accept: func(payload []byte) bool {
			_, err := decodeRecord(payload, weighted)
			return err == nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	s.log = log
	if err := s.replay(log.ConsumeReplay()); err != nil {
		log.Close()
		return nil, err
	}
	if err := s.sweepOrphans(); err != nil {
		log.Close()
		return nil, err
	}
	return s, nil
}

// loadLayer reads and verifies one sealed layer's block files.
func (s *Store) loadLayer(ref partition.LayerRef) (*layer, error) {
	l := &layer{ref: ref, blocks: make(map[blockKey][]partition.OverlayEdge, len(ref.Blocks))}
	for _, b := range ref.Blocks {
		data, err := s.dev.ReadFile(partition.LayerBlockName(ref.ID, b.I, b.J))
		if err != nil {
			return nil, fmt.Errorf("delta: layer %d block (%d,%d): %w", ref.ID, b.I, b.J, err)
		}
		if got := partition.Checksum(data); got != b.Sum {
			return nil, fmt.Errorf("delta: layer %d block (%d,%d): checksum %08x, want %08x",
				ref.ID, b.I, b.J, got, b.Sum)
		}
		od, err := s.decodeLayerBlock(data, b)
		if err != nil {
			return nil, err
		}
		l.blocks[blockKey{b.I, b.J}] = od
	}
	return l, nil
}

// layer block payload: uvarint upsert-section length, upsert section
// (delta-block codec, weighted as the graph), tombstone section
// (delta-block codec, unweighted).
func encodeLayerBlock(upserts, tombs []graph.Edge, srcBase, dstBase graph.VertexID, weighted bool) []byte {
	up := graph.EncodeDeltaBlock(nil, upserts, srcBase, dstBase, weighted)
	buf := make([]byte, 0, len(up)+16)
	buf = appendUvarint(buf, uint64(len(up)))
	buf = append(buf, up...)
	return graph.EncodeDeltaBlock(buf, tombs, srcBase, dstBase, false)
}

func (s *Store) decodeLayerBlock(data []byte, b partition.LayerBlock) ([]partition.OverlayEdge, error) {
	srcLo, _ := s.meta.Interval(b.I)
	dstLo, _ := s.meta.Interval(b.J)
	upLen, n := uvarint(data)
	if n <= 0 || upLen > uint64(len(data)-n) {
		return nil, fmt.Errorf("delta: layer block (%d,%d): corrupt section header", b.I, b.J)
	}
	upserts, err := graph.AppendDeltaBlock(nil, data[n:n+int(upLen)],
		graph.VertexID(srcLo), graph.VertexID(dstLo), s.meta.Weighted)
	if err != nil {
		return nil, fmt.Errorf("delta: layer block (%d,%d) upserts: %w", b.I, b.J, err)
	}
	tombs, err := graph.AppendDeltaBlock(nil, data[n+int(upLen):],
		graph.VertexID(srcLo), graph.VertexID(dstLo), false)
	if err != nil {
		return nil, fmt.Errorf("delta: layer block (%d,%d) tombstones: %w", b.I, b.J, err)
	}
	if int64(len(upserts)) != b.Upserts || int64(len(tombs)) != b.Tombs {
		return nil, fmt.Errorf("delta: layer block (%d,%d): %d upserts/%d tombstones, manifest says %d/%d",
			b.I, b.J, len(upserts), len(tombs), b.Upserts, b.Tombs)
	}
	od := make([]partition.OverlayEdge, 0, len(upserts)+len(tombs))
	for _, e := range upserts {
		od = append(od, partition.OverlayEdge{Edge: e})
	}
	for _, e := range tombs {
		od = append(od, partition.OverlayEdge{Edge: e, Del: true})
	}
	sortOverlay(od)
	return od, nil
}

// addLayerDegrees folds ref's degree adjustments into s.degDelta with the
// given sign (+1 when adopting a layer, -1 when compaction retires it).
func (s *Store) addLayerDegrees(ref partition.LayerRef, sign int32) {
	if len(ref.DegVertices) == 0 {
		return
	}
	if s.degDelta == nil {
		s.degDelta = make([]int32, s.meta.NumVertices)
	} else if s.degShared {
		s.degDelta = append([]int32(nil), s.degDelta...)
		s.degShared = false
	}
	for k, v := range ref.DegVertices {
		s.degDelta[v] += sign * ref.DegDeltas[k]
	}
}

// replay re-applies WAL batches not covered by a seal marker. The apply
// path is idempotent (each mutation is normalized against the state it
// lands on), so a batch that was sealed but whose seal marker was lost is
// harmlessly re-applied with zero net effect on counts.
func (s *Store) replay(payloads [][]byte) error {
	type batch struct {
		seq  int64
		muts []Mutation
	}
	var batches []batch
	for _, p := range payloads {
		rec, err := decodeRecord(p, s.meta.Weighted)
		if err != nil {
			// Accept validated every replayed frame; this is a bug.
			return fmt.Errorf("delta: wal replay: %w", err)
		}
		switch rec.kind {
		case recSeal:
			if rec.seq > s.sealedThrough {
				s.sealedThrough = rec.seq
			}
		case recBatch:
			batches = append(batches, batch{rec.seq, rec.muts})
			if rec.seq > s.seq {
				s.seq = rec.seq
			}
		}
	}
	if s.sealedThrough > s.seq {
		s.seq = s.sealedThrough
	}
	for _, b := range batches {
		if b.seq <= s.sealedThrough {
			continue
		}
		staged, err := s.resolve(b.muts)
		if err != nil {
			return fmt.Errorf("delta: wal replay: %w", err)
		}
		s.commit(staged)
	}
	return nil
}

// sweepOrphans removes generation-qualified block files, delta-layer
// files, and degree tables that the published manifest does not reference
// — the residue of a crash after a data write but before its manifest
// publish. Nothing else on the device is touched.
func (s *Store) sweepOrphans() error {
	names, err := s.dev.List()
	if err != nil {
		return err
	}
	live := make(map[string]bool)
	for i := 0; i < s.meta.P; i++ {
		for j := 0; j < s.meta.P; j++ {
			live[s.meta.BlockName(i, j)] = true
			live[s.meta.BlockIndexName(i, j)] = true
		}
	}
	live[s.meta.DegreesFile()] = true
	for _, ref := range s.meta.DeltaLayers {
		for _, b := range ref.Blocks {
			live[partition.LayerBlockName(ref.ID, b.I, b.J)] = true
		}
	}
	for _, name := range names {
		if live[name] {
			continue
		}
		orphan := strings.HasPrefix(name, "delta/") ||
			(strings.HasPrefix(name, "blocks/g") && (strings.HasSuffix(name, ".edges") || strings.HasSuffix(name, ".idx"))) ||
			(strings.HasPrefix(name, "degrees_g") && strings.HasSuffix(name, ".bin"))
		if !orphan {
			continue
		}
		if err := s.dev.Remove(name); err != nil {
			return fmt.Errorf("delta: sweeping orphan %s: %w", name, err)
		}
	}
	return nil
}

// staged is a fully resolved mutation batch, ready to commit to the
// memtable without any possibility of error.
type staged struct {
	vals       map[blockKey]map[uint64]memVal
	countDelta map[blockKey]int64
	degDelta   map[graph.VertexID]int32
	mutations  int64
	newBytes   int64
}

// Apply atomically applies a batch of mutations. The batch is resolved
// against the current merged state first (duplicate base copies are
// counted so deletes remove all of them and re-inserts keep counts exact),
// then framed into the WAL and fsynced — the acknowledgement point — and
// only then made visible to new snapshots. A non-nil error means nothing
// was acknowledged or applied.
func (s *Store) Apply(muts []Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, m := range muts {
		if err := m.Validate(s.meta.NumVertices, s.meta.Weighted); err != nil {
			return err
		}
	}
	st, err := s.resolve(muts)
	if err != nil {
		return err
	}
	seq := s.seq + 1
	if err := s.log.Append(encodeBatch(nil, seq, muts, s.meta.Weighted), true); err != nil {
		return fmt.Errorf("%w: %w", ErrWALUnavailable, err)
	}
	s.seq = seq
	s.commit(st)
	s.stats.Accepted += int64(len(muts))
	s.stats.Batches++
	if s.mem.bytes >= s.opts.MemtableBytes {
		if err := s.sealLocked(); err != nil {
			// The batch is acknowledged and durable in the WAL; a failed
			// seal only postpones layer publication and is retried on a
			// later write.
			s.stats.SealFailures++
		}
	}
	return nil
}

// resolve normalizes muts against the current merged state (memtable →
// layers → base grid, newest first). Device reads happen here, before the
// WAL append, so a read failure rejects the batch instead of losing an
// acknowledged write. Called with mu held.
func (s *Store) resolve(muts []Mutation) (staged, error) {
	st := staged{
		vals:       make(map[blockKey]map[uint64]memVal),
		countDelta: make(map[blockKey]int64),
		degDelta:   make(map[graph.VertexID]int32),
	}
	base := baseReader{s: s}
	defer base.close()
	for _, m := range muts {
		bk := blockKey{s.meta.IntervalOf(m.Src), s.meta.IntervalOf(m.Dst)}
		key := uint64(m.Src)<<32 | uint64(m.Dst)
		oldCopies := -1
		if v, ok := st.vals[bk][key]; ok {
			oldCopies = presentCopies(v)
		} else if v, ok := s.mem.blocks[bk][key]; ok {
			oldCopies = presentCopies(v)
		} else {
			for li := len(s.layers) - 1; li >= 0 && oldCopies < 0; li-- {
				if v, ok := lookupOverlay(s.layers[li].blocks[bk], m.Src, m.Dst); ok {
					oldCopies = presentCopies(v)
				}
			}
		}
		if oldCopies < 0 {
			n, err := base.copies(bk, m.Src, m.Dst)
			if err != nil {
				return staged{}, err
			}
			oldCopies = n
		}
		newCopies := 0
		if m.Op == OpInsert {
			newCopies = 1
		}
		if m.Op == OpDelete && oldCopies == 0 {
			continue // deleting an absent edge: keep the overlay minimal
		}
		vals := st.vals[bk]
		if vals == nil {
			vals = make(map[uint64]memVal)
			st.vals[bk] = vals
		}
		if _, existed := vals[key]; !existed {
			if _, inMem := s.mem.blocks[bk][key]; !inMem {
				st.newBytes += memEntryBytes
			}
		}
		w := m.Weight
		if !s.meta.Weighted {
			w = 0
		}
		vals[key] = memVal{w: w, del: m.Op == OpDelete}
		delta := int64(newCopies - oldCopies)
		st.countDelta[bk] += delta
		st.degDelta[m.Src] += int32(delta)
		st.mutations++
	}
	return st, nil
}

// commit folds a resolved batch into the memtable and bumps the content
// version of every touched block. Called with mu held; cannot fail.
func (s *Store) commit(st staged) {
	for bk, vals := range st.vals {
		dst := s.mem.blocks[bk]
		if dst == nil {
			dst = make(map[uint64]memVal, len(vals))
			s.mem.blocks[bk] = dst
		}
		for k, v := range vals {
			dst[k] = v
		}
		s.vers[bk.i][bk.j]++
	}
	for bk, d := range st.countDelta {
		if d != 0 {
			s.mem.countDelta[bk] += d
		}
	}
	for v, d := range st.degDelta {
		if d == 0 {
			continue
		}
		s.mem.degDelta[v] += d
		if s.degDelta == nil {
			s.degDelta = make([]int32, s.meta.NumVertices)
		} else if s.degShared {
			s.degDelta = append([]int32(nil), s.degDelta...)
			s.degShared = false
		}
		s.degDelta[v] += d
	}
	s.mem.mutations += st.mutations
	s.mem.bytes += st.newBytes
}

func presentCopies(v memVal) int {
	if v.del {
		return 0
	}
	return 1
}

// lookupOverlay binary-searches a sorted overlay slice for (src, dst).
func lookupOverlay(od []partition.OverlayEdge, src, dst graph.VertexID) (memVal, bool) {
	k := sort.Search(len(od), func(x int) bool {
		e := od[x].Edge
		return e.Src > src || (e.Src == src && e.Dst >= dst)
	})
	if k < len(od) && od[k].Edge.Src == src && od[k].Edge.Dst == dst {
		return memVal{w: od[k].Edge.Weight, del: od[k].Del}, true
	}
	return memVal{}, false
}

// baseReader counts copies of a key in the base grid, caching the
// per-block index and reader across a batch. All reads go through the
// device and are charged.
type baseReader struct {
	s   *Store
	idx map[blockKey]*partition.Index
	rds map[blockKey]*storage.Reader
}

func (b *baseReader) copies(bk blockKey, src, dst graph.VertexID) (int, error) {
	s := b.s
	if s.meta.EdgeCounts[bk.i][bk.j] == 0 {
		return 0, nil
	}
	l := &partition.Layout{Dev: s.dev, Meta: *s.meta}
	if b.idx == nil {
		b.idx = make(map[blockKey]*partition.Index)
		b.rds = make(map[blockKey]*storage.Reader)
	}
	idx, ok := b.idx[bk]
	if !ok {
		var err error
		idx, err = l.LoadIndex(bk.i, bk.j)
		if err != nil {
			return 0, err
		}
		b.idx[bk] = idx
		r, err := l.OpenSubBlock(bk.i, bk.j)
		if err != nil {
			return 0, err
		}
		b.rds[bk] = r
	}
	edges, _, err := l.ReadVertexEdges(b.rds[bk], idx, bk.i, src, nil)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range edges {
		if e.Dst == dst {
			n++
		}
	}
	return n, nil
}

func (b *baseReader) close() {
	for _, r := range b.rds {
		if r != nil {
			r.Close()
		}
	}
}

// Seal forces the current memtable into an on-disk delta layer. Exposed
// for tests and the compaction trigger; the write path seals automatically
// at the memtable threshold.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.sealLocked()
}

// sealLocked publishes the memtable as delta layer files plus a manifest
// update (the atomic commit point), then marks the covered WAL span
// sealed. A device error before the manifest publish leaves only orphan
// files (swept at next open) and keeps the memtable intact for retry.
func (s *Store) sealLocked() error {
	if s.mem.mutations == 0 {
		return nil
	}
	id := s.meta.LastLayerID + 1
	ref := partition.LayerRef{ID: id, Mutations: s.mem.mutations}
	blocks := make(map[blockKey][]partition.OverlayEdge, len(s.mem.blocks))
	keys := make([]blockKey, 0, len(s.mem.blocks))
	for bk := range s.mem.blocks {
		keys = append(keys, bk)
	}
	sort.Slice(keys, func(a, b int) bool {
		return keys[a].i < keys[b].i || (keys[a].i == keys[b].i && keys[a].j < keys[b].j)
	})
	for _, bk := range keys {
		od := resolveMem(s.mem.blocks[bk])
		var upserts, tombs []graph.Edge
		for _, e := range od {
			if e.Del {
				tombs = append(tombs, graph.Edge{Src: e.Edge.Src, Dst: e.Edge.Dst})
			} else {
				upserts = append(upserts, e.Edge)
			}
		}
		srcLo, _ := s.meta.Interval(bk.i)
		dstLo, _ := s.meta.Interval(bk.j)
		payload := encodeLayerBlock(upserts, tombs, graph.VertexID(srcLo), graph.VertexID(dstLo), s.meta.Weighted)
		if err := s.dev.WriteFile(partition.LayerBlockName(id, bk.i, bk.j), payload); err != nil {
			return fmt.Errorf("delta: sealing layer %d block (%d,%d): %w", id, bk.i, bk.j, err)
		}
		ref.Blocks = append(ref.Blocks, partition.LayerBlock{
			I: bk.i, J: bk.j,
			Upserts:   int64(len(upserts)),
			Tombs:     int64(len(tombs)),
			EdgeDelta: s.mem.countDelta[bk],
			Bytes:     int64(len(payload)),
			Sum:       partition.Checksum(payload),
		})
		blocks[bk] = od
	}
	degVerts := make([]graph.VertexID, 0, len(s.mem.degDelta))
	for v, d := range s.mem.degDelta {
		if d != 0 {
			degVerts = append(degVerts, v)
		}
	}
	sort.Slice(degVerts, func(a, b int) bool { return degVerts[a] < degVerts[b] })
	for _, v := range degVerts {
		ref.DegVertices = append(ref.DegVertices, uint32(v))
		ref.DegDeltas = append(ref.DegDeltas, s.mem.degDelta[v])
	}
	newMeta := cloneManifest(s.meta)
	newMeta.DeltaLayers = append(newMeta.DeltaLayers, ref)
	newMeta.LastLayerID = id
	newMeta.MutationsTotal += s.mem.mutations
	if err := partition.SaveManifest(s.dev, newMeta); err != nil {
		return fmt.Errorf("delta: publishing layer %d: %w", id, err)
	}
	// The seal marker is an optimization: if it is lost, replay re-applies
	// the covered batches against the published layer for a net-zero
	// effect.
	_ = s.log.Append(encodeSeal(nil, s.seq), true)
	s.meta = newMeta
	s.layers = append(s.layers, &layer{ref: ref, blocks: blocks})
	s.mem = newMemtable()
	s.sealedThrough = s.seq
	s.stats.Seals++
	return nil
}

// resolveMem sorts a memtable block into overlay order.
func resolveMem(vals map[uint64]memVal) []partition.OverlayEdge {
	od := make([]partition.OverlayEdge, 0, len(vals))
	for key, v := range vals {
		od = append(od, partition.OverlayEdge{
			Edge: graph.Edge{
				Src:    graph.VertexID(key >> 32),
				Dst:    graph.VertexID(key & 0xffffffff),
				Weight: v.w,
			},
			Del: v.del,
		})
	}
	sortOverlay(od)
	return od
}

func sortOverlay(od []partition.OverlayEdge) {
	sort.Slice(od, func(a, b int) bool {
		ea, eb := od[a].Edge, od[b].Edge
		return ea.Src < eb.Src || (ea.Src == eb.Src && ea.Dst < eb.Dst)
	})
}

func cloneManifest(m *partition.Manifest) *partition.Manifest {
	c := *m
	c.EdgeCounts = cloneGrid(m.EdgeCounts)
	c.BlockBytes = cloneGrid(m.BlockBytes)
	c.BlockSums = cloneGrid(m.BlockSums)
	if m.BlockGens != nil {
		c.BlockGens = cloneGrid(m.BlockGens)
	}
	c.DeltaLayers = append([]partition.LayerRef(nil), m.DeltaLayers...)
	return &c
}

func cloneGrid[T any](g [][]T) [][]T {
	if g == nil {
		return nil
	}
	out := make([][]T, len(g))
	for i := range g {
		out[i] = append([]T(nil), g[i]...)
	}
	return out
}

// NeedsCompaction reports whether the sealed-layer count or pending
// on-disk bytes have crossed the compaction thresholds.
func (s *Store) NeedsCompaction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.layers) == 0 {
		return false
	}
	return len(s.layers) >= s.opts.CompactLayers || s.layerBytesLocked() >= s.opts.CompactBytes
}

func (s *Store) layerBytesLocked() int64 {
	var n int64
	for _, l := range s.layers {
		for _, b := range l.ref.Blocks {
			n += b.Bytes
		}
	}
	return n
}

// SetWALFaultInjector installs fn on the mutation WAL's append path, for
// chaos tests. See wal.Log.SetFaultInjector.
func (s *Store) SetWALFaultInjector(fn func(op, name string) error) {
	s.log.SetFaultInjector(fn)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MutationsTotal = s.meta.MutationsTotal + s.mem.mutations
	st.Generation = s.meta.Generation
	st.Layers = len(s.layers)
	st.LayerBytes = s.layerBytesLocked()
	st.MemtableBytes = s.mem.bytes
	for _, vals := range s.mem.blocks {
		st.MemtableKeys += int64(len(vals))
	}
	for _, n := range s.pins {
		st.Pins += n
	}
	for _, r := range s.retiredFiles {
		st.RetiredFiles += len(r.files)
	}
	st.WAL = s.log.Stats()
	return st
}

// Weighted reports whether the underlying graph carries edge weights.
func (s *Store) Weighted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta.Weighted
}

// NumVertices returns the (fixed) vertex count of the layout.
func (s *Store) NumVertices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta.NumVertices
}

// Close seals the store against further mutations. Pinned snapshots keep
// reading; the mutation WAL is closed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.log.Close()
}

// uvarint/appendUvarint keep the varint dependency local to this package's
// layer framing.
func uvarint(data []byte) (uint64, int) {
	var x uint64
	var sh uint
	for i, b := range data {
		if b < 0x80 {
			return x | uint64(b)<<sh, i + 1
		}
		x |= uint64(b&0x7f) << sh
		sh += 7
		if sh > 63 {
			return 0, -1
		}
	}
	return 0, 0
}

func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}
