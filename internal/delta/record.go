// Package delta makes a published graph layout mutable. Writes take the
// LSM path: a batch of edge insertions/deletions is framed into the
// mutation WAL (fsync-before-ack), applied to an in-RAM memtable keyed by
// the layout's P×P grid, sealed into sorted on-disk delta layers when the
// memtable fills, and eventually folded into the base grid by a background
// compaction that publishes a new layout generation with one atomic
// manifest rename. Reads never see a half-applied state: a job pins a
// Snapshot at submit and every sub-block it loads is the base content
// overlaid with exactly the layers and frozen memtable captured by that
// snapshot.
package delta

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/graphsd/graphsd/internal/graph"
)

// Op is a mutation kind.
type Op uint8

const (
	// OpInsert adds edge (Src, Dst) with Weight, replacing any existing
	// copy (and all duplicate copies the base layout may hold).
	OpInsert Op = 1
	// OpDelete removes every copy of edge (Src, Dst). Deleting an absent
	// edge is a no-op.
	OpDelete Op = 2
)

// Mutation is one edge-level change. Weight is meaningful only for inserts
// into weighted graphs.
type Mutation struct {
	Op     Op
	Src    graph.VertexID
	Dst    graph.VertexID
	Weight float32
}

// Validate rejects malformed mutations before they reach the WAL.
func (m Mutation) Validate(numVertices int, weighted bool) error {
	if m.Op != OpInsert && m.Op != OpDelete {
		return fmt.Errorf("delta: unknown op %d", m.Op)
	}
	if int(m.Src) >= numVertices || int(m.Dst) >= numVertices {
		return fmt.Errorf("delta: edge (%d,%d) outside vertex range [0,%d)", m.Src, m.Dst, numVertices)
	}
	if m.Op == OpInsert && weighted {
		if w := float64(m.Weight); math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("delta: edge (%d,%d) has non-finite weight", m.Src, m.Dst)
		}
	}
	return nil
}

// WAL record kinds. A batch record carries acknowledged mutations; a seal
// record marks that every batch up to a sequence number is durable in a
// delta layer and does not need replay.
const (
	recBatch = 'B'
	recSeal  = 'S'
)

// record is a decoded WAL frame.
type record struct {
	kind byte
	seq  int64      // batch: batch sequence; seal: sealed-through sequence
	muts []Mutation // batch only
}

// encodeBatch frames a mutation batch for the WAL. Weights are encoded
// only for inserts into weighted graphs, so unweighted logs stay compact.
func encodeBatch(buf []byte, seq int64, muts []Mutation, weighted bool) []byte {
	buf = append(buf, recBatch)
	buf = binary.AppendUvarint(buf, uint64(seq))
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		buf = append(buf, byte(m.Op))
		buf = binary.AppendUvarint(buf, uint64(m.Src))
		buf = binary.AppendUvarint(buf, uint64(m.Dst))
		if weighted && m.Op == OpInsert {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(m.Weight))
		}
	}
	return buf
}

// encodeSeal frames a seal marker: batches with seq <= through are covered
// by a published delta layer.
func encodeSeal(buf []byte, through int64) []byte {
	buf = append(buf, recSeal)
	return binary.AppendUvarint(buf, uint64(through))
}

// decodeRecord parses one WAL payload. Used both for replay and as the
// WAL's Accept hook (a CRC-valid frame that does not decode is treated as
// tail corruption).
func decodeRecord(data []byte, weighted bool) (record, error) {
	var rec record
	if len(data) == 0 {
		return rec, fmt.Errorf("delta: empty record")
	}
	rec.kind = data[0]
	data = data[1:]
	seq, n := binary.Uvarint(data)
	if n <= 0 {
		return rec, fmt.Errorf("delta: truncated sequence")
	}
	rec.seq = int64(seq)
	data = data[n:]
	switch rec.kind {
	case recSeal:
		if len(data) != 0 {
			return rec, fmt.Errorf("delta: trailing bytes in seal record")
		}
		return rec, nil
	case recBatch:
		count, n := binary.Uvarint(data)
		if n <= 0 {
			return rec, fmt.Errorf("delta: truncated count")
		}
		data = data[n:]
		if count > uint64(len(data)) { // each mutation is >= 3 bytes; cheap bound
			return rec, fmt.Errorf("delta: implausible batch count %d", count)
		}
		rec.muts = make([]Mutation, 0, count)
		for k := uint64(0); k < count; k++ {
			if len(data) == 0 {
				return rec, fmt.Errorf("delta: truncated mutation")
			}
			m := Mutation{Op: Op(data[0])}
			data = data[1:]
			src, n := binary.Uvarint(data)
			if n <= 0 || src > math.MaxUint32 {
				return rec, fmt.Errorf("delta: bad source vertex")
			}
			data = data[n:]
			dst, n := binary.Uvarint(data)
			if n <= 0 || dst > math.MaxUint32 {
				return rec, fmt.Errorf("delta: bad destination vertex")
			}
			data = data[n:]
			m.Src, m.Dst = graph.VertexID(src), graph.VertexID(dst)
			if weighted && m.Op == OpInsert {
				if len(data) < 4 {
					return rec, fmt.Errorf("delta: truncated weight")
				}
				m.Weight = math.Float32frombits(binary.LittleEndian.Uint32(data))
				data = data[4:]
			}
			if m.Op != OpInsert && m.Op != OpDelete {
				return rec, fmt.Errorf("delta: unknown op %d", m.Op)
			}
			rec.muts = append(rec.muts, m)
		}
		if len(data) != 0 {
			return rec, fmt.Errorf("delta: trailing bytes in batch record")
		}
		return rec, nil
	default:
		return rec, fmt.Errorf("delta: unknown record kind %q", rec.kind)
	}
}

// ApplyToGraph returns a new graph equal to g with muts applied in order —
// the reference semantics the LSM path must reproduce. Used by tests to
// build the "freshly preprocessed merged layout" a mutated layout is
// compared against.
func ApplyToGraph(g *graph.Graph, muts []Mutation) *graph.Graph {
	type val struct {
		w   float32
		del bool
	}
	final := make(map[uint64]val)
	for _, m := range muts {
		w := m.Weight
		if !g.Weighted {
			w = 0
		}
		final[uint64(m.Src)<<32|uint64(m.Dst)] = val{w: w, del: m.Op == OpDelete}
	}
	out := &graph.Graph{NumVertices: g.NumVertices, Weighted: g.Weighted}
	for _, e := range g.Edges {
		if _, touched := final[uint64(e.Src)<<32|uint64(e.Dst)]; !touched {
			out.Edges = append(out.Edges, e)
		}
	}
	for key, v := range final {
		if v.del {
			continue
		}
		out.Edges = append(out.Edges, graph.Edge{
			Src:    graph.VertexID(key >> 32),
			Dst:    graph.VertexID(key & math.MaxUint32),
			Weight: v.w,
		})
	}
	out.SortBySrc()
	return out
}
