package delta_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
)

// engineMatrix enumerates the execution configurations a mutated layout
// must be bit-identical under: forced FCIU, forced SCIU (selective
// per-vertex reads through the overlay), the adaptive scheduler, SEM
// block-skipping with the compressed buffer tier, and the asynchronous
// engine.
func engineMatrix() map[string]core.Options {
	return map[string]core.Options{
		"fciu":      {ForceModel: core.ForceFull, DefaultBuffer: true},
		"sciu":      {ForceModel: core.ForceOnDemand},
		"adaptive":  {DefaultBuffer: true},
		"sem":       {SEM: true, DefaultBuffer: true},
		"async":     {Async: true},
		"async-sem": {Async: true, SEM: true, DefaultBuffer: true},
	}
}

// TestMutatedRunsMatchFreshLayout is the acceptance matrix: a query over
// base + delta layers + memtable must produce bit-identical outputs to the
// same query over a freshly preprocessed layout of the merged edge set,
// across update models, codecs, SEM, and BSP/async execution.
func TestMutatedRunsMatchFreshLayout(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			g := testGraph(t, 200, 1200, 21)
			dev := buildBase(t, g, 3, codec)
			// Small memtable: part of the script lands in sealed layers,
			// the rest stays in the frozen memtable, so reads traverse all
			// three LSM levels.
			s := openStore(t, dev, delta.Options{MemtableBytes: 2048})
			batches := mutationScript(g, 5, 40, 22)
			for _, b := range batches {
				if err := s.Apply(b); err != nil {
					t.Fatal(err)
				}
			}
			if st := s.Stats(); st.Layers == 0 || st.MemtableKeys == 0 {
				t.Fatalf("script must span layers and memtable, got layers=%d memKeys=%d",
					st.Layers, st.MemtableKeys)
			}
			fresh := freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, codec)
			v := s.Snapshot()
			defer v.Release()

			for name, opts := range engineMatrix() {
				t.Run(name, func(t *testing.T) {
					for _, prog := range []struct {
						name string
						mk   func() core.Program
					}{
						{"pagerank-delta", func() core.Program { return &algorithms.PageRankDelta{Iterations: 8} }},
						{"bfs", func() core.Program { return &algorithms.BFS{Source: 0} }},
					} {
						got, err := core.Run(v.Layout(), prog.mk(), opts)
						if err != nil {
							t.Fatalf("%s on mutated layout: %v", prog.name, err)
						}
						want, err := core.Run(fresh, prog.mk(), opts)
						if err != nil {
							t.Fatalf("%s on fresh layout: %v", prog.name, err)
						}
						// Async step counts may differ: the priority
						// scheduler keys on per-block disk bytes, and the
						// overlay charges base+layer bytes where the fresh
						// layout charges its own encoding. Outputs must
						// still match bit-for-bit.
						if !opts.Async && got.Iterations != want.Iterations {
							t.Fatalf("%s: %d iterations, want %d", prog.name, got.Iterations, want.Iterations)
						}
						for vid := range want.Outputs {
							if got.Outputs[vid] != want.Outputs[vid] {
								t.Fatalf("%s: vertex %d = %v, want %v (bit-exact)",
									prog.name, vid, got.Outputs[vid], want.Outputs[vid])
							}
						}
					}
				})
			}
		})
	}
}

// TestMutatedRunsMatchAfterCompaction repeats a slice of the matrix on the
// compacted layout: after folding every layer into a new base generation,
// queries must still match the fresh build bit-for-bit, and the disk
// bytes the engine reads must be within 1.05x of the fresh layout's.
func TestMutatedRunsMatchAfterCompaction(t *testing.T) {
	g := testGraph(t, 200, 1200, 23)
	dev := buildBase(t, g, 3, graph.CodecDelta)
	s := openStore(t, dev, delta.Options{MemtableBytes: 1})
	batches := mutationScript(g, 4, 40, 24)
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	fresh := freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, graph.CodecDelta)
	v := s.Snapshot()
	defer v.Release()

	for name, opts := range engineMatrix() {
		t.Run(name, func(t *testing.T) {
			got, err := core.Run(v.Layout(), &algorithms.PageRankDelta{Iterations: 8}, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Run(fresh, &algorithms.PageRankDelta{Iterations: 8}, opts)
			if err != nil {
				t.Fatal(err)
			}
			for vid := range want.Outputs {
				if got.Outputs[vid] != want.Outputs[vid] {
					t.Fatalf("vertex %d = %v, want %v", vid, got.Outputs[vid], want.Outputs[vid])
				}
			}
			gotBytes := got.IO.ReadBytes()
			wantBytes := want.IO.ReadBytes()
			if gotBytes > wantBytes+wantBytes/20 {
				t.Fatalf("post-compaction read bytes %d exceed 1.05x fresh-layout %d", gotBytes, wantBytes)
			}
		})
	}
}

// TestWeightedSSSPOverMutatedLayout covers the weighted read path end to
// end: weights written by upserts flow through layers, the memtable, and
// compaction into SSSP distances.
func TestWeightedSSSPOverMutatedLayout(t *testing.T) {
	g := graph.Dedupe(testGraph(t, 120, 700, 25))
	g.Weighted = true
	for k := range g.Edges {
		g.Edges[k].Weight = float32(1 + (int(g.Edges[k].Src)+int(g.Edges[k].Dst))%9)
	}
	dev := buildBase(t, g, 3, graph.CodecDelta)
	s := openStore(t, dev, delta.Options{MemtableBytes: 1024})
	batches := mutationScript(g, 3, 30, 26)
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	fresh := freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, graph.CodecDelta)
	v := s.Snapshot()
	defer v.Release()
	for _, opts := range []core.Options{{DefaultBuffer: true}, {Async: true}} {
		got, err := core.Run(v.Layout(), &algorithms.SSSP{Source: 0}, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Run(fresh, &algorithms.SSSP{Source: 0}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for vid := range want.Outputs {
			if got.Outputs[vid] != want.Outputs[vid] {
				t.Fatalf("async=%v: vertex %d = %v, want %v", opts.Async, vid, got.Outputs[vid], want.Outputs[vid])
			}
		}
	}
}

// TestOverlayOnlyBlock exercises a sub-block that exists purely in the
// overlay: the base cell is empty, every edge comes from mutations, and
// both full and selective reads must serve it.
func TestOverlayOnlyBlock(t *testing.T) {
	// All base edges in block (0,0); mutations populate block (1,1).
	g := &graph.Graph{
		NumVertices: 8,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3}},
	}
	dev := buildBase(t, g, 2, graph.CodecDelta)
	s := openStore(t, dev, delta.Options{})
	script := []delta.Mutation{
		{Op: delta.OpInsert, Src: 5, Dst: 6},
		{Op: delta.OpInsert, Src: 6, Dst: 7},
		{Op: delta.OpInsert, Src: 7, Dst: 4},
		{Op: delta.OpInsert, Src: 4, Dst: 5},
	}
	if err := s.Apply(script); err != nil {
		t.Fatal(err)
	}
	fresh := freshLayout(t, delta.ApplyToGraph(g, script), 2, graph.CodecDelta)
	v := s.Snapshot()
	defer v.Release()
	assertEqualLayouts(t, v.Layout(), fresh)
	for name, opts := range engineMatrix() {
		got, err := core.Run(v.Layout(), &algorithms.ConnectedComponents{}, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := core.Run(fresh, &algorithms.ConnectedComponents{}, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for vid := range want.Outputs {
			if got.Outputs[vid] != want.Outputs[vid] {
				t.Fatalf("%s: vertex %d = %v, want %v", name, vid, got.Outputs[vid], want.Outputs[vid])
			}
		}
	}
}

// TestSharedCacheAcrossMutations drives two jobs through one shared cache
// around a write: the second job must not see the first job's cached
// pre-mutation blocks, because mutated blocks carry a bumped content
// version in the cache key.
func TestSharedCacheAcrossMutations(t *testing.T) {
	g := testGraph(t, 150, 900, 27)
	dev := buildBase(t, g, 3, graph.CodecDelta)
	s := openStore(t, dev, delta.Options{})
	fresh0 := freshLayout(t, g, 3, graph.CodecDelta)

	run := func(l *partition.Layout, opts core.Options) *core.Result {
		t.Helper()
		res, err := core.Run(l, &algorithms.PageRankDelta{Iterations: 6}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Plain tier.
	sc := buffer.NewShared(64 << 20)
	v0 := s.Snapshot()
	r0 := run(v0.Layout(), core.Options{SharedBlocks: sc})
	w0 := run(fresh0, core.Options{})
	for vid := range w0.Outputs {
		if r0.Outputs[vid] != w0.Outputs[vid] {
			t.Fatalf("pre-mutation run: vertex %d mismatch", vid)
		}
	}
	v0.Release()

	batches := mutationScript(g, 2, 40, 28)
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	fresh1 := freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, graph.CodecDelta)
	v1 := s.Snapshot()
	defer v1.Release()
	r1 := run(v1.Layout(), core.Options{SharedBlocks: sc})
	w1 := run(fresh1, core.Options{})
	for vid := range w1.Outputs {
		if r1.Outputs[vid] != w1.Outputs[vid] {
			t.Fatalf("post-mutation run served stale cache: vertex %d = %v, want %v",
				vid, r1.Outputs[vid], w1.Outputs[vid])
		}
	}

	// Compressed tier (SEM) with its own cache: same discipline.
	scc := buffer.NewSharedCompressed(64 << 20)
	r2 := run(v1.Layout(), core.Options{SharedBlocks: scc, SEM: true, DefaultBuffer: true})
	for vid := range w1.Outputs {
		if r2.Outputs[vid] != w1.Outputs[vid] {
			t.Fatalf("compressed tier: vertex %d mismatch", vid)
		}
	}
}
