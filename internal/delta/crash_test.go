package delta_test

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// TestCrashPointSweep kills the write path at 20 distinct points — WAL
// appends, delta-layer writes, manifest publishes, compaction rewrites —
// and verifies after each simulated crash that a reopened store holds
// exactly the acknowledged mutations: zero acknowledged-write loss, no
// resurrection of unacknowledged batches, and no orphan files. Results are
// emitted as BENCH_mutate.json when MUTATE_OUT is set.
func TestCrashPointSweep(t *testing.T) {
	g := testGraph(t, 100, 500, 41)
	script := mutationScript(g, 10, 15, 42)

	type sweepResult struct {
		CrashPoints   int   `json:"crash_points"`
		AckedBatches  int64 `json:"acked_batches"`
		AckedMuts     int64 `json:"acked_mutations"`
		LostMuts      int64 `json:"lost_mutations"`
		Recovered     int   `json:"recovered_opens"`
		ReplayRecords int64 `json:"replay_records"`
		WallMS        int64 `json:"wall_ms"`
	}
	var res sweepResult
	start := time.Now()

	for point := 0; point < 20; point++ {
		crashAfter := int64(2 + point*2) // ops 2,4,...,40 across the write path
		dir := t.TempDir()
		dev, err := storage.OpenDevice(dir, storage.SSD)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := partition.Build(dev, g, 2); err != nil {
			t.Fatal(err)
		}
		// Count only mutating ops (device writes + WAL appends) toward the
		// crash point, so every point lands inside the durability path.
		chaos := storage.NewChaos(storage.ChaosOptions{
			Seed:          int64(point),
			CrashAfterOps: crashAfter,
			Match: func(op, _ string) bool {
				return op == "write" || op == "append"
			},
		})
		s, err := delta.Open(dev, delta.Options{MemtableBytes: 1, CompactLayers: 2})
		if err != nil {
			t.Fatal(err)
		}
		dev.SetFaultInjector(chaos.Injector())
		s.SetWALFaultInjector(chaos.Injector())

		var acked []delta.Mutation
		var ackedBatches int64
		for k, b := range script {
			if err := s.Apply(b); err != nil {
				break // crashed: nothing from this batch was acknowledged
			}
			acked = append(acked, b...)
			ackedBatches++
			if k%3 == 2 {
				// Compaction errors are not acknowledgement losses.
				_ = s.Compact()
			}
		}
		s.Close()

		// "Restart": clean device handle over the same directory; the WAL
		// and manifest on disk are all that survive.
		dev2, err := storage.OpenDevice(dir, storage.SSD)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := delta.Open(dev2, delta.Options{})
		if err != nil {
			t.Fatalf("crash point %d (op %d): reopen failed: %v", point, crashAfter, err)
		}
		v := s2.Snapshot()
		assertEqualLayouts(t, v.Layout(),
			freshLayout(t, delta.ApplyToGraph(g, acked), 2, graph.CodecRaw))
		v.Release()

		// Orphan sweep: nothing unreferenced left behind by the crash.
		s3 := s2.Stats()
		names, err := dev2.List()
		if err != nil {
			t.Fatal(err)
		}
		live := int64(0)
		for _, n := range names {
			if strings.HasPrefix(n, "delta/") {
				live++
			}
		}
		if s3.Layers == 0 && live != 0 {
			t.Fatalf("crash point %d: %d orphan delta files after recovery sweep", point, live)
		}
		s2.Close()

		res.CrashPoints++
		res.AckedBatches += ackedBatches
		res.AckedMuts += int64(len(acked))
		res.Recovered++
		res.ReplayRecords += s3.WAL.ReplayRecords
	}
	res.WallMS = time.Since(start).Milliseconds()
	if res.AckedMuts == 0 {
		t.Fatal("no batch was ever acknowledged; crash points all landed before the first append")
	}
	if out := os.Getenv("MUTATE_OUT"); out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornWALTailTruncatedCleanly tears a mutation-WAL append mid-frame
// (the on-disk signature of a crash during a write): the torn batch was
// never acknowledged, and a reopened store must truncate the tail, keep
// every earlier acknowledged batch, and accept new writes.
func TestTornWALTailTruncatedCleanly(t *testing.T) {
	g := testGraph(t, 80, 400, 43)
	dir := t.TempDir()
	dev, err := storage.OpenDevice(dir, storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Build(dev, g, 2); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dev, delta.Options{})
	batches := mutationScript(g, 4, 20, 44)
	for _, b := range batches[:3] {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	torn := false
	s.SetWALFaultInjector(func(op, _ string) error {
		if op == "append" && !torn {
			torn = true
			return storage.ErrTornWrite
		}
		return nil
	})
	if err := s.Apply(batches[3]); !errors.Is(err, delta.ErrWALUnavailable) {
		t.Fatalf("torn append returned %v, want ErrWALUnavailable", err)
	}
	// The log is sticky-failed: later writes are refused, never half-acked.
	if err := s.Apply(batches[3]); err == nil {
		t.Fatal("append after WAL failure succeeded")
	}
	s.Close()

	dev2, err := storage.OpenDevice(dir, storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dev2, delta.Options{})
	if st := s2.Stats(); st.WAL.ReplayTruncated == 0 {
		t.Fatal("replay did not report the torn tail")
	}
	v := s2.Snapshot()
	assertEqualLayouts(t, v.Layout(),
		freshLayout(t, delta.ApplyToGraph(g, flatten(batches[:3])), 2, graph.CodecRaw))
	v.Release()
	// The recovered store keeps accepting mutations.
	if err := s2.Apply(batches[3]); err != nil {
		t.Fatal(err)
	}
	v2 := s2.Snapshot()
	defer v2.Release()
	assertEqualLayouts(t, v2.Layout(),
		freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 2, graph.CodecRaw))
}

// TestCompactionCrashLeavesOldGeneration crashes the device partway
// through a compaction's block rewrites: the manifest publish never
// happens, so a reopened store still serves the old generation plus
// layers, and the half-written new-generation files are swept as orphans.
func TestCompactionCrashLeavesOldGeneration(t *testing.T) {
	g := testGraph(t, 100, 600, 45)
	dir := t.TempDir()
	dev, err := storage.OpenDevice(dir, storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Build(dev, g, 3); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dev, delta.Options{MemtableBytes: 1})
	batches := mutationScript(g, 3, 25, 46)
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash after the second compaction write: some generation-1 block
	// files land, the manifest rename never does.
	chaos := storage.NewChaos(storage.ChaosOptions{
		CrashAfterOps: 2,
		Match:         func(op, _ string) bool { return op == "write" },
	})
	dev.SetFaultInjector(chaos.Injector())
	if err := s.Compact(); err == nil {
		t.Fatal("compaction survived the crash injector")
	}
	s.Close()

	dev2, err := storage.OpenDevice(dir, storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dev2, delta.Options{})
	if st := s2.Stats(); st.Generation != 0 {
		t.Fatalf("generation = %d after crashed compaction, want 0", st.Generation)
	}
	v := s2.Snapshot()
	defer v.Release()
	assertEqualLayouts(t, v.Layout(),
		freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, graph.CodecRaw))
	names, err := dev2.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasPrefix(n, "blocks/g") || strings.HasPrefix(n, "degrees_g") {
			t.Fatalf("orphan new-generation file %s survived the recovery sweep", n)
		}
	}
	// The interrupted compaction can be retried to completion.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Generation != 1 || st.Layers != 0 {
		t.Fatalf("retried compaction: generation=%d layers=%d, want 1/0", st.Generation, st.Layers)
	}
}
