package delta

import (
	"fmt"
	"sort"

	"github.com/graphsd/graphsd/internal/partition"
)

// Compact folds every currently sealed delta layer into the base grid,
// publishing a new layout generation. Touched sub-blocks are rewritten at
// generation-qualified names with the same codec and index format Build
// uses, so a compacted block is byte-identical to a fresh preprocess of
// the merged edge set; the single atomic manifest rename is the commit
// point. Layers sealed while the compaction runs are untouched and survive
// into the new manifest. Pinned snapshots keep reading the old
// generation's files until they release.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	fold := append([]*layer(nil), s.layers...)
	if len(fold) == 0 {
		s.mu.Unlock()
		return nil
	}
	baseMeta := cloneManifest(s.meta)
	s.mu.Unlock()

	gen := baseMeta.Generation + 1
	newMeta := cloneManifest(baseMeta)

	touched := make(map[blockKey]int64) // net edge delta per rewritten block
	for _, l := range fold {
		for _, b := range l.ref.Blocks {
			touched[blockKey{b.I, b.J}] += b.EdgeDelta
		}
	}
	keys := make([]blockKey, 0, len(touched))
	for bk := range touched {
		keys = append(keys, bk)
	}
	sort.Slice(keys, func(a, b int) bool {
		return keys[a].i < keys[b].i || (keys[a].i == keys[b].i && keys[a].j < keys[b].j)
	})

	base := &partition.Layout{Dev: s.dev, Meta: *baseMeta}
	var edgeDelta int64
	for _, bk := range keys {
		cell, _, err := base.LoadSubBlockInto(bk.i, bk.j, nil, nil)
		if err != nil {
			return fmt.Errorf("delta: compacting block (%d,%d): %w", bk.i, bk.j, err)
		}
		merged := partition.MergeOverlay(nil, cell, resolveLayerStack(fold, bk))
		if want := baseMeta.EdgeCounts[bk.i][bk.j] + touched[bk]; int64(len(merged)) != want {
			return fmt.Errorf("delta: compacting block (%d,%d): merged to %d edges, accounting says %d",
				bk.i, bk.j, len(merged), want)
		}
		if err := partition.RewriteBlock(s.dev, newMeta, gen, bk.i, bk.j, merged); err != nil {
			return err
		}
		edgeDelta += touched[bk]
	}

	deg, err := base.LoadDegrees()
	if err != nil {
		return fmt.Errorf("delta: compacting degrees: %w", err)
	}
	for _, l := range fold {
		for k, v := range l.ref.DegVertices {
			deg[v] = uint32(int64(deg[v]) + int64(l.ref.DegDeltas[k]))
		}
	}
	if err := partition.WriteDegreesAt(s.dev, newMeta, gen, deg); err != nil {
		return err
	}
	newMeta.Generation = gen
	newMeta.NumEdges = baseMeta.NumEdges + edgeDelta

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Layers sealed during the rewrite survive; lifetime counters carry
	// whatever those seals added.
	rest := s.layers[len(fold):]
	newMeta.DeltaLayers = nil
	for _, l := range rest {
		newMeta.DeltaLayers = append(newMeta.DeltaLayers, l.ref)
	}
	newMeta.LastLayerID = s.meta.LastLayerID
	newMeta.MutationsTotal = s.meta.MutationsTotal
	if err := partition.SaveManifest(s.dev, newMeta); err != nil {
		return fmt.Errorf("delta: publishing generation %d: %w", gen, err)
	}
	oldMeta := s.meta
	s.meta = newMeta
	s.layers = append([]*layer(nil), rest...)
	for _, l := range fold {
		s.addLayerDegrees(l.ref, -1)
	}
	var files []string
	for _, bk := range keys {
		files = append(files, oldMeta.BlockName(bk.i, bk.j), oldMeta.BlockIndexName(bk.i, bk.j))
	}
	files = append(files, oldMeta.DegreesFile())
	for _, l := range fold {
		for _, b := range l.ref.Blocks {
			files = append(files, partition.LayerBlockName(l.ref.ID, b.I, b.J))
		}
	}
	s.retiredFiles = append(s.retiredFiles, retired{gen: gen, files: files})
	s.gcLocked()
	return nil
}

// resolveLayerStack merges one block's overlay entries across layers,
// newest layer winning per key, into sorted order.
func resolveLayerStack(fold []*layer, bk blockKey) []partition.OverlayEdge {
	var only []partition.OverlayEdge
	var acc map[uint64]partition.OverlayEdge
	for _, l := range fold {
		lb := l.blocks[bk]
		if len(lb) == 0 {
			continue
		}
		if only == nil && acc == nil {
			only = lb
			continue
		}
		if acc == nil {
			acc = overlayMap(only)
			only = nil
		}
		for _, e := range lb {
			acc[uint64(e.Edge.Src)<<32|uint64(e.Edge.Dst)] = e
		}
	}
	if acc == nil {
		return only
	}
	od := make([]partition.OverlayEdge, 0, len(acc))
	for _, e := range acc {
		od = append(od, e)
	}
	sortOverlay(od)
	return od
}
