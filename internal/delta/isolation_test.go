package delta_test

import (
	"sync"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// TestLongJobIsolatedFromWriteBurst is the end-to-end isolation
// guarantee: a long-running job pinned before a write burst produces
// bit-identical results to the same job over a frozen copy of the
// pre-burst graph — while mutations land, memtables seal, and a
// compaction publishes a new generation mid-run, all under a 5% transient
// read-fault storm on the store's device. Checked for both BSP and async
// execution.
func TestLongJobIsolatedFromWriteBurst(t *testing.T) {
	g := testGraph(t, 250, 1500, 31)
	preBurst := mutationScript(g, 2, 30, 32)
	burst := mutationScript(delta.ApplyToGraph(g, flatten(preBurst)), 6, 30, 33)
	frozen := delta.ApplyToGraph(g, flatten(preBurst))

	progs := map[string]func() core.Program{
		"pagerank-delta": func() core.Program { return &algorithms.PageRankDelta{Iterations: 12} },
		"bfs":            func() core.Program { return &algorithms.BFS{Source: 1} },
	}
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"bsp", core.Options{DefaultBuffer: true}},
		{"async", core.Options{Async: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for progName, mk := range progs {
				t.Run(progName, func(t *testing.T) {
					dev := buildBase(t, g, 3, graph.CodecDelta)
					s := openStore(t, dev, delta.Options{MemtableBytes: 1024, CompactLayers: 2})
					for _, b := range preBurst {
						if err := s.Apply(b); err != nil {
							t.Fatal(err)
						}
					}
					// The reference result: same program over a fresh build
					// of the frozen graph, on a quiet device.
					want, err := core.Run(freshLayout(t, frozen, 3, graph.CodecDelta), mk(), mode.opts)
					if err != nil {
						t.Fatal(err)
					}

					// 5% transient read faults on everything the job and the
					// compactor read; the device retries past them.
					chaos := storage.NewChaos(storage.ChaosOptions{
						Seed:              34,
						TransientReadProb: 0.05,
						Match: func(op, _ string) bool {
							return op == "read" || op == "readat"
						},
					})
					dev.SetFaultInjector(chaos.Injector())
					dev.SetRetryPolicy(storage.RetryPolicy{MaxRetries: 8})

					v := s.Snapshot()
					defer v.Release()

					// The burst lands while the job runs: one batch per
					// iteration from the OnIteration hook, with seals (small
					// memtable) and an explicit mid-run compaction publish.
					var mu sync.Mutex
					next := 0
					opts := mode.opts
					opts.OnIteration = func(core.IterStat) {
						mu.Lock()
						defer mu.Unlock()
						if next < len(burst) {
							if err := s.Apply(burst[next]); err != nil {
								t.Errorf("burst batch %d: %v", next, err)
							}
							next++
						}
						if next == 3 {
							if err := s.Compact(); err != nil {
								t.Errorf("mid-run compaction: %v", err)
							}
						}
					}
					got, err := core.Run(v.Layout(), mk(), opts)
					if err != nil {
						t.Fatal(err)
					}
					if st := chaos.Stats(); st.Transient == 0 {
						t.Fatal("chaos injected no transient faults; test is vacuous")
					}
					mu.Lock()
					if next < 3 {
						t.Fatalf("burst barely started (%d batches): job too short to isolate", next)
					}
					mu.Unlock()
					for vid := range want.Outputs {
						if got.Outputs[vid] != want.Outputs[vid] {
							t.Fatalf("vertex %d = %v, want %v (snapshot leaked the burst)",
								vid, got.Outputs[vid], want.Outputs[vid])
						}
					}

					// After the run, a fresh snapshot sees every acknowledged
					// burst batch.
					dev.SetFaultInjector(nil)
					mu.Lock()
					applied := flatten(burst[:min(next, len(burst))])
					mu.Unlock()
					v2 := s.Snapshot()
					defer v2.Release()
					assertEqualLayouts(t, v2.Layout(),
						freshLayout(t, delta.ApplyToGraph(frozen, applied), 3, graph.CodecDelta))
				})
			}
		})
	}
}
