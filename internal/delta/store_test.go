package delta_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// buildBase builds g as a mutable-ready layout on a fresh device.
func buildBase(t *testing.T, g *graph.Graph, p int, codec graph.Codec) *storage.Device {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Build(dev, g, p, partition.WithCodec(codec)); err != nil {
		t.Fatal(err)
	}
	return dev
}

// freshLayout builds g on its own device — the "freshly preprocessed
// merged layout" mutated stores are compared against.
func freshLayout(t *testing.T, g *graph.Graph, p int, codec graph.Codec) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, p, partition.WithCodec(codec))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func openStore(t *testing.T, dev *storage.Device, opts delta.Options) *delta.Store {
	t.Helper()
	s, err := delta.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// assertEqualLayouts checks got (typically a snapshot view over base +
// deltas) against want (a fresh build of the merged graph): per-block edge
// counts, decoded edges including weights, synthesized payload bytes,
// degrees, and edge totals must all be bit-identical.
func assertEqualLayouts(t *testing.T, got, want *partition.Layout) {
	t.Helper()
	if got.Meta.NumEdges != want.Meta.NumEdges {
		t.Fatalf("NumEdges = %d, want %d", got.Meta.NumEdges, want.Meta.NumEdges)
	}
	p := want.Meta.P
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if g, w := got.Meta.SubBlockEdges(i, j), want.Meta.SubBlockEdges(i, j); g != w {
				t.Fatalf("block (%d,%d): %d edges, want %d", i, j, g, w)
			}
			ge, _, err := got.LoadSubBlockInto(i, j, nil, nil)
			if err != nil {
				t.Fatalf("block (%d,%d): %v", i, j, err)
			}
			we, _, err := want.LoadSubBlockInto(i, j, nil, nil)
			if err != nil {
				t.Fatalf("block (%d,%d): %v", i, j, err)
			}
			if len(ge) != len(we) {
				t.Fatalf("block (%d,%d): loaded %d edges, want %d", i, j, len(ge), len(we))
			}
			for k := range we {
				if ge[k] != we[k] {
					t.Fatalf("block (%d,%d) edge %d: %+v, want %+v", i, j, k, ge[k], we[k])
				}
			}
			gp, err := got.LoadSubBlockPayload(i, j)
			if err != nil {
				t.Fatalf("block (%d,%d) payload: %v", i, j, err)
			}
			wp, err := want.LoadSubBlockPayload(i, j)
			if err != nil {
				t.Fatalf("block (%d,%d) payload: %v", i, j, err)
			}
			if !bytes.Equal(gp, wp) {
				t.Fatalf("block (%d,%d): payloads differ (%d vs %d bytes)", i, j, len(gp), len(wp))
			}
		}
	}
	gd, err := got.LoadDegrees()
	if err != nil {
		t.Fatal(err)
	}
	wd, err := want.LoadDegrees()
	if err != nil {
		t.Fatal(err)
	}
	for v := range wd {
		if gd[v] != wd[v] {
			t.Fatalf("degree of %d = %d, want %d", v, gd[v], wd[v])
		}
	}
}

// mutationScript generates a deterministic mixed workload over g: inserts
// of fresh edges, re-inserts over existing ones, deletes of existing edges
// and of absent edges.
func mutationScript(g *graph.Graph, batches, perBatch int, seed int64) [][]delta.Mutation {
	rng := rand.New(rand.NewSource(seed))
	n := uint32(g.NumVertices)
	out := make([][]delta.Mutation, batches)
	for b := range out {
		muts := make([]delta.Mutation, 0, perBatch)
		for k := 0; k < perBatch; k++ {
			m := delta.Mutation{
				Src: graph.VertexID(rng.Uint32() % n),
				Dst: graph.VertexID(rng.Uint32() % n),
			}
			if rng.Intn(3) == 0 {
				m.Op = delta.OpDelete
			} else {
				m.Op = delta.OpInsert
				if g.Weighted {
					m.Weight = float32(rng.Intn(100)) / 4
				}
			}
			if rng.Intn(4) == 0 && len(g.Edges) > 0 {
				// Target an existing edge so deletes and re-inserts hit.
				e := g.Edges[rng.Intn(len(g.Edges))]
				m.Src, m.Dst = e.Src, e.Dst
			}
			muts = append(muts, m)
		}
		out[b] = muts
	}
	return out
}

func flatten(batches [][]delta.Mutation) []delta.Mutation {
	var all []delta.Mutation
	for _, b := range batches {
		all = append(all, b...)
	}
	return all
}

func testGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyi(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyReadsMergedView(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			g := testGraph(t, 120, 600, 1)
			dev := buildBase(t, g, 3, codec)
			s := openStore(t, dev, delta.Options{})
			batches := mutationScript(g, 4, 25, 2)
			for _, b := range batches {
				if err := s.Apply(b); err != nil {
					t.Fatal(err)
				}
			}
			v := s.Snapshot()
			defer v.Release()
			assertEqualLayouts(t, v.Layout(), freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, codec))
		})
	}
}

func TestDeleteRemovesDuplicateBaseCopies(t *testing.T) {
	g := &graph.Graph{
		NumVertices: 8,
		Edges: []graph.Edge{
			{Src: 1, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 2}, // duplicates
			{Src: 2, Dst: 3}, {Src: 4, Dst: 5},
		},
	}
	dev := buildBase(t, g, 2, graph.CodecRaw)
	s := openStore(t, dev, delta.Options{})
	script := []delta.Mutation{
		{Op: delta.OpDelete, Src: 1, Dst: 2},              // removes all three copies
		{Op: delta.OpInsert, Src: 2, Dst: 3},              // re-insert over existing: still one copy
		{Op: delta.OpDelete, Src: 6, Dst: 7},              // absent: no-op
		{Op: delta.OpInsert, Src: 0, Dst: 7},              // fresh edge
		{Op: delta.OpInsert, Src: 5, Dst: 1},              // fresh edge, then
		{Op: delta.OpDelete, Src: 5, Dst: 1},              // deleted again in the same batch
	}
	if err := s.Apply(script); err != nil {
		t.Fatal(err)
	}
	v := s.Snapshot()
	defer v.Release()
	want := delta.ApplyToGraph(g, script)
	if want.NumEdges() != 3 {
		t.Fatalf("reference semantics: %d edges, want 3", want.NumEdges())
	}
	assertEqualLayouts(t, v.Layout(), freshLayout(t, want, 2, graph.CodecRaw))
	if got := v.Meta().NumEdges; got != 3 {
		t.Fatalf("merged NumEdges = %d, want 3", got)
	}
}

func TestValidationRejectsBadMutations(t *testing.T) {
	g := testGraph(t, 16, 40, 3)
	dev := buildBase(t, g, 2, graph.CodecRaw)
	s := openStore(t, dev, delta.Options{})
	for _, bad := range [][]delta.Mutation{
		{{Op: 0, Src: 1, Dst: 2}},
		{{Op: delta.OpInsert, Src: 99, Dst: 2}},
		{{Op: delta.OpDelete, Src: 1, Dst: 1000}},
	} {
		if err := s.Apply(bad); err == nil {
			t.Fatalf("mutation %+v accepted, want error", bad[0])
		}
	}
	// A rejected batch must leave no trace.
	if st := s.Stats(); st.Accepted != 0 || st.MutationsTotal != 0 {
		t.Fatalf("rejected batches counted: %+v", st)
	}
}

func TestSealPublishesLayersAndRestartRecovers(t *testing.T) {
	g := testGraph(t, 100, 500, 4)
	dir := t.TempDir()
	dev, err := storage.OpenDevice(dir, storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Build(dev, g, 3); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dev, delta.Options{})
	batches := mutationScript(g, 6, 20, 5)
	for k, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
		if k == 2 { // seal mid-script: later batches stay in the memtable
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Seals != 1 || st.Layers != 1 {
		t.Fatalf("seals=%d layers=%d, want 1/1", st.Seals, st.Layers)
	}
	if st.MutationsTotal == 0 {
		t.Fatalf("MutationsTotal = 0 after %d batches", len(batches))
	}
	s.Close()

	// Restart: reload the device, layers from the manifest, memtable from
	// the WAL.
	dev2, err := storage.OpenDevice(dir, storage.SSD)
	if err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dev2, delta.Options{})
	st2 := s2.Stats()
	if st2.Layers != 1 {
		t.Fatalf("after restart: %d layers, want 1", st2.Layers)
	}
	if st2.MutationsTotal != st.MutationsTotal {
		t.Fatalf("after restart: MutationsTotal = %d, want %d", st2.MutationsTotal, st.MutationsTotal)
	}
	v := s2.Snapshot()
	defer v.Release()
	assertEqualLayouts(t, v.Layout(), freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 3, graph.CodecRaw))
}

func TestCompactionConvergesAndMatchesFreshBuild(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			g := testGraph(t, 150, 900, 6)
			dev := buildBase(t, g, 3, codec)
			// A 1-byte memtable seals after every batch: many layers.
			s := openStore(t, dev, delta.Options{MemtableBytes: 1})
			batches := mutationScript(g, 5, 30, 7)
			for _, b := range batches {
				if err := s.Apply(b); err != nil {
					t.Fatal(err)
				}
			}
			if st := s.Stats(); st.Layers < 4 {
				t.Fatalf("expected >= 4 layers before compaction, got %d", st.Layers)
			}
			if !s.NeedsCompaction() {
				t.Fatal("NeedsCompaction = false with a full stack of layers")
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Layers != 0 {
				t.Fatalf("layer count did not converge: %d layers after compaction", st.Layers)
			}
			if st.Generation != 1 {
				t.Fatalf("generation = %d, want 1", st.Generation)
			}
			merged := delta.ApplyToGraph(g, flatten(batches))
			v := s.Snapshot()
			defer v.Release()
			assertEqualLayouts(t, v.Layout(), freshLayout(t, merged, 3, codec))

			// Post-compaction read I/O must match a fresh preprocess of the
			// merged graph: with zero overlay left, the per-block on-disk
			// bytes are byte-identical, so the 1.05x acceptance bound holds
			// with margin.
			fresh := freshLayout(t, merged, 3, codec)
			gotBytes := v.Meta().EdgeDiskBytesTotal()
			wantBytes := fresh.Meta.EdgeDiskBytesTotal()
			if gotBytes != wantBytes {
				t.Fatalf("post-compaction disk bytes %d, want %d (fresh build)", gotBytes, wantBytes)
			}

			// Mutations keep flowing after compaction.
			more := mutationScript(merged, 2, 15, 8)
			for _, b := range more {
				if err := s.Apply(b); err != nil {
					t.Fatal(err)
				}
			}
			v2 := s.Snapshot()
			defer v2.Release()
			assertEqualLayouts(t, v2.Layout(), freshLayout(t, delta.ApplyToGraph(merged, flatten(more)), 3, codec))
		})
	}
}

func TestSnapshotIsolationAtStoreLevel(t *testing.T) {
	g := testGraph(t, 100, 500, 9)
	dev := buildBase(t, g, 3, graph.CodecDelta)
	s := openStore(t, dev, delta.Options{MemtableBytes: 1})
	first := mutationScript(g, 3, 20, 10)
	for _, b := range first {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	frozen := delta.ApplyToGraph(g, flatten(first))
	v := s.Snapshot()
	defer v.Release()

	// Everything that happens after the pin — writes, seals, a full
	// compaction publishing a new generation — must be invisible to v.
	second := mutationScript(frozen, 3, 20, 11)
	for _, b := range second {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	assertEqualLayouts(t, v.Layout(), freshLayout(t, frozen, 3, graph.CodecDelta))

	// And a snapshot taken now sees all of it.
	v2 := s.Snapshot()
	defer v2.Release()
	assertEqualLayouts(t, v2.Layout(),
		freshLayout(t, delta.ApplyToGraph(frozen, flatten(second)), 3, graph.CodecDelta))
}

func TestRetiredFilesAreCollectedAfterRelease(t *testing.T) {
	g := testGraph(t, 80, 400, 12)
	dev := buildBase(t, g, 2, graph.CodecRaw)
	s := openStore(t, dev, delta.Options{MemtableBytes: 1})
	for _, b := range mutationScript(g, 3, 20, 13) {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	v := s.Snapshot() // pins generation 0
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.RetiredFiles == 0 {
		t.Fatal("no files retired by compaction while a pin is held")
	}
	// The pinned view still reads generation-0 files.
	assertEqualLayouts(t, v.Layout(), freshLayout(t, delta.ApplyToGraph(g, flatten(mutationScript(g, 3, 20, 13))), 2, graph.CodecRaw))
	v.Release()
	if st := s.Stats(); st.RetiredFiles != 0 {
		t.Fatalf("%d files still retired after the last pin released", st.RetiredFiles)
	}
	// Old-generation block files are gone from the device.
	names, err := dev.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == partition.SubBlockName(0, 0) || n == partition.DegreesNameAt(0) {
			t.Fatalf("stale generation-0 file %s survived GC", n)
		}
	}
}

func TestWeightedMutations(t *testing.T) {
	// Dedupe first: duplicate keys with distinct weights have no canonical
	// order (both Build and the reference sort are unstable), so the
	// bit-identical comparison is only defined on a duplicate-free base.
	g := graph.Dedupe(testGraph(t, 60, 300, 14))
	g.Weighted = true
	rng := rand.New(rand.NewSource(15))
	for k := range g.Edges {
		g.Edges[k].Weight = float32(rng.Intn(64)) / 2
	}
	dev := buildBase(t, g, 2, graph.CodecDelta)
	s := openStore(t, dev, delta.Options{})
	batches := mutationScript(g, 3, 20, 16)
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	v := s.Snapshot()
	defer v.Release()
	assertEqualLayouts(t, v.Layout(), freshLayout(t, delta.ApplyToGraph(g, flatten(batches)), 2, graph.CodecDelta))
}
