package delta

import (
	"sort"
	"sync"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
)

// View is a snapshot-isolated read handle: the base generation, sealed
// layers, and a frozen copy of the memtable exactly as they stood at
// Snapshot time. A job pins a view at submit and sees none of the writes,
// seals, or compactions that happen while it runs. Views implement
// partition.Overlay.
type View struct {
	store *Store
	meta  *partition.Manifest // merged counts/bytes over base BlockSums
	// layers and mem are immutable after the snapshot (sealed layers are
	// never modified in place; the memtable maps are deep-copied).
	layers   []*layer
	mem      map[blockKey]map[uint64]memVal
	vers     [][]int64
	degDelta []int32 // shared copy-on-write with the store
	gen      int

	mu       sync.Mutex
	resolved map[blockKey][]partition.OverlayEdge
	released bool
}

// Snapshot pins the current merged state for reading. The returned view
// holds the base generation's files against garbage collection until
// Release.
func (s *Store) Snapshot() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	mm := cloneManifest(s.meta)
	for _, l := range s.layers {
		for _, b := range l.ref.Blocks {
			mm.EdgeCounts[b.I][b.J] += b.EdgeDelta
			// Charge the layer's on-disk payload to the block so the I/O
			// scheduler prices base + delta bytes for every plan it costs.
			mm.BlockBytes[b.I][b.J] += b.Bytes
			mm.NumEdges += b.EdgeDelta
		}
	}
	for bk, d := range s.mem.countDelta {
		mm.EdgeCounts[bk.i][bk.j] += d
		mm.NumEdges += d
	}
	mem := make(map[blockKey]map[uint64]memVal, len(s.mem.blocks))
	for bk, vals := range s.mem.blocks {
		c := make(map[uint64]memVal, len(vals))
		for k, v := range vals {
			c[k] = v
		}
		mem[bk] = c
	}
	if s.degDelta != nil {
		s.degShared = true
	}
	v := &View{
		store:    s,
		meta:     mm,
		layers:   append([]*layer(nil), s.layers...),
		mem:      mem,
		vers:     cloneGrid(s.vers),
		degDelta: s.degDelta,
		gen:      s.meta.Generation,
	}
	s.pins[v.gen]++
	return v
}

// Layout returns a read layout over the snapshot: merged per-block counts
// and bytes (so scheduling and SEM activity see delta edges) with this
// view as the overlay.
func (v *View) Layout() *partition.Layout {
	return &partition.Layout{Dev: v.store.dev, Meta: *v.meta, Overlay: v}
}

// Meta returns the snapshot's merged manifest.
func (v *View) Meta() *partition.Manifest { return v.meta }

// Generation returns the base layout generation the view is pinned to.
func (v *View) Generation() int { return v.gen }

// BlockDelta implements partition.Overlay: the resolved (latest-wins,
// sorted) overlay entries for sub-block (i, j), merged across the
// snapshot's layers and frozen memtable. Resolution is lazy and cached per
// view.
func (v *View) BlockDelta(i, j int) []partition.OverlayEdge {
	bk := blockKey{i, j}
	v.mu.Lock()
	defer v.mu.Unlock()
	if od, ok := v.resolved[bk]; ok {
		return od
	}
	var od []partition.OverlayEdge
	single := true
	var acc map[uint64]partition.OverlayEdge
	for _, l := range v.layers {
		lb := l.blocks[bk]
		if len(lb) == 0 {
			continue
		}
		if od == nil && acc == nil {
			od = lb // common case: one source, reuse its sorted slice
			continue
		}
		single = false
		if acc == nil {
			acc = overlayMap(od)
			od = nil
		}
		for _, e := range lb {
			acc[uint64(e.Edge.Src)<<32|uint64(e.Edge.Dst)] = e
		}
	}
	if vals := v.mem[bk]; len(vals) > 0 {
		if od == nil && acc == nil {
			od = resolveMem(vals)
		} else {
			single = false
			if acc == nil {
				acc = overlayMap(od)
				od = nil
			}
			for key, val := range vals {
				acc[key] = partition.OverlayEdge{
					Edge: graph.Edge{
						Src:    graph.VertexID(key >> 32),
						Dst:    graph.VertexID(key & 0xffffffff),
						Weight: val.w,
					},
					Del: val.del,
				}
			}
		}
	}
	if !single {
		od = make([]partition.OverlayEdge, 0, len(acc))
		for _, e := range acc {
			od = append(od, e)
		}
		sortOverlay(od)
	}
	if v.resolved == nil {
		v.resolved = make(map[blockKey][]partition.OverlayEdge)
	}
	v.resolved[bk] = od
	return od
}

func overlayMap(od []partition.OverlayEdge) map[uint64]partition.OverlayEdge {
	acc := make(map[uint64]partition.OverlayEdge, len(od))
	for _, e := range od {
		acc[uint64(e.Edge.Src)<<32|uint64(e.Edge.Dst)] = e
	}
	return acc
}

// BlockVersion implements partition.Overlay: the logical content version
// of sub-block (i, j) at snapshot time, used to generation-scope shared
// cache keys.
func (v *View) BlockVersion(i, j int) int64 { return v.vers[i][j] }

// AdjustDegrees implements partition.Overlay: folds the snapshot's net
// degree changes into a freshly loaded base degree table.
func (v *View) AdjustDegrees(deg []uint32) {
	if v.degDelta == nil {
		return
	}
	for vertex, d := range v.degDelta {
		if d != 0 {
			deg[vertex] = uint32(int64(deg[vertex]) + int64(d))
		}
	}
}

// Release unpins the view. Files retired by compactions that happened
// while the view was pinned become eligible for deletion once no older
// pin remains. Idempotent.
func (v *View) Release() {
	v.mu.Lock()
	if v.released {
		v.mu.Unlock()
		return
	}
	v.released = true
	v.mu.Unlock()
	v.store.releasePin(v.gen)
}

func (s *Store) releasePin(gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.pins[gen]; n <= 1 {
		delete(s.pins, gen)
	} else {
		s.pins[gen] = n - 1
	}
	s.gcLocked()
}

// gcLocked deletes retired files whose superseding generation is no longer
// shielded by an older pinned snapshot. Best effort: a failed delete is
// retried at the next GC and swept at the next open.
func (s *Store) gcLocked() {
	if len(s.retiredFiles) == 0 {
		return
	}
	minPinned := -1
	for gen := range s.pins {
		if minPinned < 0 || gen < minPinned {
			minPinned = gen
		}
	}
	keep := s.retiredFiles[:0]
	for _, r := range s.retiredFiles {
		if minPinned >= 0 && minPinned < r.gen {
			keep = append(keep, r)
			continue
		}
		failed := r.files[:0]
		for _, name := range r.files {
			if !s.dev.Exists(name) {
				continue
			}
			if err := s.dev.Remove(name); err != nil {
				failed = append(failed, name)
			}
		}
		if len(failed) > 0 {
			keep = append(keep, retired{gen: r.gen, files: failed})
		}
	}
	s.retiredFiles = keep
}

// SortedBlockKeys is a test helper exposing which blocks a view's overlay
// touches, in grid order.
func (v *View) SortedBlockKeys() [][2]int {
	seen := make(map[blockKey]bool)
	for _, l := range v.layers {
		for bk := range l.blocks {
			seen[bk] = true
		}
	}
	for bk := range v.mem {
		seen[bk] = true
	}
	out := make([][2]int, 0, len(seen))
	for bk := range seen {
		out = append(out, [2]int{bk.i, bk.j})
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a][0] < out[b][0] || (out[a][0] == out[b][0] && out[a][1] < out[b][1])
	})
	return out
}
