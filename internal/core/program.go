// Package core implements the GraphSD execution engine: the driver loop of
// the paper's Algorithm 1, the selective cross-iteration update model SCIU
// (Algorithm 2), the full cross-iteration update model FCIU (Algorithm 3),
// the state-aware I/O scheduling hookup, and the secondary sub-block
// buffering scheme.
//
// # Programming model
//
// Algorithms are expressed as vertex programs in a gather/merge/apply form
// that factors the paper's two user hooks: UserFunction corresponds to
// Gather+Merge applied with the source's current-iteration value, and
// CrossIterUpdate corresponds to the same pair applied with the source's
// just-computed next value into the staged next-iteration accumulator. The
// engine guarantees Bulk Synchronous Parallel semantics: the values it
// produces after k iterations are identical (up to floating-point
// summation order) to a plain synchronous in-memory engine running k
// iterations — cross-iteration computation changes only when edges are
// read, never what is computed. RunReference provides that oracle.
package core

import (
	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
)

// Program is a vertex program executed by the engine.
//
// One BSP iteration is: every active vertex u contributes
// Gather(value(u), e, outdeg(u)) along each out-edge e; contributions to
// the same destination are combined with Merge (which must be commutative
// and associative with identity Identity()); every touched destination —
// or every vertex, if AlwaysActive — then computes its next value with
// Apply. Apply reports whether the vertex becomes active in the next
// iteration.
type Program interface {
	// Name identifies the algorithm ("pagerank", "cc", ...).
	Name() string
	// Weighted reports whether the program reads edge weights.
	Weighted() bool
	// AlwaysActive reports that every vertex is active in every iteration
	// (plain PageRank). The engine then applies every vertex each iteration
	// and selective scheduling yields no benefit.
	AlwaysActive() bool
	// MaxIterations bounds the run: fixed iteration counts for PR-style
	// algorithms, a convergence cap for traversal algorithms.
	MaxIterations() int
	// HasAux reports whether the program keeps an auxiliary per-vertex
	// float64 (e.g. PR-Delta's accumulated rank next to its delta value).
	HasAux() bool
	// Init fills the initial vertex values (and aux, if HasAux) and
	// activates the initially-active vertices.
	Init(n int, values, aux []float64, active *bitset.ActiveSet)
	// Identity is the identity element of Merge.
	Identity() float64
	// Gather returns the contribution of edge e given the source's value
	// and out-degree.
	Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64
	// Merge combines two contributions. Must be commutative, associative.
	Merge(a, b float64) float64
	// Apply computes v's new value from its old value and the merged
	// contribution (Identity() if none arrived), optionally updating aux.
	// It reports whether v is active in the next iteration.
	Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool)
	// Output maps a vertex's final (value, aux) state to the user-facing
	// result (e.g. PR-Delta reports the accumulated rank, not the delta).
	Output(v graph.VertexID, val float64, aux []float64) float64
}

// Monotonic is the optional capability a Program implements to run under
// the asynchronous engine (Options.Async). A monotonic program's state only
// ever moves toward the fixed point — labels only shrink under a min-Merge,
// or pending PageRank residual only drains into the rank — so sub-blocks may
// be processed in any order, any number of times, without a global barrier,
// and the fixed point reached is the same one BSP converges to.
//
// Under async execution the engine repeatedly picks the pending-mass-richest
// source interval, scatters the frozen frontier's values through its
// sub-blocks, applies contributions with AsyncApply, and then settles each
// scattered source with AsyncConsume. Residual is the scheduling signal: the
// run converges when the total residual over all active vertices falls to
// Options.AsyncEpsilon or the frontier drains.
type Monotonic interface {
	Program
	// Residual returns v's pending update mass — how much un-propagated
	// work the vertex still holds. Label-correcting programs return a
	// constant 1 per active vertex; PR-Delta returns |val| (the residual
	// itself). Must be non-negative and zero only when v has nothing left
	// to push.
	Residual(v graph.VertexID, val float64, aux []float64) float64
	// AsyncApply folds the merged contribution into v's current value,
	// reporting v's new value and whether v became (or stays) active. It
	// differs from Apply in that cur is v's live value, not the previous
	// iteration's snapshot, and it must not finalize state that
	// AsyncConsume settles (PR-Delta accumulates into the residual here
	// and moves it to the rank only in AsyncConsume).
	AsyncApply(v graph.VertexID, cur, merged float64, aux []float64, n int) (float64, bool)
	// AsyncConsume settles a source vertex after the engine scattered
	// snapshot (the value the scatter actually used) along all of v's
	// out-edges: it returns v's post-consumption value and whether v
	// remains active. cur is v's live value, which may differ from
	// snapshot if contributions arrived mid-scatter — a min-program stays
	// active iff cur improved below snapshot; PR-Delta banks snapshot into
	// the rank and keeps only the mass that arrived since.
	AsyncConsume(v graph.VertexID, snapshot, cur float64, aux []float64, n int) (float64, bool)
}

// RunReference executes prog for up to maxIters BSP iterations on an
// in-memory CSR, with no I/O at all. It is the correctness oracle for the
// out-of-core engines: every engine configuration must produce the same
// outputs (bit-exact for min-style programs, within floating-point
// tolerance for sum-style ones).
//
// maxIters <= 0 means run to prog.MaxIterations().
func RunReference(g *graph.Graph, prog Program, maxIters int) ([]float64, int) {
	if maxIters <= 0 {
		maxIters = prog.MaxIterations()
	}
	n := g.NumVertices
	csr := graph.BuildCSR(g)
	deg := g.OutDegrees()

	valPrev := make([]float64, n)
	valCur := make([]float64, n)
	var aux []float64
	if prog.HasAux() {
		aux = make([]float64, n)
	}
	active := bitset.NewActiveSet(n)
	prog.Init(n, valPrev, aux, active)
	copy(valCur, valPrev)

	acc := make([]float64, n)
	for v := range acc {
		acc[v] = prog.Identity()
	}
	touched := bitset.NewActiveSet(n)

	iter := 0
	for ; iter < maxIters; iter++ {
		if active.Empty() {
			break
		}
		// Scatter.
		active.ForEach(func(u int) bool {
			uid := graph.VertexID(u)
			neighbors := csr.Neighbors(uid)
			weights := csr.Weights(uid)
			for k, dst := range neighbors {
				e := graph.Edge{Src: uid, Dst: dst}
				if weights != nil {
					e.Weight = weights[k]
				}
				acc[dst] = prog.Merge(acc[dst], prog.Gather(valPrev[u], e, deg[u]))
				touched.Activate(int(dst))
			}
			return true
		})
		// Apply.
		newActive := bitset.NewActiveSet(n)
		applyOne := func(v int) bool {
			nv, act := prog.Apply(graph.VertexID(v), valPrev[v], acc[v], aux, n)
			valCur[v] = nv
			if act {
				newActive.Activate(v)
			}
			acc[v] = prog.Identity()
			return true
		}
		if prog.AlwaysActive() {
			for v := 0; v < n; v++ {
				applyOne(v)
			}
		} else {
			touched.ForEach(applyOne)
		}
		touched.Reset()
		valPrev, valCur = valCur, valPrev
		copy(valCur, valPrev)
		active = newActive
	}

	out := make([]float64, n)
	for v := range out {
		out[v] = prog.Output(graph.VertexID(v), valPrev[v], aux)
	}
	return out, iter
}
