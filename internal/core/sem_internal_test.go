package core

import (
	"testing"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
)

// TestClampedActiveEdgeEstimate is the regression test for the sampled
// priority estimate returning 0 for a live block: with more edges than
// activeEdgeSampleCap, the deterministic stride can step over every active
// source, and the unclamped estimate demotes a block the bitmap knows is
// live to dead priority.
func TestClampedActiveEdgeEstimate(t *testing.T) {
	meta := &partition.Manifest{NumVertices: 100, P: 1}
	n := 2 * activeEdgeSampleCap // stride 2: samples only even indices
	edges := make([]graph.Edge, n)
	for k := range edges {
		if k%2 == 1 {
			edges[k] = graph.Edge{Src: 1, Dst: 2} // active source, odd slots only
		} else {
			edges[k] = graph.Edge{Src: 0, Dst: 2}
		}
	}
	active := bitset.NewActiveSet(100)
	active.Activate(1)

	// Precondition for the regression: the raw sample really misses every
	// active edge. If the sampling scheme changes, pick a new layout.
	if est := activeEdgeEstimate(edges, active); est != 0 {
		t.Fatalf("sampled estimate %d, want 0 (stride no longer misses the active sources)", est)
	}
	if got := clampedActiveEdgeEstimate(edges, active, meta, 0); got != 1 {
		t.Fatalf("clamped estimate %d, want 1 for a live block", got)
	}

	// A genuinely dead block (no active vertex in the source interval)
	// must stay at 0 — the clamp only applies when the bitmap says live.
	dead := bitset.NewActiveSet(100)
	if got := clampedActiveEdgeEstimate(edges, dead, meta, 0); got != 0 {
		t.Fatalf("dead-row estimate %d, want 0", got)
	}

	// Small blocks keep the exact count: no clamp distortion.
	small := edges[:10]
	if got := clampedActiveEdgeEstimate(small, active, meta, 0); got != activeEdgeCount(small, active) {
		t.Fatalf("small-block estimate %d, want exact %d", got, activeEdgeCount(small, active))
	}
}
