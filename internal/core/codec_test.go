package core_test

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func codecLayout(t *testing.T, g *graph.Graph, p int, codec graph.Codec) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, p, partition.WithCodec(codec))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestEngineOutputsIdenticalAcrossCodecs: the codec is an encoding detail —
// every engine path must produce bit-identical outputs on raw and delta
// layouts.
func TestEngineOutputsIdenticalAcrossCodecs(t *testing.T) {
	rmat, err := gen.RMAT(8, 8, gen.Graph500, 19)
	if err != nil {
		t.Fatal(err)
	}
	weighted := gen.Weighted(rmat, 16, 5)

	cases := []struct {
		name string
		g    *graph.Graph
		prog func() core.Program
		opts core.Options
	}{
		{"pagerank/default", rmat,
			func() core.Program { return &algorithms.PageRank{Iterations: 5} },
			core.Options{DefaultBuffer: true}},
		{"bfs/on-demand", rmat,
			func() core.Program { return &algorithms.BFS{Source: 0} },
			core.Options{ForceModel: core.ForceOnDemand}},
		{"bfs/full", rmat,
			func() core.Program { return &algorithms.BFS{Source: 0} },
			core.Options{ForceModel: core.ForceFull}},
		{"cc/streamed", rmat,
			func() core.Program { return &algorithms.ConnectedComponents{} },
			core.Options{StreamChunkBytes: 256}},
		{"sssp/weighted", weighted,
			func() core.Program { return &algorithms.SSSP{Source: 0} },
			core.Options{DefaultBuffer: true}},
		{"prdelta/no-prefetch", rmat,
			func() core.Program { return &algorithms.PageRankDelta{Iterations: 10} },
			core.Options{PrefetchDepth: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const p = 4
			rawRes, err := core.Run(codecLayout(t, tc.g, p, graph.CodecRaw), tc.prog(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			deltaRes, err := core.Run(codecLayout(t, tc.g, p, graph.CodecDelta), tc.prog(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if rawRes.Iterations != deltaRes.Iterations || rawRes.Converged != deltaRes.Converged {
				t.Fatalf("run shape differs: raw %d/%t vs delta %d/%t",
					rawRes.Iterations, rawRes.Converged, deltaRes.Iterations, deltaRes.Converged)
			}
			for v := range rawRes.Outputs {
				if math.Float64bits(rawRes.Outputs[v]) != math.Float64bits(deltaRes.Outputs[v]) {
					t.Fatalf("vertex %d: raw %v vs delta %v", v, rawRes.Outputs[v], deltaRes.Outputs[v])
				}
			}
			if rawRes.Codec != "raw" || deltaRes.Codec != "delta" {
				t.Fatalf("result codecs: %q / %q", rawRes.Codec, deltaRes.Codec)
			}
		})
	}
}

// TestDeltaLowersEngineTraffic: the simulated device moves on-disk bytes, so
// a delta layout's full-model runs must report less read traffic than raw —
// at least 2x less on an unweighted power-law graph — and record the
// compression ratio and decode time in the result.
func TestDeltaLowersEngineTraffic(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.Graph500, 29)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	prog := func() core.Program { return &algorithms.PageRank{Iterations: 4} }
	opts := core.Options{ForceModel: core.ForceFull}
	rawRes, err := core.Run(codecLayout(t, g, p, graph.CodecRaw), prog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	deltaRes, err := core.Run(codecLayout(t, g, p, graph.CodecDelta), prog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Both runs read the same vertex-value bytes; the edge share must shrink
	// enough that total read traffic is well below raw.
	rawReads, deltaReads := rawRes.IO.ReadBytes(), deltaRes.IO.ReadBytes()
	if deltaReads >= rawReads {
		t.Fatalf("delta read traffic %d not below raw %d", deltaReads, rawReads)
	}
	if deltaRes.CompressRatio < 2 {
		t.Fatalf("compression ratio %.2f below 2x", deltaRes.CompressRatio)
	}
	if deltaRes.DecodeTime <= 0 {
		t.Fatal("delta run reported no decode time")
	}
	if rawRes.CompressRatio != 1 {
		t.Fatalf("raw compression ratio = %v", rawRes.CompressRatio)
	}
}
