package core

import (
	"fmt"

	"github.com/graphsd/graphsd/internal/checkpoint"
)

// saveCheckpoint persists the engine state at the bottom of the iteration
// loop, where the BSP invariants make the capture minimal: valPrev holds the
// completed iteration's values, acc is back at the identity and touched is
// empty (both restored by the apply phase), active is the next frontier, and
// accNext/touchedNext stage the cross-iteration contributions for the next
// iteration. iter is the number of completed iterations.
func (e *Engine) saveCheckpoint(dir string, iter int, secondaryPending bool) error {
	st := &checkpoint.State{
		Algorithm:        e.prog.Name(),
		NumVertices:      e.n,
		P:                e.p,
		Iteration:        iter,
		SecondaryPending: secondaryPending,
		Values:           e.valPrev,
		Aux:              e.aux,
		AccNext:          e.accNext,
		Active:           e.active.Words(),
		TouchedNext:      e.touchedNext.Words(),
	}
	return checkpoint.Save(dir, st)
}

// restoreCheckpoint overwrites the freshly initialised engine state with a
// loaded checkpoint, after validating that it belongs to this program and
// layout shape. The caller re-enters the loop at st.Iteration; acc/touched
// already satisfy the loop invariant (identity/empty) from NewEngine.
func (e *Engine) restoreCheckpoint(st *checkpoint.State) error {
	if st.Async {
		return fmt.Errorf("core: checkpoint was taken by the async engine; resume it with Options.Async")
	}
	if st.Algorithm != e.prog.Name() {
		return fmt.Errorf("core: checkpoint is for algorithm %q, running %q", st.Algorithm, e.prog.Name())
	}
	if st.NumVertices != e.n || st.P != e.p {
		return fmt.Errorf("core: checkpoint shape %d vertices / P=%d, layout has %d / P=%d",
			st.NumVertices, st.P, e.n, e.p)
	}
	if len(st.Values) != e.n || len(st.AccNext) != e.n {
		return fmt.Errorf("core: checkpoint arrays sized %d values / %d accumulators, want %d",
			len(st.Values), len(st.AccNext), e.n)
	}
	if (st.Aux == nil) != (e.aux == nil) || len(st.Aux) != len(e.aux) {
		return fmt.Errorf("core: checkpoint aux state length %d, program %s keeps %d",
			len(st.Aux), e.prog.Name(), len(e.aux))
	}
	copy(e.valPrev, st.Values)
	copy(e.valCur, st.Values)
	if e.aux != nil {
		copy(e.aux, st.Aux)
	}
	copy(e.accNext, st.AccNext)
	if err := e.active.LoadWords(st.Active); err != nil {
		return fmt.Errorf("core: checkpoint active frontier: %w", err)
	}
	if err := e.touchedNext.LoadWords(st.TouchedNext); err != nil {
		return fmt.Errorf("core: checkpoint touched set: %w", err)
	}
	return nil
}
