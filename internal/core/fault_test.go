package core_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Failure injection: the engine must surface device errors from every I/O
// path — degree load, full sub-block loads, selective index/edge reads —
// rather than silently producing partial results.

func faultLayoutCodec(t *testing.T, codec graph.Codec) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RMAT(8, 8, gen.Graph500, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, 4, partition.WithCodec(codec))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func faultLayout(t *testing.T) *partition.Layout {
	return faultLayoutCodec(t, graph.CodecRaw)
}

func TestEngineSurfacesDegreeLoadFailure(t *testing.T) {
	l := faultLayout(t)
	boom := errors.New("disk gone")
	l.Dev.SetFaultInjector(func(op, name string) error {
		if name == partition.DegreesName {
			return boom
		}
		return nil
	})
	_, err := core.Run(l, &algorithms.PageRank{Iterations: 2}, core.Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("degree-load fault not surfaced: %v", err)
	}
}

func TestEngineSurfacesSubBlockReadFailure(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			l := faultLayoutCodec(t, codec)
			boom := errors.New("unreadable block")
			l.Dev.SetFaultInjector(func(op, name string) error {
				if strings.HasPrefix(name, "blocks/") && strings.HasSuffix(name, ".edges") && op == "read" {
					return boom
				}
				return nil
			})
			_, err := core.Run(l, &algorithms.PageRank{Iterations: 2}, core.Options{})
			if !errors.Is(err, boom) {
				t.Fatalf("sub-block fault not surfaced: %v", err)
			}
		})
	}
}

func TestEngineSurfacesIndexReadFailure(t *testing.T) {
	l := faultLayout(t)
	boom := errors.New("index corrupted")
	l.Dev.SetFaultInjector(func(op, name string) error {
		if strings.HasSuffix(name, ".idx") {
			return boom
		}
		return nil
	})
	// Force the on-demand path so the index is actually consulted.
	_, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{ForceModel: core.ForceOnDemand})
	if !errors.Is(err, boom) {
		t.Fatalf("index fault not surfaced: %v", err)
	}
}

func TestEngineSurfacesSelectiveEdgeReadFailure(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			l := faultLayoutCodec(t, codec)
			boom := errors.New("bad sector")
			l.Dev.SetFaultInjector(func(op, name string) error {
				if op == "readat" {
					return boom
				}
				return nil
			})
			_, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{ForceModel: core.ForceOnDemand})
			if !errors.Is(err, boom) {
				t.Fatalf("selective-read fault not surfaced: %v", err)
			}
		})
	}
}

// TestEngineSurfacesSCIUMidStreamFailure fails the on-demand path after it
// has already read some vertex edges: the partially-built iteration must be
// abandoned with the error, never folded into a partial Result. Covers both
// codecs, since the delta path decodes incrementally per vertex.
func TestEngineSurfacesSCIUMidStreamFailure(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			l := faultLayoutCodec(t, codec)
			boom := errors.New("head crash")
			var reads atomic.Int64
			l.Dev.SetFaultInjector(func(op, name string) error {
				if op == "readat" && reads.Add(1) > 5 {
					return boom
				}
				return nil
			})
			res, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{ForceModel: core.ForceOnDemand})
			if !errors.Is(err, boom) {
				t.Fatalf("mid-stream sciu fault not surfaced: %v", err)
			}
			if res != nil {
				t.Fatal("partial result returned alongside error")
			}
		})
	}
}

func TestEngineFailsMidRunCleanly(t *testing.T) {
	// Fail after the first dozen reads: the engine has already made
	// progress and must still return the error, not a partial Result.
	l := faultLayout(t)
	boom := errors.New("transient then fatal")
	var reads atomic.Int64
	l.Dev.SetFaultInjector(func(op, name string) error {
		if op == "read" && reads.Add(1) > 12 {
			return boom
		}
		return nil
	})
	res, err := core.Run(l, &algorithms.PageRank{Iterations: 5}, core.Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("mid-run fault not surfaced: %v", err)
	}
	if res != nil {
		t.Fatal("partial result returned alongside error")
	}
}

func TestPreprocessorSurfacesWriteFailure(t *testing.T) {
	dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RMAT(8, 8, gen.Graph500, 2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("device full")
	dev.SetFaultInjector(func(op, name string) error {
		if op == "write" && strings.HasPrefix(name, "blocks/") {
			return boom
		}
		return nil
	})
	if _, err := partition.Build(dev, g, 4); !errors.Is(err, boom) {
		t.Fatalf("preprocessor write fault not surfaced: %v", err)
	}
}
