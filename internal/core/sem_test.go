package core_test

import (
	"errors"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/checkpoint"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// Semi-external-memory equivalence suite. The contract: SEM is an I/O
// optimisation only — with the I/O model pinned, a SEM run must produce
// outputs bit-identical to a SEM-off run on every path and codec, while
// demonstrably skipping dead sub-blocks on sparse frontiers.

// semOn returns opts with the SEM fast path enabled.
func semOn(opts core.Options) core.Options {
	opts.SEM = true
	return opts
}

func TestSEMBitIdenticalAndSkips(t *testing.T) {
	paths := []struct {
		name string
		prog func() core.Program
		opts core.Options
		// sparse FCIU-family paths must record skips and read strictly
		// fewer device bytes; SCIU already skips dead rows without SEM.
		wantSkips bool
	}{
		{"fciu", func() core.Program { return &algorithms.BFS{Source: 0} },
			core.Options{ForceModel: core.ForceFull, DefaultBuffer: true}, true},
		{"full-single", func() core.Program { return &algorithms.BFS{Source: 0} },
			core.Options{ForceModel: core.ForceFull, DisableCrossIteration: true}, true},
		{"sciu", func() core.Program { return &algorithms.BFS{Source: 0} },
			core.Options{ForceModel: core.ForceOnDemand}, false},
		{"fciu-dense", func() core.Program { return &algorithms.PageRank{Iterations: 5} },
			core.Options{ForceModel: core.ForceFull, DefaultBuffer: true}, false},
	}
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		for _, p := range paths {
			t.Run(p.name+"/"+codec.String(), func(t *testing.T) {
				base, err := core.Run(chaosLayout(t, codec, 11), p.prog(), p.opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Run(chaosLayout(t, codec, 11), p.prog(), semOn(p.opts))
				if err != nil {
					t.Fatal(err)
				}
				if res.Iterations != base.Iterations || res.Converged != base.Converged {
					t.Fatalf("SEM run: %d iters converged=%t, SEM-off: %d iters converged=%t",
						res.Iterations, res.Converged, base.Iterations, base.Converged)
				}
				requireIdenticalOutputs(t, base.Outputs, res.Outputs)
				if !res.SEM.Enabled {
					t.Fatal("SEM run not marked enabled")
				}
				if base.SEM.BlocksSkipped != 0 {
					t.Fatalf("SEM-off run skipped %d blocks", base.SEM.BlocksSkipped)
				}
				if p.wantSkips {
					if res.SEM.BlocksSkipped == 0 {
						t.Fatal("sparse-frontier SEM run skipped no blocks")
					}
					if res.SEM.BytesSkipped <= 0 {
						t.Fatalf("skipped %d blocks but %d bytes", res.SEM.BlocksSkipped, res.SEM.BytesSkipped)
					}
					if res.IO.ReadBytes() >= base.IO.ReadBytes() {
						t.Fatalf("SEM read %d device bytes, SEM-off %d — skips bought nothing",
							res.IO.ReadBytes(), base.IO.ReadBytes())
					}
				} else if p.name == "fciu-dense" {
					// Every vertex stays active under PageRank: nothing to skip.
					if res.SEM.BlocksSkipped != 0 {
						t.Fatalf("dense run skipped %d blocks", res.SEM.BlocksSkipped)
					}
				}
			})
		}
	}
}

// TestSEMCheckpointResumeBitIdentical crashes a SEM checkpointed run
// mid-flight and resumes it under SEM; the result must match an
// uninterrupted SEM-off run bit for bit.
func TestSEMCheckpointResumeBitIdentical(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			l := chaosLayout(t, codec, 7)
			prog := func() core.Program { return &algorithms.PageRank{Iterations: 8} }
			base, err := core.Run(l, prog(), core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			ckDir := t.TempDir()
			power := errors.New("power loss")
			_, err = core.Run(l, prog(), semOn(core.Options{
				Checkpoint: core.CheckpointOptions{Every: 2, Dir: ckDir},
				OnIteration: func(st core.IterStat) {
					if st.Index == 3 {
						l.Dev.SetFaultInjector(func(op, name string) error { return power })
					}
				},
			}))
			l.Dev.SetFaultInjector(nil)
			if !errors.Is(err, power) {
				t.Fatalf("crashed run returned %v, want injected power loss", err)
			}
			if !checkpoint.Exists(ckDir) {
				t.Fatal("no checkpoint survived the crash")
			}

			res, err := core.Run(l, prog(), semOn(core.Options{
				Checkpoint: core.CheckpointOptions{Every: 2, Dir: ckDir, Resume: true},
			}))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resumed || res.ResumedFrom != 4 {
				t.Fatalf("resumed=%t from %d, want resume from iteration 4", res.Resumed, res.ResumedFrom)
			}
			requireIdenticalOutputs(t, base.Outputs, res.Outputs)
		})
	}
}

// TestSEMChaosBitIdentical injects 5% transient read faults into a SEM run;
// retries recover it and the outputs must match the fault-free SEM-off
// baseline, with skips still recorded.
func TestSEMChaosBitIdentical(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			opts := core.Options{ForceModel: core.ForceFull, DefaultBuffer: true}
			prog := func() core.Program { return &algorithms.BFS{Source: 0} }
			l := chaosLayout(t, codec, 5)
			base, err := core.Run(l, prog(), opts)
			if err != nil {
				t.Fatal(err)
			}

			chaos := storage.NewChaos(storage.ChaosOptions{
				Seed:              42,
				TransientReadProb: 0.05,
				Match: func(op, name string) bool {
					return op == "read" || op == "readat"
				},
			})
			l.Dev.SetFaultInjector(chaos.Injector())
			l.Dev.SetRetryPolicy(storage.RetryPolicy{
				MaxRetries: 5,
				BaseDelay:  time.Millisecond,
				MaxDelay:   50 * time.Millisecond,
				Seed:       1,
			})
			res, err := core.Run(l, prog(), semOn(opts))
			l.Dev.SetFaultInjector(nil)
			l.Dev.SetRetryPolicy(storage.RetryPolicy{})
			if err != nil {
				t.Fatalf("SEM chaos run did not survive: %v", err)
			}
			if chaos.Stats().Transient == 0 {
				t.Fatal("chaos injected no faults — harness not exercised")
			}
			if res.IO.Retries == 0 {
				t.Fatal("faults injected but device recorded no retries")
			}
			if res.SEM.BlocksSkipped == 0 {
				t.Fatal("SEM chaos run skipped no blocks")
			}
			requireIdenticalOutputs(t, base.Outputs, res.Outputs)
		})
	}
}

// TestSEMSharedCompressedCache runs the same job twice over a compressed
// shared cache: the warm run must serve sub-blocks from the compressed tier
// (decoding per hit), produce bit-identical outputs, and demonstrate the
// capacity advantage — more decoded graph bytes represented than RAM spent.
func TestSEMSharedCompressedCache(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 12)
	prog := func() core.Program { return &algorithms.PageRank{Iterations: 4} }
	base, err := core.Run(l, prog(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	shared := buffer.NewSharedCompressed(l.Meta.EdgeBytesTotal())
	cold, err := core.Run(l, prog(), core.Options{SharedBlocks: shared})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalOutputs(t, base.Outputs, cold.Outputs)
	if !cold.SEM.Enabled {
		t.Fatal("compressed-shared run not marked SEM-enabled")
	}
	if cold.SEM.CompressedBytes <= 0 || cold.SEM.DecodedBytes <= 0 {
		t.Fatalf("cold run recorded no compressed-tier volume: %+v", cold.SEM)
	}
	if r := cold.SEM.EffectiveCapacityRatio(); r <= 1 {
		t.Fatalf("effective capacity ratio %.2f, want > 1 (delta tier smaller than decoded)", r)
	}

	warm, err := core.Run(l, prog(), core.Options{SharedBlocks: shared})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalOutputs(t, base.Outputs, warm.Outputs)
	if warm.SEM.CompressedHits == 0 {
		t.Fatal("warm run had no compressed-tier hits")
	}
	st := shared.Stats()
	if st.CompressedHits == 0 || st.Hits < st.CompressedHits {
		t.Fatalf("shared stats hits=%d compressed=%d", st.Hits, st.CompressedHits)
	}
	if st.DecodeTime <= 0 {
		t.Fatal("compressed hits reported no decode time")
	}
}
