package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
)

// TestRunContextCancelled: a pre-cancelled context stops the run before any
// iteration with a clean context.Canceled.
func TestRunContextCancelled(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.Graph500, 7)
	if err != nil {
		t.Fatal(err)
	}
	l := buildLayout(t, g, 4)
	prog, _ := algorithms.ByName("pr", 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.RunContext(ctx, l, prog, core.Options{DefaultBuffer: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
}

// TestRunContextCancelMidRun: cancelling from an iteration callback stops
// the run at the next sub-block boundary, quickly, with no hang.
func TestRunContextCancelMidRun(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.Graph500, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := buildLayout(t, g, 4)
	prog, _ := algorithms.ByName("pr", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := core.Options{
		DefaultBuffer: true,
		OnIteration: func(st core.IterStat) {
			if st.Index >= 1 {
				cancel()
			}
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := core.RunContext(ctx, l, prog, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

// TestRunContextDeadline: a context deadline surfaces as DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.Graph500, 5)
	if err != nil {
		t.Fatal(err)
	}
	l := buildLayout(t, g, 4)
	prog, _ := algorithms.ByName("pr", 0)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = core.RunContext(ctx, l, prog, core.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSharedBlocksBitIdentical: a run with the cross-job shared cache wired
// in produces outputs bit-identical to a plain run, and a second warm run
// hits the cache for every full-block load it performs.
func TestSharedBlocksBitIdentical(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.Graph500, 11)
	if err != nil {
		t.Fatal(err)
	}
	l := buildLayout(t, g, 4)
	for _, alg := range []string{"pr", "bfs", "cc"} {
		t.Run(alg, func(t *testing.T) {
			prog, _ := algorithms.ByName(alg, 1)
			base, err := core.Run(l, prog, core.Options{DefaultBuffer: true})
			if err != nil {
				t.Fatal(err)
			}

			shared := buffer.NewShared(l.Meta.EdgeBytesTotal() * 2)
			opts := core.Options{DefaultBuffer: true, SharedBlocks: shared}

			prog, _ = algorithms.ByName(alg, 1)
			cold, err := core.Run(l, prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			bitIdentical(t, alg+" cold", cold.Outputs, base.Outputs)
			if cold.SharedMisses == 0 {
				t.Fatal("cold run recorded no shared-cache misses")
			}

			prog, _ = algorithms.ByName(alg, 1)
			warm, err := core.Run(l, prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			bitIdentical(t, alg+" warm", warm.Outputs, base.Outputs)
			if warm.SharedHits == 0 {
				t.Fatal("warm run recorded no shared-cache hits")
			}
			// The acceptance bar: the warm job loads strictly fewer blocks
			// from the device than the cold one.
			if warm.SharedMisses >= cold.SharedMisses+cold.SharedHits {
				t.Fatalf("warm run loaded %d blocks from device, cold run %d — cache saved nothing",
					warm.SharedMisses, cold.SharedMisses)
			}
			if warm.IO.ReadBytes() >= cold.IO.ReadBytes() {
				t.Fatalf("warm read bytes %d >= cold %d", warm.IO.ReadBytes(), cold.IO.ReadBytes())
			}
		})
	}
}

func bitIdentical(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d = %v, want bit-identical %v", name, v, got[v], want[v])
		}
	}
}
