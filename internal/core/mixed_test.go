package core_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
)

// TestDifferentAlgorithmsShareOneLayout: a layout is algorithm-agnostic;
// running PR, CC and BFS back to back over the same on-disk grid must give
// each algorithm its oracle results, even with persisted values from a
// previous run lying on the device.
func TestDifferentAlgorithmsShareOneLayout(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.Graph500, 33)
	if err != nil {
		t.Fatal(err)
	}
	layout := buildLayout(t, g, 4)

	progs := []func() core.Program{
		func() core.Program { return &algorithms.PageRank{Iterations: 4} },
		func() core.Program { return &algorithms.ConnectedComponents{} },
		func() core.Program { return &algorithms.BFS{Source: 0} },
		func() core.Program { return &algorithms.Reachability{Source: 0} },
	}
	for _, mk := range progs {
		want, _ := core.RunReference(g, mk(), 0)
		res, err := core.Run(layout, mk(), core.Options{DefaultBuffer: true, PersistValues: true})
		if err != nil {
			t.Fatal(err)
		}
		compareOutputs(t, res.Algorithm, res.Outputs, want, 1e-9)
	}
}

// TestSequentialRunsDoNotLeakSchedulerState: each Run gets a fresh
// scheduler; decision traces must not accumulate across runs.
func TestSequentialRunsDoNotLeakSchedulerState(t *testing.T) {
	layout := buildLayout(t, gen.Chain(30), 2)
	first, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Decisions) != len(first.Decisions) {
		t.Fatalf("decision trace leaked: %d vs %d", len(second.Decisions), len(first.Decisions))
	}
	if second.Decisions[0].Iteration != 0 {
		t.Fatalf("second run's first decision has iteration %d", second.Decisions[0].Iteration)
	}
}
