package core_test

import (
	"testing"
	"testing/quick"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// TestPropertyEngineEqualsOracle drives the central BSP-equivalence claim
// with randomized inputs: arbitrary edge multisets, arbitrary partition
// counts, and a configuration chosen from the ablation space must always
// reproduce the in-memory oracle bit-for-bit for min-style programs.
func TestPropertyEngineEqualsOracle(t *testing.T) {
	cfgs := []core.Options{
		{DefaultBuffer: true},
		{DisableCrossIteration: true},
		{ForceModel: core.ForceFull, DefaultBuffer: true},
		{ForceModel: core.ForceOnDemand},
		{StreamChunkBytes: 128, DefaultBuffer: true},
		{PersistValues: true},
	}
	f := func(raw []uint16, pRaw, cfgRaw, srcRaw uint8) bool {
		const n = 48
		g := &graph.Graph{NumVertices: n}
		for k := 0; k+1 < len(raw); k += 2 {
			g.Edges = append(g.Edges, graph.Edge{
				Src: graph.VertexID(raw[k] % n), Dst: graph.VertexID(raw[k+1] % n),
			})
		}
		p := int(pRaw)%6 + 1
		src := graph.VertexID(srcRaw) % n
		opts := cfgs[int(cfgRaw)%len(cfgs)]

		mk := func() core.Program { return &algorithms.BFS{Source: src} }
		want, _ := core.RunReference(g, mk(), 0)

		dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
		if err != nil {
			return false
		}
		layout, err := partition.Build(dev, g, p)
		if err != nil {
			return false
		}
		res, err := core.Run(layout, mk(), opts)
		if err != nil {
			return false
		}
		for v := range want {
			a, b := res.Outputs[v], want[v]
			if a != b && !(a > 1e300 && b > 1e300) { // both +Inf
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
