package core

import (
	"fmt"

	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
)

// sciuRun records that edges[prev.end:end] of a sciuBlock belong to vertex
// v, where prev is the preceding run (or 0 for the first).
type sciuRun struct {
	v   graph.VertexID
	end int
}

// sciuBlock is the selectively-loaded content of one sub-block under the
// on-demand model: the active vertices' edge runs concatenated in vertex
// order, with per-vertex boundaries for the cross-iteration cache.
type sciuBlock struct {
	edges []graph.Edge
	runs  []sciuRun
}

// fetchSCIUBlock selectively loads the active vertices' edges of sub-block
// (req.I, req.J). It is safe on pipeline worker goroutines: the vertex
// index was preloaded by the consumer (indexCache is read-only here), the
// active set is not mutated until the apply phase, and each call owns its
// reader — so the sequential/random access classification of AutoReadAt
// stays per-sub-block, exactly as in the synchronous path.
func (e *Engine) fetchSCIUBlock(req pipeline.Request) (sciuBlock, error) {
	i, j := req.I, req.J
	var blk sciuBlock
	idx := e.indexCache[buffer.Key{I: i, J: j}]
	r, err := e.layout.OpenSubBlock(i, j)
	if err != nil {
		return blk, err
	}
	bufp, _ := e.ioBufs.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	lo, hi := e.layout.Meta.Interval(i)
	var loopErr error
	e.active.ForEachRange(lo, hi, func(v int) bool {
		var edges []graph.Edge
		edges, *bufp, loopErr = e.layout.ReadVertexEdges(r, idx, i, graph.VertexID(v), *bufp)
		if loopErr != nil {
			return false
		}
		if len(edges) == 0 {
			return true
		}
		blk.edges = append(blk.edges, edges...)
		blk.runs = append(blk.runs, sciuRun{v: graph.VertexID(v), end: len(blk.edges)})
		return true
	})
	e.ioBufs.Put(bufp)
	var closeErr error
	if r != nil { // nil reader: the block lives entirely in the overlay
		closeErr = r.Close()
	}
	if loopErr != nil {
		return blk, fmt.Errorf("core: sciu interval %d sub-block %d: %w", i, j, loopErr)
	}
	return blk, closeErr
}

// runSCIU executes one iteration under the selective cross-iteration
// update model (paper Algorithm 2). Under the on-demand I/O model it loads
// only the edges of active vertices — located through the per-sub-block
// vertex indexes, so runs of consecutive active vertices become sequential
// reads — applies the user update, and then performs cross-iteration value
// computation: every vertex that was (a) re-activated by this iteration
// and (b) already had its edges loaded scatters its next-iteration
// contribution immediately into the staged accumulator, and is removed
// from the next frontier so its edges are not read again.
//
// Selective loads run ahead of the scatter work on the I/O pipeline; each
// request's byte size is the sub-block's active-run total, so the window
// budget meters what is actually read.
func (e *Engine) runSCIU() error {
	// Modelled per-iteration I/O: the index consultation and the vertex
	// value array read/write-back (the 2|V|·N/B_sr + |V|·N/B_sw terms of
	// the paper's C_r).
	e.chargeIndexAccess()
	if err := e.readValues(); err != nil {
		return err
	}

	cross := !e.opts.DisableCrossIteration
	if cross {
		e.sciuCache = make(map[graph.VertexID][]graph.Edge)
	}
	// Cache budget enforcement must be all-or-nothing per vertex: a vertex
	// is removed from the next frontier only if ALL of its edges were
	// resident for the cross-iteration scatter. A vertex whose caching is
	// ever declined has any partial pieces evicted and is marked dropped.
	var cachedBytes int64
	recBytes := int64(e.layout.Meta.EdgeRecordBytes())
	budget := e.opts.SCIUCacheBudget
	var dropped map[graph.VertexID]bool
	if cross && budget > 0 {
		dropped = make(map[graph.VertexID]bool)
	}

	// Build the selective-load sequence, preloading every touched vertex
	// index so the pipeline's fetch workers see a read-only cache. Under
	// SEM the dead-row check consults the block-activity bitmap (built once
	// per pass) instead of recounting the frontier per row; the skip
	// semantics are identical, so SCIU traffic is unchanged either way.
	e.semBegin()
	var reqs []pipeline.Request
	for i := 0; i < e.p; i++ {
		lo, hi := e.layout.Meta.Interval(i)
		if e.sem != nil {
			if !e.sem.rowLive(i) {
				continue
			}
		} else if e.active.CountRange(lo, hi) == 0 {
			continue
		}
		for j := 0; j < e.p; j++ {
			if e.layout.Meta.SubBlockEdges(i, j) == 0 {
				continue
			}
			idx, err := e.index(i, j)
			if err != nil {
				return err
			}
			var n int64
			e.active.ForEachRange(lo, hi, func(v int) bool {
				n += idx.Rec[v-lo+1] - idx.Rec[v-lo]
				return true
			})
			// Bytes meters the prefetch window: decoded size, like the
			// FCIU requests, since the window bounds memory residency.
			reqs = append(reqs, pipeline.Request{I: i, J: j, Bytes: n * recBytes})
		}
	}
	var pf *pipeline.Prefetcher[sciuBlock]
	if e.opts.prefetchEnabled() && len(reqs) >= 2 {
		pf = pipeline.New(reqs, e.fetchSCIUBlock, e.opts.prefetchOptions())
		defer e.finishPrefetch(pf)
	}

	// Scatter: sub-block by sub-block in request order, consuming from the
	// pipeline when enabled. Cache bookkeeping stays on the consumer. A
	// transient fetch fault mid-stream degrades the rest of the iteration
	// to synchronous selective loads (retried by the device) instead of
	// cancelling the run; the abandoned pipeline is still closed by the
	// deferred finishPrefetch.
	degraded := false
	fallbacks := 0
	for _, req := range reqs {
		if err := e.checkCtx(); err != nil {
			return err
		}
		var blk sciuBlock
		var err error
		if pf != nil && !degraded {
			_, blk, err = pf.NextCtx(e.ctx)
			if err != nil && storage.IsTransient(err) {
				degraded = true
			}
		}
		if pf == nil || degraded {
			if degraded {
				fallbacks++
			}
			blk, err = e.fetchSCIUBlock(req)
		}
		if err != nil {
			return err
		}
		if cross {
			start := 0
			for _, run := range blk.runs {
				edges := blk.edges[start:run.end]
				start = run.end
				vid := run.v
				switch {
				case dropped != nil && dropped[vid]:
					// Already over budget for this vertex.
				case budget > 0 && cachedBytes+int64(len(edges))*recBytes > budget:
					dropped[vid] = true
					if prev, ok := e.sciuCache[vid]; ok {
						cachedBytes -= int64(len(prev)) * recBytes
						delete(e.sciuCache, vid)
					}
				default:
					e.sciuCache[vid] = append(e.sciuCache[vid], edges...)
					cachedBytes += int64(len(edges)) * recBytes
				}
			}
		}
		jLo, jHi := e.layout.Meta.Interval(req.J)
		e.scatter(blk.edges, e.valPrev, e.active, e.acc, e.touched, jLo, jHi)
	}
	e.plStats.Fallbacks += fallbacks

	e.applyAll()

	if cross {
		// Cross-iteration value computation (Alg 2 lines 15–23): vertices
		// re-activated while their edges are memory-resident propagate
		// their just-computed value to iteration t+1 now.
		var reactivated []int
		e.newActive.ForEach(func(v int) bool {
			if e.active.Contains(v) {
				reactivated = append(reactivated, v)
			}
			return true
		})
		for _, v := range reactivated {
			edges := e.sciuCache[graph.VertexID(v)]
			if len(edges) == 0 {
				continue
			}
			e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext, 0, e.n)
			e.prescattered.Activate(v)
		}
		e.sciuCache = nil
	}
	return e.writeValues()
}
