package core

import (
	"fmt"

	"github.com/graphsd/graphsd/internal/graph"
)

// runSCIU executes one iteration under the selective cross-iteration
// update model (paper Algorithm 2). Under the on-demand I/O model it loads
// only the edges of active vertices — located through the per-sub-block
// vertex indexes, so runs of consecutive active vertices become sequential
// reads — applies the user update, and then performs cross-iteration value
// computation: every vertex that was (a) re-activated by this iteration
// and (b) already had its edges loaded scatters its next-iteration
// contribution immediately into the staged accumulator, and is removed
// from the next frontier so its edges are not read again.
func (e *Engine) runSCIU() error {
	// Modelled per-iteration I/O: the index consultation and the vertex
	// value array read/write-back (the 2|V|·N/B_sr + |V|·N/B_sw terms of
	// the paper's C_r).
	e.chargeIndexAccess()
	if err := e.readValues(); err != nil {
		return err
	}

	cross := !e.opts.DisableCrossIteration
	if cross {
		e.sciuCache = make(map[graph.VertexID][]graph.Edge)
	}
	// Cache budget enforcement must be all-or-nothing per vertex: a vertex
	// is removed from the next frontier only if ALL of its edges were
	// resident for the cross-iteration scatter. A vertex whose caching is
	// ever declined has any partial pieces evicted and is marked dropped.
	var cachedBytes int64
	recBytes := int64(e.layout.Meta.EdgeRecordBytes())
	budget := e.opts.SCIUCacheBudget
	var dropped map[graph.VertexID]bool
	if cross && budget > 0 {
		dropped = make(map[graph.VertexID]bool)
	}

	// Scatter: interval by interval, sub-block by sub-block, selectively
	// loading each active vertex's edge run.
	for i := 0; i < e.p; i++ {
		lo, hi := e.layout.Meta.Interval(i)
		if e.active.CountRange(lo, hi) == 0 {
			continue
		}
		for j := 0; j < e.p; j++ {
			if e.layout.Meta.SubBlockEdges(i, j) == 0 {
				continue
			}
			idx, err := e.index(i, j)
			if err != nil {
				return err
			}
			r, err := e.layout.OpenSubBlock(i, j)
			if err != nil {
				return err
			}
			var batch []graph.Edge
			var loopErr error
			e.active.ForEachRange(lo, hi, func(v int) bool {
				var edges []graph.Edge
				edges, e.readBuf, loopErr = e.layout.ReadVertexEdges(r, idx, i, graph.VertexID(v), e.readBuf)
				if loopErr != nil {
					return false
				}
				if len(edges) == 0 {
					return true
				}
				batch = append(batch, edges...)
				if cross {
					vid := graph.VertexID(v)
					switch {
					case dropped != nil && dropped[vid]:
						// Already over budget for this vertex.
					case budget > 0 && cachedBytes+int64(len(edges))*recBytes > budget:
						dropped[vid] = true
						if prev, ok := e.sciuCache[vid]; ok {
							cachedBytes -= int64(len(prev)) * recBytes
							delete(e.sciuCache, vid)
						}
					default:
						e.sciuCache[vid] = append(e.sciuCache[vid], edges...)
						cachedBytes += int64(len(edges)) * recBytes
					}
				}
				return true
			})
			closeErr := r.Close()
			if loopErr != nil {
				return fmt.Errorf("core: sciu interval %d sub-block %d: %w", i, j, loopErr)
			}
			if closeErr != nil {
				return closeErr
			}
			e.scatter(batch, e.valPrev, e.active, e.acc, e.touched)
		}
	}

	e.applyAll()

	if cross {
		// Cross-iteration value computation (Alg 2 lines 15–23): vertices
		// re-activated while their edges are memory-resident propagate
		// their just-computed value to iteration t+1 now.
		var reactivated []int
		e.newActive.ForEach(func(v int) bool {
			if e.active.Contains(v) {
				reactivated = append(reactivated, v)
			}
			return true
		})
		for _, v := range reactivated {
			edges := e.sciuCache[graph.VertexID(v)]
			if len(edges) == 0 {
				continue
			}
			e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext)
			e.prescattered.Activate(v)
		}
		e.sciuCache = nil
	}
	return e.writeValues()
}
