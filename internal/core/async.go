// Asynchronous execution (Options.Async): a work-list engine for monotonic
// programs that replaces the BSP barrier with a priority queue over the P
// source intervals of the sub-block grid.
//
// One scheduler step pops the pending-mass-richest interval and processes
// its whole grid row atomically: the row's frontier is frozen, the frozen
// vertices' live values are snapshotted, every non-empty sub-block (i, j)
// is streamed (through the prefetch pipeline and shared cache) or loaded
// selectively (per-vertex reads, when the row's frontier is sparse enough
// that the cost model prices them below streaming), its contributions are
// scattered with the lock-free two-phase scatter and applied immediately
// into the live values, and finally every frozen source is settled with
// AsyncConsume. Rows whose pending mass changed are re-keyed in the queue;
// the run converges when the queue drains or total residual falls to
// Options.AsyncEpsilon.
//
// Processing a whole row per pop is what keeps PR-Delta's mass accounting
// exact: a source's residual is consumed only after it has been pushed to
// every destination interval, so no per-(vertex, column) pushed-mass matrix
// is needed. For min-programs row atomicity is merely the natural grain.
//
// Determinism contract: for a fixed Options.AsyncSeed and thread count the
// pop sequence — and therefore every result bit — is reproducible. Row
// priorities are always recomputed canonically (ascending vertex order over
// the live frontier) rather than maintained incrementally, ties break by a
// seeded hash then the row index, aging is a pure function of the persisted
// step counter, and checkpoints capture the step counter and per-row
// enqueue steps, so a resumed run replays the identical schedule.
package core

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/checkpoint"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
)

// asyncAgingEvery is the aging cadence: every asyncAgingEvery-th pop takes
// the longest-queued row instead of the highest-keyed one, so a cold,
// expensive, far-from-the-action row is processed at least once per
// asyncAgingEvery·P steps no matter how little mass it holds.
const asyncAgingEvery = 16

// asyncRow is one source interval's scheduling state.
type asyncRow struct {
	i    int     // interval (grid row) index
	mass float64 // canonical pending mass, Σ Residual over the row's frontier
	key  float64 // heap priority: mass per second of row I/O
	tie  uint64  // seeded tie-break hash, fixed per (seed, i)
	enq  int64   // step at which the row last entered the queue (aging)
	pos  int     // heap position, -1 when not queued
}

// rowHeap is a max-heap over queued rows: key descending, then tie hash,
// then row index — a total order, so heap extraction is deterministic.
type rowHeap []*asyncRow

func (h rowHeap) Len() int { return len(h) }
func (h rowHeap) Less(a, b int) bool {
	ra, rb := h[a], h[b]
	if ra.key != rb.key {
		return ra.key > rb.key
	}
	if ra.tie != rb.tie {
		return ra.tie < rb.tie
	}
	return ra.i < rb.i
}
func (h rowHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].pos = a
	h[b].pos = b
}
func (h *rowHeap) Push(x any) {
	r := x.(*asyncRow)
	r.pos = len(*h)
	*h = append(*h, r)
}
func (h *rowHeap) Pop() any {
	old := *h
	r := old[len(old)-1]
	r.pos = -1
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return r
}

// asyncTie is a splitmix64-style hash of (seed, row); equal-mass rows pop
// in hash order so different seeds explore different (but each fully
// reproducible) schedules.
func asyncTie(seed uint64, i int) uint64 {
	z := seed + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// asyncRun is the asynchronous driver state layered over an Engine.
type asyncRun struct {
	e    *Engine
	mono Monotonic

	rows []*asyncRow
	h    rowHeap
	step int64

	// rowBlocks lists each row's non-empty destination columns and
	// rowStreamCost prices streaming all of them (seek + sequential read
	// per block), the denominator of the priority key.
	rowBlocks     [][]int
	rowStreamCost []time.Duration

	// frontier is the frozen per-step row frontier (the scatter filter) and
	// frontList its ascending vertex list. consumed marks vertices settled
	// at least once, for reactivation counting.
	frontier  *bitset.ActiveSet
	frontList []int
	consumed  *bitset.ActiveSet
	dirty     []bool // rows whose mass must be recomputed after the step

	blocks   int64 // sub-blocks processed
	reacts   int64 // consumed vertices re-entering the frontier
	selSteps int   // steps that took the selective path
	fallback int   // pipelined blocks re-loaded synchronously after a degrade
}

// runAsync executes the engine asynchronously. It mirrors run()'s setup and
// result assembly but replaces the iteration loop with the scheduler loop.
func (e *Engine) runAsync() (*Result, error) {
	mono, ok := e.prog.(Monotonic)
	if !ok {
		return nil, fmt.Errorf("core: program %s is not monotonic; -async needs label-correcting or residual form (use prd instead of pr)", e.prog.Name())
	}
	if e.opts.PersistValues {
		return nil, fmt.Errorf("core: PersistValues is incompatible with Async (values are live, not iteration-versioned)")
	}
	start := time.Now()
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	dev := e.layout.Dev
	ioBase := dev.Stats()
	decodeStart := e.layout.DecodeTime()

	var err error
	e.degrees, err = e.layout.LoadDegrees()
	if err != nil {
		return nil, err
	}
	e.prog.Init(e.n, e.valPrev, e.aux, e.active)

	a := &asyncRun{
		e:             e,
		mono:          mono,
		rows:          make([]*asyncRow, e.p),
		rowBlocks:     make([][]int, e.p),
		rowStreamCost: make([]time.Duration, e.p),
		frontier:      bitset.NewActiveSet(e.n),
		consumed:      bitset.NewActiveSet(e.n),
		dirty:         make([]bool, e.p),
	}
	for i := 0; i < e.p; i++ {
		a.rows[i] = &asyncRow{i: i, tie: asyncTie(e.opts.AsyncSeed, i), pos: -1}
		var cost time.Duration
		for j := 0; j < e.p; j++ {
			if e.layout.Meta.SubBlockEdges(i, j) == 0 {
				continue
			}
			a.rowBlocks[i] = append(a.rowBlocks[i], j)
			cost += e.sched.BlockCost(e.layout.Meta.SubBlockDiskBytes(i, j))
		}
		a.rowStreamCost[i] = cost
	}

	resumed := false
	checkpoints := 0
	ck := e.opts.Checkpoint
	if ck.Resume && ck.Dir != "" && checkpoint.Exists(ck.Dir) {
		st, err := checkpoint.Load(ck.Dir)
		if err != nil {
			return nil, err
		}
		if err := a.restore(st); err != nil {
			return nil, err
		}
		resumed = true
	}
	resumedFrom := int(a.step)

	// Seed (or, after a resume, rebuild) the queue from the live frontier.
	for i := 0; i < e.p; i++ {
		a.refreshRow(i, a.rows[i].enq)
	}

	maxIter := e.prog.MaxIterations()
	if e.opts.MaxIterations > 0 {
		maxIter = e.opts.MaxIterations
	}
	// One BSP iteration touches up to P live rows, so the equivalent async
	// step budget is maxIter rows per interval.
	maxSteps := int64(maxIter) * int64(e.p)

	eps := e.opts.AsyncEpsilon
	var iterStats []IterStat
	converged := false
	for a.h.Len() > 0 {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		if eps > 0 && a.totalResidual() <= eps {
			converged = true
			break
		}
		if a.step >= maxSteps {
			break
		}

		row := a.popRow()
		ioBefore := dev.Stats()
		computeBefore := e.computeTime
		decodeBefore := e.layout.DecodeTime()
		plBefore := e.plStats
		blocksBefore := a.blocks
		reactsBefore := a.reacts
		activeBefore := e.active.Count()

		path, err := a.processRow(row.i)
		if err != nil {
			return nil, err
		}
		a.step++

		ioDelta := dev.Stats().Sub(ioBefore)
		st := IterStat{
			Index:         int(a.step) - 1,
			Path:          path,
			Active:        activeBefore,
			Blocks:        int(a.blocks - blocksBefore),
			Reactivations: a.reacts - reactsBefore,
			Residual:      a.totalResidual(),
			IO:            ioDelta,
			IOTime:        ioDelta.TotalTime(),
			ComputeTime:   e.computeTime - computeBefore,
			DecodeTime:    e.layout.DecodeTime() - decodeBefore,
			Pipeline:      e.plStats.Sub(plBefore),
		}
		iterStats = append(iterStats, st)
		if e.opts.OnIteration != nil {
			e.opts.OnIteration(st)
		}

		if ck.saveEnabled() && a.step%int64(ck.Every) == 0 {
			if err := a.save(ck.Dir); err != nil {
				return nil, err
			}
			checkpoints++
		}
	}
	if a.h.Len() == 0 {
		converged = true
	}
	e.plStats.Fallbacks += a.fallback

	outputs := make([]float64, e.n)
	tOut := time.Now()
	for v := range outputs {
		outputs[v] = e.prog.Output(graph.VertexID(v), e.valPrev[v], e.aux)
	}
	e.computeTime += time.Since(tOut)

	return &Result{
		Algorithm:         e.prog.Name(),
		Iterations:        int(a.step),
		Converged:         converged,
		Outputs:           outputs,
		WallTime:          time.Since(start),
		ComputeTime:       e.computeTime,
		DecodeTime:        e.layout.DecodeTime() - decodeStart + time.Duration(e.semDecodeNanos.Load()),
		Codec:             e.layout.Meta.BlockCodec().String(),
		CompressRatio:     compressRatio(&e.layout.Meta),
		IO:                dev.Stats().Sub(ioBase),
		SharedHits:        e.sharedHits.Load(),
		SharedMisses:      e.sharedMisses.Load(),
		SchedulerOverhead: e.sched.TotalOverhead(),
		SchedAccuracy:     e.sched.Accuracy(),
		Buffer:            e.buf.Stats(),
		Pipeline:          e.plStats,
		IterStats:         iterStats,
		Resumed:           resumed,
		ResumedFrom:       resumedFrom,
		Checkpoints:       checkpoints,
		SEM: SEMStats{
			Enabled:         e.opts.SEM || (e.opts.SharedBlocks != nil && e.opts.SharedBlocks.Compressed()),
			BlocksSkipped:   int64(e.plStats.Skipped),
			BytesSkipped:    e.plStats.SkippedBytes,
			CompressedHits:  e.semCompHits.Load(),
			DecodeTime:      time.Duration(e.semDecodeNanos.Load()),
			CompressedBytes: e.semCompBytes.Load(),
			DecodedBytes:    e.semDecBytes.Load(),
		},
		Async: AsyncStats{
			Enabled:         true,
			Steps:           int(a.step),
			SelectiveSteps:  a.selSteps,
			BlocksScheduled: a.blocks,
			Reactivations:   a.reacts,
			FinalResidual:   a.totalResidual(),
		},
	}, nil
}

// totalResidual sums the canonical pending mass over all rows (queued rows
// hold the only non-zero masses).
func (a *asyncRun) totalResidual() float64 {
	var t float64
	for _, r := range a.rows {
		if r.pos >= 0 {
			t += r.mass
		}
	}
	return t
}

// rowMass recomputes row i's pending mass canonically: ascending vertex
// order over the live frontier, so the same engine state always produces
// the identical float — the bedrock of deterministic replay and resume.
func (a *asyncRun) rowMass(i int) float64 {
	e := a.e
	lo, hi := e.layout.Meta.Interval(i)
	var mass float64
	e.active.ForEachRange(lo, hi, func(v int) bool {
		mass += a.mono.Residual(graph.VertexID(v), e.valPrev[v], e.aux)
		return true
	})
	return mass
}

// refreshRow recomputes row i's mass and key and fixes its queue
// membership: enqueue (recording enq as its entry step) when mass appeared,
// re-key in place when it changed, remove when it drained.
func (a *asyncRun) refreshRow(i int, enq int64) {
	r := a.rows[i]
	r.mass = a.rowMass(i)
	if r.mass <= 0 {
		if r.pos >= 0 {
			heap.Remove(&a.h, r.pos)
		}
		return
	}
	costSec := a.rowStreamCost[i].Seconds()
	if costSec <= 0 {
		// A row with no on-disk blocks is free to process; schedule it
		// first so its (edge-less) frontier settles immediately.
		costSec = 1e-12
	}
	r.key = r.mass / costSec
	if r.pos >= 0 {
		heap.Fix(&a.h, r.pos)
		return
	}
	r.enq = enq
	heap.Push(&a.h, r)
}

// popRow extracts the next row to process: normally the heap maximum, but
// every asyncAgingEvery-th step the longest-queued row, so low-mass rows
// are never starved. Aging depends only on the persisted step counter.
func (a *asyncRun) popRow() *asyncRow {
	if (a.step+1)%asyncAgingEvery == 0 && a.h.Len() > 1 {
		oldest := 0
		for k := 1; k < len(a.h); k++ {
			r, o := a.h[k], a.h[oldest]
			if r.enq < o.enq || (r.enq == o.enq && r.i < o.i) {
				oldest = k
			}
		}
		return heap.Remove(&a.h, oldest).(*asyncRow)
	}
	return heap.Pop(&a.h).(*asyncRow)
}

// processRow runs one scheduler step on row i, returning the executed path
// ("async" streamed, "async-sel" selective). See the package comment for
// the step's phases and why the row is processed atomically.
func (a *asyncRun) processRow(i int) (string, error) {
	e := a.e
	lo, hi := e.layout.Meta.Interval(i)

	// Freeze the row frontier and snapshot its values: every sub-block of
	// the row scatters the identical inputs even though applies mutate the
	// live values mid-row (the diagonal block feeds back into this very
	// interval). The frozen set is also the scatter filter — e.active
	// changes under the applies and must not filter the scatter.
	a.frontList = a.frontList[:0]
	a.frontier.Reset()
	e.active.ForEachRange(lo, hi, func(v int) bool {
		a.frontList = append(a.frontList, v)
		a.frontier.Activate(v)
		e.valCur[v] = e.valPrev[v]
		return true
	})
	for k := range a.dirty {
		a.dirty[k] = false
	}
	a.dirty[i] = true

	// Pick the row's load path: stream every non-empty block, or read the
	// frontier's edges selectively through the per-vertex index. The value
	// terms are identical either way, so the comparison is edges-only.
	path := "async"
	selective := false
	if len(a.frontList) > 0 && len(a.rowBlocks[i]) > 0 {
		seqB, ranB, seeks := e.sched.EstimateOnDemand(a.frontier, e.degrees)
		if e.sched.RowSelectiveCost(seqB, ranB, seeks, hi-lo) < a.rowStreamCost[i] {
			selective = true
			path = "async-sel"
		}
	}

	var applied int64
	var err error
	if selective {
		a.selSteps++
		applied, err = a.scatterRowSelective(i, lo)
	} else {
		applied, err = a.scatterRowStreamed(i)
	}
	if err != nil {
		return path, err
	}

	// Settle the frozen sources in ascending order: each one's snapshot has
	// now been pushed along every out-edge, so consume it and keep the
	// vertex active only if mass arrived underneath the scatter.
	t0 := time.Now()
	for _, v := range a.frontList {
		nv, act := a.mono.AsyncConsume(graph.VertexID(v), e.valCur[v], e.valPrev[v], e.aux, e.n)
		e.valPrev[v] = nv
		if !act {
			e.active.Deactivate(v)
		}
		a.consumed.Activate(v)
	}
	e.computeTime += time.Since(t0)

	// Per-step value traffic: the frozen interval's values stream in once;
	// the applied destinations write back. BSP charges the full |V| array
	// both ways every iteration — this per-interval accounting is where the
	// async device-byte win on sparse frontiers comes from.
	e.layout.Dev.Charge(storage.SeqRead, int64(hi-lo)*graph.VertexValueBytes)
	if applied > 0 {
		e.layout.Dev.Charge(storage.SeqWrite, applied*graph.VertexValueBytes)
	}

	// Re-key every row whose mass moved: this row (consumed) and every
	// destination row the applies activated into.
	for r := 0; r < e.p; r++ {
		if a.dirty[r] {
			a.refreshRow(r, a.step+1)
		}
	}
	return path, nil
}

// scatterRowStreamed processes row i by streaming its non-empty sub-blocks
// whole, prefetched through the I/O pipeline (transient faults degrade the
// rest of the row to synchronous loads, as in the BSP passes). Each block
// is scattered and applied before the next is consumed.
func (a *asyncRun) scatterRowStreamed(i int) (int64, error) {
	e := a.e
	cols := a.rowBlocks[i]
	if len(a.frontList) == 0 {
		return 0, nil
	}
	reqs := make([]pipeline.Request, 0, len(cols))
	for _, j := range cols {
		reqs = append(reqs, pipeline.Request{I: i, J: j, Bytes: e.layout.Meta.SubBlockBytes(i, j)})
	}
	pf := e.newBlockPrefetcher(reqs)
	if pf != nil {
		defer e.finishPrefetch(pf)
	}
	degraded := false
	var applied int64
	for _, req := range reqs {
		if err := e.checkCtx(); err != nil {
			return applied, err
		}
		var edges []graph.Edge
		var err error
		if pf != nil && !degraded {
			_, edges, err = pf.NextCtx(e.ctx)
			if err != nil {
				if !storage.IsTransient(err) {
					return applied, err
				}
				degraded = true
			}
		}
		if pf == nil || degraded {
			if degraded {
				a.fallback++
			}
			edges, err = e.loadBlock(req.I, req.J)
			if err != nil {
				return applied, err
			}
		}
		applied += a.scatterApplyBlock(edges, req.J)
	}
	return applied, nil
}

// scatterRowSelective processes row i by reading only the frozen frontier's
// edge runs through each sub-block's vertex index — the async analogue of
// SCIU's on-demand loads. It runs synchronously: frontier rows this sparse
// spend their time seeking, not streaming, and the frozen frontier keeps
// the reads deterministic.
func (a *asyncRun) scatterRowSelective(i, lo int) (int64, error) {
	e := a.e
	// Modelled per-step index consultation, the per-interval slice of
	// SCIU's 2|V| term.
	_, hi := e.layout.Meta.Interval(i)
	e.layout.Dev.Charge(storage.SeqRead, int64(hi-lo)*graph.IndexEntryBytes)

	var applied int64
	bufp, _ := e.ioBufs.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	defer e.ioBufs.Put(bufp)
	var edges []graph.Edge
	for _, j := range a.rowBlocks[i] {
		if err := e.checkCtx(); err != nil {
			return applied, err
		}
		idx, err := e.index(i, j)
		if err != nil {
			return applied, err
		}
		r, err := e.layout.OpenSubBlock(i, j)
		if err != nil {
			return applied, err
		}
		edges = edges[:0]
		var loopErr error
		for _, v := range a.frontList {
			var runEdges []graph.Edge
			runEdges, *bufp, loopErr = e.layout.ReadVertexEdges(r, idx, i, graph.VertexID(v), *bufp)
			if loopErr != nil {
				break
			}
			edges = append(edges, runEdges...)
		}
		var closeErr error
		if r != nil { // nil reader: the block lives entirely in the overlay
			closeErr = r.Close()
		}
		if loopErr != nil {
			return applied, fmt.Errorf("core: async interval %d sub-block %d: %w", i, j, loopErr)
		}
		if closeErr != nil {
			return applied, closeErr
		}
		applied += a.scatterApplyBlock(edges, j)
	}
	return applied, nil
}

// scatterApplyBlock scatters one sub-block's edges from the frozen snapshot
// and immediately applies the touched destinations of interval j into the
// live values, returning the number of vertices applied.
func (a *asyncRun) scatterApplyBlock(edges []graph.Edge, j int) int64 {
	e := a.e
	a.blocks++
	if len(edges) == 0 {
		return 0
	}
	jLo, jHi := e.layout.Meta.Interval(j)
	e.scatter(edges, e.valCur, a.frontier, e.acc, e.touched, jLo, jHi)
	return a.applyAsyncInterval(j)
}

// applyAsyncInterval folds interval j's touched accumulators into the live
// values with AsyncApply, activating woken vertices (counting those that
// had already been consumed as reactivations) and marking their rows dirty
// for re-keying. Apply is per-vertex independent, so large batches are
// chunked across the configured threads exactly like the BSP apply;
// activation, reactivation and dirty bookkeeping merge serially so counts
// and heap updates stay deterministic.
func (a *asyncRun) applyAsyncInterval(j int) int64 {
	e := a.e
	lo, hi := e.layout.Meta.Interval(j)
	t0 := time.Now()
	defer func() { e.computeTime += time.Since(t0) }()
	id := e.prog.Identity()

	var pending []int
	e.touched.ForEachRange(lo, hi, func(v int) bool {
		pending = append(pending, v)
		return true
	})
	if len(pending) == 0 {
		return 0
	}

	activate := func(v int) {
		if !e.active.Contains(v) {
			e.active.Activate(v)
			if a.consumed.Contains(v) {
				a.reacts++
			}
		}
		a.dirty[j] = true
	}

	workers := e.opts.threads()
	if len(pending) < serialApplyThreshold || workers <= 1 {
		for _, v := range pending {
			nv, act := a.mono.AsyncApply(graph.VertexID(v), e.valPrev[v], e.acc[v], e.aux, e.n)
			e.valPrev[v] = nv
			if act {
				activate(v)
			}
			e.acc[v] = id
			e.touched.Deactivate(v)
		}
		return int64(len(pending))
	}

	chunk := (len(pending) + workers - 1) / workers
	activated := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		loK, hiK := w*chunk, min((w+1)*chunk, len(pending))
		if loK >= hiK {
			continue
		}
		wg.Add(1)
		go func(w, loK, hiK int) {
			defer wg.Done()
			var acts []int
			for _, v := range pending[loK:hiK] {
				nv, act := a.mono.AsyncApply(graph.VertexID(v), e.valPrev[v], e.acc[v], e.aux, e.n)
				e.valPrev[v] = nv
				if act {
					acts = append(acts, v)
				}
				e.acc[v] = id
			}
			activated[w] = acts
		}(w, loK, hiK)
	}
	wg.Wait()
	for _, acts := range activated {
		for _, v := range acts {
			activate(v)
		}
	}
	for _, v := range pending {
		e.touched.Deactivate(v)
	}
	return int64(len(pending))
}

// save captures the async engine state at a step boundary: live values and
// aux, the frontier, the ever-consumed set, the step counter and every
// row's enqueue step. The queue itself is not saved — restore recomputes
// every row's mass canonically, reproducing identical keys.
func (a *asyncRun) save(dir string) error {
	e := a.e
	enq := make([]uint64, e.p)
	for i, r := range a.rows {
		enq[i] = uint64(r.enq)
	}
	st := &checkpoint.State{
		Algorithm:    e.prog.Name(),
		NumVertices:  e.n,
		P:            e.p,
		Iteration:    int(a.step),
		Values:       e.valPrev,
		Aux:          e.aux,
		AccNext:      e.accNext, // identity by the step invariant
		Active:       e.active.Words(),
		TouchedNext:  e.touched.Words(), // empty by the step invariant
		Async:        true,
		EnqueueSteps: enq,
		Consumed:     a.consumed.Words(),
	}
	return checkpoint.Save(dir, st)
}

// restore loads an async checkpoint into the engine. The caller rebuilds
// the queue by refreshing every row afterwards.
func (a *asyncRun) restore(st *checkpoint.State) error {
	e := a.e
	if !st.Async {
		return fmt.Errorf("core: checkpoint was taken by the BSP engine; cannot resume it under -async")
	}
	if st.Algorithm != e.prog.Name() {
		return fmt.Errorf("core: checkpoint is for algorithm %q, running %q", st.Algorithm, e.prog.Name())
	}
	if st.NumVertices != e.n || st.P != e.p {
		return fmt.Errorf("core: checkpoint shape %d vertices / P=%d, layout has %d / P=%d",
			st.NumVertices, st.P, e.n, e.p)
	}
	if len(st.Values) != e.n {
		return fmt.Errorf("core: checkpoint values sized %d, want %d", len(st.Values), e.n)
	}
	if (st.Aux == nil) != (e.aux == nil) || len(st.Aux) != len(e.aux) {
		return fmt.Errorf("core: checkpoint aux state length %d, program %s keeps %d",
			len(st.Aux), e.prog.Name(), len(e.aux))
	}
	if len(st.EnqueueSteps) != e.p {
		return fmt.Errorf("core: checkpoint enqueue steps sized %d, want P=%d", len(st.EnqueueSteps), e.p)
	}
	copy(e.valPrev, st.Values)
	if e.aux != nil {
		copy(e.aux, st.Aux)
	}
	if err := e.active.LoadWords(st.Active); err != nil {
		return fmt.Errorf("core: checkpoint active frontier: %w", err)
	}
	if err := a.consumed.LoadWords(st.Consumed); err != nil {
		return fmt.Errorf("core: checkpoint consumed set: %w", err)
	}
	for i, r := range a.rows {
		r.enq = int64(st.EnqueueSteps[i])
	}
	a.step = int64(st.Iteration)
	return nil
}
