package core_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func benchLayout(b *testing.B, g *graph.Graph, p int) *partition.Layout {
	b.Helper()
	dev, err := storage.OpenDevice(b.TempDir(), storage.ScaledHDD)
	if err != nil {
		b.Fatal(err)
	}
	l, err := partition.Build(dev, g, p)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func BenchmarkReferencePageRank(b *testing.B) {
	g, err := gen.RMAT(13, 12, gen.Graph500, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunReference(g, &algorithms.PageRank{Iterations: 5}, 0)
	}
}

func BenchmarkEnginePageRank(b *testing.B) {
	g, err := gen.RMAT(12, 12, gen.Graph500, 1)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLayout(b, g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(l, &algorithms.PageRank{Iterations: 5}, core.Options{DefaultBuffer: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBFS(b *testing.B) {
	g, err := gen.RMAT(12, 12, gen.Graph500, 2)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLayout(b, g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{DefaultBuffer: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineThreads(b *testing.B) {
	g, err := gen.RMAT(13, 16, gen.Graph500, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(benchName(threads), func(b *testing.B) {
			l := benchLayout(b, g, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, &algorithms.PageRank{Iterations: 3}, core.Options{Threads: threads})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ComputeTime.Microseconds())/1000, "compute-ms")
			}
		})
	}
}

func benchName(threads int) string {
	return "threads-" + string(rune('0'+threads))
}

// BenchmarkEnginePrefetch measures the wall-clock effect of the I/O
// pipeline: identical runs with prefetching off and on, with the measured
// stall and overlap reported per run. The overlap metric is the fetch time
// hidden behind scatter/apply work — the quantity the pipeline exists to
// create.
//
// The "hot" tier reads from the page cache, so fetches are CPU-bound
// decode work and the pipeline only wins when spare cores exist. The
// "cold" tier emulates out-of-core read latency by sleeping in the fault
// injector before each block read — fetches then genuinely block, and the
// pipeline hides them behind scatter/apply even on one core.
func BenchmarkEnginePrefetch(b *testing.B) {
	g, err := gen.RMAT(12, 16, gen.Graph500, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, tier := range []struct {
		name    string
		latency time.Duration
	}{
		{"hot", 0},
		{"cold", 2 * time.Millisecond},
	} {
		for _, cfg := range []struct {
			name string
			opts core.Options
		}{
			{"sync", core.Options{PrefetchDepth: -1}},
			{"pipelined", core.Options{}},
		} {
			b.Run(tier.name+"/"+cfg.name, func(b *testing.B) {
				l := benchLayout(b, g, 6)
				if tier.latency > 0 {
					l.Dev.SetFaultInjector(func(op, name string) error {
						if op == "read" && strings.HasPrefix(name, "blocks/") && strings.HasSuffix(name, ".edges") {
							time.Sleep(tier.latency)
						}
						return nil
					})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Run(l, &algorithms.PageRank{Iterations: 3}, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.WallTime.Microseconds())/1000, "wall-ms")
					b.ReportMetric(float64(res.Pipeline.Overlap.Microseconds())/1000, "overlap-ms")
					b.ReportMetric(float64(res.Pipeline.Stall.Microseconds())/1000, "stall-ms")
				}
			})
		}
	}
}

// BenchmarkEngineCompressed compares raw and delta sub-block codecs on a
// cold device: the fault injector sleeps in proportion to each block file's
// on-disk size, emulating a throughput-limited disk, so moving fewer bytes
// directly shortens the run. Decode runs on the pipeline's fetch workers,
// overlapped with compute.
//
// When BENCH_COMPRESS_OUT names a file, a JSON artifact with the per-codec
// disk bytes, compression ratio, and wall times is written for CI.
func BenchmarkEngineCompressed(b *testing.B) {
	g, err := gen.RMAT(12, 16, gen.Graph500, 9)
	if err != nil {
		b.Fatal(err)
	}
	// Emulated cold-read throughput for the sleep-per-block injector.
	const coldBytesPerSecond = 200 << 20

	type record struct {
		Codec        string  `json:"codec"`
		DiskBytes    int64   `json:"disk_bytes"`
		DecodedBytes int64   `json:"decoded_bytes"`
		Ratio        float64 `json:"compression_ratio"`
		WallMs       float64 `json:"cold_wall_ms"`
		ReadKiB      float64 `json:"read_kib_per_run"`
		DecodeMs     float64 `json:"decode_ms"`
	}
	var records []record

	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		b.Run(codec.String(), func(b *testing.B) {
			dev, err := storage.OpenDevice(b.TempDir(), storage.ScaledHDD)
			if err != nil {
				b.Fatal(err)
			}
			l, err := partition.Build(dev, g, 6, partition.WithCodec(codec))
			if err != nil {
				b.Fatal(err)
			}
			dev.SetFaultInjector(func(op, name string) error {
				if op == "read" && strings.HasPrefix(name, "blocks/") && strings.HasSuffix(name, ".edges") {
					if size, err := dev.Size(name); err == nil {
						time.Sleep(time.Duration(size) * time.Second / coldBytesPerSecond)
					}
				}
				return nil
			})
			var last *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, &algorithms.PageRank{Iterations: 3}, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
				b.ReportMetric(float64(res.WallTime.Microseconds())/1000, "wall-ms")
				b.ReportMetric(float64(res.IO.ReadBytes())/1024, "read-KiB")
				b.ReportMetric(float64(res.DecodeTime.Microseconds())/1000, "decode-ms")
				b.ReportMetric(res.CompressRatio, "ratio")
			}
			b.StopTimer()
			if last != nil {
				records = append(records, record{
					Codec:        codec.String(),
					DiskBytes:    l.Meta.EdgeDiskBytesTotal(),
					DecodedBytes: l.Meta.EdgeBytesTotal(),
					Ratio:        last.CompressRatio,
					WallMs:       float64(last.WallTime.Microseconds()) / 1000,
					ReadKiB:      float64(last.IO.ReadBytes()) / 1024,
					DecodeMs:     float64(last.DecodeTime.Microseconds()) / 1000,
				})
			}
		})
	}

	if path := os.Getenv("BENCH_COMPRESS_OUT"); path != "" && len(records) > 0 {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineAsync compares asynchronous and BSP execution on the two
// workloads the scheduler targets: a sparse-frontier traversal (SSSP, where
// async touches only live rows while BSP sweeps the grid) and PageRank-Delta
// run to a residual epsilon (where async retires mass richest-row-first).
// Device bytes and block activations are reported alongside wall time — they
// are the figures the fig-async experiment asserts on.
func BenchmarkEngineAsync(b *testing.B) {
	sparse := gen.Weighted(gen.Chain(4096), 7, 11)
	rmat, err := gen.RMAT(12, 12, gen.Graph500, 4)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		prog func() core.Program
		opts core.Options
	}{
		{"sssp-sparse/bsp", sparse, func() core.Program { return &algorithms.SSSP{Source: 0} },
			core.Options{DefaultBuffer: true}},
		{"sssp-sparse/async", sparse, func() core.Program { return &algorithms.SSSP{Source: 0} },
			core.Options{Async: true, DefaultBuffer: true}},
		{"prd-epsilon/bsp", rmat, func() core.Program { return &algorithms.PageRankDelta{Iterations: 200} },
			core.Options{DefaultBuffer: true}},
		{"prd-epsilon/async", rmat, func() core.Program { return &algorithms.PageRankDelta{Iterations: 200} },
			core.Options{Async: true, AsyncEpsilon: 1e-6, DefaultBuffer: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			l := benchLayout(b, c.g, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, c.prog(), c.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.IO.TotalBytes())/1024, "device-KiB")
				b.ReportMetric(float64(res.WallTime.Microseconds())/1000, "wall-ms")
				if res.Async.Enabled {
					b.ReportMetric(float64(res.Async.BlocksScheduled), "blocks")
				} else {
					b.ReportMetric(float64(res.Iterations), "iters")
				}
			}
		})
	}
}
