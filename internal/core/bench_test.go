package core_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func benchLayout(b *testing.B, g *graph.Graph, p int) *partition.Layout {
	b.Helper()
	dev, err := storage.OpenDevice(b.TempDir(), storage.ScaledHDD)
	if err != nil {
		b.Fatal(err)
	}
	l, err := partition.Build(dev, g, p)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func BenchmarkReferencePageRank(b *testing.B) {
	g, err := gen.RMAT(13, 12, gen.Graph500, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunReference(g, &algorithms.PageRank{Iterations: 5}, 0)
	}
}

func BenchmarkEnginePageRank(b *testing.B) {
	g, err := gen.RMAT(12, 12, gen.Graph500, 1)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLayout(b, g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(l, &algorithms.PageRank{Iterations: 5}, core.Options{DefaultBuffer: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBFS(b *testing.B) {
	g, err := gen.RMAT(12, 12, gen.Graph500, 2)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLayout(b, g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{DefaultBuffer: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineThreads(b *testing.B) {
	g, err := gen.RMAT(13, 16, gen.Graph500, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(benchName(threads), func(b *testing.B) {
			l := benchLayout(b, g, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, &algorithms.PageRank{Iterations: 3}, core.Options{Threads: threads})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ComputeTime.Microseconds())/1000, "compute-ms")
			}
		})
	}
}

func benchName(threads int) string {
	return "threads-" + string(rune('0'+threads))
}
