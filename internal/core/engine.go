package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/checkpoint"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
	"github.com/graphsd/graphsd/internal/vertexstore"
)

// serialScatterThreshold is the edge count below which scatter runs
// single-threaded; goroutine fan-out costs more than it saves on tiny
// batches.
const serialScatterThreshold = 4096

// Engine executes a vertex program over a partitioned on-disk graph using
// GraphSD's state- and dependency-aware update strategy. Create one with
// NewEngine and call Run once; an Engine is single-use.
type Engine struct {
	layout *partition.Layout
	prog   Program
	opts   Options
	sched  *iosched.Scheduler
	buf    *buffer.Buffer

	// ctx cancels the run between sub-blocks; never nil once run starts.
	ctx context.Context

	// sharedHits/sharedMisses count this run's full-block loads served by /
	// missed in the cross-job shared cache (Options.SharedBlocks). Atomic:
	// pipeline fetch workers load concurrently.
	sharedHits, sharedMisses atomic.Int64

	n, p    int
	degrees []uint32

	// BSP state. valPrev holds iteration t-1 values (scatter source),
	// valCur iteration t values (apply target). acc/touched are the
	// current iteration's accumulators; accNext/touchedNext stage
	// cross-iteration contributions for t+1.
	valPrev, valCur []float64
	aux             []float64
	acc, accNext    []float64
	touched         *bitset.ActiveSet
	touchedNext     *bitset.ActiveSet
	active          *bitset.ActiveSet
	newActive       *bitset.ActiveSet
	prescattered    *bitset.ActiveSet

	// indexCache holds per-sub-block vertex indexes once loaded; the
	// structures are immutable so they are kept for the whole run.
	indexCache map[buffer.Key]*partition.Index

	// sciuCache holds the edges of this iteration's active vertices so the
	// cross-iteration phase can reuse them without re-reading (Alg 2,
	// lines 15–23).
	sciuCache map[graph.VertexID][]graph.Edge

	// scatterBufs is the reusable per-(worker, range) contribution scratch
	// of the two-phase parallel scatter.
	scatterBufs [][]contrib

	// ioBufs pools the raw byte buffers the pipeline's fetch workers read
	// sub-blocks through; decoded edge slices are freshly allocated because
	// they may be retained (priority buffer, FCIU diagonal).
	ioBufs sync.Pool

	// plStats accumulates I/O-pipeline outcomes across all passes.
	plStats pipeline.Stats

	// sem is the per-pass block-level activity bitmap (Options.SEM),
	// rebuilt by semBegin at every pass start; nil when SEM is off.
	sem *semBitmap

	// Compressed-tier counters (see SEMStats). Atomic: pipeline fetch
	// workers decode compressed shared-cache hits concurrently.
	semCompHits, semCompBytes, semDecBytes, semDecodeNanos atomic.Int64

	// valStore, when non-nil, persists the vertex value array on the
	// device each iteration (Options.PersistValues).
	valStore *vertexstore.Store

	computeTime time.Duration
}

// readValues accounts the start-of-iteration vertex value load: a real
// sequential read when values are persisted, a modelled charge otherwise.
func (e *Engine) readValues() error {
	if e.valStore == nil {
		e.layout.ChargeVertexValueRead()
		return nil
	}
	return e.valStore.Read(e.valPrev)
}

// writeValues accounts the end-of-iteration write-back symmetrically.
// Call it after the apply phase, when valCur holds the iteration's result.
func (e *Engine) writeValues() error {
	if e.valStore == nil {
		e.layout.ChargeVertexValueWrite()
		return nil
	}
	return e.valStore.Write(e.valCur)
}

// NewEngine prepares an engine for one run of prog over layout.
func NewEngine(layout *partition.Layout, prog Program, opts Options) (*Engine, error) {
	if layout.Meta.System != "graphsd" {
		return nil, fmt.Errorf("core: layout built for %q, want graphsd (use partition.Build)", layout.Meta.System)
	}
	if prog.Weighted() && !layout.Meta.Weighted {
		return nil, fmt.Errorf("core: program %s needs edge weights but layout is unweighted", prog.Name())
	}
	schedCfg := iosched.Config{
		Profile:           layout.Dev.Profile(),
		NumVertices:       layout.Meta.NumVertices,
		NumEdges:          layout.Meta.NumEdges,
		EdgeRecordBytes:   layout.Meta.EdgeRecordBytes(),
		EdgeBytesOnDisk:   layout.Meta.EdgeDiskBytesTotal(),
		EdgeBytesOnDemand: layout.Meta.SelectiveDiskBytesTotal(),
		P:                 layout.Meta.P,
		BlocksPerRow:      layout.Meta.NonEmptyBlocksPerRow(),
	}
	if opts.SEM {
		// The full model now skips dead rows, so its cost must be priced
		// per frontier rather than as a constant.
		schedCfg.SEM = true
		schedCfg.RowDiskBytes = layout.Meta.RowDiskBytes()
	}
	sched, err := iosched.New(schedCfg)
	if err != nil {
		return nil, err
	}
	bufBytes := opts.BufferBytes
	if bufBytes == 0 && opts.DefaultBuffer {
		bufBytes = layout.Meta.EdgeBytesTotal() / 4
	}
	n := layout.Meta.NumVertices
	e := &Engine{
		layout:       layout,
		prog:         prog,
		opts:         opts,
		sched:        sched,
		n:            n,
		p:            layout.Meta.P,
		valPrev:      make([]float64, n),
		valCur:       make([]float64, n),
		acc:          make([]float64, n),
		accNext:      make([]float64, n),
		touched:      bitset.NewActiveSet(n),
		touchedNext:  bitset.NewActiveSet(n),
		active:       bitset.NewActiveSet(n),
		newActive:    bitset.NewActiveSet(n),
		prescattered: bitset.NewActiveSet(n),
		indexCache:   make(map[buffer.Key]*partition.Index),
	}
	e.buf = buffer.NewWithPolicy(bufBytes, opts.BufferPolicy)
	if prog.HasAux() {
		e.aux = make([]float64, n)
	}
	id := prog.Identity()
	for v := 0; v < n; v++ {
		e.acc[v] = id
		e.accNext[v] = id
	}
	return e, nil
}

// Run executes the program to convergence or the iteration bound and
// returns the result. The result's IO snapshot is computed as a delta over
// the device counters, so it covers exactly this run without resetting the
// device — layouts (and their stats) can be shared between runs.
func Run(layout *partition.Layout, prog Program, opts Options) (*Result, error) {
	return RunContext(context.Background(), layout, prog, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled or times out,
// the engine stops at the next sub-block boundary and returns ctx's error
// (errors.Is(err, context.Canceled) / context.DeadlineExceeded), leaving no
// goroutines behind. This is how the job server aborts running jobs.
func RunContext(ctx context.Context, layout *partition.Layout, prog Program, opts Options) (*Result, error) {
	e, err := NewEngine(layout, prog, opts)
	if err != nil {
		return nil, err
	}
	e.ctx = ctx
	return e.run()
}

// checkCtx reports the run's cancellation state; called between sub-blocks
// and at iteration boundaries so a cancelled run stops promptly without
// tearing down mid-scatter.
func (e *Engine) checkCtx() error {
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

func (e *Engine) run() (*Result, error) {
	if e.opts.Async {
		return e.runAsync()
	}
	start := time.Now()
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	dev := e.layout.Dev
	ioBase := dev.Stats()
	decodeStart := e.layout.DecodeTime()

	var err error
	e.degrees, err = e.layout.LoadDegrees()
	if err != nil {
		return nil, err
	}
	e.prog.Init(e.n, e.valPrev, e.aux, e.active)
	copy(e.valCur, e.valPrev)

	iter := 0
	secondaryPending := false
	resumed := false
	checkpoints := 0
	ck := e.opts.Checkpoint
	if ck.Resume && ck.Dir != "" && checkpoint.Exists(ck.Dir) {
		st, err := checkpoint.Load(ck.Dir)
		if err != nil {
			return nil, err
		}
		if err := e.restoreCheckpoint(st); err != nil {
			return nil, err
		}
		iter = st.Iteration
		secondaryPending = st.SecondaryPending
		resumed = true
	}
	resumedFrom := iter

	if e.opts.PersistValues {
		e.valStore, err = vertexstore.New(dev, "primary", e.n)
		if err != nil {
			return nil, err
		}
		if err := e.valStore.Write(e.valPrev); err != nil {
			return nil, err
		}
	}

	maxIter := e.prog.MaxIterations()
	if e.opts.MaxIterations > 0 {
		maxIter = e.opts.MaxIterations
	}

	var iterStats []IterStat
	for iter < maxIter {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		if !secondaryPending && e.active.Empty() && e.touchedNext.Empty() {
			break
		}
		// Promote staged next-iteration contributions to current. The
		// outgoing acc/touched were fully consumed (and identity-reset) by
		// the previous apply phase.
		e.acc, e.accNext = e.accNext, e.acc
		e.touched, e.touchedNext = e.touchedNext, e.touched

		ioBefore := dev.Stats()
		computeBefore := e.computeTime
		plBefore := e.plStats
		decodeBefore := e.layout.DecodeTime()
		path := ""

		if secondaryPending {
			// Second half of an FCIU pass: only secondary sub-blocks.
			path = "fciu-2"
			if err := e.runFCIUSecond(); err != nil {
				return nil, err
			}
			secondaryPending = false
		} else {
			model := e.decide(iter)
			switch {
			case model == iosched.OnDemandIO:
				path = "sciu"
				if err := e.runSCIU(); err != nil {
					return nil, err
				}
			case !e.opts.DisableCrossIteration && iter+1 < maxIter:
				path = "fciu-1"
				if err := e.runFCIUFirst(); err != nil {
					return nil, err
				}
				// The second half applies staged contributions and scatters
				// the secondary sub-blocks from the new frontier; if the
				// first half activated nothing, both are no-ops and the
				// algorithm has converged.
				secondaryPending = !e.newActive.Empty() || !e.touchedNext.Empty()
			default:
				path = "full-single"
				if err := e.runFullSingle(); err != nil {
					return nil, err
				}
			}
		}

		ioDelta := dev.Stats().Sub(ioBefore)
		st := IterStat{
			Index:       iter,
			Path:        path,
			Active:      e.active.Count(),
			IO:          ioDelta,
			IOTime:      ioDelta.TotalTime(),
			ComputeTime: e.computeTime - computeBefore,
			DecodeTime:  e.layout.DecodeTime() - decodeBefore,
			Pipeline:    e.plStats.Sub(plBefore),
		}
		// Feed the measured charge back into the scheduler's calibration
		// loop. fciu-2 consumes the second half of the previous decision's
		// pass, so it carries no decision of its own to observe.
		if path != "fciu-2" && !e.opts.DisableCalibration {
			executed := iosched.FullIO
			if path == "sciu" {
				executed = iosched.OnDemandIO
			}
			st.Predicted, st.Mispredict = e.sched.Observe(executed, ioDelta.TotalTime())
		}
		iterStats = append(iterStats, st)
		if e.opts.OnIteration != nil {
			e.opts.OnIteration(st)
		}

		// Advance the BSP frontier: next actives are this iteration's
		// activations minus vertices whose next scatter was already
		// performed by cross-iteration computation.
		e.active.CopyFrom(e.newActive)
		e.active.Subtract(e.prescattered)
		e.newActive.Reset()
		e.prescattered.Reset()
		e.valPrev, e.valCur = e.valCur, e.valPrev
		copy(e.valCur, e.valPrev)
		iter++
		if ck.saveEnabled() && iter%ck.Every == 0 {
			if err := e.saveCheckpoint(ck.Dir, iter, secondaryPending); err != nil {
				return nil, err
			}
			checkpoints++
		}
	}

	outputs := make([]float64, e.n)
	tApply := time.Now()
	for v := range outputs {
		outputs[v] = e.prog.Output(graph.VertexID(v), e.valPrev[v], e.aux)
	}
	e.computeTime += time.Since(tApply)

	return &Result{
		Algorithm:         e.prog.Name(),
		Iterations:        iter,
		Converged:         e.active.Empty() && e.touchedNext.Empty() && !secondaryPending,
		Outputs:           outputs,
		WallTime:          time.Since(start),
		ComputeTime:       e.computeTime,
		DecodeTime:        e.layout.DecodeTime() - decodeStart + time.Duration(e.semDecodeNanos.Load()),
		Codec:             e.layout.Meta.BlockCodec().String(),
		CompressRatio:     compressRatio(&e.layout.Meta),
		IO:                dev.Stats().Sub(ioBase),
		SharedHits:        e.sharedHits.Load(),
		SharedMisses:      e.sharedMisses.Load(),
		Decisions:         append([]iosched.Decision(nil), e.sched.History()...),
		SchedulerOverhead: e.sched.TotalOverhead(),
		SchedAccuracy:     e.sched.Accuracy(),
		Buffer:            e.buf.Stats(),
		Pipeline:          e.plStats,
		IterStats:         iterStats,
		Resumed:           resumed,
		ResumedFrom:       resumedFrom,
		Checkpoints:       checkpoints,
		SEM: SEMStats{
			Enabled:         e.opts.SEM || (e.opts.SharedBlocks != nil && e.opts.SharedBlocks.Compressed()),
			BlocksSkipped:   int64(e.plStats.Skipped),
			BytesSkipped:    e.plStats.SkippedBytes,
			CompressedHits:  e.semCompHits.Load(),
			DecodeTime:      time.Duration(e.semDecodeNanos.Load()),
			CompressedBytes: e.semCompBytes.Load(),
			DecodedBytes:    e.semDecBytes.Load(),
		},
	}, nil
}

// compressRatio returns decoded/on-disk edge payload bytes — 1.0 for raw
// layouts, >1 when the delta codec shrank the blocks.
func compressRatio(m *partition.Manifest) float64 {
	disk := m.EdgeDiskBytesTotal()
	if disk <= 0 {
		return 1
	}
	return float64(m.EdgeBytesTotal()) / float64(disk)
}

// decide selects the iteration's I/O access model, honouring ForceModel.
// Forced runs still record a Decision so experiment traces stay uniform.
func (e *Engine) decide(iter int) iosched.Model {
	d := e.sched.Decide(iter, e.active, e.degrees)
	if e.opts.ForceModel != nil {
		return *e.opts.ForceModel
	}
	return d.Model
}

// index returns the vertex index of sub-block (i, j), loading and caching
// it on first use.
func (e *Engine) index(i, j int) (*partition.Index, error) {
	k := buffer.Key{I: i, J: j}
	if idx, ok := e.indexCache[k]; ok {
		return idx, nil
	}
	idx, err := e.layout.LoadIndex(i, j)
	if err != nil {
		return nil, err
	}
	e.indexCache[k] = idx
	return idx, nil
}

// serialApplyThreshold is the vertex count below which the apply phase
// runs single-threaded.
const serialApplyThreshold = 8192

// applyInterval runs the apply phase for every touched vertex of interval j
// (every vertex, for always-active programs), filling newActive and
// restoring the accumulator identity invariant. Apply is embarrassingly
// parallel per vertex — each touches only its own value, accumulator and
// aux slot — so large intervals are chunked across Options.Threads
// workers, with activations gathered per worker and merged serially.
func (e *Engine) applyInterval(j int) {
	lo, hi := e.layout.Meta.Interval(j)
	t0 := time.Now()
	defer func() { e.computeTime += time.Since(t0) }()
	id := e.prog.Identity()

	var pending []int
	if e.prog.AlwaysActive() {
		pending = make([]int, hi-lo)
		for k := range pending {
			pending[k] = lo + k
		}
	} else {
		// Collect first: applying mutates the set being iterated.
		e.touched.ForEachRange(lo, hi, func(v int) bool {
			pending = append(pending, v)
			return true
		})
	}

	workers := e.opts.threads()
	if len(pending) < serialApplyThreshold || workers <= 1 {
		for _, v := range pending {
			nv, act := e.prog.Apply(graph.VertexID(v), e.valPrev[v], e.acc[v], e.aux, e.n)
			e.valCur[v] = nv
			if act {
				e.newActive.Activate(v)
			}
			e.acc[v] = id
			e.touched.Deactivate(v)
		}
		return
	}

	chunk := (len(pending) + workers - 1) / workers
	activated := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		loK, hiK := w*chunk, min((w+1)*chunk, len(pending))
		if loK >= hiK {
			continue
		}
		wg.Add(1)
		go func(w, loK, hiK int) {
			defer wg.Done()
			var acts []int
			for _, v := range pending[loK:hiK] {
				nv, act := e.prog.Apply(graph.VertexID(v), e.valPrev[v], e.acc[v], e.aux, e.n)
				e.valCur[v] = nv
				if act {
					acts = append(acts, v)
				}
				e.acc[v] = id
			}
			activated[w] = acts
		}(w, loK, hiK)
	}
	wg.Wait()
	for _, acts := range activated {
		for _, v := range acts {
			e.newActive.Activate(v)
		}
	}
	for _, v := range pending {
		e.touched.Deactivate(v)
	}
}

// applyAll applies every interval (used by SCIU and the single full pass,
// which scatter everything before applying).
func (e *Engine) applyAll() {
	for j := 0; j < e.p; j++ {
		e.applyInterval(j)
	}
}

// contrib is one gathered edge contribution staged between the two scatter
// phases: the destination vertex and its Gather value.
type contrib struct {
	dst uint32
	g   float64
}

// scatter merges the contributions of edges whose source is in filter into
// acc/touched, reading source values from vals. dstLo/dstHi bound the
// destinations of edges (the destination interval for sub-block scatters,
// [0, n) otherwise) and size the parallel path's destination partitioning.
//
// The parallel path is a lock-free two-phase scheme: phase 1 workers gather
// their edge chunks and bucket contributions by destination range; after a
// barrier, phase 2 gives each destination range to exactly one worker,
// which merges its buckets into acc and touched without synchronisation —
// ranges are disjoint and 64-aligned, so accumulator slots and bitset words
// are exclusively owned. Merge must be commutative and associative, which
// makes the merge order irrelevant.
func (e *Engine) scatter(edges []graph.Edge, vals []float64, filter *bitset.ActiveSet, acc []float64, touched *bitset.ActiveSet, dstLo, dstHi int) {
	if len(edges) == 0 {
		return
	}
	t0 := time.Now()
	defer func() { e.computeTime += time.Since(t0) }()

	workers := e.opts.threads()
	if len(edges) < serialScatterThreshold || workers <= 1 {
		for _, ed := range edges {
			if !filter.Contains(int(ed.Src)) {
				continue
			}
			g := e.prog.Gather(vals[ed.Src], ed, e.degrees[ed.Src])
			acc[ed.Dst] = e.prog.Merge(acc[ed.Dst], g)
			touched.Activate(int(ed.Dst))
		}
		return
	}

	// Destination ranges start at a 64-aligned base and span a multiple of
	// 64 vertices, so every bitset word belongs to exactly one range.
	base := dstLo &^ 63
	span := dstHi - base
	rangeSize := (span + workers - 1) / workers
	rangeSize = (rangeSize + 63) &^ 63
	ranges := (span + rangeSize - 1) / rangeSize

	buckets := e.scatterScratch(workers * ranges)
	chunk := (len(edges) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(edges))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			mine := buckets[w*ranges : (w+1)*ranges]
			for _, ed := range edges[lo:hi] {
				if !filter.Contains(int(ed.Src)) {
					continue
				}
				g := e.prog.Gather(vals[ed.Src], ed, e.degrees[ed.Src])
				r := (int(ed.Dst) - base) / rangeSize
				mine[r] = append(mine[r], contrib{dst: uint32(ed.Dst), g: g})
			}
		}(w, lo, hi)
	}
	wg.Wait()

	newly := make([]int, ranges)
	for r := 0; r < ranges; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cnt := 0
			for w := 0; w < workers; w++ {
				for _, c := range buckets[w*ranges+r] {
					acc[c.dst] = e.prog.Merge(acc[c.dst], c.g)
					if touched.ActivateNoCount(int(c.dst)) {
						cnt++
					}
				}
			}
			newly[r] = cnt
		}(r)
	}
	wg.Wait()
	total := 0
	for _, c := range newly {
		total += c
	}
	touched.AddCount(total)
}

// scatterScratch returns n reusable contribution buckets, each reset to
// length zero with capacity retained across scatter calls.
func (e *Engine) scatterScratch(n int) [][]contrib {
	for len(e.scatterBufs) < n {
		e.scatterBufs = append(e.scatterBufs, nil)
	}
	buckets := e.scatterBufs[:n]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	return buckets
}

// activeEdgeCount returns how many of edges have an active source, the
// priority metric of the secondary sub-block buffer.
func activeEdgeCount(edges []graph.Edge, active *bitset.ActiveSet) int64 {
	var c int64
	for _, ed := range edges {
		if active.Contains(int(ed.Src)) {
			c++
		}
	}
	return c
}

// activeEdgeSampleCap bounds the edges examined per buffer-priority
// computation. Sub-blocks above the cap are stride-sampled and the count
// scaled up, so refreshing every resident's priority after an FCIU pass
// costs O(residents × cap) instead of a full rescan of all resident edges.
// The stride is deterministic, keeping engine runs reproducible.
const activeEdgeSampleCap = 4096

// activeEdgeEstimate returns activeEdgeCount exactly for small edge lists
// and a deterministic sampled estimate for large ones.
func activeEdgeEstimate(edges []graph.Edge, active *bitset.ActiveSet) int64 {
	if len(edges) <= activeEdgeSampleCap {
		return activeEdgeCount(edges, active)
	}
	stride := (len(edges) + activeEdgeSampleCap - 1) / activeEdgeSampleCap
	var c, sampled int64
	for k := 0; k < len(edges); k += stride {
		if active.Contains(int(edges[k].Src)) {
			c++
		}
		sampled++
	}
	return c * int64(len(edges)) / sampled
}

// clampedActiveEdgeEstimate is activeEdgeEstimate clamped to ≥1 while the
// block-activity bitmap says source row i is live: stride sampling can miss
// every active source of a live block and return 0, which would demote a
// hot block to the bottom of the eviction order even though it still holds
// active edges.
func clampedActiveEdgeEstimate(edges []graph.Edge, set *bitset.ActiveSet, meta *partition.Manifest, i int) int64 {
	est := activeEdgeEstimate(edges, set)
	if est == 0 && len(edges) > 0 {
		lo, hi := meta.Interval(i)
		if set.CountRange(lo, hi) > 0 {
			est = 1
		}
	}
	return est
}

// fetchSubBlock loads and decodes one sub-block for the I/O pipeline. It
// runs on pipeline worker goroutines: the raw read buffer is pooled, the
// decoded slice freshly allocated because consumers may retain it. With a
// shared cache configured the load routes through it, so concurrent jobs'
// pipelines deduplicate device reads of the same block.
func (e *Engine) fetchSubBlock(r pipeline.Request) ([]graph.Edge, error) {
	if e.opts.SharedBlocks != nil {
		return e.loadBlock(r.I, r.J)
	}
	bufp, _ := e.ioBufs.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	edges, buf, err := e.layout.LoadSubBlockInto(r.I, r.J, nil, *bufp)
	*bufp = buf
	e.ioBufs.Put(bufp)
	return edges, err
}

// loadBlock loads the full decoded sub-block (i, j), consulting the
// cross-job shared cache first when one is configured. Safe on pipeline
// worker goroutines. The returned slice may be shared with other jobs and
// must not be mutated (the engine only reads edges).
func (e *Engine) loadBlock(i, j int) ([]graph.Edge, error) {
	sc := e.opts.SharedBlocks
	if sc == nil {
		return e.layout.LoadSubBlock(i, j)
	}
	if sc.Compressed() {
		return e.loadBlockCompressed(sc, i, j)
	}
	edges, hit, err := sc.GetOrLoad(buffer.Key{I: i, J: j, Gen: e.layout.BlockVersion(i, j)}, func() ([]graph.Edge, int64, error) {
		bufp, _ := e.ioBufs.Get().(*[]byte)
		if bufp == nil {
			bufp = new([]byte)
		}
		edges, buf, err := e.layout.LoadSubBlockInto(i, j, nil, *bufp)
		*bufp = buf
		e.ioBufs.Put(bufp)
		return edges, e.layout.Meta.SubBlockBytes(i, j), err
	})
	if err != nil {
		return nil, err
	}
	if hit {
		e.sharedHits.Add(1)
	} else {
		e.sharedMisses.Add(1)
	}
	return edges, nil
}

// newBlockPrefetcher starts an I/O pipeline over reqs, or returns nil when
// prefetching is disabled or the sequence is too short to overlap anything.
func (e *Engine) newBlockPrefetcher(reqs []pipeline.Request) *pipeline.Prefetcher[[]graph.Edge] {
	if !e.opts.prefetchEnabled() || len(reqs) < 2 {
		return nil
	}
	return pipeline.New(reqs, e.fetchSubBlock, e.opts.prefetchOptions())
}

// prefetchHandle is the slice-type-independent part of a Prefetcher that
// pass drivers hand back for stats aggregation.
type prefetchHandle interface {
	Close()
	Stats() pipeline.Stats
}

// finishPrefetch shuts a pass's pipeline down and folds its outcomes into
// the run totals. Callers must guard against nil prefetchers.
func (e *Engine) finishPrefetch(pf prefetchHandle) {
	pf.Close()
	e.plStats = e.plStats.Add(pf.Stats())
}

// chargeIndexAccess charges the per-iteration modelled cost of consulting
// the vertex index under the on-demand model (the paper's C_r includes a
// 2|V|·N sequential-read term for index plus vertex values; the vertex
// value half is charged separately).
func (e *Engine) chargeIndexAccess() {
	e.layout.Dev.Charge(storage.SeqRead, int64(e.n)*graph.IndexEntryBytes)
}
