package core_test

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
)

// Edge cases and degenerate inputs.

func TestEngineEmptyGraph(t *testing.T) {
	g := &graph.Graph{NumVertices: 0}
	layout := buildLayout(t, g, 1)
	res, err := core.Run(layout, &algorithms.ConnectedComponents{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || !res.Converged || len(res.Outputs) != 0 {
		t.Fatalf("empty graph run: %+v", res)
	}
}

func TestEngineSingleVertexNoEdges(t *testing.T) {
	g := &graph.Graph{NumVertices: 1}
	layout := buildLayout(t, g, 1)
	res, err := core.Run(layout, &algorithms.PageRank{Iterations: 3}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// PR with no in-edges: rank settles at (1-d)/n = 0.15.
	if math.Abs(res.Outputs[0]-0.15) > 1e-12 {
		t.Fatalf("isolated vertex rank = %v", res.Outputs[0])
	}
}

func TestEngineSelfLoops(t *testing.T) {
	g := &graph.Graph{
		NumVertices: 3,
		Edges: []graph.Edge{
			{Src: 0, Dst: 0}, {Src: 1, Dst: 1}, {Src: 2, Dst: 2},
			{Src: 0, Dst: 1},
		},
	}
	want, _ := core.RunReference(g, &algorithms.PageRank{Iterations: 10}, 0)
	layout := buildLayout(t, g, 2)
	res, err := core.Run(layout, &algorithms.PageRank{Iterations: 10}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "self-loops", res.Outputs, want, 1e-9)
}

func TestEnginePGreaterThanVertices(t *testing.T) {
	g := gen.Chain(3)
	layout := buildLayout(t, g, 8) // intervals mostly empty
	want, _ := core.RunReference(g, &algorithms.BFS{Source: 0}, 0)
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "p>n", res.Outputs, want, 0)
}

func TestEngineRepeatedRunsOnSameLayout(t *testing.T) {
	g, err := gen.RMAT(7, 8, gen.Graph500, 3)
	if err != nil {
		t.Fatal(err)
	}
	layout := buildLayout(t, g, 3)
	first, err := core.Run(layout, &algorithms.ConnectedComponents{}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.Run(layout, &algorithms.ConnectedComponents{}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "repeat-run", second.Outputs, first.Outputs, 0)
	// Device stats are reset per run, so traffic must match too.
	if first.IO.TotalBytes() != second.IO.TotalBytes() {
		t.Fatalf("traffic differs across identical runs: %d vs %d",
			first.IO.TotalBytes(), second.IO.TotalBytes())
	}
}

func TestEngineSimulatedTrafficDeterministic(t *testing.T) {
	// The whole point of the simulated device: two identical runs report
	// identical byte counts and simulated I/O time.
	g, err := gen.RMAT(8, 8, gen.Graph500, 4)
	if err != nil {
		t.Fatal(err)
	}
	var bytesSeen []int64
	for trial := 0; trial < 2; trial++ {
		layout := buildLayout(t, g, 4)
		res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{DefaultBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		bytesSeen = append(bytesSeen, res.IO.TotalBytes())
	}
	if bytesSeen[0] != bytesSeen[1] {
		t.Fatalf("traffic not deterministic: %v", bytesSeen)
	}
}

func TestEngineDanglingSourceProgram(t *testing.T) {
	// BFS from a vertex with no out-edges: one iteration, nothing reached.
	g := gen.Chain(5) // vertex 4 is a sink
	layout := buildLayout(t, g, 2)
	res, err := core.Run(layout, &algorithms.BFS{Source: 4}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if !math.IsInf(res.Outputs[v], 1) {
			t.Fatalf("vertex %d reached from a sink", v)
		}
	}
	if !res.Converged {
		t.Fatal("sink BFS did not converge")
	}
}

func TestIterStatsAccounting(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.Graph500, 6)
	if err != nil {
		t.Fatal(err)
	}
	layout := buildLayout(t, g, 4)
	res, err := core.Run(layout, &algorithms.PageRank{Iterations: 4}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterStats) != res.Iterations {
		t.Fatalf("%d iter stats for %d iterations", len(res.IterStats), res.Iterations)
	}
	var ioSum int64
	for i, st := range res.IterStats {
		if st.Index != i {
			t.Fatalf("stat %d has index %d", i, st.Index)
		}
		if st.Path == "" {
			t.Fatalf("stat %d has empty path", i)
		}
		if st.Time() != st.IOTime+st.ComputeTime {
			t.Fatal("IterStat.Time identity violated")
		}
		ioSum += st.IO.TotalBytes()
	}
	// Per-iteration I/O must sum to at most the total (startup degree load
	// happens outside iterations).
	if ioSum > res.IO.TotalBytes() {
		t.Fatalf("per-iteration I/O %d exceeds total %d", ioSum, res.IO.TotalBytes())
	}
}
