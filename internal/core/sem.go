package core

import (
	"fmt"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
)

// semBitmap is the semi-external-memory activity summary consulted on every
// sub-block skip decision: a P-bit "interval has any active vertex" row
// vector, refined to a P×P "block may carry active edges" test by the
// layout's per-block non-empty structure (a block in a live row is live only
// if it holds edges at all). All vertex state is in RAM, so the row vector
// is derived in O(P · interval/64) bitset popcounts — no per-vertex index
// walk — and rebuilt at the start of every pass, which is exactly when
// activity flips: the frontier a pass scatters from is frozen for the whole
// pass (applyInterval mutates touched/newActive, never active).
type semBitmap struct {
	meta *partition.Manifest
	rows []bool
}

// newSEMBitmap derives the row-activity vector of set.
func newSEMBitmap(meta *partition.Manifest, set *bitset.ActiveSet) *semBitmap {
	rows := make([]bool, meta.P)
	for i := 0; i < meta.P; i++ {
		lo, hi := meta.Interval(i)
		rows[i] = set.CountRange(lo, hi) > 0
	}
	return &semBitmap{meta: meta, rows: rows}
}

// rowLive reports whether source interval i holds any active vertex.
func (b *semBitmap) rowLive(i int) bool { return b.rows[i] }

// blockLive reports whether sub-block (i, j) may carry active edges: its
// source interval is live and the block is non-empty. A dead block scatters
// nothing (the scatter filter excludes every one of its edges), so skipping
// its read cannot change any result.
func (b *semBitmap) blockLive(i, j int) bool {
	return b.rows[i] && b.meta.SubBlockEdges(i, j) > 0
}

// semBegin rebuilds the block-activity bitmap from the pass's frontier, or
// clears it when SEM is off. Every pass driver calls this before building
// its prefetch sequence, so the pipeline and the consumer skip by the same
// bitmap.
func (e *Engine) semBegin() {
	if e.opts.SEM {
		e.sem = newSEMBitmap(&e.layout.Meta, e.active)
	} else {
		e.sem = nil
	}
}

// semSkip records that non-empty sub-block (i, j) was proven dead by the
// bitmap and never read: no bytes, no seek. Empty blocks cost no I/O on any
// path and are not counted.
func (e *Engine) semSkip(i, j int) {
	if e.layout.Meta.SubBlockEdges(i, j) == 0 {
		return
	}
	e.plStats.Skipped++
	e.plStats.SkippedBytes += e.layout.Meta.SubBlockDiskBytes(i, j)
}

// decodePayload decodes a delta-coded sub-block payload from either
// compressed cache tier back into edges. EncodeDeltaBlock/AppendDeltaBlock
// round-trip any edge order exactly with bit-preserved weights, so the
// scatter consumes the identical edge sequence the device would have
// delivered. Safe on pipeline worker goroutines; decode wall time is
// accumulated atomically.
func (e *Engine) decodePayload(i, j int, payload []byte) ([]graph.Edge, error) {
	iLo, _ := e.layout.Meta.Interval(i)
	jLo, _ := e.layout.Meta.Interval(j)
	t0 := time.Now()
	edges, err := graph.AppendDeltaBlock(nil, payload, graph.VertexID(iLo), graph.VertexID(jLo), e.layout.Meta.Weighted)
	e.semDecodeNanos.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		return nil, fmt.Errorf("core: decoding cached sub-block (%d,%d): %w", i, j, err)
	}
	return edges, nil
}

// encodePayload delta-codes a decoded sub-block for the compressed buffer
// tier.
func (e *Engine) encodePayload(i, j int, edges []graph.Edge) []byte {
	iLo, _ := e.layout.Meta.Interval(i)
	jLo, _ := e.layout.Meta.Interval(j)
	return graph.EncodeDeltaBlock(nil, edges, graph.VertexID(iLo), graph.VertexID(jLo), e.layout.Meta.Weighted)
}

// payloadPriority estimates the active-edge count of a compressed-tier
// resident without decoding it: the block's edge count scaled by its source
// interval's active fraction, clamped to ≥1 while the bitmap says the block
// is live so a hot block is never demoted to dead by estimation.
func (e *Engine) payloadPriority(k buffer.Key, set *bitset.ActiveSet) int64 {
	lo, hi := e.layout.Meta.Interval(k.I)
	act := int64(set.CountRange(lo, hi))
	if act == 0 || hi <= lo {
		return 0
	}
	est := act * e.layout.Meta.SubBlockEdges(k.I, k.J) / int64(hi-lo)
	if est < 1 {
		est = 1
	}
	return est
}

// loadBlockCompressed is loadBlock through a compressed shared cache: the
// cache stores verified delta payloads, and every caller — pipeline fetch
// workers included — decodes its hit in its own goroutine, so decode
// overlaps compute exactly like the reads themselves.
func (e *Engine) loadBlockCompressed(sc *buffer.Shared, i, j int) ([]graph.Edge, error) {
	payload, hit, err := sc.GetOrLoadBytes(buffer.Key{I: i, J: j, Gen: e.layout.BlockVersion(i, j)}, func() ([]byte, int64, error) {
		p, err := e.layout.LoadSubBlockPayload(i, j)
		return p, e.layout.Meta.SubBlockBytes(i, j), err
	})
	if err != nil {
		return nil, err
	}
	if hit {
		e.sharedHits.Add(1)
	} else {
		e.sharedMisses.Add(1)
		e.semCompBytes.Add(int64(len(payload)))
		e.semDecBytes.Add(e.layout.Meta.SubBlockBytes(i, j))
	}
	if payload == nil {
		return nil, nil
	}
	t0 := time.Now()
	edges, err := e.decodePayload(i, j, payload)
	if err != nil {
		return nil, err
	}
	if hit {
		e.semCompHits.Add(1)
		sc.NoteDecode(time.Since(t0))
	}
	return edges, nil
}

// SEMStats reports a run's semi-external-memory outcomes.
type SEMStats struct {
	// Enabled reports that the run used the SEM fast path: Options.SEM
	// and/or a compressed shared cache.
	Enabled bool
	// BlocksSkipped counts non-empty sub-blocks never read because the
	// block-activity bitmap proved them dead; BytesSkipped is their summed
	// on-disk size — device traffic the bitmap avoided.
	BlocksSkipped int64
	BytesSkipped  int64
	// CompressedHits counts sub-block loads served from a compressed cache
	// tier (per-run buffer or shared), each paying a decode instead of a
	// device read; DecodeTime is the wall clock all compressed-tier encode
	// round-trips spent decoding (overlapped with compute when the hit
	// lands on a pipeline worker).
	CompressedHits int64
	DecodeTime     time.Duration
	// CompressedBytes / DecodedBytes sum the encoded and decoded sizes of
	// every payload the run offered to a compressed tier. Their ratio is
	// the tier's effective-capacity multiplier: how many bytes of decoded
	// graph one RAM byte holds.
	CompressedBytes int64
	DecodedBytes    int64
}

// EffectiveCapacityRatio returns DecodedBytes/CompressedBytes — ≥2 means
// the compressed tier holds at least twice the graph per RAM byte compared
// to caching decoded edges.
func (s SEMStats) EffectiveCapacityRatio() float64 {
	if s.CompressedBytes <= 0 {
		return 0
	}
	return float64(s.DecodedBytes) / float64(s.CompressedBytes)
}
