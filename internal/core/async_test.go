package core_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/checkpoint"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// Async engine properties under test: every monotonic program converges to
// the same fixed point the BSP engine reaches (bit-exact labels for the
// min-programs, within tolerance for PageRank-Delta), on every codec, with
// and without SEM, under transient faults; the schedule is deterministic for
// a fixed seed; and a run resumed from a checkpoint is bit-identical to one
// that was never interrupted.

// asyncOpts returns the default async configuration for tests.
func asyncOpts() core.Options {
	return core.Options{Async: true, DefaultBuffer: true}
}

// asyncPrograms are the monotonic programs: min-label correcting (exact
// fixed point) and PageRank-Delta (fixed point within tolerance). The PRD
// iteration bound is generous so both engines run to frontier drain, not to
// the step budget.
func asyncPrograms(src graph.VertexID) map[string]func() core.Program {
	return map[string]func() core.Program{
		"prdelta": func() core.Program { return &algorithms.PageRankDelta{Iterations: 200} },
		"cc":      func() core.Program { return &algorithms.ConnectedComponents{} },
		"bfs":     func() core.Program { return &algorithms.BFS{Source: src} },
	}
}

func TestAsyncMatchesBSPFixedPoint(t *testing.T) {
	rmat, err := gen.RMAT(7, 6, gen.Graph500, 9)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"paper": paperGraph(),
		"chain": gen.Chain(40),
		"star":  gen.Star(30),
		"rmat":  rmat,
	}
	for gname, g := range graphs {
		for _, p := range []int{1, 2, 5} {
			for pname, mk := range asyncPrograms(0) {
				layout := buildLayout(t, g, p)
				base, err := core.Run(layout, mk(), core.Options{DefaultBuffer: true})
				if err != nil {
					t.Fatalf("%s/%s/p%d bsp: %v", gname, pname, p, err)
				}
				res, err := core.Run(layout, mk(), asyncOpts())
				if err != nil {
					t.Fatalf("%s/%s/p%d async: %v", gname, pname, p, err)
				}
				label := gname + "/" + pname + "/p" + string(rune('0'+p))
				if !res.Async.Enabled {
					t.Fatalf("%s: async run reported Async.Enabled=false", label)
				}
				if !res.Converged {
					t.Fatalf("%s: async run did not converge (residual %v after %d steps)",
						label, res.Async.FinalResidual, res.Async.Steps)
				}
				if pname == "prdelta" {
					compareOutputs(t, label, res.Outputs, base.Outputs, 1e-6)
				} else {
					requireIdenticalOutputs(t, base.Outputs, res.Outputs)
					if res.Async.FinalResidual != 0 {
						t.Fatalf("%s: drained min-program left residual %v", label, res.Async.FinalResidual)
					}
				}
			}
		}
	}
}

func TestAsyncSSSPMatchesBSP(t *testing.T) {
	g := gen.Weighted(gen.Chain(30), 5, 2)
	extra, err := gen.ErdosRenyi(30, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges = append(g.Edges, gen.Weighted(extra, 9, 4).Edges...)

	layout := buildLayout(t, g, 3)
	base, err := core.Run(layout, &algorithms.SSSP{Source: 0}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(layout, &algorithms.SSSP{Source: 0}, asyncOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async sssp did not converge in %d steps", res.Async.Steps)
	}
	requireIdenticalOutputs(t, base.Outputs, res.Outputs)
}

// TestAsyncCodecSEMMatrix runs the async engine across both sub-block codecs
// and SEM on/off. Min-program labels must be bit-identical across all four
// configurations (and to BSP); PRD must stay within tolerance of BSP.
func TestAsyncCodecSEMMatrix(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		l := chaosLayout(t, codec, 5)
		bfsBase, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{DefaultBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		prdBase, err := core.Run(l, &algorithms.PageRankDelta{Iterations: 400}, core.Options{DefaultBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, sem := range []bool{false, true} {
			opts := asyncOpts()
			opts.SEM = sem
			label := codec.String()
			if sem {
				label += "/sem"
			}
			res, err := core.Run(l, &algorithms.BFS{Source: 0}, opts)
			if err != nil {
				t.Fatalf("%s bfs: %v", label, err)
			}
			requireIdenticalOutputs(t, bfsBase.Outputs, res.Outputs)

			res, err = core.Run(l, &algorithms.PageRankDelta{Iterations: 400}, opts)
			if err != nil {
				t.Fatalf("%s prd: %v", label, err)
			}
			if !res.Converged {
				t.Fatalf("%s prd: not converged after %d steps (residual %v)",
					label, res.Async.Steps, res.Async.FinalResidual)
			}
			compareOutputs(t, label+"/prd", res.Outputs, prdBase.Outputs, 1e-6)
		}
	}
}

// TestAsyncSelectivePathTaken checks that a sparse frontier actually takes
// the selective (per-vertex index) path: BFS from a single source on a
// seek-expensive device must price at least its first steps below streaming.
func TestAsyncSelectivePathTaken(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 5)
	base, err := core.Run(l, &algorithms.BFS{Source: 0}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(l, &algorithms.BFS{Source: 0}, asyncOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Async.SelectiveSteps == 0 {
		t.Fatal("single-source BFS on a seek-heavy profile never took the selective path")
	}
	var sawSel, sawStream bool
	for _, st := range res.IterStats {
		switch st.Path {
		case "async-sel":
			sawSel = true
		case "async":
			sawStream = true
		default:
			t.Fatalf("async run emitted BSP path %q", st.Path)
		}
	}
	if !sawSel || !sawStream {
		t.Fatalf("expected both async paths exercised, got selective=%t streamed=%t", sawSel, sawStream)
	}
	requireIdenticalOutputs(t, base.Outputs, res.Outputs)
}

// TestAsyncDeterministicReplay: a fixed AsyncSeed reproduces the exact pop
// sequence and bit pattern; a different seed explores a different schedule
// but lands on the same exact fixed point for min-programs.
func TestAsyncDeterministicReplay(t *testing.T) {
	l := chaosLayout(t, graph.CodecDelta, 11)
	opts := asyncOpts()
	opts.AsyncSeed = 7
	mk := func() core.Program { return &algorithms.PageRankDelta{Iterations: 400} }

	a, err := core.Run(l, mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(l, mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalOutputs(t, a.Outputs, b.Outputs)
	if a.Async.Steps != b.Async.Steps || a.Async.BlocksScheduled != b.Async.BlocksScheduled ||
		a.Async.Reactivations != b.Async.Reactivations {
		t.Fatalf("same seed, different schedule: %+v vs %+v", a.Async, b.Async)
	}
	for i := range a.IterStats {
		if a.IterStats[i].Path != b.IterStats[i].Path {
			t.Fatalf("step %d path %q vs %q under identical seeds", i, a.IterStats[i].Path, b.IterStats[i].Path)
		}
	}

	opts.AsyncSeed = 99
	cc := func() core.Program { return &algorithms.ConnectedComponents{} }
	base, err := core.Run(l, cc(), core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := core.Run(l, cc(), asyncOpts())
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.Run(l, cc(), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalOutputs(t, base.Outputs, first.Outputs)
	requireIdenticalOutputs(t, base.Outputs, other.Outputs)
}

// TestAsyncEpsilonStopsEarly: a positive AsyncEpsilon converges a PRD run
// once total pending mass falls to it, in strictly fewer steps than a full
// frontier drain.
func TestAsyncEpsilonStopsEarly(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 12)
	mk := func() core.Program { return &algorithms.PageRankDelta{Iterations: 400} }
	full, err := core.Run(l, mk(), asyncOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatalf("full drain did not converge in %d steps", full.Async.Steps)
	}

	opts := asyncOpts()
	opts.AsyncEpsilon = 1e-2
	res, err := core.Run(l, mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("epsilon run reported not converged")
	}
	if res.Async.FinalResidual > opts.AsyncEpsilon {
		t.Fatalf("stopped with residual %v above epsilon %v", res.Async.FinalResidual, opts.AsyncEpsilon)
	}
	if res.Async.Steps >= full.Async.Steps {
		t.Fatalf("epsilon run took %d steps, full drain %d", res.Async.Steps, full.Async.Steps)
	}
	// The early stop is an approximation of the same fixed point.
	compareOutputs(t, "epsilon", res.Outputs, full.Outputs, 1e-1)
}

// TestAsyncChaosBitIdentical subjects async runs to 5% transient read faults
// (recovered by device retries and pipeline degradation); outputs must be
// bit-identical to the fault-free async run on both codecs.
func TestAsyncChaosBitIdentical(t *testing.T) {
	progs := map[string]func() core.Program{
		"bfs": func() core.Program { return &algorithms.BFS{Source: 0} },
		"prd": func() core.Program { return &algorithms.PageRankDelta{Iterations: 400} },
	}
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		for pname, mk := range progs {
			t.Run(pname+"/"+codec.String(), func(t *testing.T) {
				l := chaosLayout(t, codec, 5)
				base, err := core.Run(l, mk(), asyncOpts())
				if err != nil {
					t.Fatal(err)
				}

				chaos := storage.NewChaos(storage.ChaosOptions{
					Seed:              42,
					TransientReadProb: 0.05,
					Match: func(op, name string) bool {
						return op == "read" || op == "readat"
					},
				})
				l.Dev.SetFaultInjector(chaos.Injector())
				l.Dev.SetRetryPolicy(storage.RetryPolicy{
					MaxRetries: 5,
					BaseDelay:  time.Millisecond,
					MaxDelay:   50 * time.Millisecond,
					Seed:       1,
				})
				res, err := core.Run(l, mk(), asyncOpts())
				l.Dev.SetFaultInjector(nil)
				l.Dev.SetRetryPolicy(storage.RetryPolicy{})
				if err != nil {
					t.Fatalf("async chaos run did not survive: %v", err)
				}

				if cs := chaos.Stats(); cs.Transient == 0 {
					t.Fatalf("chaos injected no faults over %d ops", cs.Ops)
				}
				if res.IO.Retries == 0 {
					t.Fatal("faults injected but device recorded no retries")
				}
				if res.Async.Steps != base.Async.Steps {
					t.Fatalf("faulty run took %d steps, fault-free %d", res.Async.Steps, base.Async.Steps)
				}
				requireIdenticalOutputs(t, base.Outputs, res.Outputs)
			})
		}
	}
}

// TestAsyncCrashResumeBitIdentical kills a checkpointed async run mid-flight
// and resumes it; the resumed run must replay the identical schedule and
// finish bit-identical to a run that was never interrupted.
func TestAsyncCrashResumeBitIdentical(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			l := chaosLayout(t, codec, 7)
			mk := func() core.Program { return &algorithms.ConnectedComponents{} }
			base, err := core.Run(l, mk(), asyncOpts())
			if err != nil {
				t.Fatal(err)
			}
			if base.Async.Steps < 8 {
				t.Fatalf("run too short (%d steps) to crash mid-flight", base.Async.Steps)
			}

			ckDir := t.TempDir()
			power := errors.New("power loss")
			opts := asyncOpts()
			opts.Checkpoint = core.CheckpointOptions{Every: 2, Dir: ckDir}
			opts.OnIteration = func(st core.IterStat) {
				if st.Index == 5 {
					l.Dev.SetFaultInjector(func(op, name string) error { return power })
				}
			}
			_, err = core.Run(l, mk(), opts)
			l.Dev.SetFaultInjector(nil)
			if !errors.Is(err, power) {
				t.Fatalf("crashed run returned %v, want injected power loss", err)
			}
			if !checkpoint.Exists(ckDir) {
				t.Fatal("no checkpoint survived the crash")
			}

			opts = asyncOpts()
			opts.Checkpoint = core.CheckpointOptions{Every: 2, Dir: ckDir, Resume: true}
			res, err := core.Run(l, mk(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resumed || res.ResumedFrom != 6 {
				t.Fatalf("resumed=%t from step %d, want resume from step 6", res.Resumed, res.ResumedFrom)
			}
			if res.Iterations != base.Iterations {
				t.Fatalf("resumed run took %d steps total, uninterrupted took %d", res.Iterations, base.Iterations)
			}
			requireIdenticalOutputs(t, base.Outputs, res.Outputs)
		})
	}
}

// TestAsyncCheckpointModeMismatch: a BSP checkpoint cannot be resumed under
// -async and vice versa — each engine refuses the other's loop state.
func TestAsyncCheckpointModeMismatch(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 8)
	mk := func() core.Program { return &algorithms.PageRankDelta{Iterations: 40} }

	bspDir := t.TempDir()
	if _, err := core.Run(l, mk(), core.Options{
		Checkpoint: core.CheckpointOptions{Every: 2, Dir: bspDir},
	}); err != nil {
		t.Fatal(err)
	}
	opts := asyncOpts()
	opts.Checkpoint = core.CheckpointOptions{Dir: bspDir, Resume: true}
	_, err := core.Run(l, mk(), opts)
	if err == nil || !strings.Contains(err.Error(), "BSP engine") {
		t.Fatalf("async resumed a BSP checkpoint: %v", err)
	}

	asyncDir := t.TempDir()
	opts = asyncOpts()
	opts.Checkpoint = core.CheckpointOptions{Every: 2, Dir: asyncDir}
	if _, err := core.Run(l, mk(), opts); err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(l, mk(), core.Options{
		Checkpoint: core.CheckpointOptions{Dir: asyncDir, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "async engine") {
		t.Fatalf("BSP resumed an async checkpoint: %v", err)
	}
}

// TestAsyncRejectsUnsupported: non-monotonic programs and PersistValues are
// refused at run start, not silently misexecuted.
func TestAsyncRejectsUnsupported(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 9)
	_, err := core.Run(l, &algorithms.PageRank{Iterations: 3}, asyncOpts())
	if err == nil || !strings.Contains(err.Error(), "not monotonic") {
		t.Fatalf("plain pagerank accepted under async: %v", err)
	}
	opts := asyncOpts()
	opts.PersistValues = true
	_, err = core.Run(l, &algorithms.ConnectedComponents{}, opts)
	if err == nil || !strings.Contains(err.Error(), "PersistValues") {
		t.Fatalf("PersistValues accepted under async: %v", err)
	}
}

// TestRunContextCancelsPromptly: cancelling the run context aborts the run
// within roughly one block's work, even while the prefetch pipeline is
// blocked inside a slow device read — the contract behind NextCtx. Covered
// for both the BSP passes and the async scheduler.
func TestRunContextCancelsPromptly(t *testing.T) {
	runs := map[string]struct {
		prog func() core.Program
		opts core.Options
	}{
		"bsp":   {func() core.Program { return &algorithms.PageRank{Iterations: 8} }, core.Options{DefaultBuffer: true}},
		"async": {func() core.Program { return &algorithms.ConnectedComponents{} }, asyncOpts()},
	}
	for name, cfg := range runs {
		t.Run(name, func(t *testing.T) {
			l := chaosLayout(t, graph.CodecRaw, 6)
			var reads atomic.Int64
			l.Dev.SetFaultInjector(func(op, name string) error {
				if op == "read" && strings.HasPrefix(name, "blocks/") {
					reads.Add(1)
					time.Sleep(50 * time.Millisecond)
				}
				return nil
			})
			defer l.Dev.SetFaultInjector(nil)

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			start := time.Now()
			go func() {
				_, err := core.RunContext(ctx, l, cfg.prog(), cfg.opts)
				done <- err
			}()
			time.Sleep(200 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled run returned %v, want context.Canceled", err)
				}
			case <-time.After(3 * time.Second):
				t.Fatalf("run still going %v after cancel (%d slow reads served)", time.Since(start), reads.Load())
			}
		})
	}
}
