package core_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Exact Stats.Fallbacks accounting: when a prefetched block fails with a
// transient fault, the pass degrades and every consumed request from the
// failing one onward — including the failing request itself — is loaded
// synchronously and counted exactly once. These tests pin the counts for a
// degradation on the very first request of a pass and mid-pass, on both the
// FCIU/full and SCIU consumption paths.

// nonEmptyColumnMajor returns the non-empty grid cells in FCIU/full
// consumption order (j outer, i inner) — the pass's prefetch request list
// when nothing is streamed or buffer-resident.
func nonEmptyColumnMajor(m *partition.Manifest) [][2]int {
	var cells [][2]int
	for j := 0; j < m.P; j++ {
		for i := 0; i < m.P; i++ {
			if m.SubBlockEdges(i, j) > 0 {
				cells = append(cells, [2]int{i, j})
			}
		}
	}
	return cells
}

// nonEmptyRowMajor returns the non-empty cells in SCIU consumption order
// (i outer, j inner); with an always-active program every row is active, so
// this is SCIU's full request list.
func nonEmptyRowMajor(m *partition.Manifest) [][2]int {
	var cells [][2]int
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			if m.SubBlockEdges(i, j) > 0 {
				cells = append(cells, [2]int{i, j})
			}
		}
	}
	return cells
}

// failOnce installs a fault injector that makes the first attempted
// operation of kind op on file name fail with a transient error; every
// other access (including the synchronous reload of the same block)
// succeeds.
func failOnce(l *partition.Layout, op, name string) {
	var tripped atomic.Bool
	l.Dev.SetFaultInjector(func(gotOp, gotName string) error {
		if gotOp == op && gotName == name && tripped.CompareAndSwap(false, true) {
			return storage.Transient(errors.New("transient sector fault"))
		}
		return nil
	})
}

func TestFullPassFallbackCountsExact(t *testing.T) {
	for _, tc := range []struct {
		name    string
		failIdx int // index into the column-major request list
	}{
		{"first-request", 0},
		{"mid-pass", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := faultLayout(t)
			cells := nonEmptyColumnMajor(&l.Meta)
			if len(cells) <= tc.failIdx+1 {
				t.Fatalf("layout too sparse: %d non-empty cells", len(cells))
			}
			target := cells[tc.failIdx]
			failOnce(l, "read", partition.SubBlockName(target[0], target[1]))

			// Two full-single iterations: only the first degrades (the
			// injector fires once), so the expected count is the first
			// pass's requests from failIdx onward.
			res, err := core.Run(l, &algorithms.PageRank{Iterations: 2}, core.Options{
				ForceModel:            core.ForceFull,
				DisableCrossIteration: true,
			})
			if err != nil {
				t.Fatalf("degraded run failed: %v", err)
			}
			want := len(cells) - tc.failIdx
			if res.Pipeline.Fallbacks != want {
				t.Fatalf("Fallbacks = %d, want exactly %d (degrade at request %d of %d)",
					res.Pipeline.Fallbacks, want, tc.failIdx, len(cells))
			}
		})
	}
}

// TestFCIUFirstRequestFallbackCountExact drives the degradation through the
// real FCIU pass pair (fciu-1 then fciu-2) with the failure on the very
// first prefetched request of the run.
func TestFCIUFirstRequestFallbackCountExact(t *testing.T) {
	l := faultLayout(t)
	cells := nonEmptyColumnMajor(&l.Meta)
	target := cells[0]
	failOnce(l, "read", partition.SubBlockName(target[0], target[1]))

	res, err := core.Run(l, &algorithms.PageRank{Iterations: 4}, core.Options{
		ForceModel: core.ForceFull,
	})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	// The fciu-1 pass prefetches every non-empty cell (nothing is resident
	// at the start of the run) and degrades on its first request, so all of
	// them fall back; every later pass runs fault-free.
	if res.Pipeline.Fallbacks != len(cells) {
		t.Fatalf("Fallbacks = %d, want exactly %d", res.Pipeline.Fallbacks, len(cells))
	}
}

func TestSCIUFallbackCountsExact(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			for _, tc := range []struct {
				name    string
				failIdx int
			}{
				{"first-request", 0},
				{"mid-pass", 2},
			} {
				t.Run(tc.name, func(t *testing.T) {
					l := faultLayoutCodec(t, codec)
					cells := nonEmptyRowMajor(&l.Meta)
					if len(cells) <= tc.failIdx+1 {
						t.Fatalf("layout too sparse: %d non-empty cells", len(cells))
					}
					target := cells[tc.failIdx]
					// Selective loads read through AutoReadAt ("readat").
					failOnce(l, "readat", partition.SubBlockName(target[0], target[1]))

					res, err := core.Run(l, &algorithms.PageRank{Iterations: 2}, core.Options{
						ForceModel: core.ForceOnDemand,
					})
					if err != nil {
						t.Fatalf("degraded run failed: %v", err)
					}
					want := len(cells) - tc.failIdx
					if res.Pipeline.Fallbacks != want {
						t.Fatalf("Fallbacks = %d, want exactly %d (degrade at request %d of %d)",
							res.Pipeline.Fallbacks, want, tc.failIdx, len(cells))
					}
				})
			}
		})
	}
}
