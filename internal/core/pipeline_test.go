package core_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// The I/O pipeline must be invisible to the computation: prefetched runs
// produce bit-identical outputs to synchronous runs, because sub-blocks are
// consumed in exactly the same order either way.

func pipelineTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(10, 10, gen.Graph500, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEnginePrefetchEquivalence(t *testing.T) {
	g := pipelineTestGraph(t)
	variants := map[string]core.Options{
		"sync":          {PrefetchDepth: -1},
		"default":       {},
		"deep":          {PrefetchDepth: 8},
		"tiny-window":   {PrefetchDepth: 2, PrefetchBytes: 1024},
		"sync-buffered": {PrefetchDepth: -1, DefaultBuffer: true},
		"buffered":      {DefaultBuffer: true},
	}
	for pname, mk := range testPrograms(0) {
		var base []float64
		for _, vname := range []string{"sync", "default", "deep", "tiny-window", "sync-buffered", "buffered"} {
			opts := variants[vname]
			layout := buildLayoutProf(t, g, 4, storage.ScaledHDD)
			res, err := core.Run(layout, mk(), opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", pname, vname, err)
			}
			if base == nil {
				base = res.Outputs
				continue
			}
			// Same consumption order either way: results must be
			// bit-identical, not merely close.
			compareOutputs(t, pname+"/"+vname, res.Outputs, base, 0)
		}
	}
}

func TestEnginePrefetchStats(t *testing.T) {
	g := pipelineTestGraph(t)

	layout := buildLayoutProf(t, g, 4, storage.ScaledHDD)
	res, err := core.Run(layout, &algorithms.PageRank{Iterations: 3}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Blocks == 0 || res.Pipeline.Bytes == 0 {
		t.Fatalf("pipelined run recorded no prefetches: %+v", res.Pipeline)
	}
	if res.Pipeline.Fetch == 0 {
		t.Fatalf("pipelined run recorded no fetch time: %+v", res.Pipeline)
	}
	sum := 0
	for _, st := range res.IterStats {
		sum += st.Pipeline.Blocks
	}
	if sum != res.Pipeline.Blocks {
		t.Fatalf("per-iteration blocks sum %d, run total %d", sum, res.Pipeline.Blocks)
	}

	layout = buildLayoutProf(t, g, 4, storage.ScaledHDD)
	res, err = core.Run(layout, &algorithms.PageRank{Iterations: 3}, core.Options{PrefetchDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline != (core.Result{}).Pipeline {
		t.Fatalf("synchronous run recorded pipeline activity: %+v", res.Pipeline)
	}
}

// TestEnginePrefetchErrorMidStream fails the k-th sub-block read while
// several later fetches are already in flight; the engine must surface the
// injected error (not a cancellation artifact) and shut the pipeline down
// without hanging.
func TestEnginePrefetchErrorMidStream(t *testing.T) {
	boom := errors.New("mid-stream read failure")
	for _, failAt := range []int32{1, 3, 6} {
		l := faultLayout(t)
		var reads int32
		l.Dev.SetFaultInjector(func(op, name string) error {
			if strings.HasPrefix(name, "blocks/") && strings.HasSuffix(name, ".edges") && op == "read" {
				if atomic.AddInt32(&reads, 1) == failAt {
					return boom
				}
			}
			return nil
		})
		_, err := core.Run(l, &algorithms.PageRank{Iterations: 3}, core.Options{PrefetchDepth: 4})
		if !errors.Is(err, boom) {
			t.Fatalf("failAt=%d: fault not surfaced: %v", failAt, err)
		}
	}
}

// TestParallelScatterMatchesSerial stress-tests the lock-free two-phase
// scatter against the single-threaded path on a graph large enough that
// every configuration exceeds the serial threshold. Run under -race this
// doubles as the data-race check for the destination-partitioned merge.
func TestParallelScatterMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(12, 12, gen.Graph500, 11)
	if err != nil {
		t.Fatal(err)
	}
	for pname, mk := range testPrograms(0) {
		layout := buildLayout(t, g, 2)
		serial, err := core.Run(layout, mk(), core.Options{Threads: 1})
		if err != nil {
			t.Fatalf("%s/serial: %v", pname, err)
		}
		for _, threads := range []int{4, 8} {
			layout := buildLayout(t, g, 2)
			par, err := core.Run(layout, mk(), core.Options{Threads: threads})
			if err != nil {
				t.Fatalf("%s/t%d: %v", pname, threads, err)
			}
			// Merge is commutative and associative for every test program,
			// but float addition picks up reassociation noise — compare
			// with a tight tolerance rather than bit-exactly.
			compareOutputs(t, pname+"/threads", par.Outputs, serial.Outputs, 1e-12)
			if par.Iterations != serial.Iterations {
				t.Fatalf("%s/t%d: %d iterations, serial %d", pname, threads, par.Iterations, serial.Iterations)
			}
		}
	}
}
