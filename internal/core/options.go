package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
)

// Options configures an engine run. The zero value selects the full
// GraphSD behaviour; the Disable*/Force* switches express the paper's
// ablation baselines (§5.4):
//
//   - b1: DisableCrossIteration = true (current-iteration updates only)
//   - b2/b3: ForceModel = &FullIO (load all sub-blocks every iteration)
//   - b4: ForceModel = &OnDemandIO (selective loads every iteration)
//   - "no buffering": BufferBytes = 0 with DisableBufferDefault = true
type Options struct {
	// MaxIterations overrides the program's iteration bound when positive.
	MaxIterations int
	// DisableCrossIteration turns off cross-iteration value computation in
	// both update models (ablation GraphSD-b1).
	DisableCrossIteration bool
	// ForceModel pins the I/O access model instead of consulting the
	// state-aware scheduler (ablations GraphSD-b3 / GraphSD-b4).
	ForceModel *iosched.Model
	// BufferBytes is the secondary sub-block buffer capacity. Zero
	// disables buffering (the Figure 12 "without buffering" variant)
	// unless DefaultBuffer is set, in which case a capacity of 1/4 of the
	// edge data is used.
	BufferBytes int64
	// DefaultBuffer selects an automatic buffer capacity when BufferBytes
	// is zero.
	DefaultBuffer bool
	// BufferPolicy selects the buffer eviction discipline; the zero value
	// is the paper's priority scheme, FIFOPolicy the naive ablation.
	BufferPolicy buffer.Policy
	// SCIUCacheBudget bounds the bytes of active-vertex edges SCIU may
	// keep resident for cross-iteration propagation. Zero means the
	// on-demand working set is assumed to fit memory (the paper's
	// assumption). When the budget is exhausted, further vertices simply
	// lose the cross-iteration shortcut — correctness is unaffected.
	SCIUCacheBudget int64
	// StreamChunkBytes, when positive, streams full-model sub-block reads
	// in chunks of at most this many bytes instead of loading whole cells,
	// bounding peak memory at one chunk. Cells that must stay resident
	// (the diagonal during FCIU, and secondary cells entering the buffer)
	// are still loaded whole. Traffic is unchanged; only residency drops.
	StreamChunkBytes int64
	// PersistValues routes the per-iteration vertex value read and
	// write-back through a real on-device array (internal/vertexstore)
	// instead of modelled charges. Same bytes, but the final values are
	// inspectable on the device after the run.
	PersistValues bool
	// Threads is the scatter/apply parallelism; 0 means GOMAXPROCS.
	Threads int
	// PrefetchDepth is the number of sub-blocks the I/O pipeline may hold
	// in flight ahead of the consumer (also its fetch concurrency). Zero
	// selects the default of 4; a negative value disables pipelining and
	// restores fully synchronous loads. Streamed cells (StreamChunkBytes)
	// and buffer-resident sub-blocks are never prefetched.
	PrefetchDepth int
	// PrefetchBytes bounds the decoded bytes held by in-flight and
	// ready-but-unconsumed prefetches. Zero selects the default of 16 MiB.
	// A single sub-block larger than the budget is admitted alone, so an
	// oversized cell degrades to synchronous loading rather than stalling
	// the pipeline forever.
	PrefetchBytes int64
	// OnIteration, when non-nil, is invoked after every logical iteration
	// with that iteration's statistics — progress reporting for long runs
	// and for the job server's status endpoint. It runs on the engine
	// goroutine; keep it cheap.
	OnIteration func(IterStat)
	// DisableCalibration turns off the scheduler's prediction-vs-actual
	// feedback loop: no per-iteration Observe, no EWMA correction of the
	// cost estimates, no hysteresis. The zero value calibrates — the raw
	// formulas are systematically biased on real frontiers (non-uniform
	// per-edge disk bytes, partial block coverage) and the corrections are
	// what keeps the adaptive engine on the Figure 10 lower envelope.
	DisableCalibration bool
	// SEM enables the semi-external-memory fast path. Block-level active
	// bitmaps let every full-model pass (and its prefetch pipeline) skip
	// non-empty sub-blocks whose source interval holds no active vertex —
	// no bytes, no seeks — and the cost model prices the full model per
	// frontier accordingly. The per-run buffer switches to the compressed
	// tier: residents are delta-coded payloads decoded on hit, so the same
	// BufferBytes holds 2–5× more graph. Results are bit-identical to a
	// SEM-off run of the same forced path; under the adaptive scheduler the
	// cheaper full model may flip some iterations from SCIU to FCIU.
	SEM bool
	// SharedBlocks, when non-nil, routes full sub-block loads (pipelined
	// and synchronous) through a concurrency-safe cache shared with other
	// engines on the same layout, deduplicating device reads between
	// concurrent jobs (single-flight per grid key). Selective SCIU reads
	// and streamed chunks bypass it. The per-run priority buffer
	// (BufferBytes) still operates in front of it. A cache built with
	// buffer.NewSharedCompressed stores delta payloads; the engine decodes
	// hits in the loading worker and reports the decode time back.
	SharedBlocks *buffer.Shared
	// Checkpoint configures crash-safe iteration checkpointing and resume.
	Checkpoint CheckpointOptions
	// Async replaces the BSP iteration loop with the asynchronous work-list
	// engine: a priority queue over source intervals keyed by pending update
	// mass, processed highest-mass first with no global barrier. Requires a
	// program implementing Monotonic (label-correcting traversals, PR-Delta);
	// non-monotonic programs are rejected at run start. Results reach the
	// same fixed point as BSP (bit-exact labels for min-programs, within
	// Program tolerance for PR-Delta) but the iteration trace, paths, and
	// traffic differ. Incompatible with PersistValues; ForceModel and
	// StreamChunkBytes are ignored.
	Async bool
	// AsyncEpsilon stops an async run once the total pending residual over
	// active vertices falls to or below it. Zero means run until the
	// frontier drains (min-programs converge exactly; PR-Delta converges to
	// its per-vertex tolerance).
	AsyncEpsilon float64
	// AsyncSeed seeds the scheduler's deterministic tie-breaking between
	// equal-mass rows. A fixed seed reproduces the exact pop sequence, and
	// therefore bit-identical results, across runs and checkpoint/resume.
	AsyncSeed uint64
}

// CheckpointOptions controls checkpoint/resume of an engine run. A
// checkpoint captures the complete BSP loop state at an iteration boundary
// (vertex values, staged cross-iteration accumulators, frontier bitsets),
// so a run resumed from it produces results bit-identical to one that was
// never interrupted.
type CheckpointOptions struct {
	// Every saves a checkpoint after every Every completed iterations.
	// Zero (with Resume unset) disables checkpointing.
	Every int
	// Dir is the host directory holding the checkpoint file. It is a plain
	// directory, not part of the simulated device, so injected device
	// faults never corrupt recovery state.
	Dir string
	// Resume restores the checkpoint in Dir before the first iteration.
	// When Dir holds no checkpoint the run simply starts fresh; a corrupt
	// or mismatched checkpoint is an error.
	Resume bool
}

func (c CheckpointOptions) saveEnabled() bool { return c.Every > 0 && c.Dir != "" }

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// defaultPrefetchDepth and defaultPrefetchBytes size the I/O pipeline's
// read-ahead window when the options leave it unset.
const (
	defaultPrefetchDepth = 4
	defaultPrefetchBytes = 16 << 20
)

func (o Options) prefetchEnabled() bool { return o.PrefetchDepth >= 0 }

func (o Options) prefetchOptions() pipeline.Options {
	depth := o.PrefetchDepth
	if depth == 0 {
		depth = defaultPrefetchDepth
	}
	bytes := o.PrefetchBytes
	if bytes == 0 {
		bytes = defaultPrefetchBytes
	}
	return pipeline.Options{Depth: depth, Bytes: bytes}
}

// ForceFull and ForceOnDemand are convenience values for Options.ForceModel.
var (
	forceFullVal     = iosched.FullIO
	forceOnDemandVal = iosched.OnDemandIO
	// ForceFull pins the full I/O model (ablations b2/b3).
	ForceFull = &forceFullVal
	// ForceOnDemand pins the on-demand I/O model (ablation b4).
	ForceOnDemand = &forceOnDemandVal
)

// Result reports one engine run.
type Result struct {
	Algorithm  string
	Iterations int
	Converged  bool
	// Outputs holds prog.Output for every vertex.
	Outputs []float64

	// WallTime is host wall-clock for the whole run; ComputeTime is the
	// wall-clock spent in scatter/apply (the "vertex updating" share of
	// Figure 6); IO is the simulated device traffic and time, measured as a
	// delta over the device counters. When other runs share the device
	// concurrently (the job server), their interleaved traffic is included
	// in the delta — per-graph totals from Device.Stats are the exact
	// figures in that setting.
	WallTime    time.Duration
	ComputeTime time.Duration
	IO          storage.Snapshot

	// SharedHits/SharedMisses count this run's full sub-block loads served
	// from / missed in the cross-job shared cache (Options.SharedBlocks);
	// both zero when no shared cache is configured. A hit costs the device
	// nothing, which is why a warm job reads strictly fewer blocks than a
	// cold one.
	SharedHits   int64
	SharedMisses int64

	// Codec is the layout's sub-block payload encoding ("raw" or "delta").
	// CompressRatio is decoded/on-disk edge payload bytes (1.0 for raw);
	// DecodeTime is the cumulative wall-clock spent decoding payloads —
	// under pipelined prefetch it runs on fetch workers, overlapped with
	// compute, so it is not an additive share of WallTime.
	Codec         string
	CompressRatio float64
	DecodeTime    time.Duration

	// Decisions is the per-iteration scheduler trace (Figure 10) and
	// SchedulerOverhead its cumulative cost (Figure 11). SchedAccuracy
	// summarises the calibration loop's prediction quality: observed
	// iterations, mean/max/last misprediction ratio and the final EWMA
	// correction factors (all zero-observation defaults when
	// Options.DisableCalibration is set).
	Decisions         []iosched.Decision
	SchedulerOverhead time.Duration
	SchedAccuracy     iosched.Accuracy

	// Buffer reports the secondary sub-block buffer outcomes (Figure 12).
	Buffer buffer.Stats

	// Pipeline aggregates the I/O–compute pipeline outcomes across all
	// iterations: blocks and bytes prefetched, the wall-clock the consumer
	// stalled waiting on fetches, and the fetch work hidden behind
	// computation (overlap).
	Pipeline pipeline.Stats

	// IterStats traces each logical iteration: which path executed, the
	// active-vertex count entering it, and its I/O and compute shares.
	// This is the data series of the Figure 10 experiment.
	IterStats []IterStat

	// Resumed reports that the run restored a checkpoint; ResumedFrom is
	// the completed-iteration count it picked up at. Checkpoints counts
	// the checkpoints written during this run.
	Resumed     bool
	ResumedFrom int
	Checkpoints int

	// SEM reports the semi-external-memory outcomes: blocks and bytes the
	// activity bitmap skipped, and the compressed cache tier's hit/decode
	// and effective-capacity accounting.
	SEM SEMStats

	// Async reports the asynchronous engine's outcomes; zero-valued (with
	// Enabled false) for BSP runs.
	Async AsyncStats
}

// AsyncStats reports one asynchronous run. Steps is the number of scheduler
// pops (each processes one source interval's live sub-blocks); for
// comparison with BSP, Result.Iterations holds the same count.
type AsyncStats struct {
	Enabled bool
	// Steps counts scheduler pops; SelectiveSteps the subset that loaded
	// the row's edges selectively (per-vertex reads) instead of streaming
	// whole sub-blocks.
	Steps          int
	SelectiveSteps int
	// BlocksScheduled counts sub-blocks actually processed across all
	// steps — the async analogue of BSP's iterations × P² full-pass reads.
	BlocksScheduled int64
	// Reactivations counts vertices re-entering the frontier after having
	// been consumed at least once — the re-computation async trades for
	// skipped barriers.
	Reactivations int64
	// FinalResidual is the total pending mass when the run stopped: 0 when
	// the frontier drained, otherwise ≤ Options.AsyncEpsilon (unless the
	// step bound was hit first).
	FinalResidual float64
}

// IterStat describes one logical iteration of an engine run. Under async
// execution one IterStat is emitted per scheduler step with Path "async"
// (whole-row streaming) or "async-sel" (selective per-vertex loads).
type IterStat struct {
	Index int
	// Path is the executed update path: "sciu", "fciu-1", "fciu-2",
	// "full-single", "async" or "async-sel".
	Path string
	// Active is the number of active vertices entering the iteration.
	Active int
	// Blocks is the number of sub-blocks the step processed and
	// Reactivations the number of previously-consumed vertices it woke;
	// Residual is the total pending mass after the step. All three are
	// async-only (zero under BSP).
	Blocks        int
	Reactivations int64
	Residual      float64
	// IO is the device traffic attributed to the iteration; IOTime and
	// ComputeTime are its simulated-disk and measured-CPU shares.
	// DecodeTime is the payload decode wall-clock attributed to the
	// iteration (overlapped with compute when prefetching).
	IO          storage.Snapshot
	IOTime      time.Duration
	ComputeTime time.Duration
	DecodeTime  time.Duration
	// Pipeline is the iteration's share of the I/O–compute pipeline
	// activity (stall and overlap wall-clock, blocks prefetched).
	Pipeline pipeline.Stats
	// Predicted is the scheduler's corrected cost estimate for the executed
	// model and Mispredict the relative error against IOTime. Both stay zero
	// for unobserved iterations (fciu-2, which executes the second half of
	// the previous decision's pass, and all iterations when
	// Options.DisableCalibration is set).
	Predicted  time.Duration
	Mispredict float64
}

// Time returns the iteration's total execution time under the simulated
// disk.
func (s IterStat) Time() time.Duration { return s.IOTime + s.ComputeTime }

// ExecTime is the reported execution time of the run under the simulated
// disk: simulated I/O time plus measured compute time. This is the metric
// corresponding to the paper's execution-time figures.
func (r *Result) ExecTime() time.Duration {
	return r.IO.TotalTime() + r.ComputeTime
}

// IOTime returns the simulated disk time of the run.
func (r *Result) IOTime() time.Duration { return r.IO.TotalTime() }

// String summarises the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d iters (converged=%t) exec=%v io=%v compute=%v traffic=%s",
		r.Algorithm, r.Iterations, r.Converged,
		r.ExecTime().Round(time.Microsecond), r.IOTime().Round(time.Microsecond),
		r.ComputeTime.Round(time.Microsecond), storage.FormatBytes(r.IO.TotalBytes()))
}
