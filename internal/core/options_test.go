package core_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
)

func TestOnIterationHook(t *testing.T) {
	g := gen.Chain(40)
	layout := buildLayout(t, g, 2)
	var seen []core.IterStat
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{
		OnIteration: func(st core.IterStat) { seen = append(seen, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations {
		t.Fatalf("hook fired %d times for %d iterations", len(seen), res.Iterations)
	}
	for i, st := range seen {
		if st.Index != i {
			t.Fatalf("hook %d got index %d", i, st.Index)
		}
	}
}

func TestSCIUCacheBudgetPreservesCorrectness(t *testing.T) {
	// A tiny cross-iteration cache budget disables most prescattering;
	// results must be unchanged, only more edges re-read.
	g, err := gen.RMAT(8, 8, gen.Graph500, 12)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.ConnectedComponents{} }
	want, _ := core.RunReference(g, prog(), 0)

	for _, budget := range []int64{0, 1, 64, 1 << 20} {
		layout := buildLayout(t, g, 4)
		res, err := core.Run(layout, prog(), core.Options{
			ForceModel:      core.ForceOnDemand,
			SCIUCacheBudget: budget,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		compareOutputs(t, "budget", res.Outputs, want, 1e-9)
	}
}

func TestSCIUCacheBudgetIncreasesIO(t *testing.T) {
	// With prescattering suppressed by a 1-byte budget, re-activated
	// vertices' edges must be re-read next iteration: traffic can only
	// grow (or stay equal when no vertex ever re-activates).
	g, err := gen.Clustered(4, 30, 200, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	layoutA := buildLayout(t, g, 3)
	unlimited, err := core.Run(layoutA, &algorithms.ConnectedComponents{}, core.Options{ForceModel: core.ForceOnDemand})
	if err != nil {
		t.Fatal(err)
	}
	layoutB := buildLayout(t, g, 3)
	starved, err := core.Run(layoutB, &algorithms.ConnectedComponents{}, core.Options{
		ForceModel:      core.ForceOnDemand,
		SCIUCacheBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if starved.IO.ReadBytes() < unlimited.IO.ReadBytes() {
		t.Fatalf("starved cache read less (%d) than unlimited (%d)",
			starved.IO.ReadBytes(), unlimited.IO.ReadBytes())
	}
}

func TestBufferPolicyOption(t *testing.T) {
	g, err := gen.RMAT(8, 10, gen.Graph500, 9)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.PageRank{Iterations: 6} }
	want, _ := core.RunReference(g, prog(), 0)
	for _, policy := range []buffer.Policy{buffer.PriorityPolicy, buffer.FIFOPolicy} {
		layout := buildLayout(t, g, 4)
		res, err := core.Run(layout, prog(), core.Options{
			ForceModel:   core.ForceFull,
			BufferBytes:  1 << 16, // small enough to force evictions
			BufferPolicy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		compareOutputs(t, "policy", res.Outputs, want, 1e-9)
	}
}
