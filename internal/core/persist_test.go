package core_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/vertexstore"
)

func TestPersistValuesSameResultsAndTraffic(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.Graph500, 15)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.ConnectedComponents{} }

	layoutA := buildLayout(t, g, 4)
	modelled, err := core.Run(layoutA, prog(), core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	layoutB := buildLayout(t, g, 4)
	persisted, err := core.Run(layoutB, prog(), core.Options{DefaultBuffer: true, PersistValues: true})
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "persist", persisted.Outputs, modelled.Outputs, 1e-9)
	// The cost model charges exactly what the store moves per iteration;
	// the persisted run adds only the initial value write.
	extra := persisted.IO.TotalBytes() - modelled.IO.TotalBytes()
	if extra != int64(g.NumVertices)*8 {
		t.Fatalf("persisted run moved %d extra bytes, want %d (one initial write)",
			extra, g.NumVertices*8)
	}
}

func TestPersistValuesInspectableAfterRun(t *testing.T) {
	g := gen.Chain(20)
	layout := buildLayout(t, g, 2)
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{PersistValues: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := vertexstore.New(layout.Dev, "primary", g.NumVertices)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Exists() {
		t.Fatal("persisted value array missing after run")
	}
	vals := make([]float64, g.NumVertices)
	if err := store.Read(vals); err != nil {
		t.Fatal(err)
	}
	// The persisted array is the final iteration's value state; for BFS
	// that equals the outputs.
	for v := range vals {
		a, b := vals[v], res.Outputs[v]
		if a != b && !(a > 1e18 && b > 1e18) { // +Inf encodes fine; compare loosely
			t.Fatalf("vertex %d: persisted %v, output %v", v, a, b)
		}
	}
}
