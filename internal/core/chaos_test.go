package core_test

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/checkpoint"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Chaos harness: seeded probabilistic fault injection over full engine runs.
// The contract under test is the tentpole of the fault-tolerance work: a run
// subjected to transient read faults (recovered by device retries and
// pipeline degradation) must produce results bit-identical to a fault-free
// run, on every update path and codec; and a run killed mid-stream must
// resume from its checkpoint to the same final values.

func requireIdenticalOutputs(t *testing.T, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("output length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("vertex %d: output %v differs from fault-free %v", v, got[v], want[v])
		}
	}
}

func chaosLayout(t *testing.T, codec graph.Codec, seed int64) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RMAT(9, 8, gen.Graph500, seed)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, 4, partition.WithCodec(codec))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// chaosRecord is one row of the BENCH_chaos.json-style CI artifact.
type chaosRecord struct {
	Path       string `json:"path"`
	Codec      string `json:"codec"`
	Ops        int64  `json:"chaos_ops"`
	Transient  int64  `json:"transient_faults"`
	Retries    int64  `json:"device_retries"`
	Fallbacks  int    `json:"pipeline_fallbacks"`
	Iterations int    `json:"iterations"`
	Identical  bool   `json:"bit_identical"`
}

// TestChaosRunsBitIdentical injects transient read faults into every
// combination of update path (FCIU via PageRank, SCIU via on-demand BFS) and
// sub-block codec, and requires the faulty run to converge to outputs
// bit-identical to the fault-free baseline, with the recovery machinery
// demonstrably exercised (device retries observed). When CHAOS_OUT names a
// file, a JSON artifact summarising each combination is written for CI.
func TestChaosRunsBitIdentical(t *testing.T) {
	paths := []struct {
		name string
		prog func() core.Program
		opts core.Options
	}{
		{"fciu", func() core.Program { return &algorithms.PageRank{Iterations: 6} }, core.Options{}},
		{"sciu", func() core.Program { return &algorithms.BFS{Source: 0} }, core.Options{ForceModel: core.ForceOnDemand}},
	}
	var records []chaosRecord
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		for _, p := range paths {
			t.Run(p.name+"/"+codec.String(), func(t *testing.T) {
				l := chaosLayout(t, codec, 5)
				base, err := core.Run(l, p.prog(), p.opts)
				if err != nil {
					t.Fatal(err)
				}

				chaos := storage.NewChaos(storage.ChaosOptions{
					Seed:              42,
					TransientReadProb: 0.05,
					Match: func(op, name string) bool {
						return op == "read" || op == "readat"
					},
				})
				l.Dev.SetFaultInjector(chaos.Injector())
				l.Dev.SetRetryPolicy(storage.RetryPolicy{
					MaxRetries: 5,
					BaseDelay:  time.Millisecond,
					MaxDelay:   50 * time.Millisecond,
					Seed:       1,
				})
				res, err := core.Run(l, p.prog(), p.opts)
				l.Dev.SetFaultInjector(nil)
				l.Dev.SetRetryPolicy(storage.RetryPolicy{})
				if err != nil {
					t.Fatalf("chaos run did not survive: %v", err)
				}

				cs := chaos.Stats()
				if cs.Transient == 0 {
					t.Fatalf("chaos injected no faults over %d ops — harness not exercised", cs.Ops)
				}
				if res.IO.Retries == 0 {
					t.Fatal("faults injected but device recorded no retries")
				}
				if res.Iterations != base.Iterations || res.Converged != base.Converged {
					t.Fatalf("faulty run: %d iters converged=%t, fault-free: %d iters converged=%t",
						res.Iterations, res.Converged, base.Iterations, base.Converged)
				}
				requireIdenticalOutputs(t, base.Outputs, res.Outputs)
				records = append(records, chaosRecord{
					Path:       p.name,
					Codec:      codec.String(),
					Ops:        cs.Ops,
					Transient:  cs.Transient,
					Retries:    res.IO.Retries,
					Fallbacks:  res.Pipeline.Fallbacks,
					Iterations: res.Iterations,
					Identical:  true,
				})
			})
		}
	}

	if path := os.Getenv("CHAOS_OUT"); path != "" && len(records) > 0 {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFCIUPipelineDegradesToSync proves the prefetch pipeline degrades to
// synchronous loads — counted in Pipeline.Fallbacks — rather than cancelling
// the run, when a prefetched sub-block read faults transiently and the
// device itself has no retry budget.
func TestFCIUPipelineDegradesToSync(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 6)
	base, err := core.Run(l, &algorithms.PageRank{Iterations: 4}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var fired atomic.Bool
	l.Dev.SetFaultInjector(func(op, name string) error {
		if op == "read" && strings.HasPrefix(name, "blocks/") && fired.CompareAndSwap(false, true) {
			return storage.Transient(errors.New("cosmic ray"))
		}
		return nil
	})
	res, err := core.Run(l, &algorithms.PageRank{Iterations: 4}, core.Options{})
	l.Dev.SetFaultInjector(nil)
	if err != nil {
		t.Fatalf("run did not degrade past transient pipeline fault: %v", err)
	}
	if res.Pipeline.Fallbacks == 0 {
		t.Fatal("transient pipeline fault recorded no fallbacks")
	}
	requireIdenticalOutputs(t, base.Outputs, res.Outputs)
}

// TestSCIUPipelineDegradesToSync is the same contract for the selective
// (on-demand) path: a transient fault in a prefetched selective load drops
// the iteration to synchronous per-vertex reads mid-stream.
func TestSCIUPipelineDegradesToSync(t *testing.T) {
	l := chaosLayout(t, graph.CodecDelta, 6)
	opts := core.Options{ForceModel: core.ForceOnDemand}
	prog := func() core.Program { return &algorithms.BFS{Source: 0} }
	base, err := core.Run(l, prog(), opts)
	if err != nil {
		t.Fatal(err)
	}

	var fired atomic.Bool
	l.Dev.SetFaultInjector(func(op, name string) error {
		if op == "readat" && fired.CompareAndSwap(false, true) {
			return storage.Transient(errors.New("bus glitch"))
		}
		return nil
	})
	res, err := core.Run(l, prog(), opts)
	l.Dev.SetFaultInjector(nil)
	if err != nil {
		t.Fatalf("sciu run did not degrade past transient fault: %v", err)
	}
	if res.Pipeline.Fallbacks == 0 {
		t.Fatal("transient sciu fault recorded no fallbacks")
	}
	requireIdenticalOutputs(t, base.Outputs, res.Outputs)
}

// TestCrashAndResumeBitIdentical kills a checkpointed run mid-flight (every
// device op fails permanently after iteration 3) and resumes it from the
// checkpoint written at the iteration-4 boundary; the resumed run must
// finish with outputs bit-identical to a run that was never interrupted,
// across both codecs, including across an FCIU second-phase boundary.
func TestCrashAndResumeBitIdentical(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			l := chaosLayout(t, codec, 7)
			prog := func() core.Program { return &algorithms.PageRank{Iterations: 8} }
			base, err := core.Run(l, prog(), core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			ckDir := t.TempDir()
			power := errors.New("power loss")
			_, err = core.Run(l, prog(), core.Options{
				Checkpoint: core.CheckpointOptions{Every: 2, Dir: ckDir},
				OnIteration: func(st core.IterStat) {
					if st.Index == 3 {
						l.Dev.SetFaultInjector(func(op, name string) error { return power })
					}
				},
			})
			l.Dev.SetFaultInjector(nil)
			if !errors.Is(err, power) {
				t.Fatalf("crashed run returned %v, want injected power loss", err)
			}
			if !checkpoint.Exists(ckDir) {
				t.Fatal("no checkpoint survived the crash")
			}

			res, err := core.Run(l, prog(), core.Options{
				Checkpoint: core.CheckpointOptions{Every: 2, Dir: ckDir, Resume: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resumed || res.ResumedFrom != 4 {
				t.Fatalf("resumed=%t from %d, want resume from iteration 4", res.Resumed, res.ResumedFrom)
			}
			if res.Iterations != base.Iterations {
				t.Fatalf("resumed run ran %d iterations, uninterrupted ran %d", res.Iterations, base.Iterations)
			}
			if res.Checkpoints == 0 {
				t.Fatal("resumed run wrote no further checkpoints")
			}
			requireIdenticalOutputs(t, base.Outputs, res.Outputs)
		})
	}
}

// TestResumeValidation covers the resume edge cases: an empty directory
// starts fresh, a checkpoint from another algorithm is refused, and a
// corrupted checkpoint fails the run instead of silently restarting.
func TestResumeValidation(t *testing.T) {
	l := chaosLayout(t, graph.CodecRaw, 8)
	ckDir := t.TempDir()

	res, err := core.Run(l, &algorithms.PageRank{Iterations: 4}, core.Options{
		Checkpoint: core.CheckpointOptions{Every: 2, Dir: ckDir, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed {
		t.Fatal("run resumed from an empty checkpoint dir")
	}
	if res.Checkpoints == 0 {
		t.Fatal("checkpointed run wrote no checkpoints")
	}

	_, err = core.Run(l, &algorithms.BFS{Source: 0}, core.Options{
		Checkpoint: core.CheckpointOptions{Dir: ckDir, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "algorithm") {
		t.Fatalf("pagerank checkpoint resumed by bfs: %v", err)
	}

	data, err := os.ReadFile(checkpoint.Path(ckDir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(checkpoint.Path(ckDir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(l, &algorithms.PageRank{Iterations: 4}, core.Options{
		Checkpoint: core.CheckpointOptions{Dir: ckDir, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "crc32c") {
		t.Fatalf("corrupt checkpoint resumed: %v", err)
	}
}
