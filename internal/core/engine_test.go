package core_test

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// paperGraph is the Figure 2 example (0-based).
func paperGraph() *graph.Graph {
	return &graph.Graph{
		NumVertices: 6,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 4},
			{Src: 1, Dst: 2}, {Src: 2, Dst: 0},
			{Src: 2, Dst: 3}, {Src: 3, Dst: 5},
			{Src: 4, Dst: 2}, {Src: 5, Dst: 4},
		},
	}
}

func buildLayout(t *testing.T, g *graph.Graph, p int) *partition.Layout {
	return buildLayoutProf(t, g, p, storage.HDD)
}

func buildLayoutProf(t *testing.T, g *graph.Graph, p int, prof storage.Profile) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), prof)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func compareOutputs(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: output length %d, want %d", name, len(got), len(want))
	}
	for v := range want {
		if !almostEqual(got[v], want[v], tol) {
			t.Fatalf("%s: vertex %d = %v, want %v", name, v, got[v], want[v])
		}
	}
}

// engineConfigs enumerates the GraphSD configurations that must all be
// BSP-equivalent: full GraphSD, the four ablations of §5.4, and
// buffer-on/off.
func engineConfigs() map[string]core.Options {
	return map[string]core.Options{
		"graphsd":        {DefaultBuffer: true},
		"b1-no-crossit":  {DisableCrossIteration: true, DefaultBuffer: true},
		"b2-force-full":  {ForceModel: core.ForceFull, DefaultBuffer: true},
		"b4-force-ondem": {ForceModel: core.ForceOnDemand},
		"no-buffer":      {},
		"single-thread":  {Threads: 1, DefaultBuffer: true},
	}
}

func testPrograms(src graph.VertexID) map[string]func() core.Program {
	return map[string]func() core.Program{
		"pagerank": func() core.Program { return &algorithms.PageRank{Iterations: 5} },
		"prdelta":  func() core.Program { return &algorithms.PageRankDelta{Iterations: 20} },
		"cc":       func() core.Program { return &algorithms.ConnectedComponents{} },
		"bfs":      func() core.Program { return &algorithms.BFS{Source: src} },
		"reach":    func() core.Program { return &algorithms.Reachability{Source: src} },
	}
}

// TestEngineMatchesReference is the central correctness property of the
// whole system: every engine configuration, on every graph shape and
// partitioning, computes exactly what the synchronous in-memory BSP oracle
// computes. Cross-iteration updates may change when edges are read, never
// what is computed.
func TestEngineMatchesReference(t *testing.T) {
	rmat, err := gen.RMAT(7, 6, gen.Graph500, 9)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := gen.Clustered(3, 20, 60, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"paper":     paperGraph(),
		"chain":     gen.Chain(40),
		"star":      gen.Star(30),
		"rmat":      rmat,
		"clustered": clustered,
	}
	for gname, g := range graphs {
		for _, p := range []int{1, 2, 5} {
			for pname, mk := range testPrograms(0) {
				want, wantIters := core.RunReference(g, mk(), 0)
				for cname, opts := range engineConfigs() {
					layout := buildLayout(t, g, p)
					res, err := core.Run(layout, mk(), opts)
					if err != nil {
						t.Fatalf("%s/%s/p%d/%s: %v", gname, pname, p, cname, err)
					}
					label := gname + "/" + pname + "/p" + string(rune('0'+p)) + "/" + cname
					compareOutputs(t, label, res.Outputs, want, 1e-9)
					if res.Iterations != wantIters {
						t.Errorf("%s: %d iterations, reference %d", label, res.Iterations, wantIters)
					}
				}
			}
		}
	}
}

func TestEngineSSSPMatchesReference(t *testing.T) {
	g := gen.Weighted(gen.Chain(30), 5, 2)
	extra, err := gen.ErdosRenyi(30, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges = append(g.Edges, gen.Weighted(extra, 9, 4).Edges...)

	prog := func() core.Program { return &algorithms.SSSP{Source: 0} }
	want, _ := core.RunReference(g, prog(), 0)
	for cname, opts := range engineConfigs() {
		layout := buildLayout(t, g, 3)
		res, err := core.Run(layout, prog(), opts)
		if err != nil {
			t.Fatalf("%s: %v", cname, err)
		}
		compareOutputs(t, "sssp/"+cname, res.Outputs, want, 1e-9)
	}
}

func TestReferencePageRankSumsToOne(t *testing.T) {
	g, err := gen.RMAT(6, 8, gen.Graph500, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With no dangling-mass correction the sum only stays 1 when every
	// vertex has out-degree > 0; add self-loops for sinks.
	deg := g.OutDegrees()
	for v, d := range deg {
		if d == 0 {
			g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v)})
		}
	}
	out, iters := core.RunReference(g, &algorithms.PageRank{Iterations: 5}, 0)
	if iters != 5 {
		t.Fatalf("ran %d iterations", iters)
	}
	sum := 0.0
	for _, r := range out {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank mass = %v, want 1", sum)
	}
}

func TestReferenceCCOnClusters(t *testing.T) {
	// Three disjoint strongly-symmetric clusters: labels must be the
	// minimum reachable id; with bidirectional chains each cluster
	// collapses to its base vertex.
	g := &graph.Graph{NumVertices: 9}
	for c := 0; c < 3; c++ {
		base := graph.VertexID(c * 3)
		for k := 0; k < 2; k++ {
			g.Edges = append(g.Edges,
				graph.Edge{Src: base + graph.VertexID(k), Dst: base + graph.VertexID(k+1)},
				graph.Edge{Src: base + graph.VertexID(k+1), Dst: base + graph.VertexID(k)})
		}
	}
	out, _ := core.RunReference(g, &algorithms.ConnectedComponents{}, 0)
	for v := 0; v < 9; v++ {
		if out[v] != float64(v/3*3) {
			t.Fatalf("vertex %d label %v, want %d", v, out[v], v/3*3)
		}
	}
}

func TestReferenceBFSDepths(t *testing.T) {
	g := gen.Chain(5)
	out, iters := core.RunReference(g, &algorithms.BFS{Source: 0}, 0)
	for v := 0; v < 5; v++ {
		if out[v] != float64(v) {
			t.Fatalf("depth(%d) = %v", v, out[v])
		}
	}
	// 4 propagation iterations plus a final one in which the frontier {4}
	// scatters nothing and the algorithm converges.
	if iters != 5 {
		t.Fatalf("BFS on chain(5) took %d iterations, want 5", iters)
	}
}

func TestEngineUnreachableVerticesStayInf(t *testing.T) {
	g := gen.Chain(10)
	g.NumVertices = 12 // two isolated vertices
	layout := buildLayout(t, g, 3)
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Outputs[10], 1) || !math.IsInf(res.Outputs[11], 1) {
		t.Fatalf("isolated vertices reached: %v %v", res.Outputs[10], res.Outputs[11])
	}
	if !res.Converged {
		t.Fatal("BFS did not converge")
	}
}

func TestNewEngineRejectsWrongLayout(t *testing.T) {
	dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.BuildLumos(dev, paperGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewEngine(l, &algorithms.PageRank{}, core.Options{}); err == nil {
		t.Fatal("lumos layout accepted by GraphSD engine")
	}
}

func TestNewEngineRejectsWeightMismatch(t *testing.T) {
	layout := buildLayout(t, paperGraph(), 2) // unweighted layout
	if _, err := core.NewEngine(layout, &algorithms.SSSP{Source: 0}, core.Options{}); err == nil {
		t.Fatal("weighted program accepted on unweighted layout")
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g := gen.Chain(50)
	layout := buildLayout(t, g, 2)
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{MaxIterations: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 7 {
		t.Fatalf("ran %d iterations with cap 7", res.Iterations)
	}
	if res.Converged {
		t.Fatal("reported convergence despite hitting the cap")
	}
	// Vertices beyond depth 7 must be unreached.
	if !math.IsInf(res.Outputs[20], 1) {
		t.Fatalf("vertex 20 = %v after 7 iterations", res.Outputs[20])
	}
}

func TestDecisionsRecordedPerIteration(t *testing.T) {
	g := gen.Chain(60)
	layout := buildLayout(t, g, 3)
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FCIU second halves don't consult the scheduler, so decisions <= iters.
	if len(res.Decisions) == 0 || len(res.Decisions) > res.Iterations {
		t.Fatalf("%d decisions for %d iterations", len(res.Decisions), res.Iterations)
	}
	if res.SchedulerOverhead < 0 {
		t.Fatal("negative scheduler overhead")
	}
}

func TestSelectiveLoadsLessThanFull(t *testing.T) {
	// BFS on an R-MAT graph: most iterations have small frontiers, so
	// adaptive GraphSD must move far fewer bytes than the forced-full
	// ablation (this is the heart of Figure 9).
	g, err := gen.RMAT(9, 8, gen.Graph500, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.BFS{Source: 0} }

	// ScaledHDD keeps the paper's seek-to-scan ratio at this graph scale,
	// so the scheduler actually exercises the on-demand model.
	layoutA := buildLayoutProf(t, g, 4, storage.ScaledHDD)
	adaptive, err := core.Run(layoutA, prog(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	layoutB := buildLayoutProf(t, g, 4, storage.ScaledHDD)
	full, err := core.Run(layoutB, prog(), core.Options{ForceModel: core.ForceFull})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.IO.ReadBytes() >= full.IO.ReadBytes() {
		t.Fatalf("adaptive read %d bytes, forced-full %d", adaptive.IO.ReadBytes(), full.IO.ReadBytes())
	}
	compareOutputs(t, "adaptive-vs-full", adaptive.Outputs, full.Outputs, 1e-9)
}

func TestCrossIterationReducesIO(t *testing.T) {
	// PageRank under forced-full I/O: FCIU reads upper-triangle sub-blocks
	// once per two iterations, so disabling cross-iteration (b1) must read
	// strictly more.
	g, err := gen.RMAT(8, 8, gen.Graph500, 6)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.PageRank{Iterations: 6} }

	layoutA := buildLayout(t, g, 4)
	fciu, err := core.Run(layoutA, prog(), core.Options{ForceModel: core.ForceFull})
	if err != nil {
		t.Fatal(err)
	}
	layoutB := buildLayout(t, g, 4)
	b1, err := core.Run(layoutB, prog(), core.Options{ForceModel: core.ForceFull, DisableCrossIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	if fciu.IO.ReadBytes() >= b1.IO.ReadBytes() {
		t.Fatalf("FCIU read %d bytes, b1 %d", fciu.IO.ReadBytes(), b1.IO.ReadBytes())
	}
	compareOutputs(t, "fciu-vs-b1", fciu.Outputs, b1.Outputs, 1e-9)
}

func TestBufferingReducesIO(t *testing.T) {
	// With a generous buffer, secondary sub-blocks are served from memory
	// in FCIU's second half: read volume must drop (Figure 12).
	g, err := gen.RMAT(8, 10, gen.Graph500, 8)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.PageRank{Iterations: 6} }

	layoutA := buildLayout(t, g, 4)
	buffered, err := core.Run(layoutA, prog(), core.Options{ForceModel: core.ForceFull, BufferBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	layoutB := buildLayout(t, g, 4)
	unbuffered, err := core.Run(layoutB, prog(), core.Options{ForceModel: core.ForceFull})
	if err != nil {
		t.Fatal(err)
	}
	if buffered.IO.ReadBytes() >= unbuffered.IO.ReadBytes() {
		t.Fatalf("buffered read %d bytes, unbuffered %d", buffered.IO.ReadBytes(), unbuffered.IO.ReadBytes())
	}
	if buffered.Buffer.Hits == 0 {
		t.Fatal("buffer recorded no hits")
	}
	if unbuffered.Buffer.Hits != 0 {
		t.Fatal("zero-capacity buffer recorded hits")
	}
	compareOutputs(t, "buffered-vs-not", buffered.Outputs, unbuffered.Outputs, 1e-9)
}

func TestResultMetadata(t *testing.T) {
	layout := buildLayout(t, paperGraph(), 2)
	res, err := core.Run(layout, &algorithms.ConnectedComponents{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "cc" {
		t.Fatalf("Algorithm = %s", res.Algorithm)
	}
	if !res.Converged {
		t.Fatal("CC on 6 vertices did not converge")
	}
	if res.ExecTime() != res.IOTime()+res.ComputeTime {
		t.Fatal("ExecTime identity violated")
	}
	if res.IO.TotalBytes() == 0 {
		t.Fatal("no I/O recorded")
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestForcedModelStillRecordsDecisions(t *testing.T) {
	layout := buildLayout(t, gen.Chain(40), 2)
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{ForceModel: core.ForceOnDemand})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != res.Iterations {
		t.Fatalf("forced on-demand: %d decisions for %d iterations", len(res.Decisions), res.Iterations)
	}
	var _ = iosched.OnDemandIO
}
