package core_test

import (
	"fmt"
	"log"
	"os"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Example demonstrates the complete GraphSD pipeline: preprocess a graph
// into the 2-D grid layout on a simulated disk, then run a traversal with
// the state- and dependency-aware engine.
func Example() {
	dir, err := os.MkdirTemp("", "graphsd-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dev, err := storage.OpenDevice(dir, storage.ScaledHDD)
	if err != nil {
		log.Fatal(err)
	}
	g := gen.Chain(8) // 0 -> 1 -> ... -> 7
	layout, err := partition.Build(dev, g, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(layout, &algorithms.BFS{Source: 0}, core.Options{DefaultBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%t depth(7)=%v\n", res.Converged, res.Outputs[7])
	// Output: converged=true depth(7)=7
}

// ExampleRunReference shows the in-memory BSP oracle, useful for verifying
// out-of-core results or for quick experimentation without a layout.
func ExampleRunReference() {
	g := gen.Star(4) // hub 0 -> {1,2,3}
	out, iters := core.RunReference(g, &algorithms.BFS{Source: 0}, 0)
	fmt.Printf("iters=%d depths=%v %v %v\n", iters, out[1], out[2], out[3])
	// Output: iters=2 depths=1 1 1
}
