package core_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
)

func TestStreamingChunksMatchWholeBlockLoads(t *testing.T) {
	g, err := gen.RMAT(9, 10, gen.Graph500, 23)
	if err != nil {
		t.Fatal(err)
	}
	prog := func() core.Program { return &algorithms.PageRank{Iterations: 5} }

	layoutA := buildLayout(t, g, 4)
	whole, err := core.Run(layoutA, prog(), core.Options{ForceModel: core.ForceFull})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int64{64, 4096, 1 << 20} {
		layoutB := buildLayout(t, g, 4)
		streamed, err := core.Run(layoutB, prog(), core.Options{
			ForceModel:       core.ForceFull,
			StreamChunkBytes: chunk,
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		compareOutputs(t, "streamed", streamed.Outputs, whole.Outputs, 1e-9)
		// Same bytes move either way; only the op granularity differs.
		if streamed.IO.ReadBytes() != whole.IO.ReadBytes() {
			t.Fatalf("chunk %d: streamed read %d bytes, whole %d",
				chunk, streamed.IO.ReadBytes(), whole.IO.ReadBytes())
		}
		if chunk < 4096 && streamed.IO.TotalOps() <= whole.IO.TotalOps() {
			t.Fatalf("chunk %d: expected more, smaller ops (streamed %d vs %d)",
				chunk, streamed.IO.TotalOps(), whole.IO.TotalOps())
		}
	}
}

func TestStreamingWithCrossIterationAndScheduler(t *testing.T) {
	// Streaming must compose with the adaptive scheduler and SCIU.
	g, err := gen.RMAT(8, 8, gen.Graph500, 24)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.RunReference(g, &algorithms.ConnectedComponents{}, 0)
	layout := buildLayout(t, g, 4)
	res, err := core.Run(layout, &algorithms.ConnectedComponents{}, core.Options{
		DefaultBuffer:    true,
		StreamChunkBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "stream-adaptive", res.Outputs, want, 1e-9)
}
