package core

import (
	"context"

	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
)

// fciuMode selects which grid cells an FCIU/full pass will read from disk,
// which is exactly the set the pass's I/O pipeline prefetches.
type fciuMode int

const (
	// fciuFirstCells: every cell, column-major; upper-triangle cells are
	// excluded when they will be streamed in chunks instead.
	fciuFirstCells fciuMode = iota
	// fciuSecondCells: secondary cells (i > j) only.
	fciuSecondCells
	// fullCells: every cell; all excluded when streaming is configured.
	// The priority buffer is not consulted in this mode.
	fullCells
)

// fciuPass drives the prefetched consumption of one FCIU or full pass. The
// request list is built in the exact order the pass consumes sub-blocks, so
// the consumer only has to check whether the cell it is about to process is
// the pipeline's next delivery.
//
// degraded records that a prefetched block failed with a transient fault:
// the pipeline has cancelled its remaining admissions, so the rest of the
// pass falls back to synchronous loads (which carry the device's own retry
// policy) instead of aborting the run. fallbacks counts the blocks loaded
// that way.
type fciuPass struct {
	pf        *pipeline.Prefetcher[[]graph.Edge]
	ctx       context.Context
	reqs      []pipeline.Request
	next      int
	degraded  bool
	fallbacks int
}

// newFCIUPass snapshots the buffer residency and builds the pass's prefetch
// sequence: non-empty cells in consumption order, minus cells that will be
// streamed in chunks, secondary cells expected to hit the buffer, and —
// under SEM — cells of rows the activity bitmap proves dead, which never
// enqueue a read at all. (A dead-row upper-triangle cell that the
// cross-iteration phase turns out to need is loaded synchronously by the
// consumer.) Residency is only sampled here — the pipeline's fetch workers
// never touch the buffer, so mid-pass evictions cost a synchronous fallback
// load in the consumer rather than a data race.
func (e *Engine) newFCIUPass(mode fciuMode) *fciuPass {
	resident := make(map[buffer.Key]bool)
	if mode != fullCells {
		for _, k := range e.buf.Keys() {
			resident[k] = true
		}
	}
	var reqs []pipeline.Request
	for j := 0; j < e.p; j++ {
		iLo := 0
		if mode == fciuSecondCells {
			iLo = j + 1
		}
		for i := iLo; i < e.p; i++ {
			if e.layout.Meta.SubBlockEdges(i, j) == 0 {
				continue
			}
			if e.sem != nil && !e.sem.rowLive(i) {
				continue
			}
			if e.opts.StreamChunkBytes > 0 && (mode == fullCells || (mode == fciuFirstCells && i < j)) {
				continue
			}
			if mode != fullCells && i > j && resident[buffer.Key{I: i, J: j}] {
				continue
			}
			reqs = append(reqs, pipeline.Request{I: i, J: j, Bytes: e.layout.Meta.SubBlockBytes(i, j)})
		}
	}
	return &fciuPass{pf: e.newBlockPrefetcher(reqs), ctx: e.ctx, reqs: reqs}
}

// take returns the prefetched edges for sub-block (i, j) when it is the
// pipeline's next delivery; ok is false when (i, j) was not prefetched
// (pipelining off, cell streamed/empty, expected buffer hit, or the pass has
// degraded to synchronous loads) and the caller must load synchronously.
//
// A transient fetch error does not abort the pass: the failing block and
// every later one are reported as not-prefetched, so the caller re-reads
// them synchronously through the device's retry path. Permanent errors are
// surfaced as-is.
//
// fallbacks is incremented in exactly one place, once per consumed request
// from the degrading one onward — no matter whether the degradation struck
// the first request of the pass or a later one — so it equals the number of
// synchronous fallback loads the caller performs for prefetched cells.
func (p *fciuPass) take(i, j int) (edges []graph.Edge, ok bool, err error) {
	if p.pf == nil || p.next >= len(p.reqs) || p.reqs[p.next].I != i || p.reqs[p.next].J != j {
		return nil, false, nil
	}
	p.next++
	if !p.degraded {
		_, edges, err = p.pf.NextCtx(p.ctx)
		if err == nil || !storage.IsTransient(err) {
			return edges, true, err
		}
		p.degraded = true
	}
	p.fallbacks++
	return nil, false, nil
}

// finish shuts the pass's pipeline down (cancelling any in-flight fetches)
// and folds its stats into the run totals.
func (e *Engine) finishFCIUPass(p *fciuPass) {
	if p.pf != nil {
		e.finishPrefetch(p.pf)
	}
	e.plStats.Fallbacks += p.fallbacks
}

// nextFCIUBlock fetches sub-block (i, j) for an FCIU pass, preferring the
// prefetch pipeline. Secondary sub-blocks (i > j) consult the priority
// buffer first and are offered to it after a miss, with priority equal to
// their current active-edge count — the same contract as the synchronous
// path, so buffer hit/miss statistics are unchanged by pipelining.
func (e *Engine) nextFCIUBlock(p *fciuPass, i, j int) ([]graph.Edge, error) {
	if e.layout.Meta.SubBlockEdges(i, j) == 0 {
		return nil, nil
	}
	if i <= j {
		if edges, ok, err := p.take(i, j); ok {
			return edges, err
		}
		return e.loadBlock(i, j)
	}
	k := buffer.Key{I: i, J: j}
	if e.opts.SEM {
		// Compressed buffer tier: residents are delta payloads, decoded on
		// hit. Decode round-trips the edge order exactly, so the scatter
		// consumes the same sequence as an uncached load.
		if edges, payload, ok := e.buf.GetEntry(k); ok {
			if payload == nil {
				return edges, nil
			}
			decoded, err := e.decodePayload(i, j, payload)
			if err != nil {
				return nil, err
			}
			e.semCompHits.Add(1)
			return decoded, nil
		}
	} else if edges, ok := e.buf.Get(k); ok {
		return edges, nil
	}
	edges, ok, err := p.take(i, j)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Expected resident at pass start but evicted since (or pipelining
		// is off): fall back to a synchronous load.
		if edges, err = e.loadBlock(i, j); err != nil {
			return nil, err
		}
	}
	priority := activeEdgeCount(edges, e.active)
	if e.opts.SEM {
		payload := e.encodePayload(i, j, edges)
		if e.buf.PutBytes(k, payload, e.layout.Meta.SubBlockBytes(i, j), priority) {
			e.semCompBytes.Add(int64(len(payload)))
			e.semDecBytes.Add(e.layout.Meta.SubBlockBytes(i, j))
		}
	} else {
		e.buf.Put(k, edges, e.layout.Meta.SubBlockBytes(i, j), priority)
	}
	return edges, nil
}

// runFCIUFirst executes the first half of a full cross-iteration update
// pass (paper Algorithm 3, lines 1–17): stream every sub-block in
// column-major order, updating iteration t, and exploit the dependency
// structure of the grid to compute iteration t+1 contributions in the same
// pass:
//
//   - sub-block (i, j) with i < j: interval i was applied before column j
//     is processed, so the sources' t-values are final — scatter t+1
//     contributions immediately after the t-scatter;
//   - the diagonal sub-block (j, j) is held in memory until column j is
//     applied, then scatters its t+1 contributions;
//   - sub-blocks with i > j ("secondary") cannot propagate in this pass
//     and are offered to the priority buffer for the second half.
//
// Sub-block reads run ahead of the scatter/apply work on the I/O pipeline.
// The driver then runs runFCIUSecond as the next iteration.
func (e *Engine) runFCIUFirst() error {
	if err := e.readValues(); err != nil {
		return err
	}
	e.semBegin()
	pass := e.newFCIUPass(fciuFirstCells)
	defer e.finishFCIUPass(pass)

	for j := 0; j < e.p; j++ {
		lo, hi := e.layout.Meta.Interval(j)
		var diag []graph.Edge
		diagDeferred := false
		for i := 0; i < e.p; i++ {
			if err := e.checkCtx(); err != nil {
				return err
			}
			if e.sem != nil && !e.sem.rowLive(i) {
				// The t-scatter of every cell in this row is a guaranteed
				// no-op: the active filter excludes all of its edges. Only
				// the cross-iteration scatter can still need the cell.
				switch {
				case i > j:
					// Secondary cells scatter from the active filter only.
					e.semSkip(i, j)
					continue
				case i < j:
					// Interval i is already applied, so newActive∩interval(i)
					// is final: skip when it is empty, otherwise fall through
					// and load for the cross-iteration scatter alone.
					if riLo, riHi := e.layout.Meta.Interval(i); e.newActive.CountRange(riLo, riHi) == 0 {
						e.semSkip(i, j)
						continue
					}
				default:
					// Diagonal: newActive∩interval(j) is final only after
					// applyInterval(j); defer the load decision until then.
					diagDeferred = true
					continue
				}
			}
			if i < j && e.opts.StreamChunkBytes > 0 {
				// Upper-triangle cells need no retention: stream them,
				// applying both the current-iteration update and the
				// cross-iteration propagation per chunk.
				err := e.layout.StreamSubBlock(i, j, e.opts.StreamChunkBytes, func(edges []graph.Edge) error {
					e.scatter(edges, e.valPrev, e.active, e.acc, e.touched, lo, hi)
					e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext, lo, hi)
					return nil
				})
				if err != nil {
					return err
				}
				continue
			}
			edges, err := e.nextFCIUBlock(pass, i, j)
			if err != nil {
				return err
			}
			if len(edges) == 0 {
				continue
			}
			// Current-iteration update (UserFunction over all edges whose
			// source is active).
			e.scatter(edges, e.valPrev, e.active, e.acc, e.touched, lo, hi)
			switch {
			case i < j:
				// CrossIterUpdate: sources already updated in this
				// iteration propagate their new value to iteration t+1.
				e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext, lo, hi)
			case i == j:
				diag = edges
			}
		}
		e.applyInterval(j)
		if diag != nil {
			// Diagonal cross-iteration after interval j's own apply
			// (Alg 3 lines 13–16).
			e.scatter(diag, e.valCur, e.newActive, e.accNext, e.touchedNext, lo, hi)
		} else if diagDeferred {
			// Dead-row diagonal: now that interval j is applied its t+1
			// activations are final. Load only if there is something to
			// propagate; this rare load is synchronous (the cell was never
			// enqueued on the pipeline).
			if e.newActive.CountRange(lo, hi) > 0 {
				edges, err := e.loadBlock(j, j)
				if err != nil {
					return err
				}
				e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext, lo, hi)
			} else {
				e.semSkip(j, j)
			}
		}
	}

	// The paper updates each buffered secondary sub-block's priority after
	// the first iteration processes it; now that the full activation set
	// for t+1 is known, refresh every resident's priority. Large residents
	// are sampled rather than rescanned; compressed residents are estimated
	// from their row's active fraction instead of being decoded. Either
	// estimate is clamped to ≥1 while the block bitmap says the block is
	// live, so sampling can never demote a hot block to dead.
	for _, k := range e.buf.Keys() {
		edges, payload, ok := e.buf.PeekEntry(k)
		if !ok {
			continue
		}
		var est int64
		if payload != nil {
			est = e.payloadPriority(k, e.newActive)
		} else {
			est = clampedActiveEdgeEstimate(edges, e.newActive, &e.layout.Meta, k.I)
		}
		e.buf.UpdatePriority(k, est)
	}
	return e.writeValues()
}

// runFCIUSecond executes the second half of an FCIU pass (Algorithm 3,
// lines 18–26): iteration t+1 already holds the staged contributions from
// every sub-block with i <= j, so only the secondary sub-blocks (i > j)
// are read — from the buffer when resident — before each interval is
// applied.
func (e *Engine) runFCIUSecond() error {
	if err := e.readValues(); err != nil {
		return err
	}
	e.semBegin()
	pass := e.newFCIUPass(fciuSecondCells)
	defer e.finishFCIUPass(pass)

	for j := 0; j < e.p; j++ {
		lo, hi := e.layout.Meta.Interval(j)
		for i := j + 1; i < e.p; i++ {
			if err := e.checkCtx(); err != nil {
				return err
			}
			if e.sem != nil && !e.sem.rowLive(i) {
				// Secondary cells scatter only from the active filter; a
				// dead row contributes nothing.
				e.semSkip(i, j)
				continue
			}
			edges, err := e.nextFCIUBlock(pass, i, j)
			if err != nil {
				return err
			}
			e.scatter(edges, e.valPrev, e.active, e.acc, e.touched, lo, hi)
		}
		e.applyInterval(j)
	}
	return e.writeValues()
}

// runFullSingle executes one plain full-I/O iteration with no
// cross-iteration computation: stream every sub-block, scatter, apply per
// interval. Used when cross-iteration is disabled (ablation b1) and when a
// single iteration remains in the budget. Reads run ahead on the I/O
// pipeline; the priority buffer is not involved.
func (e *Engine) runFullSingle() error {
	if err := e.readValues(); err != nil {
		return err
	}
	e.semBegin()
	pass := e.newFCIUPass(fullCells)
	defer e.finishFCIUPass(pass)

	for j := 0; j < e.p; j++ {
		lo, hi := e.layout.Meta.Interval(j)
		for i := 0; i < e.p; i++ {
			if err := e.checkCtx(); err != nil {
				return err
			}
			if e.sem != nil && !e.sem.rowLive(i) {
				// No cross-iteration work in this pass: a dead row's cells
				// are skipped outright, streamed or not.
				e.semSkip(i, j)
				continue
			}
			if e.opts.StreamChunkBytes > 0 {
				err := e.layout.StreamSubBlock(i, j, e.opts.StreamChunkBytes, func(edges []graph.Edge) error {
					e.scatter(edges, e.valPrev, e.active, e.acc, e.touched, lo, hi)
					return nil
				})
				if err != nil {
					return err
				}
				continue
			}
			edges, ok, err := pass.take(i, j)
			if err != nil {
				return err
			}
			if !ok {
				if edges, err = e.loadBlock(i, j); err != nil {
					return err
				}
			}
			e.scatter(edges, e.valPrev, e.active, e.acc, e.touched, lo, hi)
		}
		e.applyInterval(j)
	}
	return e.writeValues()
}
