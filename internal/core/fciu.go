package core

import (
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/graph"
)

// runFCIUFirst executes the first half of a full cross-iteration update
// pass (paper Algorithm 3, lines 1–17): stream every sub-block in
// column-major order, updating iteration t, and exploit the dependency
// structure of the grid to compute iteration t+1 contributions in the same
// pass:
//
//   - sub-block (i, j) with i < j: interval i was applied before column j
//     is processed, so the sources' t-values are final — scatter t+1
//     contributions immediately after the t-scatter;
//   - the diagonal sub-block (j, j) is held in memory until column j is
//     applied, then scatters its t+1 contributions;
//   - sub-blocks with i > j ("secondary") cannot propagate in this pass
//     and are offered to the priority buffer for the second half.
//
// The driver then runs runFCIUSecond as the next iteration.
func (e *Engine) runFCIUFirst() error {
	if err := e.readValues(); err != nil {
		return err
	}

	for j := 0; j < e.p; j++ {
		var diag []graph.Edge
		for i := 0; i < e.p; i++ {
			if i < j && e.opts.StreamChunkBytes > 0 {
				// Upper-triangle cells need no retention: stream them,
				// applying both the current-iteration update and the
				// cross-iteration propagation per chunk.
				err := e.layout.StreamSubBlock(i, j, e.opts.StreamChunkBytes, func(edges []graph.Edge) error {
					e.scatter(edges, e.valPrev, e.active, e.acc, e.touched)
					e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext)
					return nil
				})
				if err != nil {
					return err
				}
				continue
			}
			edges, err := e.loadFCIUBlock(i, j)
			if err != nil {
				return err
			}
			if len(edges) == 0 {
				continue
			}
			// Current-iteration update (UserFunction over all edges whose
			// source is active).
			e.scatter(edges, e.valPrev, e.active, e.acc, e.touched)
			switch {
			case i < j:
				// CrossIterUpdate: sources already updated in this
				// iteration propagate their new value to iteration t+1.
				e.scatter(edges, e.valCur, e.newActive, e.accNext, e.touchedNext)
			case i == j:
				diag = edges
			}
		}
		e.applyInterval(j)
		if diag != nil {
			// Diagonal cross-iteration after interval j's own apply
			// (Alg 3 lines 13–16).
			e.scatter(diag, e.valCur, e.newActive, e.accNext, e.touchedNext)
		}
	}

	// The paper updates each buffered secondary sub-block's priority after
	// the first iteration processes it; now that the full activation set
	// for t+1 is known, refresh every resident's priority.
	for _, k := range e.buf.Keys() {
		if edges, ok := e.buf.Peek(k); ok {
			e.buf.UpdatePriority(k, activeEdgeCount(edges, e.newActive))
		}
	}
	return e.writeValues()
}

// runFCIUSecond executes the second half of an FCIU pass (Algorithm 3,
// lines 18–26): iteration t+1 already holds the staged contributions from
// every sub-block with i <= j, so only the secondary sub-blocks (i > j)
// are read — from the buffer when resident — before each interval is
// applied.
func (e *Engine) runFCIUSecond() error {
	if err := e.readValues(); err != nil {
		return err
	}

	for j := 0; j < e.p; j++ {
		for i := j + 1; i < e.p; i++ {
			edges, err := e.loadFCIUBlock(i, j)
			if err != nil {
				return err
			}
			e.scatter(edges, e.valPrev, e.active, e.acc, e.touched)
		}
		e.applyInterval(j)
	}
	return e.writeValues()
}

// runFullSingle executes one plain full-I/O iteration with no
// cross-iteration computation: stream every sub-block, scatter, apply per
// interval. Used when cross-iteration is disabled (ablation b1) and when a
// single iteration remains in the budget.
func (e *Engine) runFullSingle() error {
	if err := e.readValues(); err != nil {
		return err
	}

	for j := 0; j < e.p; j++ {
		for i := 0; i < e.p; i++ {
			if e.opts.StreamChunkBytes > 0 {
				err := e.layout.StreamSubBlock(i, j, e.opts.StreamChunkBytes, func(edges []graph.Edge) error {
					e.scatter(edges, e.valPrev, e.active, e.acc, e.touched)
					return nil
				})
				if err != nil {
					return err
				}
				continue
			}
			edges, err := e.layout.LoadSubBlock(i, j)
			if err != nil {
				return err
			}
			e.scatter(edges, e.valPrev, e.active, e.acc, e.touched)
		}
		e.applyInterval(j)
	}
	return e.writeValues()
}

// loadFCIUBlock fetches sub-block (i, j) for an FCIU pass. Secondary
// sub-blocks (i > j) consult the priority buffer first and are offered to
// it after a miss, with priority equal to their current active-edge count.
func (e *Engine) loadFCIUBlock(i, j int) ([]graph.Edge, error) {
	if e.layout.Meta.SubBlockEdges(i, j) == 0 {
		return nil, nil
	}
	if i <= j {
		return e.layout.LoadSubBlock(i, j)
	}
	k := buffer.Key{I: i, J: j}
	if edges, ok := e.buf.Get(k); ok {
		return edges, nil
	}
	edges, err := e.layout.LoadSubBlock(i, j)
	if err != nil {
		return nil, err
	}
	e.buf.Put(k, edges, e.layout.Meta.SubBlockBytes(i, j), activeEdgeCount(edges, e.active))
	return edges, nil
}
