// Package pipeline overlaps sub-block I/O with computation. A Prefetcher
// walks a fixed request sequence — the engine's iteration order — fetching
// blocks ahead of the consumer under two bounds: at most Depth blocks may be
// in flight ahead of the consumer, and their decoded payloads may occupy at
// most Bytes bytes. Blocks are delivered strictly in request order, so the
// consumer's processing order (and therefore every result the engine
// produces) is identical to the synchronous path; only the wall-clock
// placement of the reads changes.
//
// The first fetch error cancels admission of every not-yet-started request
// and is surfaced to the consumer at that block's position in the sequence.
package pipeline

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Request names one block of the fetch sequence by its grid coordinates and
// carries the byte size used for window admission.
type Request struct {
	I, J  int
	Bytes int64
}

// Stats reports a prefetcher's outcomes. Fetch is the summed wall-clock
// duration of the fetch calls; Stall is the wall-clock the consumer spent
// blocked in Next waiting for a block; Overlap is the share of fetch work
// hidden behind the consumer's computation (Fetch − Stall, floored at zero).
type Stats struct {
	Blocks int
	Bytes  int64
	// Fallbacks counts blocks that were loaded synchronously after the
	// consumer degraded from pipelined to synchronous reads on a transient
	// fetch fault. The consumer increments it — the prefetcher itself only
	// ever reports what it delivered.
	Fallbacks int
	// Skipped counts non-empty sub-blocks the consumer never fetched
	// because the semi-external-memory active bitmap proved they carry no
	// active edges; SkippedBytes is their on-disk size. Like Fallbacks,
	// these are consumer-maintained.
	Skipped      int
	SkippedBytes int64
	Stall        time.Duration
	Fetch        time.Duration
	Overlap      time.Duration
}

// Add returns the field-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Blocks:       s.Blocks + o.Blocks,
		Bytes:        s.Bytes + o.Bytes,
		Fallbacks:    s.Fallbacks + o.Fallbacks,
		Skipped:      s.Skipped + o.Skipped,
		SkippedBytes: s.SkippedBytes + o.SkippedBytes,
		Stall:        s.Stall + o.Stall,
		Fetch:        s.Fetch + o.Fetch,
		Overlap:      s.Overlap + o.Overlap,
	}
}

// Sub returns the field-wise difference s − o. Use it to attribute pipeline
// activity to a phase: snapshot before, snapshot after, subtract.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Blocks:       s.Blocks - o.Blocks,
		Bytes:        s.Bytes - o.Bytes,
		Fallbacks:    s.Fallbacks - o.Fallbacks,
		Skipped:      s.Skipped - o.Skipped,
		SkippedBytes: s.SkippedBytes - o.SkippedBytes,
		Stall:        s.Stall - o.Stall,
		Fetch:        s.Fetch - o.Fetch,
		Overlap:      s.Overlap - o.Overlap,
	}
}

// Options bounds a prefetcher's read-ahead window.
type Options struct {
	// Depth is the maximum number of blocks in flight ahead of the
	// consumer, which is also the fetch concurrency. Values below 1 are
	// treated as 1.
	Depth int
	// Bytes bounds the decoded bytes held by in-flight and
	// ready-but-unconsumed blocks. Zero means unlimited. A single request
	// larger than the budget is admitted when it is alone in the window,
	// so an oversized block degrades to synchronous loading instead of
	// deadlocking.
	Bytes int64
}

// ErrClosed is returned by Next after the request sequence is exhausted or
// the prefetcher was closed without a recorded fetch error.
var ErrClosed = errors.New("pipeline: prefetcher closed")

type slot[T any] struct {
	seq  int // position in the request sequence
	req  Request
	val  T
	err  error
	dur  time.Duration
	done chan struct{}
}

// Prefetcher fetches a fixed sequence of blocks ahead of a single consumer.
// Next must be called from one goroutine; fetch is called from the
// prefetcher's own goroutines and must be safe to run concurrently with the
// consumer and with other fetches.
type Prefetcher[T any] struct {
	fetch func(Request) (T, error)
	order chan *slot[T]
	depth chan struct{}

	stop     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	inflight int64 // decoded bytes admitted and not yet consumed
	budget   int64
	byteCond *sync.Cond
	stopped  bool
	firstErr error
	failSeq  int // sequence position of the first fetch error
	stats    Stats
}

// New starts a prefetcher over reqs. The fetch function loads and decodes
// one block; its result is delivered to the consumer in request order via
// Next. The caller must either drain the sequence or call Close.
func New[T any](reqs []Request, fetch func(Request) (T, error), opts Options) *Prefetcher[T] {
	depth := opts.Depth
	if depth < 1 {
		depth = 1
	}
	p := &Prefetcher[T]{
		fetch:  fetch,
		order:  make(chan *slot[T], len(reqs)),
		depth:  make(chan struct{}, depth),
		stop:   make(chan struct{}),
		budget: opts.Bytes,
	}
	p.byteCond = sync.NewCond(&p.mu)
	p.failSeq = len(reqs)
	go p.dispatch(reqs)
	return p
}

// dispatch admits requests in order under the depth and byte bounds,
// spawning one fetch goroutine per admitted block.
func (p *Prefetcher[T]) dispatch(reqs []Request) {
	defer close(p.order)
	for seq, req := range reqs {
		select {
		case p.depth <- struct{}{}:
		case <-p.stop:
			return
		}
		if !p.admitBytes(req.Bytes) {
			return
		}
		s := &slot[T]{seq: seq, req: req, done: make(chan struct{})}
		p.order <- s // buffered to len(reqs); never blocks
		go p.run(s)
	}
}

// admitBytes blocks until req fits in the byte window (or the window is
// empty, for oversized requests). It reports false when the prefetcher was
// stopped while waiting.
func (p *Prefetcher[T]) admitBytes(n int64) bool {
	if p.budget <= 0 {
		return !p.isStopped()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.stopped && p.inflight > 0 && p.inflight+n > p.budget {
		p.byteCond.Wait()
	}
	if p.stopped {
		return false
	}
	p.inflight += n
	return true
}

func (p *Prefetcher[T]) isStopped() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

// run executes one admitted fetch and publishes its outcome. After a stop,
// only fetches positioned past the failing block are refused — blocks the
// consumer will reach before the error must still deliver their data so the
// error surfaces at exactly the failing position.
func (p *Prefetcher[T]) run(s *slot[T]) {
	defer close(s.done)
	p.mu.Lock()
	refuse := p.stopped && (p.firstErr == nil || s.seq > p.failSeq)
	p.mu.Unlock()
	if refuse {
		s.err = ErrClosed
		return
	}
	t0 := time.Now()
	s.val, s.err = p.fetch(s.req)
	s.dur = time.Since(t0)
	if s.err != nil {
		p.cancel(s.err, s.seq)
	}
}

// cancel records the earliest-positioned error and stops admission of
// further requests. A nil err (Close) stops everything unconditionally.
func (p *Prefetcher[T]) cancel(err error, seq int) {
	p.mu.Lock()
	if err != nil && seq < p.failSeq {
		p.firstErr, p.failSeq = err, seq
	}
	p.stopped = true
	p.mu.Unlock()
	p.stopOnce.Do(func() { close(p.stop) })
	p.byteCond.Broadcast()
}

// release returns a consumed block's depth and byte reservations.
func (p *Prefetcher[T]) release(n int64) {
	<-p.depth
	if p.budget > 0 {
		p.mu.Lock()
		p.inflight -= n
		p.mu.Unlock()
		p.byteCond.Broadcast()
	}
}

// Next returns the next block of the sequence, blocking until its fetch
// completes. The time spent blocked is accounted as consumer stall. After
// the sequence is exhausted (or Close) it returns ErrClosed; after a fetch
// error it returns that error at the failing block's position.
func (p *Prefetcher[T]) Next() (Request, T, error) {
	return p.NextCtx(context.Background())
}

// NextCtx is Next with a cancellation escape: if ctx is cancelled while the
// consumer is blocked — either waiting for the next slot or for its fetch to
// finish — it returns ctx.Err() immediately rather than riding out the
// in-flight device read. The abandoned slot stays owned by the prefetcher;
// the caller must still Close it, which waits out in-flight fetches and
// releases their buffers. A ctx error is not a fetch error: it is not
// recorded as firstErr and does not stop admission on its own.
func (p *Prefetcher[T]) NextCtx(ctx context.Context) (Request, T, error) {
	var zero T
	// Checked first so an already-dead ctx short-circuits deterministically:
	// a bare select would pick at random between Done and a ready result.
	if err := ctx.Err(); err != nil {
		return Request{}, zero, err
	}
	t0 := time.Now()
	var s *slot[T]
	var ok bool
	select {
	case s, ok = <-p.order:
	case <-ctx.Done():
		return Request{}, zero, ctx.Err()
	}
	if !ok {
		p.mu.Lock()
		err := p.firstErr
		p.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return Request{}, zero, err
	}
	select {
	case <-s.done:
	case <-ctx.Done():
		// Put the slot back conceptually: its depth/byte reservations are
		// released by Close's drain once the fetch lands. Dropping it here
		// is safe because a cancelled consumer never calls Next again.
		return Request{}, zero, ctx.Err()
	}
	stall := time.Since(t0)
	p.release(s.req.Bytes)
	p.mu.Lock()
	p.stats.Stall += stall
	if s.err == nil {
		p.stats.Blocks++
		p.stats.Bytes += s.req.Bytes
		p.stats.Fetch += s.dur
	}
	p.mu.Unlock()
	if s.err != nil {
		p.cancel(s.err, s.seq)
		return s.req, zero, s.err
	}
	return s.req, s.val, nil
}

// Close cancels every not-yet-started fetch and releases waiters. It is
// idempotent and safe to call while fetches are in flight; in-flight fetch
// calls run to completion but their results are discarded.
func (p *Prefetcher[T]) Close() {
	p.cancel(nil, 0)
	// Drain delivered-but-unconsumed slots so their goroutines' results
	// are released; the order channel is buffered so this never blocks.
	for {
		select {
		case s, ok := <-p.order:
			if !ok {
				return
			}
			<-s.done
		default:
			return
		}
	}
}

// Stats returns the accumulated pipeline outcomes. Overlap is derived as
// the fetch time not witnessed by the consumer as stall.
func (p *Prefetcher[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	if st.Fetch > st.Stall {
		st.Overlap = st.Fetch - st.Stall
	}
	return st
}
