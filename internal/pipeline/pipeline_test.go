package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func seqRequests(n int, bytes int64) []Request {
	reqs := make([]Request, n)
	for k := range reqs {
		reqs[k] = Request{I: k, J: k % 3, Bytes: bytes}
	}
	return reqs
}

// TestInOrderDelivery checks that blocks arrive in request order regardless
// of fetch completion order.
func TestInOrderDelivery(t *testing.T) {
	reqs := seqRequests(32, 100)
	fetch := func(r Request) (int, error) {
		// Earlier blocks sleep longer, so completion order is reversed
		// within each window; delivery order must still be ascending.
		time.Sleep(time.Duration(32-r.I) * 10 * time.Microsecond)
		return r.I * 7, nil
	}
	p := New(reqs, fetch, Options{Depth: 8})
	defer p.Close()
	for k := 0; k < len(reqs); k++ {
		req, v, err := p.Next()
		if err != nil {
			t.Fatalf("block %d: %v", k, err)
		}
		if req.I != k || v != k*7 {
			t.Fatalf("block %d: got req %d val %d", k, req.I, v)
		}
	}
	if _, _, err := p.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after exhaustion: err = %v, want ErrClosed", err)
	}
	st := p.Stats()
	if st.Blocks != 32 || st.Bytes != 3200 {
		t.Fatalf("stats = %+v, want 32 blocks / 3200 bytes", st)
	}
}

// TestErrorCancelsInFlight checks the contract the engine relies on: an
// error on block k surfaces at position k and stops every not-yet-started
// fetch from running.
func TestErrorCancelsInFlight(t *testing.T) {
	const n, failAt, depth = 64, 5, 2
	var fetched atomic.Int64
	var maxStarted atomic.Int64
	wantErr := errors.New("disk on fire")
	fetch := func(r Request) (int, error) {
		fetched.Add(1)
		for {
			cur := maxStarted.Load()
			if int64(r.I) <= cur || maxStarted.CompareAndSwap(cur, int64(r.I)) {
				break
			}
		}
		if r.I == failAt {
			return 0, wantErr
		}
		return r.I, nil
	}
	p := New(seqRequests(n, 10), fetch, Options{Depth: depth})
	defer p.Close()
	for k := 0; k < failAt; k++ {
		req, _, err := p.Next()
		if err != nil || req.I != k {
			t.Fatalf("block %d: req %d err %v", k, req.I, err)
		}
	}
	if _, _, err := p.Next(); !errors.Is(err, wantErr) {
		t.Fatalf("block %d: err = %v, want %v", failAt, err, wantErr)
	}
	// Admission stops once the error is observed; only fetches already in
	// the depth window when block failAt errored can ever have started.
	if got := maxStarted.Load(); got > failAt+depth {
		t.Fatalf("fetch for block %d started after error at %d with depth %d", got, failAt, depth)
	}
	if got := fetched.Load(); got > failAt+depth+1 {
		t.Fatalf("%d fetches ran, want at most %d", got, failAt+depth+1)
	}
}

// TestByteBudget checks that the decoded-byte window is respected and that
// an oversized block is admitted alone rather than deadlocking.
func TestByteBudget(t *testing.T) {
	var inflight, peak atomic.Int64
	fetch := func(r Request) (int, error) {
		cur := inflight.Add(r.Bytes)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		return 0, nil
	}
	reqs := seqRequests(16, 100)
	reqs[7].Bytes = 5000 // larger than the whole budget
	p := New(reqs, fetch, Options{Depth: 8, Bytes: 250})
	defer p.Close()
	for k := range reqs {
		req, _, err := p.Next()
		if err != nil {
			t.Fatalf("block %d: %v", k, err)
		}
		inflight.Add(-req.Bytes)
	}
	// Budget admits at most two 100-byte blocks concurrently; the
	// oversized block must have been alone (5000, not 5000+100).
	if got := peak.Load(); got != 5000 {
		t.Fatalf("peak in-flight bytes = %d, want oversized block alone (5000)", got)
	}
}

// TestByteBudgetBoundsSmallBlocks verifies the window bound when every
// block fits: with budget 250 and 100-byte blocks, never 3 in flight.
func TestByteBudgetBoundsSmallBlocks(t *testing.T) {
	var inflight, peak atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	fetch := func(r Request) (int, error) {
		cur := inflight.Add(r.Bytes)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		<-release
		return 0, nil
	}
	p := New(seqRequests(8, 100), fetch, Options{Depth: 8, Bytes: 250})
	defer p.Close()
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond) // let admission saturate
		close(release)
	}()
	for k := 0; k < 8; k++ {
		req, _, err := p.Next()
		if err != nil {
			t.Fatalf("block %d: %v", k, err)
		}
		inflight.Add(-req.Bytes)
	}
	wg.Wait()
	if got := peak.Load(); got > 250 {
		t.Fatalf("peak in-flight bytes = %d, want <= 250", got)
	}
}

// TestCloseEarly checks that abandoning the sequence mid-way neither leaks
// nor deadlocks, and that Close is idempotent.
func TestCloseEarly(t *testing.T) {
	fetch := func(r Request) (int, error) {
		time.Sleep(20 * time.Microsecond)
		return r.I, nil
	}
	p := New(seqRequests(100, 10), fetch, Options{Depth: 4, Bytes: 25})
	for k := 0; k < 3; k++ {
		if _, _, err := p.Next(); err != nil {
			t.Fatalf("block %d: %v", k, err)
		}
	}
	p.Close()
	p.Close()
	if _, _, err := p.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after Close: err = %v, want ErrClosed", err)
	}
}

// TestOverlapAccounting checks that fetch work done while the consumer is
// busy elsewhere shows up as overlap, not stall.
func TestOverlapAccounting(t *testing.T) {
	const fetchDur = 2 * time.Millisecond
	fetch := func(r Request) (int, error) {
		time.Sleep(fetchDur)
		return 0, nil
	}
	p := New(seqRequests(8, 10), fetch, Options{Depth: 4})
	defer p.Close()
	for k := 0; k < 8; k++ {
		if _, _, err := p.Next(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(fetchDur) // simulated compute the pipeline hides behind
	}
	st := p.Stats()
	if st.Fetch < 8*fetchDur {
		t.Fatalf("fetch time %v, want >= %v", st.Fetch, 8*fetchDur)
	}
	if st.Overlap == 0 {
		t.Fatalf("no overlap recorded: %+v", st)
	}
	if st.Overlap != st.Fetch-st.Stall {
		t.Fatalf("overlap %v != fetch %v - stall %v", st.Overlap, st.Fetch, st.Stall)
	}
}

// TestStatsAddSub exercises the snapshot arithmetic the engine uses for
// per-iteration attribution.
func TestStatsAddSub(t *testing.T) {
	a := Stats{Blocks: 3, Bytes: 30, Stall: 5, Fetch: 9, Overlap: 4}
	b := Stats{Blocks: 1, Bytes: 10, Stall: 2, Fetch: 3, Overlap: 1}
	sum := a.Add(b)
	if sum.Blocks != 4 || sum.Bytes != 40 || sum.Stall != 7 || sum.Fetch != 12 || sum.Overlap != 5 {
		t.Fatalf("Add = %+v", sum)
	}
	if diff := sum.Sub(b); diff != a {
		t.Fatalf("Sub = %+v, want %+v", diff, a)
	}
}

// TestZeroRequests covers the empty sequence.
func TestZeroRequests(t *testing.T) {
	p := New(nil, func(Request) (int, error) { return 0, nil }, Options{Depth: 2})
	defer p.Close()
	if _, _, err := p.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestManyDepths runs a quick matrix so the race detector sees the
// interleavings of admission, fetch, delivery and early close.
func TestManyDepths(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 8, 64} {
		for _, budget := range []int64{0, 64, 1 << 20} {
			t.Run(fmt.Sprintf("d%d_b%d", depth, budget), func(t *testing.T) {
				fetch := func(r Request) (int, error) { return r.I, nil }
				p := New(seqRequests(40, 32), fetch, Options{Depth: depth, Bytes: budget})
				defer p.Close()
				for k := 0; k < 40; k++ {
					req, v, err := p.Next()
					if err != nil || req.I != k || v != k {
						t.Fatalf("block %d: req %d val %d err %v", k, req.I, v, err)
					}
				}
			})
		}
	}
}

// TestNextCtxCancelled checks the cancellation contract the engine's
// RunContext relies on: NextCtx returns the context error promptly while the
// in-flight fetch is still blocked inside the device, and Close afterwards
// reclaims the abandoned slot without deadlocking.
func TestNextCtxCancelled(t *testing.T) {
	release := make(chan struct{})
	fetch := func(r Request) (int, error) {
		<-release
		return r.I, nil
	}
	p := New(seqRequests(4, 10), fetch, Options{Depth: 2})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := p.NextCtx(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("NextCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("NextCtx did not observe cancellation while fetch was blocked")
	}

	close(release)
	p.Close()

	// A pre-cancelled context short-circuits even when results are ready.
	p2 := New(seqRequests(2, 10), func(r Request) (int, error) { return r.I, nil }, Options{Depth: 2})
	defer p2.Close()
	if _, v, err := p2.Next(); err != nil || v != 0 {
		t.Fatalf("Next = (%d, %v), want block 0", v, err)
	}
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := p2.NextCtx(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled NextCtx returned %v, want context.Canceled", err)
	}
}
