package pipeline

import (
	"testing"
	"time"
)

// BenchmarkOverlap measures the wall-clock win of prefetching when fetch
// and consume cost the same: a synchronous loop pays fetch+consume per
// block, the pipeline pays ~max(fetch, consume).
func BenchmarkOverlap(b *testing.B) {
	const blocks = 64
	const work = 50 * time.Microsecond
	fetch := func(r Request) (int, error) {
		time.Sleep(work)
		return r.I, nil
	}
	consume := func() { time.Sleep(work) }

	b.Run("synchronous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < blocks; k++ {
				if _, err := fetch(Request{I: k}); err != nil {
					b.Fatal(err)
				}
				consume()
			}
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := New(seqRequests(blocks, 1), fetch, Options{Depth: 2})
			for k := 0; k < blocks; k++ {
				if _, _, err := p.Next(); err != nil {
					b.Fatal(err)
				}
				consume()
			}
			st := p.Stats()
			p.Close()
			b.ReportMetric(float64(st.Overlap.Microseconds())/float64(blocks), "overlap-µs/block")
		}
	})
}
