package iosched_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// These tests pin the tentpole claim of the corrected cost model: for graph
// layouts where the estimator's uniformity conditions hold (constant on-disk
// bytes per edge, and every edge-bearing vertex storing edges in every
// non-empty sub-block of its row), EstimateOnDemand's byte and seek totals
// equal the device's OWN charges for the selective access pattern — not
// approximately, by construction.
//
// The graph family: P=4 intervals, every non-isolated vertex has exactly one
// edge to the first vertex of each used column interval. Under the raw codec
// every edge is a fixed-size record; under delta every per-vertex run in
// every cell is src-varint + runlen-varint + one zero gap varint = 3 bytes.
// A random subset of vertices is isolated (degree zero), exercising the
// gap-merge logic, and random frontiers exercise portion splits at interval
// boundaries and at edge-bearing gaps.

// exactGraph builds the uniform family. numV must be a positive multiple of
// 4 and at most 252 (so per-interval vertex ids fit one varint byte).
func exactGraph(numV int, usedCols []int, isolated map[int]bool, weighted bool) *graph.Graph {
	per := numV / 4
	g := &graph.Graph{NumVertices: numV, Weighted: weighted}
	for v := 0; v < numV; v++ {
		if isolated[v] {
			continue
		}
		for _, c := range usedCols {
			e := graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(c * per)}
			if weighted {
				e.Weight = float32(v%7) + 0.5
			}
			g.Edges = append(g.Edges, e)
		}
	}
	return g
}

// replicateSelectiveReads performs the SCIU access pattern against the real
// device: for every interval row holding an active vertex, for every
// non-empty sub-block of that row, open a fresh reader and read each active
// vertex's edges in vertex order. Index loads happen before the caller's
// snapshot, so the measured delta is the edge traffic alone — the quantity
// EstimateOnDemand models. Returns the number of decoded edges as a sanity
// anchor.
func replicateSelectiveReads(t *testing.T, l *partition.Layout, active *bitset.ActiveSet, indexes map[[2]int]*partition.Index) int {
	t.Helper()
	decoded := 0
	for i := 0; i < l.Meta.P; i++ {
		lo, hi := l.Meta.Interval(i)
		if active.CountRange(lo, hi) == 0 {
			continue
		}
		for j := 0; j < l.Meta.P; j++ {
			if l.Meta.SubBlockEdges(i, j) == 0 {
				continue
			}
			r, err := l.OpenSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			idx := indexes[[2]int{i, j}]
			var buf []byte
			active.ForEachRange(lo, hi, func(v int) bool {
				var edges []graph.Edge
				edges, buf, err = l.ReadVertexEdges(r, idx, i, graph.VertexID(v), buf)
				if err != nil {
					t.Fatalf("reading vertex %d in (%d,%d): %v", v, i, j, err)
				}
				decoded += len(edges)
				return true
			})
			r.Close()
		}
	}
	return decoded
}

// schedulerFor mirrors the engine's scheduler construction from a layout.
func schedulerFor(t *testing.T, l *partition.Layout) *iosched.Scheduler {
	t.Helper()
	s, err := iosched.New(iosched.Config{
		Profile:           l.Dev.Profile(),
		NumVertices:       l.Meta.NumVertices,
		NumEdges:          l.Meta.NumEdges,
		EdgeRecordBytes:   l.Meta.EdgeRecordBytes(),
		EdgeBytesOnDisk:   l.Meta.EdgeDiskBytesTotal(),
		EdgeBytesOnDemand: l.Meta.SelectiveDiskBytesTotal(),
		P:                 l.Meta.P,
		BlocksPerRow:      l.Meta.NonEmptyBlocksPerRow(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEstimateMatchesDeviceCharges(t *testing.T) {
	variants := []struct {
		name     string
		codec    graph.Codec
		weighted bool
	}{
		{"raw", graph.CodecRaw, false},
		{"raw-weighted", graph.CodecRaw, true},
		// Weighted delta splits each vertex read into a run read plus a
		// weight-column read, breaking the model's one-stream-per-portion
		// assumption, so the exactness family is unweighted there.
		{"delta", graph.CodecDelta, false},
	}
	for _, vt := range variants {
		t.Run(vt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5eed + int64(len(vt.name))))
			for trial := 0; trial < 25; trial++ {
				t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
					numV := 4 * (1 + rng.Intn(63)) // 4..252
					cols := rng.Perm(4)[:1+rng.Intn(4)]
					isolated := map[int]bool{}
					for v := 0; v < numV; v++ {
						if rng.Intn(4) == 0 {
							isolated[v] = true
						}
					}
					g := exactGraph(numV, cols, isolated, vt.weighted)
					if len(g.Edges) == 0 {
						t.Skip("all vertices isolated")
					}
					dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
					if err != nil {
						t.Fatal(err)
					}
					l, err := partition.Build(dev, g, 4, partition.WithCodec(vt.codec))
					if err != nil {
						t.Fatal(err)
					}
					sched := schedulerFor(t, l)
					deg := g.OutDegrees()

					// A random frontier, plus the adversarial corners.
					frontiers := []*bitset.ActiveSet{
						bitset.NewActiveSet(numV), // filled randomly below
						bitset.NewActiveSet(numV), // all active
						bitset.NewActiveSet(numV), // alternating
					}
					for v := 0; v < numV; v++ {
						if rng.Intn(3) > 0 {
							frontiers[0].Activate(v)
						}
						if v%2 == 0 {
							frontiers[2].Activate(v)
						}
					}
					frontiers[1].ActivateAll()

					// Preload the per-block indexes so the measured delta
					// below contains edge reads only.
					indexes := map[[2]int]*partition.Index{}
					for i := 0; i < l.Meta.P; i++ {
						for j := 0; j < l.Meta.P; j++ {
							if l.Meta.SubBlockEdges(i, j) == 0 {
								continue
							}
							idx, err := l.LoadIndex(i, j)
							if err != nil {
								t.Fatal(err)
							}
							indexes[[2]int{i, j}] = idx
						}
					}

					for fi, active := range frontiers {
						seqB, ranB, seeks := sched.EstimateOnDemand(active, deg)
						before := dev.Stats()
						replicateSelectiveReads(t, l, active, indexes)
						io := dev.Stats().Sub(before)

						if io.Bytes[storage.RandRead] != ranB {
							t.Errorf("frontier %d: random bytes: predicted %d, device charged %d",
								fi, ranB, io.Bytes[storage.RandRead])
						}
						if io.Bytes[storage.SeqRead] != seqB {
							t.Errorf("frontier %d: sequential bytes: predicted %d, device charged %d",
								fi, seqB, io.Bytes[storage.SeqRead])
						}
						if io.Ops[storage.RandRead] != seeks {
							t.Errorf("frontier %d: seeks: predicted %d, device performed %d",
								fi, seeks, io.Ops[storage.RandRead])
						}
						// Time agrees up to the device's per-op nanosecond
						// truncation.
						prof := dev.Profile()
						predRan := prof.SeqCost(storage.RandRead, ranB) + time.Duration(seeks)*prof.SeekLatency
						if diff := (predRan - io.Time[storage.RandRead]).Abs(); diff > time.Duration(seeks+1) {
							t.Errorf("frontier %d: random time off by %v over %d ops", fi, diff, seeks)
						}
						predSeq := prof.SeqCost(storage.SeqRead, seqB)
						if diff := (predSeq - io.Time[storage.SeqRead]).Abs(); diff > time.Duration(io.Ops[storage.SeqRead]+1) {
							t.Errorf("frontier %d: sequential time off by %v over %d ops", fi, diff, io.Ops[storage.SeqRead])
						}
					}
				})
			}
		})
	}
}
