package iosched_test

import (
	"fmt"
	"log"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/storage"
)

// Example shows the state-aware benefit evaluation: with one active vertex
// the on-demand model wins; with every vertex active the full model wins.
func Example() {
	sched, err := iosched.New(iosched.Config{
		Profile:         storage.HDD,
		NumVertices:     1_000_000,
		NumEdges:        16_000_000,
		EdgeRecordBytes: graph.EdgeBytes,
		P:               8,
	})
	if err != nil {
		log.Fatal(err)
	}
	degrees := make([]uint32, 1_000_000)
	for i := range degrees {
		degrees[i] = 16
	}

	sparse := bitset.NewActiveSet(1_000_000)
	sparse.Activate(42)
	fmt.Println("1 active:", sched.Decide(0, sparse, degrees).Model)

	dense := bitset.NewActiveSet(1_000_000)
	dense.ActivateAll()
	fmt.Println("all active:", sched.Decide(1, dense, degrees).Model)
	// Output:
	// 1 active: on-demand
	// all active: full
}
