package iosched

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

func testConfig(numV int, numE int64) Config {
	return Config{
		Profile:         storage.HDD,
		NumVertices:     numV,
		NumEdges:        numE,
		EdgeRecordBytes: graph.EdgeBytes,
		P:               4,
	}
}

func uniformDegrees(n int, d uint32) []uint32 {
	deg := make([]uint32, n)
	for i := range deg {
		deg[i] = d
	}
	return deg
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(10, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig(10, 100)
	bad.EdgeRecordBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero record size accepted")
	}
	bad = testConfig(10, 100)
	bad.P = 0
	if err := bad.Validate(); err == nil {
		t.Error("P=0 accepted")
	}
	bad = testConfig(-1, 100)
	if err := bad.Validate(); err == nil {
		t.Error("negative vertices accepted")
	}
	bad = testConfig(10, 100)
	bad.Profile = storage.Profile{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestCostFullMatchesFormula(t *testing.T) {
	cfg := testConfig(1000, 50000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vBytes := int64(1000 * graph.VertexValueBytes)
	eBytes := int64(50000 * graph.EdgeBytes)
	want := cfg.Profile.SeqCost(storage.SeqRead, vBytes+eBytes) +
		cfg.Profile.SeqCost(storage.SeqWrite, vBytes)
	if got := s.CostFull(); got != want {
		t.Fatalf("CostFull = %v, want %v", got, want)
	}
}

func TestEstimateSplitContiguousRun(t *testing.T) {
	s, _ := New(testConfig(100, 1000))
	active := bitset.NewActiveSet(100)
	// One contiguous run of 10 vertices, degree 5 each: 50 edges = 400 bytes.
	for v := 20; v < 30; v++ {
		active.Activate(v)
	}
	seqB, ranB, seeks := s.EstimateOnDemand(active, uniformDegrees(100, 5))
	totalWant := int64(10 * 5 * graph.EdgeBytes)
	if seqB+ranB != totalWant {
		t.Fatalf("split %d+%d != %d", seqB, ranB, totalWant)
	}
	// n=100, P=4 -> interval length 25: the run [20,30) crosses the
	// boundary at 25 and splits into two portions. Each portion's reads
	// touch at most P=4 sub-blocks of its row (and have plenty of edges),
	// so 4 seeks per portion; each portion's first vertex (degree 5) is
	// charged as random.
	if seeks != 8 {
		t.Fatalf("seeks = %d, want 8", seeks)
	}
	if ranB != 2*5*graph.EdgeBytes {
		t.Fatalf("ranBytes = %d, want first vertex of each portion", ranB)
	}
}

func TestEstimateSplitScatteredVertices(t *testing.T) {
	s, _ := New(testConfig(1000, 10000))
	active := bitset.NewActiveSet(1000)
	// 10 isolated vertices: 10 runs.
	for v := 0; v < 1000; v += 100 {
		active.Activate(v)
	}
	deg := uniformDegrees(1000, 3)
	seqB, ranB, seeks := s.EstimateOnDemand(active, deg)
	// Every vertex has degree 3, so the gaps between the isolated actives
	// carry on-disk edges and each active is its own portion. A degree-3
	// vertex occupies at most 3 sub-blocks of its row, so the per-portion
	// seek charge is capped at its edge count, not P.
	if seeks != 10*3 {
		t.Fatalf("seeks = %d, want 30", seeks)
	}
	// Each portion is a single vertex, so its whole payload is the "first
	// record" — all random, nothing sequential.
	if ranB != 10*3*graph.EdgeBytes {
		t.Fatalf("ranB = %d", ranB)
	}
	if seqB != 0 {
		t.Fatalf("seqB = %d", seqB)
	}
}

func TestEstimateZeroDegreeVertices(t *testing.T) {
	s, _ := New(testConfig(50, 0))
	active := bitset.NewActiveSet(50)
	active.Activate(7)
	seqB, ranB, seeks := s.EstimateOnDemand(active, uniformDegrees(50, 0))
	if seqB != 0 || ranB != 0 || seeks != 0 {
		t.Fatalf("zero-degree active vertex charged: seq=%d ran=%d seeks=%d", seqB, ranB, seeks)
	}
}

func TestDecideFewActivesPrefersOnDemand(t *testing.T) {
	// Large graph, one active vertex: on-demand must win.
	s, _ := New(testConfig(1_000_000, 16_000_000))
	active := bitset.NewActiveSet(1_000_000)
	active.Activate(123)
	d := s.Decide(0, active, uniformDegrees(1_000_000, 16))
	if d.Model != OnDemandIO {
		t.Fatalf("one active vertex chose %v (Cr=%v Cs=%v)", d.Model, d.CostOnDemand, d.CostFull)
	}
	if d.ActiveCount != 1 || d.Iteration != 0 {
		t.Fatalf("decision metadata wrong: %+v", d)
	}
}

func TestDecideAllActivePrefersFull(t *testing.T) {
	// Everything active and scattered seeks make on-demand lose: full wins.
	const n = 100_000
	s, _ := New(testConfig(n, 16*n))
	active := bitset.NewActiveSet(n)
	active.ActivateAll()
	d := s.Decide(0, active, uniformDegrees(n, 16))
	if d.Model != FullIO {
		t.Fatalf("full-active chose %v (Cr=%v Cs=%v)", d.Model, d.CostOnDemand, d.CostFull)
	}
}

func TestDecideCrossoverMonotonic(t *testing.T) {
	// As the active fraction grows from 0 to 1 with scattered vertices,
	// the decision must flip from on-demand to full exactly once.
	const n = 10_000
	s, _ := New(testConfig(n, 16*n))
	deg := uniformDegrees(n, 16)
	prev := OnDemandIO
	flips := 0
	for frac := 1; frac <= 100; frac++ {
		active := bitset.NewActiveSet(n)
		stride := 100 / frac
		if stride < 1 {
			stride = 1
		}
		for v := 0; v < n; v += stride {
			active.Activate(v)
		}
		d := s.Decide(frac, active, deg)
		if d.Model != prev {
			flips++
			prev = d.Model
		}
	}
	if prev != FullIO {
		t.Fatal("never switched to full I/O at 100% active")
	}
	if flips != 1 {
		t.Fatalf("decision flipped %d times, want exactly 1", flips)
	}
}

func TestHistoryAndOverhead(t *testing.T) {
	s, _ := New(testConfig(100, 1000))
	active := bitset.NewActiveSet(100)
	active.Activate(1)
	deg := uniformDegrees(100, 10)
	for i := 0; i < 5; i++ {
		s.Decide(i, active, deg)
	}
	h := s.History()
	if len(h) != 5 {
		t.Fatalf("history length %d", len(h))
	}
	for i, d := range h {
		if d.Iteration != i {
			t.Fatalf("history[%d].Iteration = %d", i, d.Iteration)
		}
	}
	if s.TotalOverhead() < 0 {
		t.Fatal("negative overhead")
	}
	s.Reset()
	if len(s.History()) != 0 {
		t.Fatal("Reset did not clear history")
	}
}

func TestModelString(t *testing.T) {
	if FullIO.String() != "full" || OnDemandIO.String() != "on-demand" {
		t.Fatal("model names wrong")
	}
}

// Property: the S_seq/S_ran split always conserves total active bytes, and
// seeks is bounded by the reference portion scan — at least one seek per
// edge-bearing portion, at most P per portion, and never more than the
// total active edge count (the per-portion charge is capped by the
// portion's edges).
func TestPropertySplitConservation(t *testing.T) {
	s, _ := New(testConfig(512, 5120))
	f := func(raw []uint16, degSeed []uint8) bool {
		const n = 512
		active := bitset.NewActiveSet(n)
		for _, r := range raw {
			active.Activate(int(r) % n)
		}
		deg := make([]uint32, n)
		for i := range deg {
			if len(degSeed) > 0 {
				deg[i] = uint32(degSeed[i%len(degSeed)]) % 20
			}
		}
		seqB, ranB, seeks := s.EstimateOnDemand(active, deg)
		// Reference scan: portions split at interval boundaries and at gaps
		// containing on-disk edges; zero-degree-only gaps merge.
		per := s.cfg.intervalLen()
		var want, activeEdges, portions int64
		prev := -2
		curIv, curEdges := -1, int64(0)
		endPortion := func() {
			if curEdges > 0 {
				portions++
			}
			curEdges = 0
		}
		active.ForEach(func(v int) bool {
			want += int64(deg[v]) * graph.EdgeBytes
			activeEdges += int64(deg[v])
			iv := v / per
			if iv != curIv || (v != prev+1 && gapHasEdges(deg, prev+1, v)) {
				endPortion()
			}
			curIv = iv
			curEdges += int64(deg[v])
			prev = v
			return true
		})
		endPortion()
		if seqB+ranB != want {
			return false
		}
		if seeks < portions || seeks > portions*4 {
			return false
		}
		return seeks <= activeEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decide always picks the cheaper predicted cost.
func TestPropertyDecidePicksCheaper(t *testing.T) {
	s, _ := New(testConfig(1024, 20480))
	f := func(raw []uint16) bool {
		const n = 1024
		active := bitset.NewActiveSet(n)
		for _, r := range raw {
			active.Activate(int(r) % n)
		}
		d := s.Decide(0, active, uniformDegrees(n, 20))
		if d.CostOnDemand <= d.CostFull {
			return d.Model == OnDemandIO
		}
		return d.Model == FullIO
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadIsSmall(t *testing.T) {
	// The Figure 11 claim: benefit evaluation is cheap. A full pass over a
	// million-vertex active set must finish in well under 50 ms.
	const n = 1 << 20
	s, _ := New(testConfig(n, 16*n))
	active := bitset.NewActiveSet(n)
	for v := 0; v < n; v += 2 {
		active.Activate(v)
	}
	deg := uniformDegrees(n, 16)
	start := time.Now()
	s.Decide(0, active, deg)
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("decision took %v", elapsed)
	}
}

func TestEdgeBytesOnDiskLowersCosts(t *testing.T) {
	cfg := testConfig(1000, 50000)
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 3x-compressed layout: same edges, a third of the payload on disk.
	comp := cfg
	comp.EdgeBytesOnDisk = cfg.NumEdges * int64(cfg.EdgeRecordBytes) / 3
	small, err := New(comp)
	if err != nil {
		t.Fatal(err)
	}
	if small.CostFull() >= plain.CostFull() {
		t.Fatalf("compressed CostFull %v not below raw %v", small.CostFull(), plain.CostFull())
	}
	// CostFull matches the formula with on-disk bytes substituted.
	vBytes := int64(cfg.NumVertices) * graph.VertexValueBytes
	want := cfg.Profile.SeqCost(storage.SeqRead, vBytes+comp.EdgeBytesOnDisk) +
		cfg.Profile.SeqCost(storage.SeqWrite, vBytes)
	if got := small.CostFull(); got != want {
		t.Fatalf("compressed CostFull = %v, want %v", got, want)
	}

	// The on-demand estimate shrinks proportionally too.
	active := bitset.NewActiveSet(1000)
	for v := 100; v < 200; v++ {
		active.Activate(v)
	}
	deg := uniformDegrees(1000, 5)
	seqA, ranA, _ := plain.EstimateOnDemand(active, deg)
	seqB, ranB, _ := small.EstimateOnDemand(active, deg)
	if seqB+ranB >= seqA+ranA {
		t.Fatalf("compressed on-demand bytes %d not below raw %d", seqB+ranB, seqA+ranA)
	}
}

func TestDecideTieBreaksToOnDemand(t *testing.T) {
	// An empty graph makes both raw costs exactly zero — the one place an
	// exact tie is constructible without floating-point luck. The <= in
	// Decide must resolve it to on-demand.
	s, err := New(testConfig(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	d := s.Decide(0, bitset.NewActiveSet(0), nil)
	if d.CostFull != d.CostOnDemand {
		t.Fatalf("costs not tied: Cs=%v Cr=%v", d.CostFull, d.CostOnDemand)
	}
	if d.Model != OnDemandIO {
		t.Fatalf("exact tie chose %v, want on-demand", d.Model)
	}
}

func TestEstimateAdversarialFrontiers(t *testing.T) {
	const n = 512 // P=4 -> interval length 128

	t.Run("empty", func(t *testing.T) {
		s, _ := New(testConfig(n, int64(2*n)))
		seqB, ranB, seeks := s.EstimateOnDemand(bitset.NewActiveSet(n), uniformDegrees(n, 2))
		if seqB != 0 || ranB != 0 || seeks != 0 {
			t.Fatalf("empty frontier charged: seq=%d ran=%d seeks=%d", seqB, ranB, seeks)
		}
	})

	t.Run("all-active", func(t *testing.T) {
		s, _ := New(testConfig(n, int64(2*n)))
		active := bitset.NewActiveSet(n)
		active.ActivateAll()
		seqB, ranB, seeks := s.EstimateOnDemand(active, uniformDegrees(n, 2))
		// One portion per interval, each with 256 edges >> P blocks: 4 rows
		// of 4 seeks. First vertex of each portion random, rest sequential.
		if seeks != 16 {
			t.Fatalf("seeks = %d, want 16", seeks)
		}
		if ranB != 4*2*graph.EdgeBytes {
			t.Fatalf("ranB = %d, want 64", ranB)
		}
		if seqB+ranB != int64(n*2*graph.EdgeBytes) {
			t.Fatalf("total %d != %d", seqB+ranB, n*2*graph.EdgeBytes)
		}
	})

	t.Run("alternating", func(t *testing.T) {
		s, _ := New(testConfig(n, int64(2*n)))
		active := bitset.NewActiveSet(n)
		for v := 0; v < n; v += 2 {
			active.Activate(v)
		}
		seqB, ranB, seeks := s.EstimateOnDemand(active, uniformDegrees(n, 2))
		// Every skipped vertex has edges, so all 256 actives are their own
		// portion; each portion's seek charge is capped at its 2 edges, and
		// its whole payload is random.
		if seeks != 256*2 {
			t.Fatalf("seeks = %d, want 512", seeks)
		}
		if ranB != 256*2*graph.EdgeBytes || seqB != 0 {
			t.Fatalf("split seq=%d ran=%d, want 0/%d", seqB, ranB, 256*2*graph.EdgeBytes)
		}
	})

	t.Run("run-spanning-all-rows-with-sparse-grid", func(t *testing.T) {
		cfg := testConfig(n, int64(2*n))
		cfg.BlocksPerRow = []int{4, 3, 2, 1}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		active := bitset.NewActiveSet(n)
		active.ActivateAll()
		_, _, seeks := s.EstimateOnDemand(active, uniformDegrees(n, 2))
		// The run splits into one portion per interval, and each portion
		// only seeks for its row's non-empty sub-blocks: 4+3+2+1.
		if seeks != 10 {
			t.Fatalf("seeks = %d, want 10", seeks)
		}
	})

	t.Run("zero-degree-gap-merges", func(t *testing.T) {
		s, _ := New(testConfig(100, 10))
		active := bitset.NewActiveSet(100)
		active.Activate(0)
		active.Activate(10)
		deg := make([]uint32, 100)
		deg[0], deg[10] = 5, 5
		seqB, ranB, seeks := s.EstimateOnDemand(active, deg)
		// The gap 1..9 holds only zero-degree vertices — no bytes on disk —
		// so both actives form one sequential portion: 4 seeks, first
		// vertex random, second sequential.
		if seeks != 4 {
			t.Fatalf("seeks = %d, want 4", seeks)
		}
		if ranB != 5*graph.EdgeBytes || seqB != 5*graph.EdgeBytes {
			t.Fatalf("split seq=%d ran=%d, want 40/40", seqB, ranB)
		}
	})
}

func TestObserveCalibratesEWMA(t *testing.T) {
	s, _ := New(testConfig(1_000_000, 16_000_000))
	active := bitset.NewActiveSet(1_000_000)
	active.Activate(123)
	deg := uniformDegrees(1_000_000, 16)
	d := s.Decide(0, active, deg)
	if d.Model != OnDemandIO {
		t.Fatalf("setup: expected on-demand, got %v", d.Model)
	}
	if d.CorrFull != 1 || d.CorrOnDemand != 1 {
		t.Fatalf("uncalibrated factors not 1: %+v", d)
	}

	// The device charged exactly twice the raw prediction.
	actual := 2 * d.CostOnDemand
	pred, mis := s.Observe(OnDemandIO, actual)
	if pred != d.CostOnDemand {
		t.Fatalf("predicted = %v, want raw %v (factor was 1)", pred, d.CostOnDemand)
	}
	if mis < 0.499 || mis > 0.501 {
		t.Fatalf("mispredict = %v, want 0.5", mis)
	}
	// EWMA with alpha=0.5: factor = 0.5*1 + 0.5*2 = 1.5.
	if got := s.factor[OnDemandIO]; got < 1.499 || got > 1.501 {
		t.Fatalf("factor = %v, want 1.5", got)
	}
	if s.factor[FullIO] != 1 {
		t.Fatal("full-model factor moved without an observation")
	}

	// The annotated decision carries the feedback.
	h := s.History()
	if h[0].Actual != actual || h[0].Mispredict != mis || h[0].Predicted != pred {
		t.Fatalf("history not annotated: %+v", h[0])
	}

	// The next decision uses — and reports — the corrected factor.
	d2 := s.Decide(1, active, deg)
	if d2.CorrOnDemand != s.factor[OnDemandIO] {
		t.Fatalf("decision factor %v != scheduler factor %v", d2.CorrOnDemand, s.factor[OnDemandIO])
	}

	a := s.Accuracy()
	if a.Observed != 1 || a.MeanMispredict != mis || a.MaxMispredict != mis || a.LastMispredict != mis {
		t.Fatalf("accuracy summary wrong: %+v", a)
	}
	if a.CorrOnDemand != s.factor[OnDemandIO] || a.CorrFull != 1 {
		t.Fatalf("accuracy factors wrong: %+v", a)
	}

	// A wild outlier is clamped, not adopted.
	s.Observe(OnDemandIO, 1000*d2.CostOnDemand)
	if got := s.factor[OnDemandIO]; got != correctionMax {
		t.Fatalf("factor = %v, want clamped to %v", got, correctionMax)
	}

	s.Reset()
	if len(s.History()) != 0 {
		t.Fatal("Reset kept history")
	}
	if a := s.Accuracy(); a.Observed != 0 || a.CorrOnDemand != 1 || a.MaxMispredict != 0 {
		t.Fatalf("Reset kept calibration state: %+v", a)
	}
}

func TestObserveWithoutDecisionIsNoop(t *testing.T) {
	s, _ := New(testConfig(100, 1000))
	pred, mis := s.Observe(FullIO, time.Second)
	if pred != 0 || mis != 0 {
		t.Fatalf("Observe on empty history returned %v/%v", pred, mis)
	}
	if s.Accuracy().Observed != 0 {
		t.Fatal("Observe on empty history counted an observation")
	}
}

func TestHysteresisSuppressesNearTieFlips(t *testing.T) {
	// Frontier where raw on-demand wins comfortably.
	s, _ := New(testConfig(1_000_000, 16_000_000))
	active := bitset.NewActiveSet(1_000_000)
	active.Activate(123)
	deg := uniformDegrees(1_000_000, 16)
	d1 := s.Decide(0, active, deg)
	if d1.Model != OnDemandIO {
		t.Fatalf("setup: expected on-demand, got %v", d1.Model)
	}

	// Simulate calibration having pushed the on-demand correction to where
	// the corrected on-demand cost sits 2% ABOVE full — inside the 5%
	// hysteresis band. The incumbent (on-demand) must survive the near-tie.
	cf := float64(d1.CostFull)
	crRaw := float64(d1.CostOnDemand)
	s.observed[OnDemandIO] = 1
	s.factor[OnDemandIO] = 1.02 * cf / crRaw
	d2 := s.Decide(1, active, deg)
	if d2.Model != OnDemandIO {
		t.Fatalf("near-tie flipped the model to %v", d2.Model)
	}

	// Push the correction far past the band: the flip is genuine and must
	// go through.
	s.factor[OnDemandIO] = 3 * cf / crRaw
	d3 := s.Decide(2, active, deg)
	if d3.Model != FullIO {
		t.Fatalf("decisive challenger suppressed: got %v", d3.Model)
	}

	// And once Full is the incumbent, a marginal on-demand advantage is
	// also suppressed: corrected Cr at 97% of Cf stays Full.
	s.factor[OnDemandIO] = 0.97 * cf / crRaw
	d4 := s.Decide(3, active, deg)
	if d4.Model != FullIO {
		t.Fatalf("marginal challenger flipped the model to %v", d4.Model)
	}

	// A decisive on-demand advantage flips back.
	s.factor[OnDemandIO] = 0.5 * cf / crRaw
	d5 := s.Decide(4, active, deg)
	if d5.Model != OnDemandIO {
		t.Fatalf("decisive flip back suppressed: got %v", d5.Model)
	}
}

// TestAsyncRowCosts covers the async scheduler's pricing primitives:
// BlockCost is a seek plus the payload's sequential read, and
// RowSelectiveCost prices a sparse frontier below streaming the row while a
// dense frontier prices above it — the crossover the async engine's per-row
// path choice rides on.
func TestAsyncRowCosts(t *testing.T) {
	s, err := New(testConfig(1000, 50000))
	if err != nil {
		t.Fatal(err)
	}
	prof := storage.HDD
	if got := s.BlockCost(0); got != prof.SeekLatency {
		t.Fatalf("BlockCost(0) = %v, want bare seek %v", got, prof.SeekLatency)
	}
	if s.BlockCost(1<<20) <= s.BlockCost(1<<10) {
		t.Fatal("BlockCost not increasing in payload bytes")
	}

	// One row of the 4×4 grid holds a quarter of the edges.
	rowBytes := 50000 / 4 * int64(graph.EdgeBytes)
	var stream time.Duration
	for j := 0; j < 4; j++ {
		stream += s.BlockCost(rowBytes / 4)
	}
	deg := uniformDegrees(1000, 50)

	sparse := bitset.NewActiveSet(1000)
	sparse.Activate(3)
	seqB, ranB, seeks := s.EstimateOnDemand(sparse, deg)
	if sel := s.RowSelectiveCost(seqB, ranB, seeks, 250); sel >= stream {
		t.Fatalf("single-vertex frontier: selective %v not below streaming %v", sel, stream)
	}

	dense := bitset.NewActiveSet(1000)
	for v := 0; v < 250; v++ {
		dense.Activate(v)
	}
	seqB, ranB, seeks = s.EstimateOnDemand(dense, deg)
	if sel := s.RowSelectiveCost(seqB, ranB, seeks, 250); sel <= stream {
		t.Fatalf("full-interval frontier: selective %v not above streaming %v", sel, stream)
	}
}
