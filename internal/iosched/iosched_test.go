package iosched

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

func testConfig(numV int, numE int64) Config {
	return Config{
		Profile:         storage.HDD,
		NumVertices:     numV,
		NumEdges:        numE,
		EdgeRecordBytes: graph.EdgeBytes,
		P:               4,
	}
}

func uniformDegrees(n int, d uint32) []uint32 {
	deg := make([]uint32, n)
	for i := range deg {
		deg[i] = d
	}
	return deg
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(10, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig(10, 100)
	bad.EdgeRecordBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero record size accepted")
	}
	bad = testConfig(10, 100)
	bad.P = 0
	if err := bad.Validate(); err == nil {
		t.Error("P=0 accepted")
	}
	bad = testConfig(-1, 100)
	if err := bad.Validate(); err == nil {
		t.Error("negative vertices accepted")
	}
	bad = testConfig(10, 100)
	bad.Profile = storage.Profile{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestCostFullMatchesFormula(t *testing.T) {
	cfg := testConfig(1000, 50000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vBytes := int64(1000 * graph.VertexValueBytes)
	eBytes := int64(50000 * graph.EdgeBytes)
	want := cfg.Profile.SeqCost(storage.SeqRead, vBytes+eBytes) +
		cfg.Profile.SeqCost(storage.SeqWrite, vBytes)
	if got := s.CostFull(); got != want {
		t.Fatalf("CostFull = %v, want %v", got, want)
	}
}

func TestEstimateSplitContiguousRun(t *testing.T) {
	s, _ := New(testConfig(100, 1000))
	active := bitset.NewActiveSet(100)
	// One contiguous run of 10 vertices, degree 5 each: 50 edges = 400 bytes.
	for v := 20; v < 30; v++ {
		active.Activate(v)
	}
	seqB, ranB, seeks := s.EstimateOnDemand(active, uniformDegrees(100, 5))
	totalWant := int64(10 * 5 * graph.EdgeBytes)
	if seqB+ranB != totalWant {
		t.Fatalf("split %d+%d != %d", seqB, ranB, totalWant)
	}
	// One run -> P seeks; only the first record is random.
	if seeks != 4 {
		t.Fatalf("seeks = %d, want 4", seeks)
	}
	if ranB != graph.EdgeBytes {
		t.Fatalf("ranBytes = %d, want one record", ranB)
	}
}

func TestEstimateSplitScatteredVertices(t *testing.T) {
	s, _ := New(testConfig(1000, 10000))
	active := bitset.NewActiveSet(1000)
	// 10 isolated vertices: 10 runs.
	for v := 0; v < 1000; v += 100 {
		active.Activate(v)
	}
	deg := uniformDegrees(1000, 3)
	seqB, ranB, seeks := s.EstimateOnDemand(active, deg)
	if seeks != 10*4 {
		t.Fatalf("seeks = %d, want 40", seeks)
	}
	// Each isolated vertex: first record random, remaining 2 sequential.
	if ranB != 10*graph.EdgeBytes {
		t.Fatalf("ranB = %d", ranB)
	}
	if seqB != 10*2*graph.EdgeBytes {
		t.Fatalf("seqB = %d", seqB)
	}
}

func TestEstimateZeroDegreeVertices(t *testing.T) {
	s, _ := New(testConfig(50, 0))
	active := bitset.NewActiveSet(50)
	active.Activate(7)
	seqB, ranB, seeks := s.EstimateOnDemand(active, uniformDegrees(50, 0))
	if seqB != 0 || ranB != 0 || seeks != 0 {
		t.Fatalf("zero-degree active vertex charged: seq=%d ran=%d seeks=%d", seqB, ranB, seeks)
	}
}

func TestDecideFewActivesPrefersOnDemand(t *testing.T) {
	// Large graph, one active vertex: on-demand must win.
	s, _ := New(testConfig(1_000_000, 16_000_000))
	active := bitset.NewActiveSet(1_000_000)
	active.Activate(123)
	d := s.Decide(0, active, uniformDegrees(1_000_000, 16))
	if d.Model != OnDemandIO {
		t.Fatalf("one active vertex chose %v (Cr=%v Cs=%v)", d.Model, d.CostOnDemand, d.CostFull)
	}
	if d.ActiveCount != 1 || d.Iteration != 0 {
		t.Fatalf("decision metadata wrong: %+v", d)
	}
}

func TestDecideAllActivePrefersFull(t *testing.T) {
	// Everything active and scattered seeks make on-demand lose: full wins.
	const n = 100_000
	s, _ := New(testConfig(n, 16*n))
	active := bitset.NewActiveSet(n)
	active.ActivateAll()
	d := s.Decide(0, active, uniformDegrees(n, 16))
	if d.Model != FullIO {
		t.Fatalf("full-active chose %v (Cr=%v Cs=%v)", d.Model, d.CostOnDemand, d.CostFull)
	}
}

func TestDecideCrossoverMonotonic(t *testing.T) {
	// As the active fraction grows from 0 to 1 with scattered vertices,
	// the decision must flip from on-demand to full exactly once.
	const n = 10_000
	s, _ := New(testConfig(n, 16*n))
	deg := uniformDegrees(n, 16)
	prev := OnDemandIO
	flips := 0
	for frac := 1; frac <= 100; frac++ {
		active := bitset.NewActiveSet(n)
		stride := 100 / frac
		if stride < 1 {
			stride = 1
		}
		for v := 0; v < n; v += stride {
			active.Activate(v)
		}
		d := s.Decide(frac, active, deg)
		if d.Model != prev {
			flips++
			prev = d.Model
		}
	}
	if prev != FullIO {
		t.Fatal("never switched to full I/O at 100% active")
	}
	if flips != 1 {
		t.Fatalf("decision flipped %d times, want exactly 1", flips)
	}
}

func TestHistoryAndOverhead(t *testing.T) {
	s, _ := New(testConfig(100, 1000))
	active := bitset.NewActiveSet(100)
	active.Activate(1)
	deg := uniformDegrees(100, 10)
	for i := 0; i < 5; i++ {
		s.Decide(i, active, deg)
	}
	h := s.History()
	if len(h) != 5 {
		t.Fatalf("history length %d", len(h))
	}
	for i, d := range h {
		if d.Iteration != i {
			t.Fatalf("history[%d].Iteration = %d", i, d.Iteration)
		}
	}
	if s.TotalOverhead() < 0 {
		t.Fatal("negative overhead")
	}
	s.Reset()
	if len(s.History()) != 0 {
		t.Fatal("Reset did not clear history")
	}
}

func TestModelString(t *testing.T) {
	if FullIO.String() != "full" || OnDemandIO.String() != "on-demand" {
		t.Fatal("model names wrong")
	}
}

// Property: the S_seq/S_ran split always conserves total active bytes, and
// seeks is P times the number of runs.
func TestPropertySplitConservation(t *testing.T) {
	s, _ := New(testConfig(512, 5120))
	f := func(raw []uint16, degSeed []uint8) bool {
		const n = 512
		active := bitset.NewActiveSet(n)
		for _, r := range raw {
			active.Activate(int(r) % n)
		}
		deg := make([]uint32, n)
		for i := range deg {
			if len(degSeed) > 0 {
				deg[i] = uint32(degSeed[i%len(degSeed)]) % 20
			}
		}
		seqB, ranB, seeks := s.EstimateOnDemand(active, deg)
		var want int64
		runs := int64(0)
		prev := -2
		active.ForEach(func(v int) bool {
			want += int64(deg[v]) * graph.EdgeBytes
			if v != prev+1 {
				runs++
			}
			prev = v
			return true
		})
		// Runs made purely of zero-degree vertices contribute no seeks.
		if seqB+ranB != want {
			return false
		}
		return seeks <= runs*4 && seeks >= 0 && seeks%4 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decide always picks the cheaper predicted cost.
func TestPropertyDecidePicksCheaper(t *testing.T) {
	s, _ := New(testConfig(1024, 20480))
	f := func(raw []uint16) bool {
		const n = 1024
		active := bitset.NewActiveSet(n)
		for _, r := range raw {
			active.Activate(int(r) % n)
		}
		d := s.Decide(0, active, uniformDegrees(n, 20))
		if d.CostOnDemand <= d.CostFull {
			return d.Model == OnDemandIO
		}
		return d.Model == FullIO
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadIsSmall(t *testing.T) {
	// The Figure 11 claim: benefit evaluation is cheap. A full pass over a
	// million-vertex active set must finish in well under 50 ms.
	const n = 1 << 20
	s, _ := New(testConfig(n, 16*n))
	active := bitset.NewActiveSet(n)
	for v := 0; v < n; v += 2 {
		active.Activate(v)
	}
	deg := uniformDegrees(n, 16)
	start := time.Now()
	s.Decide(0, active, deg)
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("decision took %v", elapsed)
	}
}

func TestEdgeBytesOnDiskLowersCosts(t *testing.T) {
	cfg := testConfig(1000, 50000)
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 3x-compressed layout: same edges, a third of the payload on disk.
	comp := cfg
	comp.EdgeBytesOnDisk = cfg.NumEdges * int64(cfg.EdgeRecordBytes) / 3
	small, err := New(comp)
	if err != nil {
		t.Fatal(err)
	}
	if small.CostFull() >= plain.CostFull() {
		t.Fatalf("compressed CostFull %v not below raw %v", small.CostFull(), plain.CostFull())
	}
	// CostFull matches the formula with on-disk bytes substituted.
	vBytes := int64(cfg.NumVertices) * graph.VertexValueBytes
	want := cfg.Profile.SeqCost(storage.SeqRead, vBytes+comp.EdgeBytesOnDisk) +
		cfg.Profile.SeqCost(storage.SeqWrite, vBytes)
	if got := small.CostFull(); got != want {
		t.Fatalf("compressed CostFull = %v, want %v", got, want)
	}

	// The on-demand estimate shrinks proportionally too.
	active := bitset.NewActiveSet(1000)
	for v := 100; v < 200; v++ {
		active.Activate(v)
	}
	deg := uniformDegrees(1000, 5)
	seqA, ranA, _ := plain.EstimateOnDemand(active, deg)
	seqB, ranB, _ := small.EstimateOnDemand(active, deg)
	if seqB+ranB >= seqA+ranA {
		t.Fatalf("compressed on-demand bytes %d not below raw %d", seqB+ranB, seqA+ranA)
	}
}
