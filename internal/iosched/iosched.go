// Package iosched implements GraphSD's state-aware I/O scheduling strategy
// (paper §4.1): before each iteration it estimates the cost of the full I/O
// model (stream every sub-block sequentially) and the on-demand I/O model
// (fetch only active vertices' edge lists, partly random), and selects the
// cheaper one.
//
// The cost formulas are the paper's:
//
//	C_s = (|V|·N + |E|·(M+W)) / B_sr + |V|·N / B_sw
//	C_r = S_ran/B_rr + S_seq/B_sr + 2|V|·N/B_sr + |V|·N/B_sw
//
// with the S_seq/S_ran split computed in one O(|A|) pass over the active
// set and the degree table: a maximal run of consecutively-numbered active
// vertices is one seek followed by a sequential stream; the first portion
// of each run is charged as random (the seek), the rest as sequential.
// Because the device model in internal/storage charges by the very same
// profile, predictions and actual charges agree by construction, which is
// what lets the adaptive engine track the lower envelope in Figure 10.
package iosched

import (
	"fmt"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// Model is the I/O access model selected for an iteration.
type Model int

const (
	// FullIO streams every sub-block sequentially (triggers FCIU).
	FullIO Model = iota
	// OnDemandIO loads only active vertices' edges (triggers SCIU).
	OnDemandIO
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case FullIO:
		return "full"
	case OnDemandIO:
		return "on-demand"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Decision records one iteration's scheduling outcome, including everything
// needed for the Figure 10 (per-iteration model trace) and Figure 11
// (scheduling overhead) experiments.
type Decision struct {
	Iteration   int
	Model       Model
	ActiveCount int
	// SeqBytes and RanBytes are the S_seq / S_ran estimate for on-demand.
	SeqBytes int64
	RanBytes int64
	Seeks    int64
	// CostFull and CostOnDemand are the predicted iteration I/O costs.
	CostFull     time.Duration
	CostOnDemand time.Duration
	// Overhead is the wall-clock compute time spent making this decision.
	Overhead time.Duration
}

// Config carries the static quantities of the cost model.
type Config struct {
	Profile     storage.Profile
	NumVertices int
	NumEdges    int64
	// EdgeRecordBytes is M (+W for weighted graphs) — the decoded record
	// size.
	EdgeRecordBytes int
	// EdgeBytesOnDisk is the total on-disk edge payload. Under a compressed
	// sub-block codec this is smaller than NumEdges·EdgeRecordBytes, and it
	// is what both cost formulas must charge — the device moves compressed
	// bytes. Zero falls back to the uncompressed total.
	EdgeBytesOnDisk int64
	// P is the number of vertex intervals; an active run touches up to P
	// sub-blocks, each requiring its own positioning seek.
	P int
}

// edgeBytesOnDisk resolves the EdgeBytesOnDisk fallback.
func (c Config) edgeBytesOnDisk() int64 {
	if c.EdgeBytesOnDisk > 0 {
		return c.EdgeBytesOnDisk
	}
	return c.NumEdges * int64(c.EdgeRecordBytes)
}

// diskBytesPerEdge returns the average on-disk bytes of one edge record.
func (c Config) diskBytesPerEdge() float64 {
	if c.NumEdges == 0 {
		return float64(c.EdgeRecordBytes)
	}
	return float64(c.edgeBytesOnDisk()) / float64(c.NumEdges)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.NumVertices < 0 || c.NumEdges < 0 {
		return fmt.Errorf("iosched: negative graph size v=%d e=%d", c.NumVertices, c.NumEdges)
	}
	if c.EdgeRecordBytes <= 0 {
		return fmt.Errorf("iosched: non-positive edge record size %d", c.EdgeRecordBytes)
	}
	if c.P <= 0 {
		return fmt.Errorf("iosched: non-positive interval count %d", c.P)
	}
	return nil
}

// Scheduler selects the I/O access model each iteration and keeps the
// decision history. Not safe for concurrent use; the engine consults it
// once per iteration from the driver goroutine.
type Scheduler struct {
	cfg     Config
	history []Decision
}

// New returns a Scheduler for the given configuration.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// CostFull returns C_s, the constant full-model cost per iteration. The
// edge term uses on-disk bytes: a compressed layout streams fewer bytes, so
// its full-model cost genuinely drops and the SCIU/FCIU break-even point
// shifts with it.
func (s *Scheduler) CostFull() time.Duration {
	p := s.cfg.Profile
	vBytes := int64(s.cfg.NumVertices) * graph.VertexValueBytes
	eBytes := s.cfg.edgeBytesOnDisk()
	return p.SeqCost(storage.SeqRead, vBytes+eBytes) + p.SeqCost(storage.SeqWrite, vBytes)
}

// EstimateOnDemand computes the S_seq/S_ran split and C_r for the given
// active set in one pass over the active vertices and the degree table.
// Bytes are estimated at the layout's average on-disk bytes per edge, so a
// compressed layout's selective reads are costed at what the device will
// actually move.
func (s *Scheduler) EstimateOnDemand(active *bitset.ActiveSet, degrees []uint32) (seqBytes, ranBytes, seeks int64) {
	rec := s.cfg.diskBytesPerEdge()
	firstRec := int64(rec)
	if firstRec < 1 {
		firstRec = 1
	}
	prev := -2
	var runBytes int64
	flushRun := func() {
		if runBytes == 0 {
			return
		}
		// A run costs one seek per sub-block it spans. The first read after
		// each seek travels at post-seek (random-class) rate; model the
		// whole run as sequential payload with P positioning seeks, charging
		// the first record of the run as random.
		seeks += int64(s.cfg.P)
		first := firstRec
		if first > runBytes {
			first = runBytes
		}
		ranBytes += first
		seqBytes += runBytes - first
		runBytes = 0
	}
	active.ForEach(func(v int) bool {
		if v != prev+1 {
			flushRun()
		}
		runBytes += int64(float64(degrees[v]) * rec)
		prev = v
		return true
	})
	flushRun()
	return seqBytes, ranBytes, seeks
}

// CostOnDemand returns C_r for a precomputed split.
func (s *Scheduler) CostOnDemand(seqBytes, ranBytes, seeks int64) time.Duration {
	p := s.cfg.Profile
	vBytes := int64(s.cfg.NumVertices) * graph.VertexValueBytes
	c := p.SeqCost(storage.RandRead, ranBytes) +
		time.Duration(seeks)*p.SeekLatency +
		p.SeqCost(storage.SeqRead, seqBytes) +
		p.SeqCost(storage.SeqRead, 2*vBytes) + // index + vertex values
		p.SeqCost(storage.SeqWrite, vBytes)
	return c
}

// Decide runs the benefit evaluation for one iteration and records and
// returns the decision. degrees must hold the global out-degree of every
// vertex.
func (s *Scheduler) Decide(iteration int, active *bitset.ActiveSet, degrees []uint32) Decision {
	start := time.Now()
	seqB, ranB, seeks := s.EstimateOnDemand(active, degrees)
	d := Decision{
		Iteration:    iteration,
		ActiveCount:  active.Count(),
		SeqBytes:     seqB,
		RanBytes:     ranB,
		Seeks:        seeks,
		CostFull:     s.CostFull(),
		CostOnDemand: s.CostOnDemand(seqB, ranB, seeks),
	}
	if d.CostOnDemand <= d.CostFull {
		d.Model = OnDemandIO
	} else {
		d.Model = FullIO
	}
	d.Overhead = time.Since(start)
	s.history = append(s.history, d)
	return d
}

// History returns the recorded decisions in iteration order.
func (s *Scheduler) History() []Decision { return s.history }

// TotalOverhead returns the cumulative wall-clock cost of all benefit
// evaluations, the numerator of the Figure 11 comparison.
func (s *Scheduler) TotalOverhead() time.Duration {
	var t time.Duration
	for _, d := range s.history {
		t += d.Overhead
	}
	return t
}

// Reset clears the decision history.
func (s *Scheduler) Reset() { s.history = s.history[:0] }
