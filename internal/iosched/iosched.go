// Package iosched implements GraphSD's state-aware I/O scheduling strategy
// (paper §4.1): before each iteration it estimates the cost of the full I/O
// model (stream every sub-block sequentially) and the on-demand I/O model
// (fetch only active vertices' edge lists, partly random), and selects the
// cheaper one.
//
// The cost formulas are the paper's:
//
//	C_s = (|V|·N + |E|·(M+W)) / B_sr + |V|·N / B_sw
//	C_r = S_ran/B_rr + S_seq/B_sr + 2|V|·N/B_sr + |V|·N/B_sw
//
// with the S_seq/S_ran split computed in one O(|A|) pass over the active
// set and the degree table. A maximal run of consecutively-numbered
// edge-bearing active vertices is split at interval boundaries (each
// interval's sub-blocks are separate files with their own readers) into
// portions; each portion costs one positioning seek per sub-block its reads
// touch — at most the number of non-empty sub-blocks in the interval's grid
// row, and never more seeks than the portion issues reads. The first read
// after each seek travels at the random-class rate, the rest stream
// sequentially. Gaps consisting only of zero-degree vertices occupy no bytes
// on disk, so the runs on either side remain one sequential stream and are
// not split.
//
// Because the device model in internal/storage charges by the very same
// profile, predictions and actual charges agree by construction whenever the
// layout's per-edge on-disk bytes are uniform and every edge-bearing vertex
// stores edges in every non-empty sub-block of its row (the property test
// exercises exactly this family against the real device). Real frontiers
// deviate from those conditions, so the Scheduler also carries a calibration
// loop: Observe feeds back each iteration's measured device charge, an EWMA
// per-model correction factor rescales subsequent estimates, and a small
// hysteresis band keeps corrected near-ties from flapping the model choice.
package iosched

import (
	"fmt"
	"math"
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// Model is the I/O access model selected for an iteration.
type Model int

const (
	// FullIO streams every sub-block sequentially (triggers FCIU).
	FullIO Model = iota
	// OnDemandIO loads only active vertices' edges (triggers SCIU).
	OnDemandIO
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case FullIO:
		return "full"
	case OnDemandIO:
		return "on-demand"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Calibration constants: the EWMA weight of the newest actual/predicted
// ratio, the clamp keeping a wild outlier from poisoning the factor, and
// the hysteresis band a corrected challenger must beat the incumbent model
// by before the choice may flip.
const (
	calibrationAlpha = 0.5
	correctionMin    = 0.1
	correctionMax    = 10.0
	hysteresisBand   = 0.05
)

// Decision records one iteration's scheduling outcome, including everything
// needed for the Figure 10 (per-iteration model trace) and Figure 11
// (scheduling overhead) experiments.
type Decision struct {
	Iteration   int
	Model       Model
	ActiveCount int
	// SeqBytes and RanBytes are the S_seq / S_ran estimate for on-demand.
	SeqBytes int64
	RanBytes int64
	Seeks    int64
	// CostFull and CostOnDemand are the raw (uncorrected) predicted
	// iteration I/O costs from the paper's formulas.
	CostFull     time.Duration
	CostOnDemand time.Duration
	// CorrFull and CorrOnDemand are the EWMA correction factors in effect
	// when the models were compared (1.0 until calibration has observed an
	// iteration of the respective model).
	CorrFull     float64
	CorrOnDemand float64
	// Predicted is the corrected cost of the executed model. Decide fills it
	// for the chosen model; Observe overwrites it when a forced run executed
	// the other one.
	Predicted time.Duration
	// Actual is the measured device charge delta of the iteration and
	// Mispredict the relative error |Predicted−Actual|/Actual; both are
	// zero until Observe reports the iteration back.
	Actual     time.Duration
	Mispredict float64
	// Overhead is the wall-clock compute time spent making this decision.
	Overhead time.Duration
}

// Config carries the static quantities of the cost model.
type Config struct {
	Profile     storage.Profile
	NumVertices int
	NumEdges    int64
	// EdgeRecordBytes is M (+W for weighted graphs) — the decoded record
	// size.
	EdgeRecordBytes int
	// EdgeBytesOnDisk is the total on-disk edge payload. Under a compressed
	// sub-block codec this is smaller than NumEdges·EdgeRecordBytes, and it
	// is what both cost formulas must charge — the device moves compressed
	// bytes. Zero falls back to the uncompressed total.
	EdgeBytesOnDisk int64
	// EdgeBytesOnDemand is the total on-disk bytes selective (per-vertex)
	// reads move for the whole edge set. Under the delta codec this excludes
	// each block's edge-count header, which only full-block streams read.
	// Zero falls back to EdgeBytesOnDisk.
	EdgeBytesOnDemand int64
	// P is the number of vertex intervals; an active run touches up to P
	// sub-blocks per interval row, each requiring its own positioning seek.
	P int
	// BlocksPerRow, when non-nil, holds the number of non-empty sub-blocks
	// in each source interval's grid row (length P). A portion confined to
	// interval i seeks at most BlocksPerRow[i] times — empty sub-blocks are
	// never opened. Nil assumes fully-populated rows (P blocks each).
	BlocksPerRow []int
	// SEM enables semi-external-memory costing: the full model skips every
	// sub-block of a source interval with no active vertex, so its cost is
	// the summed RowDiskBytes of active rows, not the whole edge set.
	// RowDiskBytes (length P) holds each source row's on-disk payload and
	// must be set when SEM is. The on-demand formula is untouched — SCIU
	// already reads only active vertices' edges.
	SEM          bool
	RowDiskBytes []int64
}

// edgeBytesOnDisk resolves the EdgeBytesOnDisk fallback.
func (c Config) edgeBytesOnDisk() int64 {
	if c.EdgeBytesOnDisk > 0 {
		return c.EdgeBytesOnDisk
	}
	return c.NumEdges * int64(c.EdgeRecordBytes)
}

// diskBytesPerEdge returns the average on-disk bytes of one edge record.
func (c Config) diskBytesPerEdge() float64 {
	if c.NumEdges == 0 {
		return float64(c.EdgeRecordBytes)
	}
	return float64(c.edgeBytesOnDisk()) / float64(c.NumEdges)
}

// onDemandBytesPerEdge returns the average bytes one edge costs a selective
// read.
func (c Config) onDemandBytesPerEdge() float64 {
	if c.NumEdges == 0 {
		return float64(c.EdgeRecordBytes)
	}
	if c.EdgeBytesOnDemand > 0 {
		return float64(c.EdgeBytesOnDemand) / float64(c.NumEdges)
	}
	return c.diskBytesPerEdge()
}

// intervalLen returns the vertex count per interval (the layout's ceil
// division).
func (c Config) intervalLen() int {
	per := (c.NumVertices + c.P - 1) / c.P
	if per < 1 {
		per = 1
	}
	return per
}

// blocksInRow returns the number of non-empty sub-blocks in interval i's
// grid row.
func (c Config) blocksInRow(i int) int {
	if c.BlocksPerRow == nil {
		return c.P
	}
	return c.BlocksPerRow[i]
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.NumVertices < 0 || c.NumEdges < 0 {
		return fmt.Errorf("iosched: negative graph size v=%d e=%d", c.NumVertices, c.NumEdges)
	}
	if c.EdgeRecordBytes <= 0 {
		return fmt.Errorf("iosched: non-positive edge record size %d", c.EdgeRecordBytes)
	}
	if c.P <= 0 {
		return fmt.Errorf("iosched: non-positive interval count %d", c.P)
	}
	if c.BlocksPerRow != nil {
		if len(c.BlocksPerRow) != c.P {
			return fmt.Errorf("iosched: blocks-per-row length %d != P %d", len(c.BlocksPerRow), c.P)
		}
		for i, b := range c.BlocksPerRow {
			if b < 0 || b > c.P {
				return fmt.Errorf("iosched: row %d has %d non-empty blocks, want 0..%d", i, b, c.P)
			}
		}
	}
	if c.SEM && len(c.RowDiskBytes) != c.P {
		return fmt.Errorf("iosched: SEM costing needs row disk bytes for all %d rows, got %d", c.P, len(c.RowDiskBytes))
	}
	if c.RowDiskBytes != nil && len(c.RowDiskBytes) != c.P {
		return fmt.Errorf("iosched: row-disk-bytes length %d != P %d", len(c.RowDiskBytes), c.P)
	}
	return nil
}

// Scheduler selects the I/O access model each iteration and keeps the
// decision history plus the calibration state fed by Observe. Not safe for
// concurrent use; the engine consults it once per iteration from the driver
// goroutine.
type Scheduler struct {
	cfg     Config
	history []Decision

	// factor holds the per-model EWMA correction (actual/raw cost), indexed
	// by Model. 1.0 until the model has been observed.
	factor [2]float64
	// observed counts Observe calls per model; mispredict* aggregate the
	// relative errors for the Accuracy summary.
	observed       [2]int
	mispredictSum  float64
	mispredictMax  float64
	mispredictLast float64
}

// New returns a Scheduler for the given configuration.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{cfg: cfg}
	s.factor[FullIO] = 1
	s.factor[OnDemandIO] = 1
	return s, nil
}

// CostFull returns C_s, the constant full-model cost per iteration. The
// edge term uses on-disk bytes: a compressed layout streams fewer bytes, so
// its full-model cost genuinely drops and the SCIU/FCIU break-even point
// shifts with it.
func (s *Scheduler) CostFull() time.Duration {
	p := s.cfg.Profile
	vBytes := int64(s.cfg.NumVertices) * graph.VertexValueBytes
	eBytes := s.cfg.edgeBytesOnDisk()
	return p.SeqCost(storage.SeqRead, vBytes+eBytes) + p.SeqCost(storage.SeqWrite, vBytes)
}

// CostFullFor returns the full-model cost for a specific frontier. Without
// SEM costing (or without an active set to inspect) it is CostFull — the
// full model reads everything regardless of activity. With SEM, the engine
// skips every sub-block of a source interval holding no active vertex, so
// only active rows' on-disk bytes are charged: no bytes and no seeks for
// skipped blocks.
func (s *Scheduler) CostFullFor(active *bitset.ActiveSet) time.Duration {
	if !s.cfg.SEM || s.cfg.RowDiskBytes == nil || active == nil {
		return s.CostFull()
	}
	per := s.cfg.intervalLen()
	var eBytes int64
	for i := 0; i < s.cfg.P; i++ {
		lo := i * per
		hi := lo + per
		if hi > s.cfg.NumVertices {
			hi = s.cfg.NumVertices
		}
		if lo >= hi {
			break
		}
		if active.CountRange(lo, hi) > 0 {
			eBytes += s.cfg.RowDiskBytes[i]
		}
	}
	p := s.cfg.Profile
	vBytes := int64(s.cfg.NumVertices) * graph.VertexValueBytes
	return p.SeqCost(storage.SeqRead, vBytes+eBytes) + p.SeqCost(storage.SeqWrite, vBytes)
}

// EstimateOnDemand computes the S_seq/S_ran split and the seek count for
// the given active set in one pass over the active vertices and the degree
// table. Bytes are estimated at the layout's average selective-read bytes
// per edge, so a compressed layout's on-demand reads are costed at what the
// device will actually move.
//
// A maximal run of edge-bearing active vertices (gaps of zero-degree
// vertices occupy no bytes and do not break a run) is split at interval
// boundaries into portions. Each portion seeks once per sub-block of its
// interval's grid row that its reads touch — capped at the row's non-empty
// block count and at the portion's edge count — and its first edge-bearing
// vertex's bytes are charged at the post-seek random rate.
func (s *Scheduler) EstimateOnDemand(active *bitset.ActiveSet, degrees []uint32) (seqBytes, ranBytes, seeks int64) {
	rec := s.cfg.onDemandBytesPerEdge()
	per := s.cfg.intervalLen()
	prev := -2 // last active vertex seen; -2 so vertex 0 never chains
	curIv := -1
	var portionEdges int64 // active edges accumulated in the current portion
	var firstDeg int64     // out-degree of the portion's first edge-bearing vertex
	flush := func() {
		if portionEdges == 0 {
			firstDeg = 0
			return
		}
		blocks := int64(s.cfg.blocksInRow(curIv))
		if blocks > portionEdges {
			blocks = portionEdges
		}
		seeks += blocks
		total := int64(math.Round(float64(portionEdges) * rec))
		first := int64(math.Round(float64(firstDeg) * rec))
		if first > total {
			first = total
		}
		ranBytes += first
		seqBytes += total - first
		portionEdges, firstDeg = 0, 0
	}
	active.ForEach(func(v int) bool {
		iv := v / per
		if iv != curIv || (v != prev+1 && gapHasEdges(degrees, prev+1, v)) {
			flush()
		}
		curIv = iv
		d := int64(degrees[v])
		if firstDeg == 0 {
			firstDeg = d
		}
		portionEdges += d
		prev = v
		return true
	})
	flush()
	return seqBytes, ranBytes, seeks
}

// gapHasEdges reports whether any vertex in [lo, hi) has edges. A gap of
// zero-degree vertices occupies no bytes on disk (their index runs are
// empty), so the reads on either side of it remain one sequential stream.
func gapHasEdges(degrees []uint32, lo, hi int) bool {
	for v := lo; v < hi; v++ {
		if degrees[v] > 0 {
			return true
		}
	}
	return false
}

// CostOnDemand returns C_r for a precomputed split.
func (s *Scheduler) CostOnDemand(seqBytes, ranBytes, seeks int64) time.Duration {
	p := s.cfg.Profile
	vBytes := int64(s.cfg.NumVertices) * graph.VertexValueBytes
	c := p.SeqCost(storage.RandRead, ranBytes) +
		time.Duration(seeks)*p.SeekLatency +
		p.SeqCost(storage.SeqRead, seqBytes) +
		p.SeqCost(storage.SeqRead, 2*vBytes) + // index + vertex values
		p.SeqCost(storage.SeqWrite, vBytes)
	return c
}

// BlockCost prices streaming one sub-block: a seek plus the sequential read
// of its on-disk payload. The async engine divides a row's pending mass by
// the summed cost of its live blocks, so equal mass prefers cheap rows, and
// ages cold rows by pop count rather than letting expensive ones starve.
func (s *Scheduler) BlockCost(diskBytes int64) time.Duration {
	p := s.cfg.Profile
	return p.SeekLatency + p.SeqCost(storage.SeqRead, diskBytes)
}

// RowSelectiveCost prices loading one source interval's frontier edges
// selectively from a precomputed EstimateOnDemand split over that row's
// frontier, plus one sequential pass over the interval's index (selective
// reads need the per-vertex offsets; streaming a whole row does not). The
// value-array terms are identical between the streaming and selective row
// paths, so both this and BlockCost price edges only and the comparison
// stays fair.
func (s *Scheduler) RowSelectiveCost(seqBytes, ranBytes, seeks int64, intervalLen int) time.Duration {
	p := s.cfg.Profile
	return p.SeqCost(storage.RandRead, ranBytes) +
		time.Duration(seeks)*p.SeekLatency +
		p.SeqCost(storage.SeqRead, seqBytes) +
		p.SeqCost(storage.SeqRead, int64(intervalLen)*graph.IndexEntryBytes)
}

// scaleCost applies a correction factor to a raw cost estimate.
func scaleCost(c time.Duration, factor float64) time.Duration {
	return time.Duration(float64(c) * factor)
}

// Decide runs the benefit evaluation for one iteration and records and
// returns the decision. degrees must hold the global out-degree of every
// vertex.
//
// The models are compared by their corrected costs (raw formula × the
// model's EWMA correction). Exact ties go to on-demand. Once calibration
// has at least one observation, a decision that would flip the model of the
// previous iteration must beat the incumbent by the hysteresis band —
// correction nudges on a near-tie cannot make the choice oscillate.
func (s *Scheduler) Decide(iteration int, active *bitset.ActiveSet, degrees []uint32) Decision {
	start := time.Now()
	seqB, ranB, seeks := s.EstimateOnDemand(active, degrees)
	d := Decision{
		Iteration:    iteration,
		ActiveCount:  active.Count(),
		SeqBytes:     seqB,
		RanBytes:     ranB,
		Seeks:        seeks,
		CostFull:     s.CostFullFor(active),
		CostOnDemand: s.CostOnDemand(seqB, ranB, seeks),
		CorrFull:     s.factor[FullIO],
		CorrOnDemand: s.factor[OnDemandIO],
	}
	cf := scaleCost(d.CostFull, d.CorrFull)
	cr := scaleCost(d.CostOnDemand, d.CorrOnDemand)
	if cr <= cf {
		d.Model = OnDemandIO
	} else {
		d.Model = FullIO
	}
	if s.observed[FullIO]+s.observed[OnDemandIO] > 0 && len(s.history) > 0 {
		prev := s.history[len(s.history)-1].Model
		if d.Model != prev {
			challenger, incumbent := cr, cf
			if d.Model == FullIO {
				challenger, incumbent = cf, cr
			}
			if float64(challenger) > (1-hysteresisBand)*float64(incumbent) {
				d.Model = prev
			}
		}
	}
	if d.Model == OnDemandIO {
		d.Predicted = cr
	} else {
		d.Predicted = cf
	}
	d.Overhead = time.Since(start)
	s.history = append(s.history, d)
	return d
}

// Observe feeds the measured device charge delta of the iteration whose
// decision was recorded last back into the scheduler. executed names the
// model that actually ran (a forced run may differ from the decision). It
// annotates the decision with the corrected prediction, the actual charge
// and the relative misprediction, then folds actual/raw into the executed
// model's EWMA correction factor. Returns the prediction and misprediction
// it recorded.
func (s *Scheduler) Observe(executed Model, actual time.Duration) (predicted time.Duration, mispredict float64) {
	if len(s.history) == 0 {
		return 0, 0
	}
	d := &s.history[len(s.history)-1]
	raw, corr := d.CostFull, d.CorrFull
	if executed == OnDemandIO {
		raw, corr = d.CostOnDemand, d.CorrOnDemand
	}
	predicted = scaleCost(raw, corr)
	if actual > 0 {
		mispredict = math.Abs(float64(predicted-actual)) / float64(actual)
	}
	d.Predicted = predicted
	d.Actual = actual
	d.Mispredict = mispredict
	s.observed[executed]++
	s.mispredictSum += mispredict
	if mispredict > s.mispredictMax {
		s.mispredictMax = mispredict
	}
	s.mispredictLast = mispredict
	if raw > 0 && actual > 0 {
		ratio := float64(actual) / float64(raw)
		f := (1-calibrationAlpha)*s.factor[executed] + calibrationAlpha*ratio
		s.factor[executed] = math.Min(math.Max(f, correctionMin), correctionMax)
	}
	return predicted, mispredict
}

// Accuracy summarises the calibration loop's prediction quality.
type Accuracy struct {
	// Observed counts iterations fed back through Observe.
	Observed int
	// MeanMispredict/MaxMispredict/LastMispredict aggregate the relative
	// errors |predicted−actual|/actual of the observed iterations.
	MeanMispredict float64
	MaxMispredict  float64
	LastMispredict float64
	// CorrFull and CorrOnDemand are the current EWMA correction factors.
	CorrFull     float64
	CorrOnDemand float64
}

// Accuracy returns the current calibration summary.
func (s *Scheduler) Accuracy() Accuracy {
	a := Accuracy{
		Observed:       s.observed[FullIO] + s.observed[OnDemandIO],
		MaxMispredict:  s.mispredictMax,
		LastMispredict: s.mispredictLast,
		CorrFull:       s.factor[FullIO],
		CorrOnDemand:   s.factor[OnDemandIO],
	}
	if a.Observed > 0 {
		a.MeanMispredict = s.mispredictSum / float64(a.Observed)
	}
	return a
}

// History returns the recorded decisions in iteration order.
func (s *Scheduler) History() []Decision { return s.history }

// TotalOverhead returns the cumulative wall-clock cost of all benefit
// evaluations, the numerator of the Figure 11 comparison.
func (s *Scheduler) TotalOverhead() time.Duration {
	var t time.Duration
	for _, d := range s.history {
		t += d.Overhead
	}
	return t
}

// Reset clears the decision history and the calibration state.
func (s *Scheduler) Reset() {
	s.history = s.history[:0]
	s.factor[FullIO] = 1
	s.factor[OnDemandIO] = 1
	s.observed = [2]int{}
	s.mispredictSum, s.mispredictMax, s.mispredictLast = 0, 0, 0
}
