package iosched

import (
	"testing"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// semConfig is testConfig with SEM costing enabled: 4 rows of equal on-disk
// payload summing to the full edge set.
func semConfig(numV int, numE int64) Config {
	cfg := testConfig(numV, numE)
	cfg.SEM = true
	per := numE * int64(graph.EdgeBytes) / int64(cfg.P)
	cfg.RowDiskBytes = []int64{per, per, per, per}
	return cfg
}

func TestCostFullForSkipsDeadRows(t *testing.T) {
	cfg := semConfig(1000, 50000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// All rows active: identical to the frontier-blind constant.
	all := bitset.NewActiveSet(1000)
	all.ActivateAll()
	if got, want := s.CostFullFor(all), s.CostFull(); got != want {
		t.Fatalf("all-active SEM cost %v != CostFull %v", got, want)
	}

	// One active vertex: only its row's bytes are charged, so the cost
	// must drop strictly below the constant but stay above the pure
	// vertex-array cost.
	one := bitset.NewActiveSet(1000)
	one.Activate(0)
	sparse := s.CostFullFor(one)
	if sparse >= s.CostFull() {
		t.Fatalf("single-row SEM cost %v not below CostFull %v", sparse, s.CostFull())
	}
	p := cfg.Profile
	vBytes := int64(1000) * graph.VertexValueBytes
	want := p.SeqCost(storage.SeqRead, vBytes+cfg.RowDiskBytes[0]) + p.SeqCost(storage.SeqWrite, vBytes)
	if sparse != want {
		t.Fatalf("single-row SEM cost %v, want %v", sparse, want)
	}

	// Empty frontier: vertex arrays only.
	none := bitset.NewActiveSet(1000)
	floor := p.SeqCost(storage.SeqRead, vBytes) + p.SeqCost(storage.SeqWrite, vBytes)
	if got := s.CostFullFor(none); got != floor {
		t.Fatalf("empty-frontier SEM cost %v, want vertex-array floor %v", got, floor)
	}
}

func TestCostFullForWithoutSEMIsConstant(t *testing.T) {
	s, err := New(testConfig(1000, 50000))
	if err != nil {
		t.Fatal(err)
	}
	one := bitset.NewActiveSet(1000)
	one.Activate(7)
	if got, want := s.CostFullFor(one), s.CostFull(); got != want {
		t.Fatalf("non-SEM CostFullFor %v != CostFull %v", got, want)
	}
	if got, want := s.CostFullFor(nil), s.CostFull(); got != want {
		t.Fatalf("nil-frontier CostFullFor %v != CostFull %v", got, want)
	}
}

func TestSEMConfigValidation(t *testing.T) {
	bad := testConfig(1000, 50000)
	bad.SEM = true
	if err := bad.Validate(); err == nil {
		t.Error("SEM without RowDiskBytes accepted")
	}
	bad.RowDiskBytes = []int64{1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("short RowDiskBytes accepted")
	}
	ok := semConfig(1000, 50000)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDecideUsesFrontierFullCost pins the Decision plumbing: under SEM a
// sparse frontier must be offered the reduced full cost, which can flip the
// model choice relative to the frontier-blind constant.
func TestDecideUsesFrontierFullCost(t *testing.T) {
	cfg := semConfig(1000, 50000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := bitset.NewActiveSet(1000)
	one.Activate(0)
	d := s.Decide(0, one, uniformDegrees(1000, 50))
	if d.CostFull != s.CostFullFor(one) {
		t.Fatalf("decision CostFull %v, want frontier-aware %v", d.CostFull, s.CostFullFor(one))
	}
	if d.CostFull >= s.CostFull() {
		t.Fatalf("sparse-frontier decision cost %v not below constant %v", d.CostFull, s.CostFull())
	}
}
