package partition

import (
	"sort"

	"github.com/graphsd/graphsd/internal/graph"
)

// keyLess orders (src, dst) pairs the way grid cells are sorted on disk.
func keyLess(aSrc, aDst, bSrc, bDst graph.VertexID) bool {
	if aSrc != bSrc {
		return aSrc < bSrc
	}
	return aDst < bDst
}

// MergeOverlay merges a src-then-dst-sorted base edge slice with a resolved,
// equally sorted overlay, appending the merged sub-block content to dst and
// returning it. Overlay entries win per (src, dst) key: an upsert replaces
// every base copy of the key (duplicate base records of the same key are a
// single logical edge for mutation purposes), a tombstone removes them. The
// output preserves the on-disk sort order, so a merged block is
// byte-for-byte the cell a fresh preprocess of the merged edge set would
// build.
func MergeOverlay(dst, base []graph.Edge, delta []OverlayEdge) []graph.Edge {
	b, d := 0, 0
	for b < len(base) && d < len(delta) {
		be, de := base[b], delta[d].Edge
		switch {
		case keyLess(be.Src, be.Dst, de.Src, de.Dst):
			dst = append(dst, be)
			b++
		case keyLess(de.Src, de.Dst, be.Src, be.Dst):
			if !delta[d].Del {
				dst = append(dst, de)
			}
			d++
		default:
			// Same key: the overlay entry supersedes every base copy.
			for b < len(base) && base[b].Src == de.Src && base[b].Dst == de.Dst {
				b++
			}
			if !delta[d].Del {
				dst = append(dst, de)
			}
			d++
		}
	}
	dst = append(dst, base[b:]...)
	for ; d < len(delta); d++ {
		if !delta[d].Del {
			dst = append(dst, delta[d].Edge)
		}
	}
	return dst
}

// OverlayVertexRange returns the sub-slice of a sorted overlay whose entries
// have source vertex v — the per-vertex slice the selective read path merges
// with a vertex's base run.
func OverlayVertexRange(delta []OverlayEdge, v graph.VertexID) []OverlayEdge {
	lo := sort.Search(len(delta), func(k int) bool { return delta[k].Edge.Src >= v })
	hi := sort.Search(len(delta), func(k int) bool { return delta[k].Edge.Src > v })
	return delta[lo:hi]
}
