package partition

import (
	"testing"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.RMAT(13, 12, gen.Graph500, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBuildGraphSD(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev, err := storage.OpenDevice(b.TempDir(), storage.HDD)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Build(dev, g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildHUSGraph(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev, err := storage.OpenDevice(b.TempDir(), storage.HDD)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := BuildHUSGraph(dev, g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildLumos(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev, err := storage.OpenDevice(b.TempDir(), storage.HDD)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := BuildLumos(dev, g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadSubBlock(b *testing.B) {
	dev, err := storage.OpenDevice(b.TempDir(), storage.HDD)
	if err != nil {
		b.Fatal(err)
	}
	l, err := Build(dev, benchGraph(b), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.LoadSubBlock(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadVertexEdges(b *testing.B) {
	dev, err := storage.OpenDevice(b.TempDir(), storage.HDD)
	if err != nil {
		b.Fatal(err)
	}
	l, err := Build(dev, benchGraph(b), 4)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := l.LoadIndex(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	r, err := l.OpenSubBlock(0, 0)
	if err != nil || r == nil {
		b.Fatalf("open: %v", err)
	}
	defer r.Close()
	lo, hi := l.Meta.Interval(0)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := graph.VertexID(lo + i%(hi-lo))
		_, buf, err = l.ReadVertexEdges(r, idx, 0, v, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
