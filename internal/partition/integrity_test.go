package partition

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// flipByteOnDisk corrupts one byte of a device file behind the device's
// back, simulating silent media corruption.
func flipByteOnDisk(t *testing.T, dev *storage.Device, name string, off int) {
	t.Helper()
	p := filepath.Join(dev.Dir(), filepath.FromSlash(name))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("%s is empty, nothing to corrupt", name)
	}
	data[off%len(data)] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// firstNonEmptyBlock returns the coordinates of the first sub-block with
// edges.
func firstNonEmptyBlock(t *testing.T, m *Manifest) (int, int) {
	t.Helper()
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			if m.SubBlockEdges(i, j) > 0 {
				return i, j
			}
		}
	}
	t.Fatal("no non-empty sub-block")
	return 0, 0
}

func TestFlippedByteFailsLoadWithCoordinates(t *testing.T) {
	for _, codec := range []graph.Codec{graph.CodecRaw, graph.CodecDelta} {
		t.Run(codec.String(), func(t *testing.T) {
			dev := testDevice(t)
			g, err := gen.RMAT(8, 8, gen.Graph500, 11)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Build(dev, g, 4, WithCodec(codec)); err != nil {
				t.Fatal(err)
			}
			l, err := Load(dev)
			if err != nil {
				t.Fatal(err)
			}
			i, j := firstNonEmptyBlock(t, &l.Meta)
			flipByteOnDisk(t, dev, SubBlockName(i, j), 3)

			_, err = l.LoadSubBlock(i, j)
			if err == nil {
				t.Fatal("flipped byte loaded without error")
			}
			want := fmt.Sprintf("(%d,%d)", i, j)
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not name sub-block %s", err, want)
			}
			if !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("error %q is not a checksum error", err)
			}
			if !strings.Contains(err.Error(), codec.String()) {
				t.Fatalf("error %q does not name codec %s", err, codec)
			}

			// Intact blocks keep loading.
			for a := 0; a < l.Meta.P; a++ {
				for b := 0; b < l.Meta.P; b++ {
					if a == i && b == j {
						continue
					}
					if _, err := l.LoadSubBlock(a, b); err != nil {
						t.Fatalf("intact block (%d,%d): %v", a, b, err)
					}
				}
			}
		})
	}
}

func TestFlippedByteFailsHUSGraphRowAndCol(t *testing.T) {
	dev := testDevice(t)
	g, err := gen.RMAT(8, 8, gen.Graph500, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildHUSGraph(dev, g, 3); err != nil {
		t.Fatal(err)
	}
	l, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	flipByteOnDisk(t, dev, RowName(0), 5)
	if _, _, err := l.LoadRowInto(0, nil, nil); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted row load: %v", err)
	}
	flipByteOnDisk(t, dev, ColName(1), 5)
	if _, _, err := l.LoadColInto(1, nil, nil); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted column load: %v", err)
	}
	// Untouched blocks still verify.
	if _, _, err := l.LoadRowInto(1, nil, nil); err != nil {
		t.Fatalf("intact row: %v", err)
	}
	if _, _, err := l.LoadColInto(0, nil, nil); err != nil {
		t.Fatalf("intact column: %v", err)
	}
}

func TestExternalBuildRecordsChecksums(t *testing.T) {
	dev := testDevice(t)
	g, err := gen.RMAT(8, 8, gen.Graph500, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildExternal(dev, graph.NewSliceStream(g.Edges), g.NumVertices, g.Weighted, 3); err != nil {
		t.Fatal(err)
	}
	l, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.BlockSums == nil {
		t.Fatal("external build recorded no checksums")
	}
	i, j := firstNonEmptyBlock(t, &l.Meta)
	flipByteOnDisk(t, dev, SubBlockName(i, j), 0)
	if _, err := l.LoadSubBlock(i, j); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted external-built block load: %v", err)
	}
}

// TestTornManifestWriteLeavesNoLayout is the crash-safety contract of
// preprocessing: a build whose manifest write tears must not leave a
// loadable layout behind — the manifest is the commit point.
func TestTornManifestWriteLeavesNoLayout(t *testing.T) {
	dev := testDevice(t)
	dev.SetFaultInjector(func(op, name string) error {
		if op == "write" && name == ManifestName {
			return fmt.Errorf("chaos: %w", storage.ErrTornWrite)
		}
		return nil
	})
	_, err := Build(dev, paperGraph(), 2)
	if !errors.Is(err, storage.ErrTornWrite) {
		t.Fatalf("want torn-write failure, got %v", err)
	}
	dev.SetFaultInjector(nil)
	if dev.Exists(ManifestName) {
		t.Fatal("torn manifest write published the manifest")
	}
	if _, err := Load(dev); err == nil {
		t.Fatal("layout loadable after torn manifest write")
	}
}

// TestTornIndexWriteNeverPublishes: same contract for .idx files — an
// injected torn write must leave either nothing or the previous intact
// file under the final name.
func TestTornIndexWriteNeverPublishes(t *testing.T) {
	dev := testDevice(t)
	target := IndexName(0, 0)
	dev.SetFaultInjector(func(op, name string) error {
		if op == "write" && name == target {
			return fmt.Errorf("chaos: %w", storage.ErrTornWrite)
		}
		return nil
	})
	if _, err := Build(dev, paperGraph(), 2); !errors.Is(err, storage.ErrTornWrite) {
		t.Fatalf("want torn-write failure, got %v", err)
	}
	if dev.Exists(target) {
		t.Fatal("torn index write published the index")
	}
}
