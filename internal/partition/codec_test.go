package partition

import (
	"encoding/binary"
	"encoding/json"
	"testing"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
)

// buildPair builds the same graph under both codecs and returns the layouts
// reloaded from disk (exercising the manifest round trip).
func buildPair(t *testing.T, g *graph.Graph, p int) (raw, delta *Layout) {
	t.Helper()
	rawDev, deltaDev := testDevice(t), testDevice(t)
	if _, err := Build(rawDev, g, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(deltaDev, g, p, WithCodec(graph.CodecDelta)); err != nil {
		t.Fatal(err)
	}
	var err error
	if raw, err = Load(rawDev); err != nil {
		t.Fatal(err)
	}
	if delta, err = Load(deltaDev); err != nil {
		t.Fatal(err)
	}
	return raw, delta
}

func codecTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rmat, err := gen.RMAT(9, 8, gen.Graph500, 7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"rmat":     rmat,
		"chain":    gen.Chain(64),
		"weighted": gen.Weighted(rmat, 16, 3),
	}
}

func TestDeltaLayoutMatchesRaw(t *testing.T) {
	for name, g := range codecTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			const p = 4
			raw, delta := buildPair(t, g, p)
			if got := delta.Meta.BlockCodec(); got != graph.CodecDelta {
				t.Fatalf("delta layout codec = %v", got)
			}
			if delta.Meta.EdgeBytesTotal() != raw.Meta.EdgeBytesTotal() {
				t.Fatalf("decoded byte totals differ: %d vs %d",
					delta.Meta.EdgeBytesTotal(), raw.Meta.EdgeBytesTotal())
			}
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					a, err := raw.LoadSubBlock(i, j)
					if err != nil {
						t.Fatal(err)
					}
					b, err := delta.LoadSubBlock(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if len(a) != len(b) {
						t.Fatalf("cell (%d,%d): %d vs %d edges", i, j, len(a), len(b))
					}
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("cell (%d,%d) edge %d: %v vs %v", i, j, k, a[k], b[k])
						}
					}
				}
			}
		})
	}
}

func TestDeltaShrinksDiskBytes(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.Graph500, 11)
	if err != nil {
		t.Fatal(err)
	}
	raw, delta := buildPair(t, g, 4)
	rawDisk, deltaDisk := raw.Meta.EdgeDiskBytesTotal(), delta.Meta.EdgeDiskBytesTotal()
	if rawDisk != raw.Meta.EdgeBytesTotal() {
		t.Fatalf("raw on-disk %d != decoded %d", rawDisk, raw.Meta.EdgeBytesTotal())
	}
	if deltaDisk*2 > rawDisk {
		t.Fatalf("delta on-disk %d not at least 2x below raw %d", deltaDisk, rawDisk)
	}
	// The manifest's per-block sizes must agree with the files on disk.
	for i := 0; i < delta.Meta.P; i++ {
		for j := 0; j < delta.Meta.P; j++ {
			want, _ := delta.Dev.Size(SubBlockName(i, j))
			if got := delta.Meta.SubBlockDiskBytes(i, j); got != want {
				t.Fatalf("cell (%d,%d): manifest says %d bytes, file is %d", i, j, got, want)
			}
		}
	}
}

func TestDeltaReadVertexEdges(t *testing.T) {
	for name, g := range codecTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			const p = 4
			raw, delta := buildPair(t, g, p)
			for i := 0; i < p; i++ {
				lo, hi := raw.Meta.Interval(i)
				for j := 0; j < p; j++ {
					ra, err := raw.OpenSubBlock(i, j)
					if err != nil {
						t.Fatal(err)
					}
					rb, err := delta.OpenSubBlock(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if (ra == nil) != (rb == nil) {
						t.Fatalf("cell (%d,%d): reader presence differs", i, j)
					}
					if ra == nil {
						continue
					}
					ia, err := raw.LoadIndex(i, j)
					if err != nil {
						t.Fatal(err)
					}
					ib, err := delta.LoadIndex(i, j)
					if err != nil {
						t.Fatal(err)
					}
					var bufA, bufB []byte
					for v := lo; v < hi; v++ {
						var a, b []graph.Edge
						a, bufA, err = raw.ReadVertexEdges(ra, ia, i, graph.VertexID(v), bufA)
						if err != nil {
							t.Fatal(err)
						}
						b, bufB, err = delta.ReadVertexEdges(rb, ib, i, graph.VertexID(v), bufB)
						if err != nil {
							t.Fatal(err)
						}
						if len(a) != len(b) {
							t.Fatalf("vertex %d cell (%d,%d): %d vs %d edges", v, i, j, len(a), len(b))
						}
						for k := range a {
							if a[k] != b[k] {
								t.Fatalf("vertex %d edge %d: %v vs %v", v, k, a[k], b[k])
							}
						}
					}
					ra.Close()
					rb.Close()
				}
			}
		})
	}
}

func TestDeltaStreamSubBlock(t *testing.T) {
	for name, g := range codecTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			const p = 3
			_, delta := buildPair(t, g, p)
			for _, chunk := range []int64{1, 64, 1 << 20} {
				for i := 0; i < p; i++ {
					for j := 0; j < p; j++ {
						want, err := delta.LoadSubBlock(i, j)
						if err != nil {
							t.Fatal(err)
						}
						var got []graph.Edge
						err = delta.StreamSubBlock(i, j, chunk, func(edges []graph.Edge) error {
							got = append(got, edges...)
							return nil
						})
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("cell (%d,%d) chunk %d: streamed %d edges, want %d",
								i, j, chunk, len(got), len(want))
						}
						for k := range want {
							if got[k] != want[k] {
								t.Fatalf("cell (%d,%d) chunk %d edge %d: %v vs %v",
									i, j, chunk, k, got[k], want[k])
							}
						}
					}
				}
			}
		})
	}
}

func TestBuildExternalDeltaMatchesInMemory(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.Graph500, 23)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	memDev, extDev := testDevice(t), testDevice(t)
	if _, err := Build(memDev, g, p, WithCodec(graph.CodecDelta)); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildExternal(extDev, graph.NewSliceStream(g.Edges), g.NumVertices, false, p,
		WithCodec(graph.CodecDelta)); err != nil {
		t.Fatal(err)
	}
	// Byte-identical payloads and indexes: the external preprocessor is a
	// drop-in replacement under the delta codec too.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			for _, name := range []string{SubBlockName(i, j), IndexName(i, j)} {
				a, errA := memDev.ReadFile(name)
				b, errB := extDev.ReadFile(name)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s: presence differs (%v vs %v)", name, errA, errB)
				}
				if string(a) != string(b) {
					t.Fatalf("%s: external bytes differ from in-memory build", name)
				}
			}
		}
	}
}

func TestDeltaRejectedOutsideGraphSDGrid(t *testing.T) {
	g := gen.Chain(20)
	if _, err := BuildHUSGraph(testDevice(t), g, 2, WithCodec(graph.CodecDelta)); err == nil {
		t.Error("husgraph build accepted delta codec")
	}
	if _, err := BuildLumos(testDevice(t), g, 2, WithCodec(graph.CodecDelta)); err == nil {
		t.Error("lumos build accepted delta codec")
	}
}

// TestLegacyV1LayoutStillLoads rewrites a freshly built raw layout into the
// pre-v2 on-disk shape — format_version 1 manifest without codec/block_bytes,
// fixed 8-byte little-endian index entries — and verifies the current reader
// still serves it.
func TestLegacyV1LayoutStillLoads(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.Graph500, 3)
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	dev := testDevice(t)
	l, err := Build(dev, g, p)
	if err != nil {
		t.Fatal(err)
	}

	// Downgrade the index files to the v1 fixed-width encoding.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			idx, err := l.LoadIndex(i, j)
			if err != nil {
				t.Fatal(err)
			}
			old := make([]byte, 0, 8*len(idx.Rec))
			for _, o := range idx.Rec {
				old = binary.LittleEndian.AppendUint64(old, uint64(o))
			}
			if err := dev.WriteFile(IndexName(i, j), old); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Downgrade the manifest.
	m := l.Meta
	m.FormatVersion = 1
	m.Codec = ""
	m.BlockBytes = nil
	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFile(ManifestName, data); err != nil {
		t.Fatal(err)
	}

	v1, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Meta.FormatVersion != 1 || v1.Meta.BlockCodec() != graph.CodecRaw {
		t.Fatalf("reloaded v1 manifest: %+v", v1.Meta)
	}
	for i := 0; i < p; i++ {
		lo, hi := v1.Meta.Interval(i)
		for j := 0; j < p; j++ {
			edges, err := v1.LoadSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(edges)) != v1.Meta.SubBlockEdges(i, j) {
				t.Fatalf("cell (%d,%d): %d edges, manifest says %d",
					i, j, len(edges), v1.Meta.SubBlockEdges(i, j))
			}
			idx, err := v1.LoadIndex(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if len(idx.Rec) != hi-lo+1 {
				t.Fatalf("cell (%d,%d) v1 index has %d entries, want %d", i, j, len(idx.Rec), hi-lo+1)
			}
			r, err := v1.OpenSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if r == nil {
				continue
			}
			var buf []byte
			var n int
			for v := lo; v < hi; v++ {
				var es []graph.Edge
				es, buf, err = v1.ReadVertexEdges(r, idx, i, graph.VertexID(v), buf)
				if err != nil {
					t.Fatal(err)
				}
				n += len(es)
			}
			r.Close()
			if int64(n) != v1.Meta.SubBlockEdges(i, j) {
				t.Fatalf("cell (%d,%d): per-vertex reads found %d edges, want %d",
					i, j, n, v1.Meta.SubBlockEdges(i, j))
			}
		}
	}
}

func TestLoadRowColInto(t *testing.T) {
	g := gen.Weighted(gen.Chain(40), 8, 9)
	dev := testDevice(t)
	l, err := BuildHUSGraph(dev, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	var buf []byte
	for i := 0; i < 3; i++ {
		want, err := l.LoadRow(i)
		if err != nil {
			t.Fatal(err)
		}
		edges, buf, err = l.LoadRowInto(i, edges, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != len(want) {
			t.Fatalf("row %d: %d vs %d edges", i, len(edges), len(want))
		}
		for k := range want {
			if edges[k] != want[k] {
				t.Fatalf("row %d edge %d: %v vs %v", i, k, edges[k], want[k])
			}
		}
		want, err = l.LoadCol(i)
		if err != nil {
			t.Fatal(err)
		}
		edges, buf, err = l.LoadColInto(i, edges, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != len(want) {
			t.Fatalf("col %d: %d vs %d edges", i, len(edges), len(want))
		}
		for k := range want {
			if edges[k] != want[k] {
				t.Fatalf("col %d edge %d: %v vs %v", i, k, edges[k], want[k])
			}
		}
	}
}

func TestManifestValidateDeltaRequiresV2(t *testing.T) {
	m := Manifest{
		FormatVersion: 1, System: "graphsd", NumVertices: 4, NumEdges: 1, P: 1,
		Codec:      "delta",
		EdgeCounts: [][]int64{{1}},
	}
	if err := m.Validate(); err == nil {
		t.Error("v1 manifest with delta codec accepted")
	}
	m.FormatVersion = 2
	if err := m.Validate(); err == nil {
		t.Error("delta manifest without block_bytes accepted")
	}
	m.BlockBytes = [][]int64{{3}}
	if err := m.Validate(); err != nil {
		t.Errorf("valid delta manifest rejected: %v", err)
	}
}
