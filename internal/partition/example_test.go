package partition_test

import (
	"fmt"
	"log"
	"os"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Example shows the preprocessing phase: a graph becomes a P×P grid of
// sorted, indexed sub-blocks whose cell populations the manifest records.
func Example() {
	dir, err := os.MkdirTemp("", "partition-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dev, err := storage.OpenDevice(dir, storage.HDD)
	if err != nil {
		log.Fatal(err)
	}

	g := gen.Chain(8) // 0→1→…→7
	layout, err := partition.Build(dev, g, 2)
	if err != nil {
		log.Fatal(err)
	}
	m := layout.Meta
	fmt.Printf("P=%d edges=%d\n", m.P, m.NumEdges)
	// The chain crosses the interval boundary exactly once: cell (0,1)
	// holds the edge 3→4.
	fmt.Printf("cells: (0,0)=%d (0,1)=%d (1,0)=%d (1,1)=%d\n",
		m.SubBlockEdges(0, 0), m.SubBlockEdges(0, 1),
		m.SubBlockEdges(1, 0), m.SubBlockEdges(1, 1))
	// Output:
	// P=2 edges=7
	// cells: (0,0)=3 (0,1)=1 (1,0)=0 (1,1)=3
}
