package partition

import (
	"bytes"
	"testing"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

func TestBuildExternalMatchesInMemoryBuild(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.Graph500, 21)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4

	memDev := testDevice(t)
	memL, err := Build(memDev, g, p)
	if err != nil {
		t.Fatal(err)
	}
	extDev := testDevice(t)
	extL, err := BuildExternal(extDev, graph.NewSliceStream(g.Edges), g.NumVertices, false, p)
	if err != nil {
		t.Fatal(err)
	}

	if extL.Meta.NumEdges != memL.Meta.NumEdges || extL.Meta.NumVertices != memL.Meta.NumVertices {
		t.Fatalf("manifest mismatch: %+v vs %+v", extL.Meta, memL.Meta)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if extL.Meta.SubBlockEdges(i, j) != memL.Meta.SubBlockEdges(i, j) {
				t.Fatalf("cell (%d,%d): %d edges vs %d", i, j,
					extL.Meta.SubBlockEdges(i, j), memL.Meta.SubBlockEdges(i, j))
			}
			a, err := extL.LoadSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			b, err := memL.LoadSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			for k := range b {
				if a[k] != b[k] {
					t.Fatalf("cell (%d,%d) edge %d: %v vs %v", i, j, k, a[k], b[k])
				}
			}
			ia, err := extL.LoadIndex(i, j)
			if err != nil {
				t.Fatal(err)
			}
			ib, err := memL.LoadIndex(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if len(ia.Rec) != len(ib.Rec) {
				t.Fatalf("cell (%d,%d) index lengths differ: %d vs %d", i, j, len(ia.Rec), len(ib.Rec))
			}
			for k := range ib.Rec {
				if ia.Rec[k] != ib.Rec[k] {
					t.Fatalf("cell (%d,%d) index entry %d differs", i, j, k)
				}
			}
		}
	}
	// Degree tables identical.
	da, err := extL.LoadDegrees()
	if err != nil {
		t.Fatal(err)
	}
	db, err := memL.LoadDegrees()
	if err != nil {
		t.Fatal(err)
	}
	for v := range db {
		if da[v] != db[v] {
			t.Fatalf("degree(%d): %d vs %d", v, da[v], db[v])
		}
	}
}

func TestBuildExternalCleansSpills(t *testing.T) {
	dev := testDevice(t)
	g := gen.Chain(50)
	if _, err := BuildExternal(dev, graph.NewSliceStream(g.Edges), g.NumVertices, false, 3); err != nil {
		t.Fatal(err)
	}
	names, err := dev.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if len(n) >= 5 && n[:5] == "spill" {
			t.Fatalf("spill file %s left behind", n)
		}
	}
}

func TestBuildExternalFromBinaryStream(t *testing.T) {
	g := gen.Weighted(gen.Chain(40), 8, 3)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	st, err := graph.NewBinaryStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 40 || !st.Weighted {
		t.Fatalf("stream header: %d vertices weighted=%t", st.NumVertices, st.Weighted)
	}
	dev := testDevice(t)
	l, err := BuildExternal(dev, st, st.NumVertices, st.Weighted, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.NumEdges != 39 || !l.Meta.Weighted {
		t.Fatalf("manifest: %+v", l.Meta)
	}
	// Weighted edges survive the round trip.
	edges, err := l.LoadSubBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.Weight < 1 || e.Weight > 8 {
			t.Fatalf("weight %v out of range", e.Weight)
		}
	}
}

func TestBuildExternalValidation(t *testing.T) {
	dev := testDevice(t)
	if _, err := BuildExternal(dev, graph.NewSliceStream(nil), 10, false, 0); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := BuildExternal(dev, graph.NewSliceStream(nil), -1, false, 2); err == nil {
		t.Error("negative vertices accepted")
	}
	bad := []graph.Edge{{Src: 0, Dst: 99}}
	if _, err := BuildExternal(dev, graph.NewSliceStream(bad), 10, false, 2); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestSliceStream(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	s := graph.NewSliceStream(edges)
	var got []graph.Edge
	for {
		e, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, e)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Fatalf("stream yielded %v", got)
	}
	s.Reset()
	if _, ok, _ := s.Next(); !ok {
		t.Fatal("Reset did not rewind")
	}
}

func TestBinaryStreamTruncated(t *testing.T) {
	g := gen.Chain(10)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	st, err := graph.NewBinaryStream(bytes.NewReader(data[:len(data)-4]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := st.Next()
		if err != nil {
			return // expected: truncation surfaces as a read error
		}
		if !ok {
			t.Fatal("truncated stream ended cleanly")
		}
	}
}

func TestBinaryStreamBadMagic(t *testing.T) {
	if _, err := graph.NewBinaryStream(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestExternalLayoutRunsIdentically: a layout produced by the external
// preprocessor is a drop-in replacement for the in-memory one.
func TestExternalLayoutRunsIdentically(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.Graph500, 5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	l, err := BuildExternal(dev, graph.NewSliceStream(g.Edges), g.NumVertices, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Meta.System != "graphsd" || reloaded.Meta.NumEdges != l.Meta.NumEdges {
		t.Fatalf("reloaded manifest: %+v", reloaded.Meta)
	}
}
