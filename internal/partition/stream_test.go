package partition

import (
	"errors"
	"testing"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

func TestStreamSubBlockYieldsAllEdgesInOrder(t *testing.T) {
	dev := testDevice(t)
	g, err := gen.RMAT(8, 8, gen.Graph500, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := l.LoadSubBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkBytes := range []int64{1, 8, 100, 1 << 20} {
		var streamed []graph.Edge
		err := l.StreamSubBlock(0, 0, chunkBytes, func(edges []graph.Edge) error {
			streamed = append(streamed, edges...)
			return nil
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunkBytes, err)
		}
		if len(streamed) != len(whole) {
			t.Fatalf("chunk %d: %d edges, want %d", chunkBytes, len(streamed), len(whole))
		}
		for k := range whole {
			if streamed[k] != whole[k] {
				t.Fatalf("chunk %d: edge %d = %v, want %v", chunkBytes, k, streamed[k], whole[k])
			}
		}
	}
}

func TestStreamSubBlockEmptyCell(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, gen.Chain(16), 4)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := l.StreamSubBlock(0, 3, 64, func([]graph.Edge) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("empty cell produced chunks")
	}
}

func TestStreamSubBlockCallbackErrorAborts(t *testing.T) {
	dev := testDevice(t)
	g, err := gen.RMAT(8, 8, gen.Graph500, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stop")
	calls := 0
	err = l.StreamSubBlock(0, 0, 16, func([]graph.Edge) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("continued after error: %d calls", calls)
	}
}

func TestStreamSubBlockChunkAccounting(t *testing.T) {
	dev := testDevice(t)
	g, err := gen.RMAT(8, 8, gen.Graph500, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(dev, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	if err := l.StreamSubBlock(0, 0, 1024, func([]graph.Edge) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	want := l.Meta.SubBlockBytes(0, 0)
	if s.ReadBytes() != want {
		t.Fatalf("streamed %d bytes, cell is %d", s.ReadBytes(), want)
	}
	// One positioning access, the rest sequential.
	if s.Ops[storage.RandRead] != 1 {
		t.Fatalf("rand ops = %d, want 1", s.Ops[storage.RandRead])
	}
	if s.Ops[storage.SeqRead] < 1 {
		t.Fatal("no sequential chunks")
	}
}

func TestLoadRowColMissing(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, gen.Chain(8), 2) // graphsd layout: no rows/cols
	if err != nil {
		t.Fatal(err)
	}
	row, err := l.LoadRow(0)
	if err != nil || row != nil {
		t.Fatalf("LoadRow on grid layout = %v, %v", row, err)
	}
	col, err := l.LoadCol(0)
	if err != nil || col != nil {
		t.Fatalf("LoadCol on grid layout = %v, %v", col, err)
	}
	r, err := l.OpenRow(0)
	if err != nil || r != nil {
		t.Fatalf("OpenRow on grid layout = %v, %v", r, err)
	}
}

func TestLoadMissingManifest(t *testing.T) {
	dev := testDevice(t)
	if _, err := Load(dev); err == nil {
		t.Fatal("Load on empty device succeeded")
	}
}

func TestCorruptIndexRejected(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, gen.Chain(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFile(IndexName(0, 0), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadIndex(0, 0); err == nil {
		t.Fatal("corrupt index accepted")
	}
}

func TestCorruptDegreesRejected(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, gen.Chain(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFile(DegreesName, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDegrees(); err == nil {
		t.Fatal("corrupt degree table accepted")
	}
}

func TestCorruptSubBlockRejected(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, gen.Chain(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFile(SubBlockName(0, 0), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadSubBlock(0, 0); err == nil {
		t.Fatal("corrupt sub-block accepted")
	}
}
