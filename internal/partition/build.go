package partition

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// buildTimer separates a preprocessor's in-memory CPU time (bucketing,
// sorting, encoding) from the time spent in device writes, so experiment
// reports can combine the CPU share with *simulated* write time instead of
// host filesystem wall time (which is dominated by per-file syscall
// overhead at laptop scale and by bandwidth at the paper's scale).
type buildTimer struct {
	start    time.Time
	devWalls time.Duration
}

func newBuildTimer() *buildTimer { return &buildTimer{start: time.Now()} }

// write performs dev.WriteFile while excluding its wall time from the CPU
// measurement.
func (t *buildTimer) write(dev *storage.Device, name string, data []byte) error {
	w0 := time.Now()
	err := dev.WriteFile(name, data)
	t.devWalls += time.Since(w0)
	return err
}

// cpu returns the wall time elapsed outside device writes.
func (t *buildTimer) cpu() time.Duration { return time.Since(t.start) - t.devWalls }

// Build runs GraphSD's preprocessing (paper §3.2): bucket the edges into a
// P×P grid by (source interval, destination interval), sort each sub-block
// by source vertex, write the sub-block payloads plus a per-vertex offset
// index for each, and persist per-vertex out-degrees for the I/O cost
// model. The raw-graph read and all writes are charged to the device, so
// the Figure 8 preprocessing comparison can be reproduced from device
// stats.
func Build(dev *storage.Device, g *graph.Graph, p int) (*Layout, error) {
	return buildGrid(dev, g, p, gridOptions{system: "graphsd", sort: true, index: true})
}

// BuildLumos writes the Lumos-style layout: the same grid bucketing but
// with edges left in input order and no per-vertex indexes. Lumos streams
// whole blocks and never queries individual vertices, so it skips the sort
// — which is why it has the shortest preprocessing time in Figure 8.
func BuildLumos(dev *storage.Device, g *graph.Graph, p int) (*Layout, error) {
	return buildGrid(dev, g, p, gridOptions{system: "lumos", sort: false, index: false})
}

// BuildHUSGraph writes the HUS-Graph-style layout: two complete copies of
// the edge set — row blocks grouped by source interval and sorted by source
// (with per-vertex indexes, for the on-demand path), and column blocks
// grouped by destination interval and sorted by destination (for the
// streaming path). Double copy + double sort is why HUS-Graph preprocessing
// is the slowest in Figure 8.
func BuildHUSGraph(dev *storage.Device, g *graph.Graph, p int) (*Layout, error) {
	if err := validateBuild(g, p); err != nil {
		return nil, err
	}
	chargeRawRead(dev, g)
	bt := newBuildTimer()

	m := newManifest("husgraph", g, p)

	// Copy 1: row blocks by source interval, sorted by source vertex.
	rows := bucketEdges(g, p, func(e graph.Edge) int { return m.IntervalOf(e.Src) })
	for i := 0; i < p; i++ {
		sortEdgesBySrc(rows[i])
		m.EdgeCounts[i][0] = int64(len(rows[i]))
		if err := writeEdges(dev, bt, RowName(i), rows[i], g.Weighted); err != nil {
			return nil, err
		}
		lo, hi := m.Interval(i)
		idx := buildVertexIndex(rows[i], lo, hi, func(e graph.Edge) graph.VertexID { return e.Src })
		if err := writeIndex(dev, bt, rowIndexName(i), idx); err != nil {
			return nil, err
		}
	}

	// Copy 2: column blocks by destination interval, sorted by destination.
	cols := bucketEdges(g, p, func(e graph.Edge) int { return m.IntervalOf(e.Dst) })
	for j := 0; j < p; j++ {
		sort.Slice(cols[j], func(a, b int) bool {
			x, y := cols[j][a], cols[j][b]
			if x.Dst != y.Dst {
				return x.Dst < y.Dst
			}
			return x.Src < y.Src
		})
		if err := writeEdges(dev, bt, ColName(j), cols[j], g.Weighted); err != nil {
			return nil, err
		}
	}

	if err := writeDegrees(dev, bt, g); err != nil {
		return nil, err
	}
	if err := saveManifest(dev, m); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: *m, PrepCPU: bt.cpu()}, nil
}

// rowIndexName returns the index file for HUS-Graph row block i.
func rowIndexName(i int) string { return fmt.Sprintf("rows/r_%04d.idx", i) }

// RowIndexName exposes rowIndexName for the baseline engines.
func RowIndexName(i int) string { return rowIndexName(i) }

type gridOptions struct {
	system string
	sort   bool
	index  bool
}

func validateBuild(g *graph.Graph, p int) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if p <= 0 {
		return fmt.Errorf("partition: interval count must be positive, got %d", p)
	}
	if g.NumVertices == 0 && len(g.Edges) > 0 {
		return fmt.Errorf("partition: edges without vertices")
	}
	return nil
}

// chargeRawRead charges the sequential read of the raw input graph, the
// first step of the paper's preprocessing accounting.
func chargeRawRead(dev *storage.Device, g *graph.Graph) {
	dev.Charge(storage.SeqRead, g.Bytes())
}

func newManifest(system string, g *graph.Graph, p int) *Manifest {
	m := &Manifest{
		FormatVersion: FormatVersion,
		System:        system,
		NumVertices:   g.NumVertices,
		NumEdges:      int64(len(g.Edges)),
		P:             p,
		Weighted:      g.Weighted,
		EdgeCounts:    make([][]int64, p),
	}
	for i := range m.EdgeCounts {
		m.EdgeCounts[i] = make([]int64, p)
	}
	return m
}

func buildGrid(dev *storage.Device, g *graph.Graph, p int, opt gridOptions) (*Layout, error) {
	if err := validateBuild(g, p); err != nil {
		return nil, err
	}
	chargeRawRead(dev, g)
	bt := newBuildTimer()

	m := newManifest(opt.system, g, p)

	// Bucket edges into the P×P grid.
	grid := make([][]graph.Edge, p*p)
	for _, e := range g.Edges {
		i, j := m.IntervalOf(e.Src), m.IntervalOf(e.Dst)
		grid[i*p+j] = append(grid[i*p+j], e)
	}

	for i := 0; i < p; i++ {
		lo, hi := m.Interval(i)
		for j := 0; j < p; j++ {
			cell := grid[i*p+j]
			m.EdgeCounts[i][j] = int64(len(cell))
			if opt.sort {
				sortEdgesBySrc(cell)
			}
			if len(cell) > 0 {
				if err := writeEdges(dev, bt, SubBlockName(i, j), cell, g.Weighted); err != nil {
					return nil, err
				}
			}
			if opt.index {
				idx := buildVertexIndex(cell, lo, hi, func(e graph.Edge) graph.VertexID { return e.Src })
				if err := writeIndex(dev, bt, IndexName(i, j), idx); err != nil {
					return nil, err
				}
			}
		}
	}

	if err := writeDegrees(dev, bt, g); err != nil {
		return nil, err
	}
	if err := saveManifest(dev, m); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: *m, PrepCPU: bt.cpu()}, nil
}

func bucketEdges(g *graph.Graph, p int, key func(graph.Edge) int) [][]graph.Edge {
	buckets := make([][]graph.Edge, p)
	for _, e := range g.Edges {
		k := key(e)
		buckets[k] = append(buckets[k], e)
	}
	return buckets
}

func sortEdgesBySrc(edges []graph.Edge) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Src != edges[b].Src {
			return edges[a].Src < edges[b].Src
		}
		return edges[a].Dst < edges[b].Dst
	})
}

// buildVertexIndex returns CSR-style offsets over a sorted edge slice: for
// each vertex v in [lo, hi), edges[idx[v-lo]:idx[v-lo+1]] are v's edges (as
// selected by key). len(idx) == hi-lo+1.
func buildVertexIndex(edges []graph.Edge, lo, hi int, key func(graph.Edge) graph.VertexID) []int64 {
	idx := make([]int64, hi-lo+1)
	for _, e := range edges {
		idx[int(key(e))-lo+1]++
	}
	for v := 0; v < hi-lo; v++ {
		idx[v+1] += idx[v]
	}
	return idx
}

func writeEdges(dev *storage.Device, bt *buildTimer, name string, edges []graph.Edge, weighted bool) error {
	rec := graph.EdgeBytes
	if weighted {
		rec += graph.WeightBytes
	}
	buf := make([]byte, 0, len(edges)*rec)
	for _, e := range edges {
		buf = graph.EncodeEdge(buf, e, weighted)
	}
	return bt.write(dev, name, buf)
}

func writeIndex(dev *storage.Device, bt *buildTimer, name string, idx []int64) error {
	buf := make([]byte, 0, len(idx)*graph.IndexEntryBytes)
	for _, off := range idx {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(off))
	}
	return bt.write(dev, name, buf)
}

func writeDegrees(dev *storage.Device, bt *buildTimer, g *graph.Graph) error {
	deg := g.OutDegrees()
	buf := make([]byte, 0, len(deg)*4)
	for _, d := range deg {
		buf = binary.LittleEndian.AppendUint32(buf, d)
	}
	return bt.write(dev, DegreesName, buf)
}
