package partition

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// buildTimer separates a preprocessor's in-memory CPU time (bucketing,
// sorting, encoding) from the time spent in device writes, so experiment
// reports can combine the CPU share with *simulated* write time instead of
// host filesystem wall time (which is dominated by per-file syscall
// overhead at laptop scale and by bandwidth at the paper's scale).
type buildTimer struct {
	start    time.Time
	devWalls time.Duration
}

func newBuildTimer() *buildTimer { return &buildTimer{start: time.Now()} }

// write performs dev.WriteFile while excluding its wall time from the CPU
// measurement.
func (t *buildTimer) write(dev *storage.Device, name string, data []byte) error {
	w0 := time.Now()
	err := dev.WriteFile(name, data)
	t.devWalls += time.Since(w0)
	return err
}

// cpu returns the wall time elapsed outside device writes.
func (t *buildTimer) cpu() time.Duration { return time.Since(t.start) - t.devWalls }

// BuildOption configures a preprocessor run.
type BuildOption func(*gridOptions)

// WithCodec selects the sub-block payload encoding: graph.CodecRaw
// (fixed-width records, the default) or graph.CodecDelta (per-source runs
// of zigzag-delta varint dst gaps with a separate weight column). Delta
// requires the src-sorted graphsd grid — the row-major preprocessors
// reject it.
func WithCodec(c graph.Codec) BuildOption {
	return func(o *gridOptions) { o.codec = c }
}

// Build runs GraphSD's preprocessing (paper §3.2): bucket the edges into a
// P×P grid by (source interval, destination interval), sort each sub-block
// by source vertex, write the sub-block payloads plus a per-vertex offset
// index for each, and persist per-vertex out-degrees for the I/O cost
// model. The raw-graph read and all writes are charged to the device, so
// the Figure 8 preprocessing comparison can be reproduced from device
// stats.
func Build(dev *storage.Device, g *graph.Graph, p int, opts ...BuildOption) (*Layout, error) {
	return buildGrid(dev, g, p, applyBuildOptions(gridOptions{system: "graphsd", sort: true, index: true}, opts))
}

// BuildLumos writes the Lumos-style layout: the same grid bucketing but
// with edges left in input order and no per-vertex indexes. Lumos streams
// whole blocks and never queries individual vertices, so it skips the sort
// — which is why it has the shortest preprocessing time in Figure 8.
func BuildLumos(dev *storage.Device, g *graph.Graph, p int, opts ...BuildOption) (*Layout, error) {
	return buildGrid(dev, g, p, applyBuildOptions(gridOptions{system: "lumos", sort: false, index: false}, opts))
}

func applyBuildOptions(o gridOptions, opts []BuildOption) gridOptions {
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// BuildHUSGraph writes the HUS-Graph-style layout: two complete copies of
// the edge set — row blocks grouped by source interval and sorted by source
// (with per-vertex indexes, for the on-demand path), and column blocks
// grouped by destination interval and sorted by destination (for the
// streaming path). Double copy + double sort is why HUS-Graph preprocessing
// is the slowest in Figure 8.
func BuildHUSGraph(dev *storage.Device, g *graph.Graph, p int, opts ...BuildOption) (*Layout, error) {
	if o := applyBuildOptions(gridOptions{}, opts); o.codec != graph.CodecRaw {
		return nil, fmt.Errorf("partition: codec %q requires the graphsd grid layout", o.codec)
	}
	if err := validateBuild(g, p); err != nil {
		return nil, err
	}
	chargeRawRead(dev, g)
	bt := newBuildTimer()

	m := newManifest("husgraph", g, p)
	m.RowSums = make([]uint32, p)
	m.ColSums = make([]uint32, p)

	// Copy 1: row blocks by source interval, sorted by source vertex.
	rows := bucketEdges(g, p, func(e graph.Edge) int { return m.IntervalOf(e.Src) })
	for i := 0; i < p; i++ {
		sortEdgesBySrc(rows[i])
		m.EdgeCounts[i][0] = int64(len(rows[i]))
		sum, err := writeEdges(dev, bt, RowName(i), rows[i], g.Weighted)
		if err != nil {
			return nil, err
		}
		m.RowSums[i] = sum
		lo, hi := m.Interval(i)
		idx := buildVertexIndex(rows[i], lo, hi, func(e graph.Edge) graph.VertexID { return e.Src })
		if err := writeIndex(dev, bt, rowIndexName(i), idx, nil); err != nil {
			return nil, err
		}
	}

	// Copy 2: column blocks by destination interval, sorted by destination.
	cols := bucketEdges(g, p, func(e graph.Edge) int { return m.IntervalOf(e.Dst) })
	for j := 0; j < p; j++ {
		sort.Slice(cols[j], func(a, b int) bool {
			x, y := cols[j][a], cols[j][b]
			if x.Dst != y.Dst {
				return x.Dst < y.Dst
			}
			return x.Src < y.Src
		})
		sum, err := writeEdges(dev, bt, ColName(j), cols[j], g.Weighted)
		if err != nil {
			return nil, err
		}
		m.ColSums[j] = sum
	}

	if err := writeDegrees(dev, bt, g); err != nil {
		return nil, err
	}
	if err := saveManifest(dev, m); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: *m, PrepCPU: bt.cpu()}, nil
}

// rowIndexName returns the index file for HUS-Graph row block i.
func rowIndexName(i int) string { return fmt.Sprintf("rows/r_%04d.idx", i) }

// RowIndexName exposes rowIndexName for the baseline engines.
func RowIndexName(i int) string { return rowIndexName(i) }

type gridOptions struct {
	system string
	sort   bool
	index  bool
	codec  graph.Codec
}

func validateBuild(g *graph.Graph, p int) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if p <= 0 {
		return fmt.Errorf("partition: interval count must be positive, got %d", p)
	}
	if g.NumVertices == 0 && len(g.Edges) > 0 {
		return fmt.Errorf("partition: edges without vertices")
	}
	return nil
}

// chargeRawRead charges the sequential read of the raw input graph, the
// first step of the paper's preprocessing accounting.
func chargeRawRead(dev *storage.Device, g *graph.Graph) {
	dev.Charge(storage.SeqRead, g.Bytes())
}

func newManifest(system string, g *graph.Graph, p int) *Manifest {
	m := &Manifest{
		FormatVersion: FormatVersion,
		System:        system,
		NumVertices:   g.NumVertices,
		NumEdges:      int64(len(g.Edges)),
		P:             p,
		Weighted:      g.Weighted,
		EdgeCounts:    make([][]int64, p),
	}
	for i := range m.EdgeCounts {
		m.EdgeCounts[i] = make([]int64, p)
	}
	return m
}

func buildGrid(dev *storage.Device, g *graph.Graph, p int, opt gridOptions) (*Layout, error) {
	if err := validateBuild(g, p); err != nil {
		return nil, err
	}
	if opt.codec == graph.CodecDelta && !opt.sort {
		return nil, fmt.Errorf("partition: codec %q requires src-sorted sub-blocks", opt.codec)
	}
	chargeRawRead(dev, g)
	bt := newBuildTimer()

	m := newManifest(opt.system, g, p)
	m.Codec = opt.codec.String()
	m.BlockBytes = newGridInt64(p)
	m.BlockSums = newGridUint32(p)

	// Bucket edges into the P×P grid.
	grid := make([][]graph.Edge, p*p)
	for _, e := range g.Edges {
		i, j := m.IntervalOf(e.Src), m.IntervalOf(e.Dst)
		grid[i*p+j] = append(grid[i*p+j], e)
	}

	for i := 0; i < p; i++ {
		lo, hi := m.Interval(i)
		for j := 0; j < p; j++ {
			cell := grid[i*p+j]
			m.EdgeCounts[i][j] = int64(len(cell))
			if opt.sort {
				sortEdgesBySrc(cell)
			}
			if err := writeCell(dev, bt, m, opt, i, j, lo, hi, cell, g.Weighted); err != nil {
				return nil, err
			}
		}
	}

	if err := writeDegrees(dev, bt, g); err != nil {
		return nil, err
	}
	if err := saveManifest(dev, m); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: *m, PrepCPU: bt.cpu()}, nil
}

func bucketEdges(g *graph.Graph, p int, key func(graph.Edge) int) [][]graph.Edge {
	buckets := make([][]graph.Edge, p)
	for _, e := range g.Edges {
		k := key(e)
		buckets[k] = append(buckets[k], e)
	}
	return buckets
}

func sortEdgesBySrc(edges []graph.Edge) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Src != edges[b].Src {
			return edges[a].Src < edges[b].Src
		}
		return edges[a].Dst < edges[b].Dst
	})
}

// buildVertexIndex returns CSR-style offsets over a sorted edge slice: for
// each vertex v in [lo, hi), edges[idx[v-lo]:idx[v-lo+1]] are v's edges (as
// selected by key). len(idx) == hi-lo+1.
func buildVertexIndex(edges []graph.Edge, lo, hi int, key func(graph.Edge) graph.VertexID) []int64 {
	idx := make([]int64, hi-lo+1)
	for _, e := range edges {
		idx[int(key(e))-lo+1]++
	}
	for v := 0; v < hi-lo; v++ {
		idx[v+1] += idx[v]
	}
	return idx
}

// newGridInt64 allocates a zeroed P×P int64 grid.
func newGridInt64(p int) [][]int64 {
	g := make([][]int64, p)
	for i := range g {
		g[i] = make([]int64, p)
	}
	return g
}

// newGridUint32 allocates a zeroed P×P uint32 grid.
func newGridUint32(p int) [][]uint32 {
	g := make([][]uint32, p)
	for i := range g {
		g[i] = make([]uint32, p)
	}
	return g
}

// writeCell writes one grid cell's payload and per-vertex index in the
// manifest's codec, recording the on-disk payload size in BlockBytes.
func writeCell(dev *storage.Device, bt *buildTimer, m *Manifest, opt gridOptions, i, j, lo, hi int, cell []graph.Edge, weighted bool) error {
	var rec, off []int64
	if opt.index || opt.codec == graph.CodecDelta {
		rec = buildVertexIndex(cell, lo, hi, func(e graph.Edge) graph.VertexID { return e.Src })
	}
	if opt.codec == graph.CodecDelta {
		off = make([]int64, len(rec))
	}
	if len(cell) > 0 {
		var payload []byte
		if opt.codec == graph.CodecDelta {
			dstLo, _ := m.Interval(j)
			payload = encodeDeltaCell(cell, rec, lo, dstLo, weighted, off)
		} else {
			payload = encodeRawEdges(cell, weighted)
		}
		m.BlockBytes[i][j] = int64(len(payload))
		m.BlockSums[i][j] = Checksum(payload)
		if err := bt.write(dev, SubBlockName(i, j), payload); err != nil {
			return err
		}
	}
	if opt.index {
		if err := writeIndex(dev, bt, IndexName(i, j), rec, off); err != nil {
			return err
		}
	}
	return nil
}

// encodeDeltaCell encodes a src-sorted cell with the delta codec. rec is
// the cell's CSR record index; off (same length) is filled with the byte
// offset of each vertex's run, off[hi-lo] with the end of the varint
// section — which is where the weight column begins.
func encodeDeltaCell(cell []graph.Edge, rec []int64, lo, dstLo int, weighted bool, off []int64) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(cell)))
	for v := 0; v < len(rec)-1; v++ {
		off[v] = int64(len(payload))
		if start, end := rec[v], rec[v+1]; end > start {
			payload = graph.EncodeDeltaRun(payload, cell[start:end], graph.VertexID(lo), graph.VertexID(dstLo))
		}
	}
	off[len(rec)-1] = int64(len(payload))
	if weighted {
		for _, e := range cell {
			payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(e.Weight))
		}
	}
	return payload
}

func encodeRawEdges(edges []graph.Edge, weighted bool) []byte {
	rec := graph.EdgeBytes
	if weighted {
		rec += graph.WeightBytes
	}
	buf := make([]byte, 0, len(edges)*rec)
	for _, e := range edges {
		buf = graph.EncodeEdge(buf, e, weighted)
	}
	return buf
}

// writeEdges writes a raw edge file and returns its payload checksum.
func writeEdges(dev *storage.Device, bt *buildTimer, name string, edges []graph.Edge, weighted bool) (uint32, error) {
	payload := encodeRawEdges(edges, weighted)
	return Checksum(payload), bt.write(dev, name, payload)
}

// writeIndex writes a per-vertex index in the v2 format: a uvarint entry
// count, then the record offsets as uvarint deltas (the sequence is
// monotone, so deltas are non-negative), then — for delta-codec blocks —
// the run byte offsets, delta-encoded the same way.
func writeIndex(dev *storage.Device, bt *buildTimer, name string, rec, off []int64) error {
	buf := binary.AppendUvarint(nil, uint64(len(rec)))
	buf = appendMonotoneDeltas(buf, rec)
	if off != nil {
		buf = appendMonotoneDeltas(buf, off)
	}
	return bt.write(dev, name, buf)
}

func appendMonotoneDeltas(buf []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, uint64(v-prev))
		prev = v
	}
	return buf
}

func writeDegrees(dev *storage.Device, bt *buildTimer, g *graph.Graph) error {
	deg := g.OutDegrees()
	buf := make([]byte, 0, len(deg)*4)
	for _, d := range deg {
		buf = binary.LittleEndian.AppendUint32(buf, d)
	}
	return bt.write(dev, DegreesName, buf)
}
