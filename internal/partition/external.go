package partition

import (
	"encoding/binary"
	"fmt"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// BuildExternal runs GraphSD's preprocessing with bounded memory, the way
// a production out-of-core system must when the input graph itself exceeds
// DRAM. Where Build materializes the whole grid in memory, BuildExternal
// makes two passes:
//
//  1. Scan: stream the input edges once, spilling each edge to its source
//     interval's run file on the device. Memory: P write buffers plus the
//     degree table (vertex-proportional state is memory-resident
//     throughout the system, as in the paper).
//  2. Per row: read back one row's run (which fits the memory budget —
//     that is precisely how P is chosen, cf. ChooseP), bucket it into its
//     P cells, sort each by source, and write the sub-block payload and
//     vertex index.
//
// The result is byte-identical to Build's layout; tests assert that. The
// spill traffic (one extra sequential write + read of the edge data) is
// charged to the device like every other preprocessing I/O.
func BuildExternal(dev *storage.Device, src graph.EdgeStream, numVertices int, weighted bool, p int, opts ...BuildOption) (*Layout, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: interval count must be positive, got %d", p)
	}
	if numVertices < 0 {
		return nil, fmt.Errorf("partition: negative vertex count %d", numVertices)
	}
	opt := applyBuildOptions(gridOptions{system: "graphsd", sort: true, index: true}, opts)
	bt := newBuildTimer()
	m := newManifest("graphsd", &graph.Graph{NumVertices: numVertices, Weighted: weighted}, p)
	m.Codec = opt.codec.String()
	m.BlockBytes = newGridInt64(p)
	m.BlockSums = newGridUint32(p)

	// Pass 1: spill edges into per-source-interval run files.
	spills := make([]*storage.Writer, p)
	for i := range spills {
		w, err := dev.Create(spillName(i))
		if err != nil {
			return nil, err
		}
		spills[i] = w
	}
	degrees := make([]uint32, numVertices)
	rec := graph.EdgeBytes
	if weighted {
		rec += graph.WeightBytes
	}
	encBuf := make([]byte, 0, rec)
	var numEdges int64
	for {
		e, ok, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("partition: reading edge stream: %w", err)
		}
		if !ok {
			break
		}
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("partition: edge %d->%d out of range [0,%d)", e.Src, e.Dst, numVertices)
		}
		degrees[e.Src]++
		numEdges++
		encBuf = graph.EncodeEdge(encBuf[:0], e, weighted)
		if _, err := spills[m.IntervalOf(e.Src)].Write(encBuf); err != nil {
			return nil, err
		}
	}
	for _, w := range spills {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	m.NumEdges = numEdges

	// Pass 2: per row, read the run back, bucket into cells, sort, write.
	for i := 0; i < p; i++ {
		data, err := dev.ReadFile(spillName(i))
		if err != nil {
			return nil, err
		}
		edges, err := graph.DecodeEdges(data, weighted)
		if err != nil {
			return nil, fmt.Errorf("partition: decoding spill run %d: %w", i, err)
		}
		cells := make([][]graph.Edge, p)
		for _, e := range edges {
			j := m.IntervalOf(e.Dst)
			cells[j] = append(cells[j], e)
		}
		lo, hi := m.Interval(i)
		for j := 0; j < p; j++ {
			sortEdgesBySrc(cells[j])
			m.EdgeCounts[i][j] = int64(len(cells[j]))
			if err := writeCell(dev, bt, m, opt, i, j, lo, hi, cells[j], weighted); err != nil {
				return nil, err
			}
		}
		if err := dev.Remove(spillName(i)); err != nil {
			return nil, err
		}
	}

	// Degree table accumulated during the scan.
	degBuf := make([]byte, 0, len(degrees)*4)
	for _, d := range degrees {
		degBuf = binary.LittleEndian.AppendUint32(degBuf, d)
	}
	if err := bt.write(dev, DegreesName, degBuf); err != nil {
		return nil, err
	}
	if err := saveManifest(dev, m); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: *m, PrepCPU: bt.cpu()}, nil
}

func spillName(i int) string { return fmt.Sprintf("spill/run_%04d.tmp", i) }
