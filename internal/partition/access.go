package partition

import (
	"encoding/binary"
	"fmt"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// LoadSubBlock reads sub-block (i, j) in full as one sequential stream and
// decodes its edges. Empty sub-blocks cost no I/O.
func (l *Layout) LoadSubBlock(i, j int) ([]graph.Edge, error) {
	if l.Meta.SubBlockEdges(i, j) == 0 {
		return nil, nil
	}
	data, err := l.Dev.ReadFile(SubBlockName(i, j))
	if err != nil {
		return nil, fmt.Errorf("partition: loading sub-block (%d,%d): %w", i, j, err)
	}
	edges, err := graph.DecodeEdges(data, l.Meta.Weighted)
	if err != nil {
		return nil, fmt.Errorf("partition: decoding sub-block (%d,%d): %w", i, j, err)
	}
	return edges, nil
}

// LoadSubBlockInto reads sub-block (i, j) like LoadSubBlock, but decodes
// into dst (reset to length zero) and reads the raw bytes through buf,
// growing either only when too small. The possibly-grown slices are
// returned; the I/O charge and fault semantics are identical to
// LoadSubBlock. This is the async-friendly variant the prefetch pipeline
// uses: each fetch worker owns a dst/buf pair and reuses it across blocks.
func (l *Layout) LoadSubBlockInto(i, j int, dst []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	dst = dst[:0]
	if l.Meta.SubBlockEdges(i, j) == 0 {
		return dst, buf, nil
	}
	buf, err := l.Dev.ReadFileInto(SubBlockName(i, j), buf)
	if err != nil {
		return dst, buf, fmt.Errorf("partition: loading sub-block (%d,%d): %w", i, j, err)
	}
	dst, err = graph.AppendEdges(dst, buf, l.Meta.Weighted)
	if err != nil {
		return dst, buf, fmt.Errorf("partition: decoding sub-block (%d,%d): %w", i, j, err)
	}
	return dst, buf, nil
}

// StreamSubBlock reads sub-block (i, j) in chunks of at most chunkBytes
// (rounded down to whole records, minimum one record) and invokes fn for
// each decoded chunk. Peak memory is one chunk instead of the whole cell,
// which is how a production engine keeps its residency bounded even when a
// skewed grid produces an oversized cell. The chunk slice passed to fn is
// reused; fn must not retain it.
func (l *Layout) StreamSubBlock(i, j int, chunkBytes int64, fn func(edges []graph.Edge) error) error {
	total := l.Meta.SubBlockEdges(i, j)
	if total == 0 {
		return nil
	}
	rec := int64(l.Meta.EdgeRecordBytes())
	perChunk := chunkBytes / rec
	if perChunk < 1 {
		perChunk = 1
	}
	r, err := l.OpenSubBlock(i, j)
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]byte, perChunk*rec)
	for off := int64(0); off < total; off += perChunk {
		n := perChunk
		if off+n > total {
			n = total - off
		}
		chunk := buf[:n*rec]
		if _, err := r.AutoReadAt(chunk, off*rec); err != nil {
			return fmt.Errorf("partition: streaming sub-block (%d,%d)@%d: %w", i, j, off, err)
		}
		edges, err := graph.DecodeEdges(chunk, l.Meta.Weighted)
		if err != nil {
			return err
		}
		if err := fn(edges); err != nil {
			return err
		}
	}
	return nil
}

// LoadIndex reads the per-vertex offset index of sub-block (i, j). The
// returned slice has IntervalLen(i)+1 entries: the edges of vertex v
// (lo <= v < hi) occupy records [idx[v-lo], idx[v-lo+1]) in the sub-block.
// The read is charged sequentially: indexes are small and loaded in one
// stream, matching the 2|V|·N index/value term of the paper's C_r model.
func (l *Layout) LoadIndex(i, j int) ([]int64, error) {
	data, err := l.Dev.ReadFile(IndexName(i, j))
	if err != nil {
		return nil, fmt.Errorf("partition: loading index (%d,%d): %w", i, j, err)
	}
	return decodeIndex(data)
}

func decodeIndex(data []byte) ([]int64, error) {
	if len(data)%graph.IndexEntryBytes != 0 {
		return nil, fmt.Errorf("partition: index size %d not a multiple of %d", len(data), graph.IndexEntryBytes)
	}
	idx := make([]int64, len(data)/graph.IndexEntryBytes)
	for k := range idx {
		idx[k] = int64(binary.LittleEndian.Uint64(data[k*graph.IndexEntryBytes:]))
	}
	return idx, nil
}

// OpenSubBlock opens sub-block (i, j) for positional reads. The caller must
// Close the reader. Opening an empty sub-block returns (nil, nil).
func (l *Layout) OpenSubBlock(i, j int) (*storage.Reader, error) {
	if l.Meta.SubBlockEdges(i, j) == 0 {
		return nil, nil
	}
	r, err := l.Dev.Open(SubBlockName(i, j))
	if err != nil {
		return nil, fmt.Errorf("partition: opening sub-block (%d,%d): %w", i, j, err)
	}
	return r, nil
}

// ReadVertexEdges reads the edges of vertex v from an open sub-block of
// interval i using its index. The access is auto-classified: contiguous
// active vertices produce sequential reads, scattered ones random reads —
// the S_seq / S_ran split of the paper's on-demand cost model emerges from
// the access pattern itself.
func (l *Layout) ReadVertexEdges(r *storage.Reader, idx []int64, i int, v graph.VertexID, buf []byte) ([]graph.Edge, []byte, error) {
	lo, hi := l.Meta.Interval(i)
	if int(v) < lo || int(v) >= hi {
		return nil, buf, fmt.Errorf("partition: vertex %d outside interval %d [%d,%d)", v, i, lo, hi)
	}
	start, end := idx[int(v)-lo], idx[int(v)-lo+1]
	if start == end {
		return nil, buf, nil
	}
	rec := int64(l.Meta.EdgeRecordBytes())
	n := (end - start) * rec
	if int64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := r.AutoReadAt(buf, start*rec); err != nil {
		return nil, buf, fmt.Errorf("partition: reading edges of vertex %d: %w", v, err)
	}
	edges, err := graph.DecodeEdges(buf, l.Meta.Weighted)
	if err != nil {
		return nil, buf, err
	}
	return edges, buf, nil
}

// LoadDegrees reads the per-vertex out-degree table.
func (l *Layout) LoadDegrees() ([]uint32, error) {
	data, err := l.Dev.ReadFile(DegreesName)
	if err != nil {
		return nil, fmt.Errorf("partition: loading degrees: %w", err)
	}
	if len(data) != l.Meta.NumVertices*4 {
		return nil, fmt.Errorf("partition: degrees size %d, want %d", len(data), l.Meta.NumVertices*4)
	}
	deg := make([]uint32, l.Meta.NumVertices)
	for v := range deg {
		deg[v] = binary.LittleEndian.Uint32(data[v*4:])
	}
	return deg, nil
}

// LoadRow reads HUS-Graph/Lumos row block i in full.
func (l *Layout) LoadRow(i int) ([]graph.Edge, error) {
	if !l.Dev.Exists(RowName(i)) {
		return nil, nil
	}
	data, err := l.Dev.ReadFile(RowName(i))
	if err != nil {
		return nil, fmt.Errorf("partition: loading row %d: %w", i, err)
	}
	return graph.DecodeEdges(data, l.Meta.Weighted)
}

// LoadRowIndex reads the per-vertex index of HUS-Graph row block i.
func (l *Layout) LoadRowIndex(i int) ([]int64, error) {
	data, err := l.Dev.ReadFile(RowIndexName(i))
	if err != nil {
		return nil, fmt.Errorf("partition: loading row index %d: %w", i, err)
	}
	return decodeIndex(data)
}

// OpenRow opens row block i for positional reads; (nil, nil) if absent.
func (l *Layout) OpenRow(i int) (*storage.Reader, error) {
	if !l.Dev.Exists(RowName(i)) {
		return nil, nil
	}
	r, err := l.Dev.Open(RowName(i))
	if err != nil {
		return nil, fmt.Errorf("partition: opening row %d: %w", i, err)
	}
	return r, nil
}

// LoadCol reads HUS-Graph column block j in full.
func (l *Layout) LoadCol(j int) ([]graph.Edge, error) {
	if !l.Dev.Exists(ColName(j)) {
		return nil, nil
	}
	data, err := l.Dev.ReadFile(ColName(j))
	if err != nil {
		return nil, fmt.Errorf("partition: loading column %d: %w", j, err)
	}
	return graph.DecodeEdges(data, l.Meta.Weighted)
}

// ChargeVertexValueRead charges the sequential read of the whole vertex
// value array (the |V|·N read term shared by both of the paper's I/O cost
// formulas). Vertex values live in memory in this implementation, but the
// paper's model accounts them, so engines call this once per iteration.
func (l *Layout) ChargeVertexValueRead() {
	l.Dev.Charge(storage.SeqRead, int64(l.Meta.NumVertices)*graph.VertexValueBytes)
}

// ChargeVertexValueWrite charges the sequential write-back of the vertex
// value array (the |V|·N / B_sw term of both cost formulas).
func (l *Layout) ChargeVertexValueWrite() {
	l.Dev.Charge(storage.SeqWrite, int64(l.Meta.NumVertices)*graph.VertexValueBytes)
}
