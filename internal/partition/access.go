package partition

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// LoadSubBlock reads sub-block (i, j) in full as one sequential stream and
// decodes its edges. Empty sub-blocks cost no I/O.
func (l *Layout) LoadSubBlock(i, j int) ([]graph.Edge, error) {
	edges, _, err := l.LoadSubBlockInto(i, j, nil, nil)
	return edges, err
}

// LoadSubBlockInto reads sub-block (i, j) like LoadSubBlock, but decodes
// into dst (reset to length zero) and reads the raw bytes through buf,
// growing either only when too small. The possibly-grown slices are
// returned; the I/O charge and fault semantics are identical to
// LoadSubBlock. This is the async-friendly variant the prefetch pipeline
// uses: each fetch worker owns a dst/buf pair and reuses it across blocks —
// under the delta codec, that worker also runs the decompression, so decode
// overlaps compute exactly like the reads themselves.
func (l *Layout) LoadSubBlockInto(i, j int, dst []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	dst = dst[:0]
	od := l.overlayDelta(i, j)
	if l.Meta.SubBlockEdges(i, j) == 0 {
		// With an overlay, Meta carries the merged count: zero means the
		// tombstones erased every base edge, so there is nothing to read.
		return dst, buf, nil
	}
	if od == nil {
		return l.loadBaseBlockInto(i, j, dst, buf)
	}
	var base []graph.Edge
	if l.Dev.Exists(l.Meta.BlockName(i, j)) {
		var err error
		base, buf, err = l.loadBaseBlockInto(i, j, nil, buf)
		if err != nil {
			return dst, buf, err
		}
	}
	return MergeOverlay(dst, base, od), buf, nil
}

// loadBaseBlockInto reads and decodes sub-block (i, j)'s base payload —
// LoadSubBlockInto without the overlay merge.
func (l *Layout) loadBaseBlockInto(i, j int, dst []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	buf, err := l.Dev.ReadFileInto(l.Meta.BlockName(i, j), buf)
	if err != nil {
		return dst, buf, fmt.Errorf("partition: loading sub-block (%d,%d) [%s]: %w", i, j, l.Meta.BlockCodec(), err)
	}
	if err := l.Meta.VerifyBlockSum(i, j, buf); err != nil {
		return dst, buf, fmt.Errorf("partition: sub-block (%d,%d) [%s]: %w", i, j, l.Meta.BlockCodec(), err)
	}
	t0 := time.Now()
	if l.Meta.BlockCodec() == graph.CodecDelta {
		iLo, _ := l.Meta.Interval(i)
		jLo, _ := l.Meta.Interval(j)
		dst, err = graph.AppendDeltaBlock(dst, buf, graph.VertexID(iLo), graph.VertexID(jLo), l.Meta.Weighted)
	} else {
		dst, err = graph.AppendEdges(dst, buf, l.Meta.Weighted)
	}
	l.noteDecode(t0)
	if err != nil {
		return dst, buf, fmt.Errorf("partition: decoding sub-block (%d,%d) [%s]: %w", i, j, l.Meta.BlockCodec(), err)
	}
	return dst, buf, nil
}

// LoadSubBlockPayload reads sub-block (i, j) in full and returns its edges
// as a delta-coded payload *without* decoding it into edges — the form the
// semi-external-memory compressed cache tier stores. Under the delta codec
// the verified on-disk bytes are returned verbatim (zero transcode cost);
// raw layouts are decoded and re-encoded once, with the transcode charged as
// decode time. Decode the result with graph.AppendDeltaBlock using the
// interval bases of (i, j). Empty sub-blocks return a nil payload and no
// I/O.
func (l *Layout) LoadSubBlockPayload(i, j int) ([]byte, error) {
	if l.Meta.SubBlockEdges(i, j) == 0 {
		return nil, nil
	}
	if od := l.overlayDelta(i, j); od != nil {
		// Mutated blocks synthesize the merged payload: the compressed
		// cache tier stores the merged view, keyed by content version like
		// every other cache entry.
		edges, _, err := l.LoadSubBlockInto(i, j, nil, nil)
		if err != nil {
			return nil, err
		}
		if len(edges) == 0 {
			return nil, nil
		}
		t0 := time.Now()
		iLo, _ := l.Meta.Interval(i)
		jLo, _ := l.Meta.Interval(j)
		payload := graph.EncodeDeltaBlock(nil, edges, graph.VertexID(iLo), graph.VertexID(jLo), l.Meta.Weighted)
		l.noteDecode(t0)
		return payload, nil
	}
	buf, err := l.Dev.ReadFile(l.Meta.BlockName(i, j))
	if err != nil {
		return nil, fmt.Errorf("partition: loading sub-block (%d,%d) [%s]: %w", i, j, l.Meta.BlockCodec(), err)
	}
	if err := l.Meta.VerifyBlockSum(i, j, buf); err != nil {
		return nil, fmt.Errorf("partition: sub-block (%d,%d) [%s]: %w", i, j, l.Meta.BlockCodec(), err)
	}
	if l.Meta.BlockCodec() == graph.CodecDelta {
		return buf, nil
	}
	t0 := time.Now()
	edges, err := graph.AppendEdges(nil, buf, l.Meta.Weighted)
	if err != nil {
		l.noteDecode(t0)
		return nil, fmt.Errorf("partition: decoding sub-block (%d,%d) [raw]: %w", i, j, err)
	}
	iLo, _ := l.Meta.Interval(i)
	jLo, _ := l.Meta.Interval(j)
	payload := graph.EncodeDeltaBlock(nil, edges, graph.VertexID(iLo), graph.VertexID(jLo), l.Meta.Weighted)
	l.noteDecode(t0)
	return payload, nil
}

// StreamSubBlock reads sub-block (i, j) in chunks of at most chunkBytes of
// decoded edges (rounded down to whole records, minimum one record — for
// delta blocks, minimum one source run) and invokes fn for each decoded
// chunk. Peak memory is one chunk instead of the whole cell, which is how a
// production engine keeps its residency bounded even when a skewed grid
// produces an oversized cell. The chunk slice passed to fn is reused; fn
// must not retain it.
func (l *Layout) StreamSubBlock(i, j int, chunkBytes int64, fn func(edges []graph.Edge) error) error {
	total := l.Meta.SubBlockEdges(i, j)
	if total == 0 {
		return nil
	}
	if od := l.overlayDelta(i, j); od != nil {
		// Mutated blocks are merged in full and handed out in record-count
		// chunks: the overlay must interleave with the base stream, and a
		// memtable-bounded delta keeps the merged cell's residency close to
		// the base cell's.
		edges, _, err := l.LoadSubBlockInto(i, j, nil, nil)
		if err != nil {
			return err
		}
		per := int(chunkBytes / int64(l.Meta.EdgeRecordBytes()))
		if per < 1 {
			per = 1
		}
		for off := 0; off < len(edges); off += per {
			end := off + per
			if end > len(edges) {
				end = len(edges)
			}
			if err := fn(edges[off:end]); err != nil {
				return err
			}
		}
		return nil
	}
	if l.Meta.BlockCodec() == graph.CodecDelta {
		return l.streamDeltaSubBlock(i, j, chunkBytes, fn)
	}
	rec := int64(l.Meta.EdgeRecordBytes())
	perChunk := chunkBytes / rec
	if perChunk < 1 {
		perChunk = 1
	}
	r, err := l.OpenSubBlock(i, j)
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]byte, perChunk*rec)
	var edges []graph.Edge
	for off := int64(0); off < total; off += perChunk {
		n := perChunk
		if off+n > total {
			n = total - off
		}
		chunk := buf[:n*rec]
		if _, err := r.AutoReadAt(chunk, off*rec); err != nil {
			return fmt.Errorf("partition: streaming sub-block (%d,%d)@%d [raw]: %w", i, j, off, err)
		}
		t0 := time.Now()
		edges, err = graph.AppendEdges(edges[:0], chunk, l.Meta.Weighted)
		l.noteDecode(t0)
		if err != nil {
			return fmt.Errorf("partition: decoding sub-block (%d,%d)@%d [raw]: %w", i, j, off, err)
		}
		if err := fn(edges); err != nil {
			return err
		}
	}
	return nil
}

// streamDeltaSubBlock streams a delta-codec sub-block. Varint runs have no
// fixed record boundaries, so chunks are cut at source-run boundaries using
// the per-vertex byte index; the index read is charged like any other.
func (l *Layout) streamDeltaSubBlock(i, j int, chunkBytes int64, fn func(edges []graph.Edge) error) error {
	idx, err := l.LoadIndex(i, j)
	if err != nil {
		return err
	}
	r, err := l.OpenSubBlock(i, j)
	if err != nil {
		return err
	}
	defer r.Close()
	rec := int64(l.Meta.EdgeRecordBytes())
	perChunk := chunkBytes / rec
	if perChunk < 1 {
		perChunk = 1
	}
	nv := len(idx.Rec) - 1
	wbase := idx.Off[nv]
	var buf []byte
	var edges []graph.Edge
	for a := 0; a < nv; {
		b := a + 1
		for b < nv && idx.Rec[b+1]-idx.Rec[a] <= perChunk {
			b++
		}
		r0, r1 := idx.Rec[a], idx.Rec[b]
		if r0 == r1 {
			a = b
			continue
		}
		o0, o1 := idx.Off[a], idx.Off[b]
		if int64(cap(buf)) < o1-o0 {
			buf = make([]byte, o1-o0)
		}
		buf = buf[:o1-o0]
		if _, err := r.AutoReadAt(buf, o0); err != nil {
			return fmt.Errorf("partition: streaming sub-block (%d,%d)@%d [delta]: %w", i, j, o0, err)
		}
		t0 := time.Now()
		edges, err = graph.AppendDeltaRuns(edges[:0], buf, idx.srcBase, idx.dstBase)
		l.noteDecode(t0)
		if err != nil {
			return fmt.Errorf("partition: decoding sub-block (%d,%d) chunk [delta]: %w", i, j, err)
		}
		if int64(len(edges)) != r1-r0 {
			return fmt.Errorf("partition: sub-block (%d,%d) chunk decoded %d edges, index says %d", i, j, len(edges), r1-r0)
		}
		if l.Meta.Weighted {
			if buf, err = l.readWeightColumn(r, buf, wbase, r0, r1, edges); err != nil {
				return fmt.Errorf("partition: sub-block (%d,%d) weights: %w", i, j, err)
			}
		}
		if err := fn(edges); err != nil {
			return err
		}
		a = b
	}
	return nil
}

// readWeightColumn fills edges' weights from the trailing float32 column:
// records [r0, r1) read at column base wbase, through buf (grown as
// needed and returned).
func (l *Layout) readWeightColumn(r *storage.Reader, buf []byte, wbase, r0, r1 int64, edges []graph.Edge) ([]byte, error) {
	n := (r1 - r0) * graph.WeightBytes
	if int64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := r.AutoReadAt(buf, wbase+r0*graph.WeightBytes); err != nil {
		return buf, err
	}
	for k := range edges {
		edges[k].Weight = math.Float32frombits(binary.LittleEndian.Uint32(buf[k*graph.WeightBytes:]))
	}
	return buf, nil
}

// Index locates each vertex's edges inside one sub-block payload.
type Index struct {
	// Rec holds CSR record offsets: the edges of vertex v (lo <= v < hi)
	// occupy records [Rec[v-lo], Rec[v-lo+1]) of the decoded sub-block.
	Rec []int64
	// Off holds byte offsets into delta-codec payloads: vertex v's run
	// occupies bytes [Off[v-lo], Off[v-lo+1]), and Off[hi-lo] marks the end
	// of the varint section — the start of the weight column. Nil for raw
	// blocks, where byte positions follow from Rec and the record size.
	Off []int64

	srcBase, dstBase graph.VertexID
	// blockJ is the destination interval of the sub-block this index
	// belongs to, or -1 for row indexes — the coordinate the selective read
	// path needs to look up overlay mutations.
	blockJ int
}

// LoadIndex reads the per-vertex offset index of sub-block (i, j). The
// index has IntervalLen(i)+1 entries (see Index). The read is charged
// sequentially: indexes are small and loaded in one stream, matching the
// 2|V|·N index/value term of the paper's C_r model.
func (l *Layout) LoadIndex(i, j int) (*Index, error) {
	data, err := l.Dev.ReadFile(l.Meta.BlockIndexName(i, j))
	if err != nil {
		return nil, fmt.Errorf("partition: loading index (%d,%d): %w", i, j, err)
	}
	delta := l.Meta.BlockCodec() == graph.CodecDelta
	rec, off, err := l.decodeIndexData(data, delta)
	if err != nil {
		return nil, fmt.Errorf("partition: index (%d,%d): %w", i, j, err)
	}
	iLo, _ := l.Meta.Interval(i)
	jLo, _ := l.Meta.Interval(j)
	return &Index{Rec: rec, Off: off, srcBase: graph.VertexID(iLo), dstBase: graph.VertexID(jLo), blockJ: j}, nil
}

// decodeIndexData parses an index file. Format v1 stores fixed 8-byte
// entries; v2 stores a uvarint count followed by uvarint deltas of the
// monotone offsets — and, when delta is true, a second delta sequence of
// run byte offsets.
func (l *Layout) decodeIndexData(data []byte, delta bool) (rec, off []int64, err error) {
	if l.Meta.FormatVersion < 2 {
		if len(data)%graph.IndexEntryBytes != 0 {
			return nil, nil, fmt.Errorf("index size %d not a multiple of %d", len(data), graph.IndexEntryBytes)
		}
		rec = make([]int64, len(data)/graph.IndexEntryBytes)
		for k := range rec {
			rec[k] = int64(binary.LittleEndian.Uint64(data[k*graph.IndexEntryBytes:]))
		}
		return rec, nil, nil
	}
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("bad index entry count")
	}
	sections := 1
	if delta {
		sections = 2
	}
	// Each entry takes at least one byte per section.
	if n*uint64(sections) > uint64(len(data)-k) {
		return nil, nil, fmt.Errorf("index entry count %d exceeds %d payload bytes", n, len(data)-k)
	}
	rec, used, err := decodeMonotoneDeltas(data[k:], int(n))
	if err != nil {
		return nil, nil, fmt.Errorf("record offsets: %w", err)
	}
	pos := k + used
	if delta {
		off, used, err = decodeMonotoneDeltas(data[pos:], int(n))
		if err != nil {
			return nil, nil, fmt.Errorf("byte offsets: %w", err)
		}
		pos += used
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("index has %d trailing bytes", len(data)-pos)
	}
	return rec, off, nil
}

// decodeMonotoneDeltas reads n uvarint deltas and returns the running sums
// plus the number of bytes consumed.
func decodeMonotoneDeltas(data []byte, n int) ([]int64, int, error) {
	vals := make([]int64, n)
	pos := 0
	var sum uint64
	for i := 0; i < n; i++ {
		d, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("bad delta varint at entry %d", i)
		}
		pos += k
		sum += d
		if sum > 1<<62 {
			return nil, 0, fmt.Errorf("offset overflow at entry %d", i)
		}
		vals[i] = int64(sum)
	}
	return vals, pos, nil
}

// OpenSubBlock opens sub-block (i, j) for positional reads. The caller must
// Close the reader. Opening an empty sub-block returns (nil, nil) — as does
// a block whose merged count is positive but whose base file is absent
// (pure-overlay content): ReadVertexEdges serves those vertices from the
// overlay alone and tolerates a nil reader.
func (l *Layout) OpenSubBlock(i, j int) (*storage.Reader, error) {
	if l.Meta.SubBlockEdges(i, j) == 0 {
		return nil, nil
	}
	name := l.Meta.BlockName(i, j)
	if l.Overlay != nil && !l.Dev.Exists(name) {
		return nil, nil
	}
	r, err := l.Dev.Open(name)
	if err != nil {
		return nil, fmt.Errorf("partition: opening sub-block (%d,%d): %w", i, j, err)
	}
	return r, nil
}

// ReadVertexEdges reads the edges of vertex v from an open sub-block of
// interval i using its index. The access is auto-classified: contiguous
// active vertices produce sequential reads, scattered ones random reads —
// the S_seq / S_ran split of the paper's on-demand cost model emerges from
// the access pattern itself. Under the delta codec the vertex's run is read
// by its compressed byte range (fewer bytes, same classification); weights
// come from the trailing column in a second positional read.
func (l *Layout) ReadVertexEdges(r *storage.Reader, idx *Index, i int, v graph.VertexID, buf []byte) ([]graph.Edge, []byte, error) {
	lo, hi := l.Meta.Interval(i)
	if int(v) < lo || int(v) >= hi {
		return nil, buf, fmt.Errorf("partition: vertex %d outside interval %d [%d,%d)", v, i, lo, hi)
	}
	if l.Overlay != nil && idx.blockJ >= 0 {
		if sub := OverlayVertexRange(l.Overlay.BlockDelta(i, idx.blockJ), v); len(sub) > 0 {
			var base []graph.Edge
			var err error
			if r != nil {
				base, buf, err = l.readVertexBase(r, idx, v, lo, buf)
				if err != nil {
					return nil, buf, err
				}
			}
			return MergeOverlay(nil, base, sub), buf, nil
		}
	}
	if r == nil {
		// Pure-overlay block (no base file) and the overlay holds nothing
		// for v: the vertex has no edges here.
		return nil, buf, nil
	}
	return l.readVertexBase(r, idx, v, lo, buf)
}

// readVertexBase reads vertex v's base run — ReadVertexEdges without the
// overlay merge.
func (l *Layout) readVertexBase(r *storage.Reader, idx *Index, v graph.VertexID, lo int, buf []byte) ([]graph.Edge, []byte, error) {
	if idx.Off != nil {
		return l.readVertexEdgesDelta(r, idx, v, lo, buf)
	}
	start, end := idx.Rec[int(v)-lo], idx.Rec[int(v)-lo+1]
	if start == end {
		return nil, buf, nil
	}
	rec := int64(l.Meta.EdgeRecordBytes())
	n := (end - start) * rec
	if int64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := r.AutoReadAt(buf, start*rec); err != nil {
		return nil, buf, fmt.Errorf("partition: %s [raw]: reading edges of vertex %d: %w", r.Name(), v, err)
	}
	edges, err := graph.DecodeEdges(buf, l.Meta.Weighted)
	if err != nil {
		return nil, buf, fmt.Errorf("partition: %s [raw]: decoding edges of vertex %d: %w", r.Name(), v, err)
	}
	return edges, buf, nil
}

// readVertexEdgesDelta is the delta-codec arm of ReadVertexEdges.
func (l *Layout) readVertexEdgesDelta(r *storage.Reader, idx *Index, v graph.VertexID, lo int, buf []byte) ([]graph.Edge, []byte, error) {
	k := int(v) - lo
	o0, o1 := idx.Off[k], idx.Off[k+1]
	if o0 == o1 {
		return nil, buf, nil
	}
	if int64(cap(buf)) < o1-o0 {
		buf = make([]byte, o1-o0)
	}
	buf = buf[:o1-o0]
	if _, err := r.AutoReadAt(buf, o0); err != nil {
		return nil, buf, fmt.Errorf("partition: %s [delta]: reading edges of vertex %d: %w", r.Name(), v, err)
	}
	edges, err := graph.AppendDeltaRuns(nil, buf, idx.srcBase, idx.dstBase)
	if err != nil {
		return nil, buf, fmt.Errorf("partition: %s [delta]: decoding edges of vertex %d: %w", r.Name(), v, err)
	}
	if l.Meta.Weighted {
		r0, r1 := idx.Rec[k], idx.Rec[k+1]
		wbase := idx.Off[len(idx.Off)-1]
		if buf, err = l.readWeightColumn(r, buf, wbase, r0, r1, edges); err != nil {
			return nil, buf, fmt.Errorf("partition: %s [delta]: reading weights of vertex %d: %w", r.Name(), v, err)
		}
	}
	return edges, buf, nil
}

// LoadDegrees reads the per-vertex out-degree table, folding in the
// overlay's adjustments when one is pinned.
func (l *Layout) LoadDegrees() ([]uint32, error) {
	data, err := l.Dev.ReadFile(l.Meta.DegreesFile())
	if err != nil {
		return nil, fmt.Errorf("partition: loading degrees: %w", err)
	}
	if len(data) != l.Meta.NumVertices*4 {
		return nil, fmt.Errorf("partition: degrees size %d, want %d", len(data), l.Meta.NumVertices*4)
	}
	deg := make([]uint32, l.Meta.NumVertices)
	for v := range deg {
		deg[v] = binary.LittleEndian.Uint32(data[v*4:])
	}
	if l.Overlay != nil {
		l.Overlay.AdjustDegrees(deg)
	}
	return deg, nil
}

// LoadRow reads HUS-Graph/Lumos row block i in full.
func (l *Layout) LoadRow(i int) ([]graph.Edge, error) {
	edges, _, err := l.LoadRowInto(i, nil, nil)
	return edges, err
}

// LoadRowInto reads row block i like LoadRow, decoding into dst and
// reading through buf like LoadSubBlockInto — the per-iteration loop of
// the row-major baselines reuses both instead of allocating per block.
// Row blocks are always raw: the row-major preprocessors reject delta.
func (l *Layout) LoadRowInto(i int, dst []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	return l.loadRawFileInto(RowName(i), "row", i, l.Meta.RowSums, dst, buf)
}

// LoadRowIndex reads the per-vertex index of HUS-Graph row block i.
func (l *Layout) LoadRowIndex(i int) (*Index, error) {
	data, err := l.Dev.ReadFile(RowIndexName(i))
	if err != nil {
		return nil, fmt.Errorf("partition: loading row index %d: %w", i, err)
	}
	rec, _, err := l.decodeIndexData(data, false)
	if err != nil {
		return nil, fmt.Errorf("partition: row index %d: %w", i, err)
	}
	lo, _ := l.Meta.Interval(i)
	return &Index{Rec: rec, srcBase: graph.VertexID(lo), blockJ: -1}, nil
}

// OpenRow opens row block i for positional reads; (nil, nil) if absent.
func (l *Layout) OpenRow(i int) (*storage.Reader, error) {
	if !l.Dev.Exists(RowName(i)) {
		return nil, nil
	}
	r, err := l.Dev.Open(RowName(i))
	if err != nil {
		return nil, fmt.Errorf("partition: opening row %d: %w", i, err)
	}
	return r, nil
}

// LoadCol reads HUS-Graph column block j in full.
func (l *Layout) LoadCol(j int) ([]graph.Edge, error) {
	edges, _, err := l.LoadColInto(j, nil, nil)
	return edges, err
}

// LoadColInto reads column block j like LoadCol, with the same buffer
// reuse as LoadRowInto.
func (l *Layout) LoadColInto(j int, dst []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	return l.loadRawFileInto(ColName(j), "column", j, l.Meta.ColSums, dst, buf)
}

// loadRawFileInto reads a raw fixed-record edge file (row or column block)
// through reusable buffers, verifying its payload against sums[i] when the
// manifest recorded checksums; absent files decode to zero edges.
func (l *Layout) loadRawFileInto(name, kind string, i int, sums []uint32, dst []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	dst = dst[:0]
	if !l.Dev.Exists(name) {
		return dst, buf, nil
	}
	buf, err := l.Dev.ReadFileInto(name, buf)
	if err != nil {
		return dst, buf, fmt.Errorf("partition: loading %s %d [raw]: %w", kind, i, err)
	}
	if sums != nil {
		if err := verifySum(sums[i], buf); err != nil {
			return dst, buf, fmt.Errorf("partition: %s %d [raw]: %w", kind, i, err)
		}
	}
	t0 := time.Now()
	dst, err = graph.AppendEdges(dst, buf, l.Meta.Weighted)
	l.noteDecode(t0)
	if err != nil {
		return dst, buf, fmt.Errorf("partition: decoding %s %d [raw]: %w", kind, i, err)
	}
	return dst, buf, nil
}

// ChargeVertexValueRead charges the sequential read of the whole vertex
// value array (the |V|·N read term shared by both of the paper's I/O cost
// formulas). Vertex values live in memory in this implementation, but the
// paper's model accounts them, so engines call this once per iteration.
func (l *Layout) ChargeVertexValueRead() {
	l.Dev.Charge(storage.SeqRead, int64(l.Meta.NumVertices)*graph.VertexValueBytes)
}

// ChargeVertexValueWrite charges the sequential write-back of the vertex
// value array (the |V|·N / B_sw term of both cost formulas).
func (l *Layout) ChargeVertexValueWrite() {
	l.Dev.Charge(storage.SeqWrite, int64(l.Meta.NumVertices)*graph.VertexValueBytes)
}
