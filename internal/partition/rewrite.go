package partition

import (
	"encoding/binary"
	"fmt"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// RewriteBlock writes sub-block (i, j)'s merged content at generation gen —
// the compaction write path. cell must be src-then-dst sorted and lie
// entirely inside the block's intervals. The payload and per-vertex index
// are encoded exactly as Build would (same codec, same formats), and m's
// EdgeCounts, BlockBytes, BlockSums and BlockGens entries are updated in
// place; the caller publishes the updated manifest with SaveManifest once
// every rewritten block is on the device. Like Build, an empty cell writes
// no payload file, only the index.
func RewriteBlock(dev *storage.Device, m *Manifest, gen, i, j int, cell []graph.Edge) error {
	if gen <= 0 {
		return fmt.Errorf("partition: rewrite generation must be positive, got %d", gen)
	}
	lo, hi := m.Interval(i)
	rec := buildVertexIndex(cell, lo, hi, func(e graph.Edge) graph.VertexID { return e.Src })
	var off []int64
	if m.BlockCodec() == graph.CodecDelta {
		off = make([]int64, len(rec))
	}
	var payload []byte
	if len(cell) > 0 {
		if m.BlockCodec() == graph.CodecDelta {
			dstLo, _ := m.Interval(j)
			payload = encodeDeltaCell(cell, rec, lo, dstLo, m.Weighted, off)
		} else {
			payload = encodeRawEdges(cell, m.Weighted)
		}
		if err := dev.WriteFile(SubBlockNameAt(gen, i, j), payload); err != nil {
			return fmt.Errorf("partition: rewriting sub-block (%d,%d)@g%d: %w", i, j, gen, err)
		}
	}
	buf := binary.AppendUvarint(nil, uint64(len(rec)))
	buf = appendMonotoneDeltas(buf, rec)
	if off != nil {
		buf = appendMonotoneDeltas(buf, off)
	}
	if err := dev.WriteFile(IndexNameAt(gen, i, j), buf); err != nil {
		return fmt.Errorf("partition: rewriting index (%d,%d)@g%d: %w", i, j, gen, err)
	}
	if m.BlockGens == nil {
		m.BlockGens = make([][]int, m.P)
		for k := range m.BlockGens {
			m.BlockGens[k] = make([]int, m.P)
		}
	}
	m.EdgeCounts[i][j] = int64(len(cell))
	m.BlockBytes[i][j] = int64(len(payload))
	m.BlockSums[i][j] = Checksum(payload)
	m.BlockGens[i][j] = gen
	return nil
}

// WriteDegreesAt writes deg as the out-degree table at generation gen and
// points m at it. Compactions that fold delta-layer degree adjustments call
// this before publishing the manifest, so pinned snapshots keep reading the
// old table by its old name.
func WriteDegreesAt(dev *storage.Device, m *Manifest, gen int, deg []uint32) error {
	if len(deg) != m.NumVertices {
		return fmt.Errorf("partition: degree table has %d entries, want %d", len(deg), m.NumVertices)
	}
	buf := make([]byte, 0, len(deg)*4)
	for _, d := range deg {
		buf = binary.LittleEndian.AppendUint32(buf, d)
	}
	if err := dev.WriteFile(DegreesNameAt(gen), buf); err != nil {
		return fmt.Errorf("partition: rewriting degrees@g%d: %w", gen, err)
	}
	m.DegreesGen = gen
	return nil
}
