// Package partition implements GraphSD's preprocessing phase and on-disk
// graph representation: the 2-D P×P grid of sub-blocks described in §3.2 of
// the paper, with per-sub-block vertex indexes enabling selective loads of
// active vertices' edges, plus the HUS-Graph-style and Lumos-style
// preprocessors used for the Figure 8 comparison.
package partition

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sync/atomic"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// ManifestName is the device-relative path of the layout manifest.
const ManifestName = "manifest.json"

// Manifest is the metadata of a partitioned graph layout, persisted as JSON
// on the device.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	System        string `json:"system"` // "graphsd", "husgraph", "lumos"
	NumVertices   int    `json:"num_vertices"`
	NumEdges      int64  `json:"num_edges"`
	P             int    `json:"p"` // number of vertex intervals
	Weighted      bool   `json:"weighted"`
	// EdgeCounts[i][j] is the number of edges in sub-block (i, j). For
	// row-major layouts (husgraph, lumos) only EdgeCounts[i][0] is used.
	EdgeCounts [][]int64 `json:"edge_counts"`
	// Codec names the sub-block payload encoding: "raw" (fixed-width
	// records, also the meaning of the empty string in pre-v2 manifests)
	// or "delta" (per-source-run zigzag varints, graph.CodecDelta).
	Codec string `json:"codec,omitempty"`
	// BlockBytes[i][j] is the on-disk payload size of sub-block (i, j) in
	// bytes. Recorded by v2 grid builds; nil in v1 manifests and row-major
	// layouts, where payload size follows from the edge count.
	BlockBytes [][]int64 `json:"block_bytes,omitempty"`
	// BlockSums[i][j] is the CRC32C (Castagnoli) checksum of sub-block
	// (i, j)'s on-disk payload, verified on every full-block load so
	// corruption is reported at the block that caused it. Recorded by v2
	// grid builds; nil in v1 manifests, which load unverified.
	BlockSums [][]uint32 `json:"block_sums,omitempty"`
	// RowSums[i] / ColSums[j] are the CRC32C checksums of row and column
	// block payloads in row-major layouts (HUS-Graph writes both copies,
	// Lumos uses the grid). Nil when unrecorded.
	RowSums []uint32 `json:"row_sums,omitempty"`
	ColSums []uint32 `json:"col_sums,omitempty"`
}

// Layout is an opened partitioned graph on a device.
type Layout struct {
	Dev  *storage.Device
	Meta Manifest
	// PrepCPU is the in-memory CPU time (bucketing, sorting, encoding) the
	// preprocessor spent building this layout, exclusive of device writes.
	// Zero for layouts opened with Load.
	PrepCPU time.Duration

	// decodeNanos accumulates wall time spent decoding block payloads into
	// edges. Block-granular loads only — the per-vertex on-demand path skips
	// the clock so its tight loop stays unperturbed. Concurrent fetch
	// workers add to it, hence atomic.
	decodeNanos atomic.Int64
}

// noteDecode charges decode wall time since t0.
func (l *Layout) noteDecode(t0 time.Time) { l.decodeNanos.Add(time.Since(t0).Nanoseconds()) }

// DecodeTime returns the cumulative payload decode time of this layout.
// With pipelined prefetch the decodes run on fetch workers, so this can
// exceed the wall time attributable to decoding.
func (l *Layout) DecodeTime() time.Duration { return time.Duration(l.decodeNanos.Load()) }

// FormatVersion is the manifest format version written by this package.
// Version history:
//
//	1 — fixed-width edge records, fixed 8-byte index entries
//	2 — optional delta payload codec, varint-delta index entries,
//	    per-block on-disk sizes in the manifest
//
// Readers accept every version back to minFormatVersion.
const FormatVersion = 2

// minFormatVersion is the oldest manifest version still readable.
const minFormatVersion = 1

// Interval returns the half-open vertex range [lo, hi) of interval i.
// Intervals split [0, NumVertices) into P near-equal contiguous ranges.
func (m *Manifest) Interval(i int) (lo, hi int) {
	if i < 0 || i >= m.P {
		panic(fmt.Sprintf("partition: interval %d out of range [0,%d)", i, m.P))
	}
	per := (m.NumVertices + m.P - 1) / m.P
	lo = i * per
	hi = lo + per
	if hi > m.NumVertices {
		hi = m.NumVertices
	}
	if lo > m.NumVertices {
		lo = m.NumVertices
	}
	return lo, hi
}

// IntervalOf returns the interval that vertex v belongs to.
func (m *Manifest) IntervalOf(v graph.VertexID) int {
	per := (m.NumVertices + m.P - 1) / m.P
	return int(v) / per
}

// IntervalLen returns the number of vertices in interval i.
func (m *Manifest) IntervalLen(i int) int {
	lo, hi := m.Interval(i)
	return hi - lo
}

// EdgeRecordBytes returns the in-memory (decoded) record size of one edge,
// which is also the on-disk record size under the raw codec.
func (m *Manifest) EdgeRecordBytes() int {
	if m.Weighted {
		return graph.EdgeBytes + graph.WeightBytes
	}
	return graph.EdgeBytes
}

// BlockCodec returns the sub-block payload codec. Manifests that fail
// Validate aside, the codec string always parses; unknown strings fall back
// to raw.
func (m *Manifest) BlockCodec() graph.Codec {
	c, _ := graph.ParseCodec(m.Codec)
	return c
}

// EdgeBytesTotal returns the total decoded edge payload in bytes — the
// number the engine's memory budgeting (buffer charges, prefetch window,
// ChooseP) works in, independent of the on-disk codec.
func (m *Manifest) EdgeBytesTotal() int64 {
	return m.NumEdges * int64(m.EdgeRecordBytes())
}

// EdgeDiskBytesTotal returns the total on-disk edge payload in bytes: the
// sum of recorded block sizes when the manifest has them, otherwise the
// fixed-record total. This is the number the I/O cost model works in.
func (m *Manifest) EdgeDiskBytesTotal() int64 {
	if m.BlockBytes == nil {
		return m.EdgeBytesTotal()
	}
	var total int64
	for _, row := range m.BlockBytes {
		for _, b := range row {
			total += b
		}
	}
	return total
}

// SubBlockEdges returns the edge count of sub-block (i, j).
func (m *Manifest) SubBlockEdges(i, j int) int64 {
	return m.EdgeCounts[i][j]
}

// SubBlockBytes returns the decoded size of sub-block (i, j) in bytes —
// what the edges occupy in memory once loaded, used for buffer charging and
// prefetch-window admission.
func (m *Manifest) SubBlockBytes(i, j int) int64 {
	return m.EdgeCounts[i][j] * int64(m.EdgeRecordBytes())
}

// SubBlockDiskBytes returns the on-disk payload size of sub-block (i, j):
// the recorded compressed size when available, the fixed-record size
// otherwise.
func (m *Manifest) SubBlockDiskBytes(i, j int) int64 {
	if m.BlockBytes == nil {
		return m.SubBlockBytes(i, j)
	}
	return m.BlockBytes[i][j]
}

// RowDiskBytes returns, for each source interval, the summed on-disk payload
// of its grid row's sub-blocks. The semi-external-memory cost model uses it
// to price a full iteration that skips every block of an inactive row.
func (m *Manifest) RowDiskBytes() []int64 {
	rows := make([]int64, m.P)
	for i := range rows {
		for j := 0; j < m.P; j++ {
			rows[i] += m.SubBlockDiskBytes(i, j)
		}
	}
	return rows
}

// NonEmptyBlocksPerRow returns, for each source interval, how many of its
// grid row's sub-blocks hold at least one edge — the per-row seek cap of the
// on-demand cost model (iosched.Config.BlocksPerRow): selective reads never
// open an empty sub-block.
func (m *Manifest) NonEmptyBlocksPerRow() []int {
	rows := make([]int, m.P)
	for i, row := range m.EdgeCounts {
		for _, n := range row {
			if n > 0 {
				rows[i]++
			}
		}
	}
	return rows
}

// SelectiveDiskBytesTotal returns the on-disk bytes that per-vertex
// selective reads would move for the whole edge set. Under the delta codec
// this is the recorded block sizes minus each block's edge-count header:
// ReadVertexEdges seeks to byte-indexed run offsets and never reads the
// header, which only full-block streams pay for. Raw blocks have no header.
func (m *Manifest) SelectiveDiskBytesTotal() int64 {
	if m.BlockBytes == nil || m.BlockCodec() != graph.CodecDelta {
		return m.EdgeDiskBytesTotal()
	}
	var total int64
	for i, row := range m.BlockBytes {
		for j, b := range row {
			if b == 0 {
				continue
			}
			total += b - int64(uvarintLen(uint64(m.EdgeCounts[i][j])))
		}
	}
	return total
}

// uvarintLen returns the encoded size of x as a binary uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// castagnoli is the CRC32C polynomial table behind every payload checksum
// in the layout; hardware-accelerated on amd64/arm64 via hash/crc32.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload — the integrity sum recorded in
// manifests and checkpoint headers.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// VerifyBlockSum checks payload against the recorded checksum of sub-block
// (i, j). Layouts without recorded sums (v1 manifests) verify nothing.
func (m *Manifest) VerifyBlockSum(i, j int, payload []byte) error {
	if m.BlockSums == nil {
		return nil
	}
	return verifySum(m.BlockSums[i][j], payload)
}

func verifySum(want uint32, payload []byte) error {
	if got := Checksum(payload); got != want {
		return fmt.Errorf("checksum mismatch: payload crc32c %08x, manifest records %08x (%d bytes)",
			got, want, len(payload))
	}
	return nil
}

// Validate checks internal consistency of the manifest.
func (m *Manifest) Validate() error {
	if m.FormatVersion < minFormatVersion || m.FormatVersion > FormatVersion {
		return fmt.Errorf("partition: unsupported format version %d (supported %d..%d)",
			m.FormatVersion, minFormatVersion, FormatVersion)
	}
	codec, err := graph.ParseCodec(m.Codec)
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	if codec != graph.CodecRaw && m.FormatVersion < 2 {
		return fmt.Errorf("partition: codec %q requires format version >= 2, got %d", m.Codec, m.FormatVersion)
	}
	if codec == graph.CodecDelta && m.BlockBytes == nil {
		return fmt.Errorf("partition: codec %q without recorded block sizes", m.Codec)
	}
	if m.BlockBytes != nil {
		if len(m.BlockBytes) != m.P {
			return fmt.Errorf("partition: block size rows %d != P %d", len(m.BlockBytes), m.P)
		}
		for i, row := range m.BlockBytes {
			for _, b := range row {
				if b < 0 {
					return fmt.Errorf("partition: negative block size in row %d", i)
				}
			}
		}
	}
	if m.BlockSums != nil {
		if len(m.BlockSums) != m.P {
			return fmt.Errorf("partition: block checksum rows %d != P %d", len(m.BlockSums), m.P)
		}
		for i, row := range m.BlockSums {
			if len(row) != m.P {
				return fmt.Errorf("partition: block checksum row %d has %d entries, want %d", i, len(row), m.P)
			}
		}
	}
	if m.RowSums != nil && len(m.RowSums) != m.P {
		return fmt.Errorf("partition: row checksums %d != P %d", len(m.RowSums), m.P)
	}
	if m.ColSums != nil && len(m.ColSums) != m.P {
		return fmt.Errorf("partition: column checksums %d != P %d", len(m.ColSums), m.P)
	}
	if m.NumVertices < 0 || m.NumEdges < 0 {
		return fmt.Errorf("partition: negative counts v=%d e=%d", m.NumVertices, m.NumEdges)
	}
	if m.P <= 0 {
		return fmt.Errorf("partition: non-positive interval count %d", m.P)
	}
	if len(m.EdgeCounts) != m.P {
		return fmt.Errorf("partition: edge count rows %d != P %d", len(m.EdgeCounts), m.P)
	}
	var total int64
	for i, row := range m.EdgeCounts {
		for _, c := range row {
			if c < 0 {
				return fmt.Errorf("partition: negative edge count in row %d", i)
			}
			total += c
		}
	}
	if total != m.NumEdges {
		return fmt.Errorf("partition: edge counts sum %d != NumEdges %d", total, m.NumEdges)
	}
	return nil
}

// SubBlockName returns the device-relative file name of sub-block (i, j)'s
// edge payload.
func SubBlockName(i, j int) string { return fmt.Sprintf("blocks/b_%04d_%04d.edges", i, j) }

// IndexName returns the device-relative file name of sub-block (i, j)'s
// per-vertex offset index.
func IndexName(i, j int) string { return fmt.Sprintf("blocks/b_%04d_%04d.idx", i, j) }

// RowName returns the file name of row block i in row-major layouts
// (HUS-Graph and Lumos preprocessors).
func RowName(i int) string { return fmt.Sprintf("rows/r_%04d.edges", i) }

// ColName returns the file name of column block i (edges grouped by
// destination interval), used by the HUS-Graph layout's second edge copy.
func ColName(i int) string { return fmt.Sprintf("cols/c_%04d.edges", i) }

// DegreesName is the file holding per-vertex out-degrees (uint32 each).
const DegreesName = "degrees.bin"

// ChooseP returns the number of intervals needed so that one row of the
// grid (an edge block) fits in the memory budget, which is how the paper
// sizes P under its "memory limited to 5% of graph data" rule. The result
// is clamped to [1, maxP].
func ChooseP(totalEdgeBytes, memBudget int64, maxP int) int {
	if memBudget <= 0 || totalEdgeBytes <= 0 {
		return 1
	}
	p := int((totalEdgeBytes + memBudget - 1) / memBudget)
	if p < 1 {
		p = 1
	}
	if maxP > 0 && p > maxP {
		p = maxP
	}
	return p
}

// saveManifest writes the manifest to the device.
func saveManifest(dev *storage.Device, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("partition: encoding manifest: %w", err)
	}
	return dev.WriteFile(ManifestName, data)
}

// Load opens an existing layout on the device.
func Load(dev *storage.Device) (*Layout, error) {
	data, err := dev.ReadFile(ManifestName)
	if err != nil {
		return nil, fmt.Errorf("partition: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("partition: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: m}, nil
}
