// Package partition implements GraphSD's preprocessing phase and on-disk
// graph representation: the 2-D P×P grid of sub-blocks described in §3.2 of
// the paper, with per-sub-block vertex indexes enabling selective loads of
// active vertices' edges, plus the HUS-Graph-style and Lumos-style
// preprocessors used for the Figure 8 comparison.
package partition

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sync/atomic"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

// ManifestName is the device-relative path of the layout manifest.
const ManifestName = "manifest.json"

// Manifest is the metadata of a partitioned graph layout, persisted as JSON
// on the device.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	System        string `json:"system"` // "graphsd", "husgraph", "lumos"
	NumVertices   int    `json:"num_vertices"`
	NumEdges      int64  `json:"num_edges"`
	P             int    `json:"p"` // number of vertex intervals
	Weighted      bool   `json:"weighted"`
	// EdgeCounts[i][j] is the number of edges in sub-block (i, j). For
	// row-major layouts (husgraph, lumos) only EdgeCounts[i][0] is used.
	EdgeCounts [][]int64 `json:"edge_counts"`
	// Codec names the sub-block payload encoding: "raw" (fixed-width
	// records, also the meaning of the empty string in pre-v2 manifests)
	// or "delta" (per-source-run zigzag varints, graph.CodecDelta).
	Codec string `json:"codec,omitempty"`
	// BlockBytes[i][j] is the on-disk payload size of sub-block (i, j) in
	// bytes. Recorded by v2 grid builds; nil in v1 manifests and row-major
	// layouts, where payload size follows from the edge count.
	BlockBytes [][]int64 `json:"block_bytes,omitempty"`
	// BlockSums[i][j] is the CRC32C (Castagnoli) checksum of sub-block
	// (i, j)'s on-disk payload, verified on every full-block load so
	// corruption is reported at the block that caused it. Recorded by v2
	// grid builds; nil in v1 manifests, which load unverified.
	BlockSums [][]uint32 `json:"block_sums,omitempty"`
	// RowSums[i] / ColSums[j] are the CRC32C checksums of row and column
	// block payloads in row-major layouts (HUS-Graph writes both copies,
	// Lumos uses the grid). Nil when unrecorded.
	RowSums []uint32 `json:"row_sums,omitempty"`
	ColSums []uint32 `json:"col_sums,omitempty"`

	// Generation counts compaction publishes of a mutable layout. Immutable
	// layouts stay at 0. Every compaction writes the blocks it rewrites
	// under new generation-qualified file names and bumps this, so a crash
	// between block writes and the manifest publish leaves only orphan
	// files, never a half-updated layout.
	Generation int `json:"generation,omitempty"`
	// BlockGens[i][j] is the generation whose file holds sub-block (i, j)'s
	// current payload and index: 0 names the original blocks/b_iiii_jjjj.*
	// paths, g > 0 the generation-qualified ones. Nil means all zero.
	BlockGens [][]int `json:"block_gens,omitempty"`
	// DegreesGen versions the out-degree table the same way; compactions
	// that fold delta-layer degree adjustments rewrite it under a new name.
	DegreesGen int `json:"degrees_gen,omitempty"`
	// DeltaLayers lists the sealed, not-yet-compacted mutation layers
	// overlaying the base grid, oldest first. The counts, sizes and sums
	// above always describe the base blocks only; readers overlay the
	// layers through a merged view (see Overlay).
	DeltaLayers []LayerRef `json:"delta_layers,omitempty"`
	// MutationsTotal counts every mutation sealed into a delta layer over
	// the lifetime of the layout (compaction does not reset it), so the
	// serving metrics survive a restart.
	MutationsTotal int64 `json:"mutations_total,omitempty"`
	// LastLayerID is the highest delta-layer ID ever sealed. Compaction
	// removes layers from DeltaLayers but never rolls this back, so layer
	// IDs — and their payload file names — are never reused while an old
	// file might still await garbage collection.
	LastLayerID int `json:"last_layer_id,omitempty"`
}

// LayerRef describes one sealed delta layer in the manifest: which
// sub-blocks it touches, the on-device payload of each, and the sparse
// out-degree adjustments its mutations imply. A layer is immutable once
// published; compaction folds a prefix of the layer list into the base grid
// and removes it from the manifest in the same atomic publish.
type LayerRef struct {
	// ID is the layer's unique, monotonically increasing identifier; it
	// names the layer's block payload files (LayerBlockName).
	ID int `json:"id"`
	// Mutations is the number of acknowledged mutations sealed into this
	// layer (after per-key normalization, one per distinct mutated key).
	Mutations int64 `json:"mutations"`
	// Blocks lists the touched sub-blocks, in (i, j) order.
	Blocks []LayerBlock `json:"blocks"`
	// DegVertices/DegDeltas record the layer's sparse out-degree
	// adjustments: degree(DegVertices[k]) changes by DegDeltas[k].
	DegVertices []uint32 `json:"deg_vertices,omitempty"`
	DegDeltas   []int32  `json:"deg_deltas,omitempty"`
}

// LayerBlock is one sub-block's slice of a delta layer.
type LayerBlock struct {
	I int `json:"i"`
	J int `json:"j"`
	// Upserts and Tombs count the layer's inserted/replaced keys and
	// deletion tombstones in this sub-block.
	Upserts int64 `json:"upserts"`
	Tombs   int64 `json:"tombs,omitempty"`
	// EdgeDelta is how the layer changes the sub-block's merged edge count
	// (inserts of absent keys add, deletes of present keys subtract —
	// counting duplicate base copies, which a mutation removes together).
	EdgeDelta int64 `json:"edge_delta"`
	// Bytes and Sum are the on-device size and CRC32C of the layer's block
	// payload file.
	Bytes int64  `json:"bytes"`
	Sum   uint32 `json:"sum"`
}

// Layout is an opened partitioned graph on a device.
type Layout struct {
	Dev  *storage.Device
	Meta Manifest
	// Overlay, when non-nil, is a pinned set of pending edge mutations
	// (sealed delta layers plus a frozen memtable snapshot) merged into
	// every read: LoadSubBlockInto, StreamSubBlock, LoadSubBlockPayload,
	// ReadVertexEdges and LoadDegrees all return the merged view. In that
	// case Meta must be the *merged* manifest — EdgeCounts, NumEdges and
	// BlockBytes adjusted for the overlay — while BlockSums keep the base
	// sums (only base payloads are verified; overlay output is synthesized
	// in memory). Nil for immutable layouts.
	Overlay Overlay
	// PrepCPU is the in-memory CPU time (bucketing, sorting, encoding) the
	// preprocessor spent building this layout, exclusive of device writes.
	// Zero for layouts opened with Load.
	PrepCPU time.Duration

	// decodeNanos accumulates wall time spent decoding block payloads into
	// edges. Block-granular loads only — the per-vertex on-demand path skips
	// the clock so its tight loop stays unperturbed. Concurrent fetch
	// workers add to it, hence atomic.
	decodeNanos atomic.Int64
}

// noteDecode charges decode wall time since t0.
func (l *Layout) noteDecode(t0 time.Time) { l.decodeNanos.Add(time.Since(t0).Nanoseconds()) }

// DecodeTime returns the cumulative payload decode time of this layout.
// With pipelined prefetch the decodes run on fetch workers, so this can
// exceed the wall time attributable to decoding.
func (l *Layout) DecodeTime() time.Duration { return time.Duration(l.decodeNanos.Load()) }

// FormatVersion is the manifest format version written by this package.
// Version history:
//
//	1 — fixed-width edge records, fixed 8-byte index entries
//	2 — optional delta payload codec, varint-delta index entries,
//	    per-block on-disk sizes in the manifest
//
// Readers accept every version back to minFormatVersion.
const FormatVersion = 2

// minFormatVersion is the oldest manifest version still readable.
const minFormatVersion = 1

// Interval returns the half-open vertex range [lo, hi) of interval i.
// Intervals split [0, NumVertices) into P near-equal contiguous ranges.
func (m *Manifest) Interval(i int) (lo, hi int) {
	if i < 0 || i >= m.P {
		panic(fmt.Sprintf("partition: interval %d out of range [0,%d)", i, m.P))
	}
	per := (m.NumVertices + m.P - 1) / m.P
	lo = i * per
	hi = lo + per
	if hi > m.NumVertices {
		hi = m.NumVertices
	}
	if lo > m.NumVertices {
		lo = m.NumVertices
	}
	return lo, hi
}

// IntervalOf returns the interval that vertex v belongs to.
func (m *Manifest) IntervalOf(v graph.VertexID) int {
	per := (m.NumVertices + m.P - 1) / m.P
	return int(v) / per
}

// IntervalLen returns the number of vertices in interval i.
func (m *Manifest) IntervalLen(i int) int {
	lo, hi := m.Interval(i)
	return hi - lo
}

// EdgeRecordBytes returns the in-memory (decoded) record size of one edge,
// which is also the on-disk record size under the raw codec.
func (m *Manifest) EdgeRecordBytes() int {
	if m.Weighted {
		return graph.EdgeBytes + graph.WeightBytes
	}
	return graph.EdgeBytes
}

// BlockCodec returns the sub-block payload codec. Manifests that fail
// Validate aside, the codec string always parses; unknown strings fall back
// to raw.
func (m *Manifest) BlockCodec() graph.Codec {
	c, _ := graph.ParseCodec(m.Codec)
	return c
}

// EdgeBytesTotal returns the total decoded edge payload in bytes — the
// number the engine's memory budgeting (buffer charges, prefetch window,
// ChooseP) works in, independent of the on-disk codec.
func (m *Manifest) EdgeBytesTotal() int64 {
	return m.NumEdges * int64(m.EdgeRecordBytes())
}

// EdgeDiskBytesTotal returns the total on-disk edge payload in bytes: the
// sum of recorded block sizes when the manifest has them, otherwise the
// fixed-record total. This is the number the I/O cost model works in.
func (m *Manifest) EdgeDiskBytesTotal() int64 {
	if m.BlockBytes == nil {
		return m.EdgeBytesTotal()
	}
	var total int64
	for _, row := range m.BlockBytes {
		for _, b := range row {
			total += b
		}
	}
	return total
}

// SubBlockEdges returns the edge count of sub-block (i, j).
func (m *Manifest) SubBlockEdges(i, j int) int64 {
	return m.EdgeCounts[i][j]
}

// SubBlockBytes returns the decoded size of sub-block (i, j) in bytes —
// what the edges occupy in memory once loaded, used for buffer charging and
// prefetch-window admission.
func (m *Manifest) SubBlockBytes(i, j int) int64 {
	return m.EdgeCounts[i][j] * int64(m.EdgeRecordBytes())
}

// SubBlockDiskBytes returns the on-disk payload size of sub-block (i, j):
// the recorded compressed size when available, the fixed-record size
// otherwise.
func (m *Manifest) SubBlockDiskBytes(i, j int) int64 {
	if m.BlockBytes == nil {
		return m.SubBlockBytes(i, j)
	}
	return m.BlockBytes[i][j]
}

// RowDiskBytes returns, for each source interval, the summed on-disk payload
// of its grid row's sub-blocks. The semi-external-memory cost model uses it
// to price a full iteration that skips every block of an inactive row.
func (m *Manifest) RowDiskBytes() []int64 {
	rows := make([]int64, m.P)
	for i := range rows {
		for j := 0; j < m.P; j++ {
			rows[i] += m.SubBlockDiskBytes(i, j)
		}
	}
	return rows
}

// NonEmptyBlocksPerRow returns, for each source interval, how many of its
// grid row's sub-blocks hold at least one edge — the per-row seek cap of the
// on-demand cost model (iosched.Config.BlocksPerRow): selective reads never
// open an empty sub-block.
func (m *Manifest) NonEmptyBlocksPerRow() []int {
	rows := make([]int, m.P)
	for i, row := range m.EdgeCounts {
		for _, n := range row {
			if n > 0 {
				rows[i]++
			}
		}
	}
	return rows
}

// SelectiveDiskBytesTotal returns the on-disk bytes that per-vertex
// selective reads would move for the whole edge set. Under the delta codec
// this is the recorded block sizes minus each block's edge-count header:
// ReadVertexEdges seeks to byte-indexed run offsets and never reads the
// header, which only full-block streams pay for. Raw blocks have no header.
func (m *Manifest) SelectiveDiskBytesTotal() int64 {
	if m.BlockBytes == nil || m.BlockCodec() != graph.CodecDelta {
		return m.EdgeDiskBytesTotal()
	}
	var total int64
	for i, row := range m.BlockBytes {
		for j, b := range row {
			if b == 0 {
				continue
			}
			total += b - int64(uvarintLen(uint64(m.EdgeCounts[i][j])))
		}
	}
	return total
}

// uvarintLen returns the encoded size of x as a binary uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// castagnoli is the CRC32C polynomial table behind every payload checksum
// in the layout; hardware-accelerated on amd64/arm64 via hash/crc32.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload — the integrity sum recorded in
// manifests and checkpoint headers.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// VerifyBlockSum checks payload against the recorded checksum of sub-block
// (i, j). Layouts without recorded sums (v1 manifests) verify nothing.
func (m *Manifest) VerifyBlockSum(i, j int, payload []byte) error {
	if m.BlockSums == nil {
		return nil
	}
	return verifySum(m.BlockSums[i][j], payload)
}

func verifySum(want uint32, payload []byte) error {
	if got := Checksum(payload); got != want {
		return fmt.Errorf("checksum mismatch: payload crc32c %08x, manifest records %08x (%d bytes)",
			got, want, len(payload))
	}
	return nil
}

// Validate checks internal consistency of the manifest.
func (m *Manifest) Validate() error {
	if m.FormatVersion < minFormatVersion || m.FormatVersion > FormatVersion {
		return fmt.Errorf("partition: unsupported format version %d (supported %d..%d)",
			m.FormatVersion, minFormatVersion, FormatVersion)
	}
	codec, err := graph.ParseCodec(m.Codec)
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	if codec != graph.CodecRaw && m.FormatVersion < 2 {
		return fmt.Errorf("partition: codec %q requires format version >= 2, got %d", m.Codec, m.FormatVersion)
	}
	if codec == graph.CodecDelta && m.BlockBytes == nil {
		return fmt.Errorf("partition: codec %q without recorded block sizes", m.Codec)
	}
	if m.BlockBytes != nil {
		if len(m.BlockBytes) != m.P {
			return fmt.Errorf("partition: block size rows %d != P %d", len(m.BlockBytes), m.P)
		}
		for i, row := range m.BlockBytes {
			for _, b := range row {
				if b < 0 {
					return fmt.Errorf("partition: negative block size in row %d", i)
				}
			}
		}
	}
	if m.BlockSums != nil {
		if len(m.BlockSums) != m.P {
			return fmt.Errorf("partition: block checksum rows %d != P %d", len(m.BlockSums), m.P)
		}
		for i, row := range m.BlockSums {
			if len(row) != m.P {
				return fmt.Errorf("partition: block checksum row %d has %d entries, want %d", i, len(row), m.P)
			}
		}
	}
	if m.RowSums != nil && len(m.RowSums) != m.P {
		return fmt.Errorf("partition: row checksums %d != P %d", len(m.RowSums), m.P)
	}
	if m.ColSums != nil && len(m.ColSums) != m.P {
		return fmt.Errorf("partition: column checksums %d != P %d", len(m.ColSums), m.P)
	}
	if m.NumVertices < 0 || m.NumEdges < 0 {
		return fmt.Errorf("partition: negative counts v=%d e=%d", m.NumVertices, m.NumEdges)
	}
	if m.P <= 0 {
		return fmt.Errorf("partition: non-positive interval count %d", m.P)
	}
	if len(m.EdgeCounts) != m.P {
		return fmt.Errorf("partition: edge count rows %d != P %d", len(m.EdgeCounts), m.P)
	}
	var total int64
	for i, row := range m.EdgeCounts {
		for _, c := range row {
			if c < 0 {
				return fmt.Errorf("partition: negative edge count in row %d", i)
			}
			total += c
		}
	}
	if total != m.NumEdges {
		return fmt.Errorf("partition: edge counts sum %d != NumEdges %d", total, m.NumEdges)
	}
	if m.Generation < 0 || m.DegreesGen < 0 || m.DegreesGen > m.Generation {
		return fmt.Errorf("partition: bad generations gen=%d degrees=%d", m.Generation, m.DegreesGen)
	}
	if m.BlockGens != nil {
		if len(m.BlockGens) != m.P {
			return fmt.Errorf("partition: block generation rows %d != P %d", len(m.BlockGens), m.P)
		}
		for i, row := range m.BlockGens {
			if len(row) != m.P {
				return fmt.Errorf("partition: block generation row %d has %d entries, want %d", i, len(row), m.P)
			}
			for _, g := range row {
				if g < 0 || g > m.Generation {
					return fmt.Errorf("partition: block generation %d outside [0,%d] in row %d", g, m.Generation, i)
				}
			}
		}
	}
	lastID := 0
	for k, l := range m.DeltaLayers {
		if l.ID <= lastID {
			return fmt.Errorf("partition: delta layer IDs not increasing at entry %d (%d after %d)", k, l.ID, lastID)
		}
		lastID = l.ID
		if len(l.DegVertices) != len(l.DegDeltas) {
			return fmt.Errorf("partition: delta layer %d degree arrays disagree (%d vs %d)", l.ID, len(l.DegVertices), len(l.DegDeltas))
		}
		for _, b := range l.Blocks {
			if b.I < 0 || b.I >= m.P || b.J < 0 || b.J >= m.P {
				return fmt.Errorf("partition: delta layer %d block (%d,%d) outside grid", l.ID, b.I, b.J)
			}
			if b.Bytes < 0 || b.Upserts < 0 || b.Tombs < 0 {
				return fmt.Errorf("partition: delta layer %d block (%d,%d) negative sizes", l.ID, b.I, b.J)
			}
		}
	}
	return nil
}

// OverlayEdge is one resolved pending mutation: an upsert of Edge, or — when
// Del is set — a tombstone deleting every base copy of (Edge.Src, Edge.Dst).
type OverlayEdge struct {
	Edge graph.Edge
	Del  bool
}

// Overlay is a pinned, immutable set of pending edge mutations layered over
// a layout's base grid — sealed delta layers plus a frozen memtable
// snapshot, resolved so each mutated (src, dst) key appears exactly once.
// The delta package provides the implementation; partition only consumes it,
// which keeps the read path free of an upward dependency.
type Overlay interface {
	// BlockDelta returns sub-block (i, j)'s resolved mutations sorted by
	// (Src, Dst), or nil when the block has none. The slice is immutable.
	BlockDelta(i, j int) []OverlayEdge
	// BlockVersion returns the monotone content version of sub-block
	// (i, j) as of the pin — the generation component of cache keys.
	BlockVersion(i, j int) int64
	// AdjustDegrees applies the overlay's out-degree adjustments in place
	// to a base degree table.
	AdjustDegrees(deg []uint32)
}

// BlockVersion returns the content version of sub-block (i, j) for cache
// keying: the overlay's pinned version, or 0 for immutable layouts.
func (l *Layout) BlockVersion(i, j int) int64 {
	if l.Overlay == nil {
		return 0
	}
	return l.Overlay.BlockVersion(i, j)
}

// overlayDelta returns the overlay's resolved mutations for (i, j), nil
// when there is no overlay or it leaves the block untouched.
func (l *Layout) overlayDelta(i, j int) []OverlayEdge {
	if l.Overlay == nil {
		return nil
	}
	return l.Overlay.BlockDelta(i, j)
}

// SubBlockName returns the device-relative file name of sub-block (i, j)'s
// edge payload at generation 0.
func SubBlockName(i, j int) string { return fmt.Sprintf("blocks/b_%04d_%04d.edges", i, j) }

// IndexName returns the device-relative file name of sub-block (i, j)'s
// per-vertex offset index at generation 0.
func IndexName(i, j int) string { return fmt.Sprintf("blocks/b_%04d_%04d.idx", i, j) }

// SubBlockNameAt / IndexNameAt return the generation-qualified file names
// compactions write rewritten sub-blocks under. Generation 0 is the
// original (un-qualified) name, so immutable layouts are a degenerate case.
func SubBlockNameAt(gen, i, j int) string {
	if gen == 0 {
		return SubBlockName(i, j)
	}
	return fmt.Sprintf("blocks/g%06d_b_%04d_%04d.edges", gen, i, j)
}

func IndexNameAt(gen, i, j int) string {
	if gen == 0 {
		return IndexName(i, j)
	}
	return fmt.Sprintf("blocks/g%06d_b_%04d_%04d.idx", gen, i, j)
}

// LayerBlockName returns the file name of delta layer id's payload for
// sub-block (i, j).
func LayerBlockName(id, i, j int) string {
	return fmt.Sprintf("delta/l%06d_b_%04d_%04d.mut", id, i, j)
}

// DegreesNameAt returns the generation-qualified out-degree table name.
func DegreesNameAt(gen int) string {
	if gen == 0 {
		return DegreesName
	}
	return fmt.Sprintf("degrees_g%06d.bin", gen)
}

// BlockGen returns the generation of sub-block (i, j)'s current files.
func (m *Manifest) BlockGen(i, j int) int {
	if m.BlockGens == nil {
		return 0
	}
	return m.BlockGens[i][j]
}

// BlockName returns the current payload file of sub-block (i, j), resolving
// the per-block generation.
func (m *Manifest) BlockName(i, j int) string { return SubBlockNameAt(m.BlockGen(i, j), i, j) }

// BlockIndexName returns the current index file of sub-block (i, j).
func (m *Manifest) BlockIndexName(i, j int) string { return IndexNameAt(m.BlockGen(i, j), i, j) }

// DegreesFile returns the current out-degree table file name.
func (m *Manifest) DegreesFile() string { return DegreesNameAt(m.DegreesGen) }

// DeltaDiskBytes returns the summed on-device payload of the manifest's
// sealed delta layers — the "pending compaction" volume surfaced by stats
// and metrics.
func (m *Manifest) DeltaDiskBytes() int64 {
	var total int64
	for _, l := range m.DeltaLayers {
		for _, b := range l.Blocks {
			total += b.Bytes
		}
	}
	return total
}

// RowName returns the file name of row block i in row-major layouts
// (HUS-Graph and Lumos preprocessors).
func RowName(i int) string { return fmt.Sprintf("rows/r_%04d.edges", i) }

// ColName returns the file name of column block i (edges grouped by
// destination interval), used by the HUS-Graph layout's second edge copy.
func ColName(i int) string { return fmt.Sprintf("cols/c_%04d.edges", i) }

// DegreesName is the file holding per-vertex out-degrees (uint32 each).
const DegreesName = "degrees.bin"

// ChooseP returns the number of intervals needed so that one row of the
// grid (an edge block) fits in the memory budget, which is how the paper
// sizes P under its "memory limited to 5% of graph data" rule. The result
// is clamped to [1, maxP].
func ChooseP(totalEdgeBytes, memBudget int64, maxP int) int {
	if memBudget <= 0 || totalEdgeBytes <= 0 {
		return 1
	}
	p := int((totalEdgeBytes + memBudget - 1) / memBudget)
	if p < 1 {
		p = 1
	}
	if maxP > 0 && p > maxP {
		p = maxP
	}
	return p
}

// saveManifest writes the manifest to the device.
func saveManifest(dev *storage.Device, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("partition: encoding manifest: %w", err)
	}
	return dev.WriteFile(ManifestName, data)
}

// SaveManifest atomically publishes m as the device's manifest — the single
// commit point for delta-layer seals and compactions: WriteFile stages the
// bytes in a temp file and renames, so readers observe either the old or
// the new manifest, never a prefix.
func SaveManifest(dev *storage.Device, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return saveManifest(dev, m)
}

// Load opens an existing layout on the device.
func Load(dev *storage.Device) (*Layout, error) {
	data, err := dev.ReadFile(ManifestName)
	if err != nil {
		return nil, fmt.Errorf("partition: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("partition: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Layout{Dev: dev, Meta: m}, nil
}
