package partition

import (
	"testing"
	"testing/quick"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/storage"
)

func testDevice(t *testing.T) *storage.Device {
	t.Helper()
	d, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// paperGraph is the 6-vertex example of the paper's Figure 2 (0-based).
func paperGraph() *graph.Graph {
	return &graph.Graph{
		NumVertices: 6,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 4},
			{Src: 1, Dst: 2}, {Src: 2, Dst: 0},
			{Src: 2, Dst: 3}, {Src: 3, Dst: 5},
			{Src: 4, Dst: 2}, {Src: 5, Dst: 4},
		},
	}
}

func TestIntervals(t *testing.T) {
	m := Manifest{NumVertices: 10, P: 3}
	// per = ceil(10/3) = 4 -> [0,4) [4,8) [8,10)
	cases := []struct{ i, lo, hi int }{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}
	for _, c := range cases {
		lo, hi := m.Interval(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Interval(%d) = [%d,%d), want [%d,%d)", c.i, lo, hi, c.lo, c.hi)
		}
		if m.IntervalLen(c.i) != c.hi-c.lo {
			t.Errorf("IntervalLen(%d) = %d", c.i, m.IntervalLen(c.i))
		}
	}
	for v := 0; v < 10; v++ {
		i := m.IntervalOf(graph.VertexID(v))
		lo, hi := m.Interval(i)
		if v < lo || v >= hi {
			t.Errorf("IntervalOf(%d) = %d, but interval is [%d,%d)", v, i, lo, hi)
		}
	}
}

func TestIntervalPanicsOutOfRange(t *testing.T) {
	m := Manifest{NumVertices: 10, P: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("Interval(2) did not panic")
		}
	}()
	m.Interval(2)
}

func TestChooseP(t *testing.T) {
	cases := []struct {
		bytes, budget int64
		maxP, want    int
	}{
		{1000, 100, 0, 10},
		{1000, 1000, 0, 1},
		{1001, 1000, 0, 2},
		{1000, 0, 0, 1},
		{0, 100, 0, 1},
		{100000, 10, 16, 16},
	}
	for _, c := range cases {
		if got := ChooseP(c.bytes, c.budget, c.maxP); got != c.want {
			t.Errorf("ChooseP(%d,%d,%d) = %d, want %d", c.bytes, c.budget, c.maxP, got, c.want)
		}
	}
}

func TestBuildAndLoadRoundTrip(t *testing.T) {
	dev := testDevice(t)
	g := paperGraph()
	l, err := Build(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.System != "graphsd" || l.Meta.P != 2 || l.Meta.NumEdges != 8 {
		t.Fatalf("manifest = %+v", l.Meta)
	}

	// Reload from disk.
	l2, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Meta.Validate(); err != nil {
		t.Fatal(err)
	}

	// Figure 2 of the paper: with intervals {0,1,2} and {3,4,5} the grid is
	// (0,0): 0->1, 1->2, 2->0   (0,1): 0->4, 2->3
	// (1,0): 4->2               (1,1): 3->5, 5->4
	wantCounts := [][]int64{{3, 2}, {1, 2}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if l2.Meta.SubBlockEdges(i, j) != wantCounts[i][j] {
				t.Errorf("sub-block (%d,%d) edges = %d, want %d", i, j,
					l2.Meta.SubBlockEdges(i, j), wantCounts[i][j])
			}
		}
	}

	edges, err := l2.LoadSubBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	if len(edges) != len(want) {
		t.Fatalf("sub-block (0,0) = %v", edges)
	}
	for k := range want {
		if edges[k] != want[k] {
			t.Fatalf("sub-block (0,0) = %v, want %v", edges, want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	dev := testDevice(t)
	if _, err := Build(dev, paperGraph(), 0); err == nil {
		t.Error("P=0 accepted")
	}
	bad := &graph.Graph{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 5}}}
	if _, err := Build(dev, bad, 1); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestIndexLocatesEveryVertex(t *testing.T) {
	dev := testDevice(t)
	g, err := gen.RMAT(8, 8, gen.Graph500, 3)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	l, err := Build(dev, g, p)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct every vertex's per-sub-block edges via the index and
	// compare with a direct filter of the original edge list.
	for i := 0; i < p; i++ {
		lo, hi := l.Meta.Interval(i)
		for j := 0; j < p; j++ {
			idx, err := l.LoadIndex(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if len(idx.Rec) != hi-lo+1 {
				t.Fatalf("index (%d,%d) has %d entries, want %d", i, j, len(idx.Rec), hi-lo+1)
			}
			r, err := l.OpenSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			var buf []byte
			for v := lo; v < hi; v++ {
				var want []graph.Edge
				for _, e := range g.Edges {
					if e.Src == graph.VertexID(v) && l.Meta.IntervalOf(e.Dst) == j {
						want = append(want, e)
					}
				}
				var got []graph.Edge
				if r != nil {
					got, buf, err = l.ReadVertexEdges(r, idx, i, graph.VertexID(v), buf)
					if err != nil {
						t.Fatal(err)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("vertex %d sub-block (%d,%d): %d edges, want %d", v, i, j, len(got), len(want))
				}
				for _, e := range got {
					if e.Src != graph.VertexID(v) || l.Meta.IntervalOf(e.Dst) != j {
						t.Fatalf("vertex %d got foreign edge %v", v, e)
					}
				}
			}
			if r != nil {
				r.Close()
			}
		}
	}
}

func TestReadVertexEdgesOutsideInterval(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, paperGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := l.LoadIndex(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := l.OpenSubBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := l.ReadVertexEdges(r, idx, 0, 5, nil); err == nil {
		t.Fatal("vertex outside interval accepted")
	}
}

func TestLoadDegrees(t *testing.T) {
	dev := testDevice(t)
	g := paperGraph()
	l, err := Build(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := l.LoadDegrees()
	if err != nil {
		t.Fatal(err)
	}
	want := g.OutDegrees()
	for v := range want {
		if deg[v] != want[v] {
			t.Fatalf("degree(%d) = %d, want %d", v, deg[v], want[v])
		}
	}
}

func TestEmptySubBlocksCostNothing(t *testing.T) {
	dev := testDevice(t)
	// A chain graph partitioned with P=4 leaves many empty off-diagonal blocks.
	g := gen.Chain(16)
	l, err := Build(dev, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	edges, err := l.LoadSubBlock(0, 3) // chain never jumps 3 intervals
	if err != nil || edges != nil {
		t.Fatalf("empty block load = %v, %v", edges, err)
	}
	r, err := l.OpenSubBlock(0, 3)
	if err != nil || r != nil {
		t.Fatalf("empty block open = %v, %v", r, err)
	}
	if dev.Stats().TotalOps() != 0 {
		t.Fatalf("empty block touched the device: %v", dev.Stats())
	}
}

func TestBuildHUSGraphLayout(t *testing.T) {
	dev := testDevice(t)
	g := paperGraph()
	l, err := BuildHUSGraph(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.System != "husgraph" {
		t.Fatalf("system = %s", l.Meta.System)
	}
	// Row 0 holds edges with src in {0,1,2}, sorted by src.
	row0, err := l.LoadRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(row0) != 5 {
		t.Fatalf("row 0 has %d edges, want 5", len(row0))
	}
	for k := 1; k < len(row0); k++ {
		if row0[k-1].Src > row0[k].Src {
			t.Fatal("row 0 not sorted by source")
		}
	}
	idx, err := l.LoadRowIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Rec) != 4 { // 3 vertices + 1
		t.Fatalf("row index len = %d", len(idx.Rec))
	}
	// Vertex 2 has 2 edges in row 0.
	if idx.Rec[3]-idx.Rec[2] != 2 {
		t.Fatalf("vertex 2 edge count via index = %d", idx.Rec[3]-idx.Rec[2])
	}
	// Column 1 holds edges with dst in {3,4,5}, sorted by dst.
	col1, err := l.LoadCol(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(col1) != 4 { // 0->4, 2->3, 3->5, 5->4
		t.Fatalf("col 1 has %d edges, want 4", len(col1))
	}
	for k := 1; k < len(col1); k++ {
		if col1[k-1].Dst > col1[k].Dst {
			t.Fatal("col 1 not sorted by destination")
		}
	}
	// Both copies exist: total written edge records ~ 2x graph size.
	total := int64(0)
	for i := 0; i < 2; i++ {
		row, _ := l.LoadRow(i)
		col, _ := l.LoadCol(i)
		total += int64(len(row) + len(col))
	}
	if total != 16 {
		t.Fatalf("HUS layout stores %d records, want 16 (two copies)", total)
	}
}

func TestBuildLumosLayoutUnsorted(t *testing.T) {
	dev := testDevice(t)
	g := paperGraph()
	l, err := BuildLumos(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.System != "lumos" {
		t.Fatalf("system = %s", l.Meta.System)
	}
	// Lumos layout has no index files.
	if dev.Exists(IndexName(0, 0)) {
		t.Fatal("lumos layout wrote an index")
	}
	// But the grid payloads exist and contain the right edges.
	var total int
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			edges, err := l.LoadSubBlock(i, j)
			if err != nil {
				t.Fatal(err)
			}
			total += len(edges)
			for _, e := range edges {
				if l.Meta.IntervalOf(e.Src) != i || l.Meta.IntervalOf(e.Dst) != j {
					t.Fatalf("edge %v in wrong cell (%d,%d)", e, i, j)
				}
			}
		}
	}
	if total != 8 {
		t.Fatalf("lumos grid stores %d edges, want 8", total)
	}
}

func TestPreprocessingWriteVolumeOrdering(t *testing.T) {
	// Figure 8's driver: HUS-Graph writes two copies so its write volume
	// must exceed GraphSD's, which ties with Lumos on payload (one copy)
	// but adds index files.
	g, err := gen.RMAT(9, 8, gen.Graph500, 1)
	if err != nil {
		t.Fatal(err)
	}
	volumes := map[string]int64{}
	for name, build := range map[string]func(*storage.Device, *graph.Graph, int, ...BuildOption) (*Layout, error){
		"graphsd": Build, "husgraph": BuildHUSGraph, "lumos": BuildLumos,
	} {
		dev := testDevice(t)
		if _, err := build(dev, g, 4); err != nil {
			t.Fatal(err)
		}
		volumes[name] = dev.Stats().WriteBytes()
	}
	if volumes["husgraph"] <= volumes["graphsd"] {
		t.Fatalf("HUS write volume %d not above GraphSD %d", volumes["husgraph"], volumes["graphsd"])
	}
	if volumes["graphsd"] <= volumes["lumos"] {
		t.Fatalf("GraphSD write volume %d not above Lumos %d", volumes["graphsd"], volumes["lumos"])
	}
}

func TestManifestValidateRejectsCorruption(t *testing.T) {
	dev := testDevice(t)
	if _, err := Build(dev, paperGraph(), 2); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest's edge counts.
	if err := dev.WriteFile(ManifestName, []byte(`{"format_version":1,"system":"graphsd","num_vertices":6,"num_edges":9,"p":2,"edge_counts":[[3,2],[1,2]]}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dev); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if err := dev.WriteFile(ManifestName, []byte(`not json`)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dev); err == nil {
		t.Fatal("non-JSON manifest accepted")
	}
}

func TestChargeVertexValueIO(t *testing.T) {
	dev := testDevice(t)
	l, err := Build(dev, paperGraph(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	l.ChargeVertexValueRead()
	l.ChargeVertexValueWrite()
	s := dev.Stats()
	want := int64(6 * graph.VertexValueBytes)
	if s.Bytes[storage.SeqRead] != want || s.Bytes[storage.SeqWrite] != want {
		t.Fatalf("vertex value charges wrong: %+v", s)
	}
}

// Property: for random graphs and P, the grid partitions the edge set — every
// edge lands in exactly the cell of its (src,dst) intervals and counts sum
// to |E|.
func TestPropertyGridPartitions(t *testing.T) {
	f := func(raw []uint32, pRaw uint8) bool {
		const n = 60
		p := int(pRaw)%6 + 1
		g := &graph.Graph{NumVertices: n}
		for k := 0; k+1 < len(raw); k += 2 {
			g.Edges = append(g.Edges, graph.Edge{
				Src: graph.VertexID(raw[k] % n), Dst: graph.VertexID(raw[k+1] % n),
			})
		}
		dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
		if err != nil {
			return false
		}
		l, err := Build(dev, g, p)
		if err != nil {
			return false
		}
		var total int64
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				edges, err := l.LoadSubBlock(i, j)
				if err != nil {
					return false
				}
				if int64(len(edges)) != l.Meta.SubBlockEdges(i, j) {
					return false
				}
				total += int64(len(edges))
				for _, e := range edges {
					if l.Meta.IntervalOf(e.Src) != i || l.Meta.IntervalOf(e.Dst) != j {
						return false
					}
				}
			}
		}
		return total == int64(len(g.Edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
