// Package harness regenerates every table and figure of the paper's
// evaluation section (Table 3, Table 4, Figures 5–12) over the synthetic
// stand-in datasets and the simulated disk substrate. DESIGN.md §4 maps
// each experiment to the modules it exercises; EXPERIMENTS.md records the
// measured outcomes against the paper's.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/baseline"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Config parameterizes an experiment run.
type Config struct {
	// WorkDir is where layouts are materialized. Required.
	WorkDir string
	// Seed drives every generator.
	Seed int64
	// Profile is the disk model; defaults to storage.ScaledHDD, which
	// preserves the paper testbed's seek-to-scan ratio at the reduced
	// dataset scale (DESIGN.md §2).
	Profile *storage.Profile
	// Quick shrinks every dataset ~16x for fast test/CI runs.
	Quick bool
	// Datasets restricts the datasets by name when non-empty.
	Datasets []string
}

func (c *Config) profile() storage.Profile {
	if c.Profile != nil {
		return *c.Profile
	}
	return storage.ScaledHDD
}

// Dataset is a synthetic stand-in for one of the paper's Table 3 graphs.
type Dataset struct {
	Name      string
	PaperName string
	// PaperSize documents the original ("42M vertices / 1.5B edges").
	PaperSize string
	Build     func(seed int64) (*graph.Graph, error)
}

// Datasets returns the evaluation datasets, full- or quick-sized.
// The relative size ordering of the originals is preserved.
func Datasets(quick bool) []Dataset {
	if quick {
		return []Dataset{
			{"twitter-sim", "Twitter2010", "42M / 1.5B", func(s int64) (*graph.Graph, error) { return gen.RMAT(10, 8, gen.Graph500, s) }},
			{"sk-sim", "SK2005", "51M / 1.9B", func(s int64) (*graph.Graph, error) { return gen.PowerLaw(1500, 12000, 1.9, s) }},
			{"uk-sim", "UK2007", "106M / 3.7B", func(s int64) (*graph.Graph, error) { return gen.WebLike(2600, 24000, 0.8, s) }},
			{"ukunion-sim", "UKUnion", "133M / 5.5B", func(s int64) (*graph.Graph, error) { return gen.WebLike(3300, 35000, 0.8, s) }},
			{"kron-sim", "Kron30", "1B / 32B", func(s int64) (*graph.Graph, error) { return gen.RMAT(11, 10, gen.Graph500, s) }},
		}
	}
	out := make([]Dataset, 0, len(gen.Presets))
	for _, p := range gen.Presets {
		out = append(out, Dataset{
			Name:      p.Name,
			PaperName: p.PaperName,
			PaperSize: p.PaperVertices + " / " + p.PaperEdges,
			Build:     p.Build,
		})
	}
	return out
}

// selectedDatasets applies the Config's dataset filter.
func (c *Config) selectedDatasets() ([]Dataset, error) {
	all := Datasets(c.Quick)
	if len(c.Datasets) == 0 {
		return all, nil
	}
	byName := map[string]Dataset{}
	for _, d := range all {
		byName[d.Name] = d
	}
	var out []Dataset
	for _, name := range c.Datasets {
		d, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("harness: unknown dataset %q", name)
		}
		out = append(out, d)
	}
	return out, nil
}

func (c *Config) dataset(name string) (Dataset, error) {
	for _, d := range Datasets(c.Quick) {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("harness: unknown dataset %q", name)
}

// Algorithm couples a paper workload with its program constructor. src is
// the source vertex for traversal algorithms (the harness passes the
// highest-out-degree vertex so traversals cover the graph, since the paper
// does not name its sources).
type Algorithm struct {
	Name     string
	Weighted bool
	New      func(src graph.VertexID) core.Program
}

// PaperAlgorithms returns the paper's four workloads with its parameters:
// PR for 5 iterations, PR-D for 20, CC and SSSP until convergence. The
// PR-D tolerance is set so the active set visibly decays within the
// 20-iteration budget at these graph scales, which is the behaviour the
// paper's selective scheduling exploits.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{
		{"PR", false, func(graph.VertexID) core.Program { return &algorithms.PageRank{Iterations: 5} }},
		{"PR-D", false, func(graph.VertexID) core.Program { return &algorithms.PageRankDelta{Iterations: 20, Tolerance: 1e-6} }},
		{"CC", false, func(graph.VertexID) core.Program { return &algorithms.ConnectedComponents{} }},
		{"SSSP", true, func(src graph.VertexID) core.Program { return &algorithms.SSSP{Source: src} }},
	}
}

// chooseP sizes the interval count as the paper does: the memory budget is
// 5% of the edge data, and one edge block (grid row) must fit in it.
func chooseP(g *graph.Graph, quick bool) int {
	maxP := 16
	if quick {
		maxP = 6
	}
	budget := g.Bytes() / 20
	return partition.ChooseP(g.Bytes(), budget, maxP)
}

// env carries the materialized layouts of one dataset.
type env struct {
	ds       Dataset
	g        *graph.Graph // unweighted variant
	gw       *graph.Graph // weighted variant (same topology)
	p        int
	cfg      *Config
	profiles storage.Profile
	source   graph.VertexID // traversal source: the highest-out-degree vertex

	layouts map[string]*partition.Layout // key: system + "/w" for weighted
	preps   map[string]prepStats
}

type prepStats struct {
	wall    time.Duration
	io      storage.Snapshot
	simTime time.Duration
}

// newEnv generates the dataset and prepares lazily-built layouts.
func newEnv(cfg *Config, ds Dataset) (*env, error) {
	g, err := ds.Build(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("harness: building %s: %w", ds.Name, err)
	}
	gw := gen.Weighted(g.Clone(), 16, cfg.Seed+1)
	var hub graph.VertexID
	var hubDeg uint32
	for v, d := range g.OutDegrees() {
		if d > hubDeg {
			hub, hubDeg = graph.VertexID(v), d
		}
	}
	return &env{
		ds:       ds,
		g:        g,
		gw:       gw,
		p:        chooseP(g, cfg.Quick),
		cfg:      cfg,
		profiles: cfg.profile(),
		source:   hub,
		layouts:  map[string]*partition.Layout{},
		preps:    map[string]prepStats{},
	}, nil
}

// layout returns (building on first use) the dataset's layout for a system.
func (e *env) layout(system string, weighted bool) (*partition.Layout, error) {
	key := system
	if weighted {
		key += "/w"
	}
	if l, ok := e.layouts[key]; ok {
		return l, nil
	}
	dir := filepath.Join(e.cfg.WorkDir, e.ds.Name, key)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("harness: cleaning %s: %w", dir, err)
	}
	dev, err := storage.OpenDevice(dir, e.profiles)
	if err != nil {
		return nil, err
	}
	g := e.g
	if weighted {
		g = e.gw
	}
	var build func(*storage.Device, *graph.Graph, int, ...partition.BuildOption) (*partition.Layout, error)
	switch system {
	case "graphsd":
		build = partition.Build
	case "husgraph":
		build = partition.BuildHUSGraph
	case "lumos":
		build = partition.BuildLumos
	default:
		return nil, fmt.Errorf("harness: unknown system %q", system)
	}
	start := time.Now()
	l, err := build(dev, g, e.p)
	if err != nil {
		return nil, fmt.Errorf("harness: preprocessing %s for %s: %w", e.ds.Name, system, err)
	}
	io := dev.Stats()
	// Preprocessing "time" is reported like execution time: simulated I/O
	// plus measured in-memory CPU (bucket/sort/encode). Host wall time is
	// kept for reference but is dominated by per-file syscall noise at
	// this scale.
	e.preps[key] = prepStats{wall: time.Since(start), io: io, simTime: io.TotalTime() + l.PrepCPU}
	e.layouts[key] = l
	return l, nil
}

// run executes an algorithm on the dataset under the named system.
// System names: graphsd, graphsd-b1, graphsd-b2 (= b3, forced full),
// graphsd-b4 (forced on-demand), graphsd-nobuf, husgraph, lumos, gridgraph.
func (e *env) run(system string, alg Algorithm) (*core.Result, error) {
	prog := alg.New(e.source)
	switch system {
	case "graphsd", "graphsd-b1", "graphsd-b2", "graphsd-b3", "graphsd-b4", "graphsd-nobuf":
		l, err := e.layout("graphsd", alg.Weighted)
		if err != nil {
			return nil, err
		}
		opts := core.Options{DefaultBuffer: true}
		switch system {
		case "graphsd-b1":
			opts.DisableCrossIteration = true
		case "graphsd-b2", "graphsd-b3":
			opts.ForceModel = core.ForceFull
		case "graphsd-b4":
			opts.ForceModel = core.ForceOnDemand
		case "graphsd-nobuf":
			opts.DefaultBuffer = false
		}
		return core.Run(l, prog, opts)
	case "husgraph":
		l, err := e.layout("husgraph", alg.Weighted)
		if err != nil {
			return nil, err
		}
		return baseline.RunHUSGraph(l, prog, baseline.Options{})
	case "lumos":
		l, err := e.layout("lumos", alg.Weighted)
		if err != nil {
			return nil, err
		}
		return baseline.RunLumos(l, prog, baseline.Options{})
	case "gridgraph":
		l, err := e.layout("lumos", alg.Weighted)
		if err != nil {
			return nil, err
		}
		return baseline.RunGridGraph(l, prog, baseline.Options{})
	default:
		return nil, fmt.Errorf("harness: unknown system %q", system)
	}
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg *Config, w io.Writer) error
}

// Experiments returns all regenerable experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table3", "Table 3: datasets (paper vs synthetic stand-ins)", runTable3},
		{"fig5", "Figure 5 + Table 4: overall execution time, GraphSD vs HUS-Graph vs Lumos", runFig5},
		{"fig6", "Figure 6: runtime breakdown on Twitter2010", runFig6},
		{"fig7", "Figure 7: I/O traffic on Twitter2010 and UK2007", runFig7},
		{"fig8", "Figure 8: preprocessing time comparison", runFig8},
		{"fig9", "Figure 9: effect of the update strategies (GraphSD vs b1 vs b2)", runFig9},
		{"fig10", "Figure 10: state-aware I/O scheduling, per-iteration (CC on UKUnion)", runFig10},
		{"fig10-sched", "Figure 10 companion: scheduler prediction accuracy and adaptive I/O envelope", runSchedAccuracy},
		{"fig11", "Figure 11: scheduling overhead vs reduced I/O time", runFig11},
		{"fig12", "Figure 12: effect of the buffering scheme (UKUnion)", runFig12},
		{"fig-sem", "Semi-external-memory fast path: dead-block skipping and the compressed cache tier", runFigSEM},
		{"fig-async", "Asynchronous execution: priority sub-block scheduling vs the BSP engine", runFigAsync},
		{"ext-storage", "Extension: device-class sensitivity (HDD/SSD/PMem, per the paper's future work)", runExtStorage},
		{"ext-psweep", "Extension: interval-count (P) sweep", runExtPSweep},
		{"ext-buffer-policy", "Extension: priority vs FIFO buffer eviction (§4.3 design choice)", runExtBufferPolicy},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// RunAll runs every experiment in order.
func RunAll(cfg *Config, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("harness: %s: %w", e.ID, err)
		}
	}
	return nil
}
