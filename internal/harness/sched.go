package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/metrics"
)

// Tolerances for the scheduler-accuracy experiment. These are the PR's
// acceptance criteria, enforced here so the harness test (and the CI smoke
// job) fail when the calibrated scheduler regresses.
const (
	// schedEnvelopeTol bounds the adaptive run's total simulated I/O
	// relative to the better of the two forced models.
	schedEnvelopeTol = 1.10
	// schedMispredictTol bounds the per-iteration misprediction ratio
	// once calibration has warmed up.
	schedMispredictTol = 0.05
	// schedWarmup is the number of observed iterations the EWMA gets to
	// converge before mispredictions count against the tolerance. With
	// alpha=0.5 four observations shrink the initial model error 16x.
	schedWarmup = 4
)

// schedIterSample is one observed iteration in the SCHED_OUT artifact.
type schedIterSample struct {
	Index      int     `json:"index"`
	Path       string  `json:"path"`
	PredNs     int64   `json:"pred_ns"`
	ActualNs   int64   `json:"actual_ns"`
	Mispredict float64 `json:"mispredict"`
	Checked    bool    `json:"checked"`
}

// schedArtifact is the JSON written to $SCHED_OUT for the CI trend line.
type schedArtifact struct {
	Dataset       string            `json:"dataset"`
	AdaptiveIONs  int64             `json:"adaptive_io_ns"`
	FullIONs      int64             `json:"full_io_ns"`
	OnDemandIONs  int64             `json:"on_demand_io_ns"`
	Envelope      float64           `json:"envelope_ratio"`
	EnvelopeTol   float64           `json:"envelope_tol"`
	MispredictTol float64           `json:"mispredict_tol"`
	Warmup        int               `json:"warmup_iterations"`
	Accuracy      iosched.Accuracy  `json:"accuracy"`
	Iterations    []schedIterSample `json:"iterations"`
}

// runSchedAccuracy is the Figure-10 companion study for the self-calibrating
// scheduler. Two checks, both hard-enforced:
//
//  1. Envelope — the adaptive scheduler's total simulated I/O on CC must
//     track min(always-full, always-on-demand) within schedEnvelopeTol.
//  2. Accuracy — on a long fixed-frontier PR run the per-iteration
//     misprediction ratio |predicted−actual|/actual must drop below
//     schedMispredictTol once the EWMA correction has seen schedWarmup
//     observations. The final iteration is excluded: a trailing
//     full-single pass starts from a different buffer state than the
//     steady fciu cadence the correction factor was trained on.
//
// Everything is measured in simulated device time, so the assertions are
// deterministic across hosts.
func runSchedAccuracy(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("ukunion-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}

	// Envelope: CC flips models as the frontier decays, so the adaptive
	// run only stays near the lower envelope if its decisions are right.
	cc := PaperAlgorithms()[2]
	adaptive, err := e.run("graphsd", cc)
	if err != nil {
		return err
	}
	full, err := e.run("graphsd-b3", cc)
	if err != nil {
		return err
	}
	ondemand, err := e.run("graphsd-b4", cc)
	if err != nil {
		return err
	}
	minIO := full.IOTime()
	if ondemand.IOTime() < minIO {
		minIO = ondemand.IOTime()
	}
	envelope := 1.0
	if minIO > 0 {
		envelope = float64(adaptive.IOTime()) / float64(minIO)
	}

	// Accuracy: PR keeps every vertex active, so after the first pass the
	// per-iteration I/O is steady and the EWMA correction must converge
	// onto it. 12 iterations leave several post-warmup samples to check.
	pr := Algorithm{"PR-12", false, func(graph.VertexID) core.Program {
		return &algorithms.PageRank{Iterations: 12}
	}}
	prRes, err := e.run("graphsd", pr)
	if err != nil {
		return err
	}

	t := metrics.NewTable("Scheduler accuracy — PR(12) on "+ds.Name,
		"iteration", "path", "predicted", "actual I/O", "mispredict", "checked")
	last := len(prRes.IterStats) - 1
	var samples []schedIterSample
	observed := 0
	worst, worstIter := 0.0, -1
	for _, st := range prRes.IterStats {
		if st.Predicted <= 0 {
			continue // fciu-2 executes the previous decision; never observed
		}
		observed++
		checked := observed > schedWarmup && st.Index != last
		if checked && st.Mispredict > worst {
			worst, worstIter = st.Mispredict, st.Index
		}
		mark := "—"
		if checked {
			mark = "yes"
		}
		t.AddRow(fmt.Sprint(st.Index), st.Path, metrics.Dur(st.Predicted),
			metrics.Dur(st.IOTime), fmt.Sprintf("%.1f%%", 100*st.Mispredict), mark)
		samples = append(samples, schedIterSample{
			Index: st.Index, Path: st.Path,
			PredNs: int64(st.Predicted), ActualNs: int64(st.IOTime),
			Mispredict: st.Mispredict, Checked: checked,
		})
	}
	acc := prRes.SchedAccuracy
	t.AddNote("CC totals — adaptive %v, full-only %v, on-demand-only %v: envelope %.2fx (tolerance %.2fx)",
		metrics.Dur(adaptive.IOTime()), metrics.Dur(full.IOTime()), metrics.Dur(ondemand.IOTime()),
		envelope, schedEnvelopeTol)
	t.AddNote("post-warmup worst mispredict %.1f%% (tolerance %.1f%%); corrections full=%.2f on-demand=%.2f",
		100*worst, 100*schedMispredictTol, acc.CorrFull, acc.CorrOnDemand)
	if err := t.Render(w); err != nil {
		return err
	}

	if out := os.Getenv("SCHED_OUT"); out != "" {
		art := schedArtifact{
			Dataset:      ds.Name,
			AdaptiveIONs: int64(adaptive.IOTime()),
			FullIONs:     int64(full.IOTime()),
			OnDemandIONs: int64(ondemand.IOTime()),
			Envelope:     envelope, EnvelopeTol: schedEnvelopeTol,
			MispredictTol: schedMispredictTol, Warmup: schedWarmup,
			Accuracy: acc, Iterations: samples,
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("harness: writing SCHED_OUT: %w", err)
		}
		fmt.Fprintf(w, "wrote scheduler-accuracy artifact to %s\n", out)
	}

	if envelope > schedEnvelopeTol {
		return fmt.Errorf("harness: adaptive I/O %v is %.2fx min(full %v, on-demand %v), tolerance %.2fx",
			adaptive.IOTime(), envelope, full.IOTime(), ondemand.IOTime(), schedEnvelopeTol)
	}
	if observed <= schedWarmup {
		return fmt.Errorf("harness: only %d observed iterations, need > %d for a post-warmup check",
			observed, schedWarmup)
	}
	if worst > schedMispredictTol {
		return fmt.Errorf("harness: iteration %d mispredicted by %.1f%% after calibration warmup, tolerance %.1f%%",
			worstIter, 100*worst, 100*schedMispredictTol)
	}
	return nil
}
