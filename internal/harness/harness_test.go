package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/graphsd/graphsd/internal/storage"
)

func quickConfig(t *testing.T) *Config {
	t.Helper()
	prof := storage.ScaledHDD
	return &Config{WorkDir: t.TempDir(), Seed: 1, Quick: true, Profile: &prof}
}

func TestDatasetsBothScales(t *testing.T) {
	for _, quick := range []bool{true, false} {
		dss := Datasets(quick)
		if len(dss) != 5 {
			t.Fatalf("quick=%t: %d datasets, want 5", quick, len(dss))
		}
		names := map[string]bool{}
		for _, d := range dss {
			names[d.Name] = true
		}
		for _, want := range []string{"twitter-sim", "sk-sim", "uk-sim", "ukunion-sim", "kron-sim"} {
			if !names[want] {
				t.Errorf("quick=%t: missing dataset %s", quick, want)
			}
		}
	}
	// Quick datasets must build and be smaller than full ones.
	q := Datasets(true)
	f := Datasets(false)
	for i := range q {
		gq, err := q[i].Build(1)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := f[i].Build(1)
		if err != nil {
			t.Fatal(err)
		}
		if gq.NumEdges() >= gf.NumEdges() {
			t.Errorf("%s: quick (%d edges) not smaller than full (%d)", q[i].Name, gq.NumEdges(), gf.NumEdges())
		}
	}
}

func TestConfigDatasetFilter(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Datasets = []string{"uk-sim", "twitter-sim"}
	got, err := cfg.selectedDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "uk-sim" || got[1].Name != "twitter-sim" {
		t.Fatalf("filter = %v", got)
	}
	cfg.Datasets = []string{"nope"}
	if _, err := cfg.selectedDatasets(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := cfg.dataset("nope"); err == nil {
		t.Fatal("dataset() accepted unknown name")
	}
}

func TestPaperAlgorithms(t *testing.T) {
	algs := PaperAlgorithms()
	if len(algs) != 4 {
		t.Fatalf("%d algorithms, want 4 (PR, PR-D, CC, SSSP)", len(algs))
	}
	if !algs[3].Weighted {
		t.Fatal("SSSP not marked weighted")
	}
	for _, a := range algs {
		if a.New(0) == nil {
			t.Fatalf("%s: nil program", a.Name)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := []string{"table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig10-sched", "fig11", "fig12", "fig-sem", "fig-async", "ext-storage", "ext-psweep", "ext-buffer-policy"}
	exps := Experiments()
	if len(exps) != len(ids) {
		t.Fatalf("%d experiments, want %d", len(exps), len(ids))
	}
	for i, id := range ids {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestEnvRunUnknownSystem(t *testing.T) {
	cfg := quickConfig(t)
	ds, err := cfg.dataset("twitter-sim")
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.run("nope", PaperAlgorithms()[0]); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := e.layout("nope", false); err == nil {
		t.Fatal("unknown layout system accepted")
	}
}

func TestLayoutsAreCached(t *testing.T) {
	cfg := quickConfig(t)
	ds, err := cfg.dataset("twitter-sim")
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := e.layout("graphsd", false)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := e.layout("graphsd", false)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatal("layout rebuilt instead of cached")
	}
}

// TestAllExperimentsQuick runs the full experiment suite at quick scale and
// sanity-checks the rendered output. This is the integration test of the
// whole repository: generators → preprocessors → engines → reports.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow; skipped with -short")
	}
	cfg := quickConfig(t)
	var buf bytes.Buffer
	if err := RunAll(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 3", "Figure 5", "Table 4", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"twitter-sim", "husgraph", "lumos", "sciu",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "—x") {
		t.Error("experiment output contains malformed numbers")
	}
}

// TestSEMExperiment runs the semi-external-memory study on its own: it
// enforces the skip/byte-reduction and effective-capacity floors and, when
// SEM_OUT is set (CI), writes the BENCH_sem.json artifact.
func TestSEMExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment is slow; skipped with -short")
	}
	cfg := quickConfig(t)
	exp, err := ByID("fig-sem")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.Run(cfg, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Semi-external-memory", "sparse", "dense", "effective capacity", "compressed hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestAsyncExperiment runs the asynchronous-execution study on its own: it
// enforces the device-byte reduction, block-activation, and baseline
// regression gates and, when ASYNC_OUT is set (CI), writes the
// BENCH_async.json artifact.
func TestAsyncExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment is slow; skipped with -short")
	}
	cfg := quickConfig(t)
	exp, err := ByID("fig-async")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.Run(cfg, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Asynchronous", "sparse", "reduction", "BSP baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSchedAccuracyExperiment runs the scheduler-accuracy study on its own:
// it enforces the envelope and post-warmup misprediction tolerances and, when
// SCHED_OUT is set (CI), writes the BENCH_sched.json artifact.
func TestSchedAccuracyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment is slow; skipped with -short")
	}
	cfg := quickConfig(t)
	exp, err := ByID("fig10-sched")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.Run(cfg, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Scheduler accuracy", "envelope", "mispredict", "corrections"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
