package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/storage"
)

// runTable3 regenerates Table 3: the dataset inventory, paper originals
// next to the synthetic stand-ins actually generated.
func runTable3(cfg *Config, w io.Writer) error {
	dss, err := cfg.selectedDatasets()
	if err != nil {
		return err
	}
	t := metrics.NewTable("Table 3 — datasets",
		"dataset", "paper original", "paper |V|/|E|", "synthetic |V|", "synthetic |E|", "edge bytes", "degree skew")
	for _, ds := range dss {
		g, err := ds.Build(cfg.Seed)
		if err != nil {
			return err
		}
		s := gen.ComputeDegreeStats(g)
		t.AddRow(ds.Name, ds.PaperName, ds.PaperSize,
			fmt.Sprint(g.NumVertices), fmt.Sprint(g.NumEdges()),
			storage.FormatBytes(g.Bytes()),
			fmt.Sprintf("gini=%.2f max=%d", s.Gini, s.Max))
	}
	t.AddNote("originals are unavailable/outsized; stand-ins keep the degree skew and size ordering (DESIGN.md §2)")
	return t.Render(w)
}

// runFig5 regenerates Figure 5 (normalized execution time of GraphSD,
// HUS-Graph and Lumos on every dataset × algorithm) and Table 4 (absolute
// GraphSD times).
func runFig5(cfg *Config, w io.Writer) error {
	dss, err := cfg.selectedDatasets()
	if err != nil {
		return err
	}
	norm := metrics.NewTable("Figure 5 — execution time normalized to GraphSD (lower is better)",
		"dataset", "algorithm", "GraphSD", "HUS-Graph", "Lumos")
	abs := metrics.NewTable("Table 4 — absolute GraphSD execution time (simulated disk)",
		"dataset", "PR", "PR-D", "CC", "SSSP")
	var worstHUS, worstLumos float64
	var sumHUS, sumLumos float64
	var count int
	for _, ds := range dss {
		e, err := newEnv(cfg, ds)
		if err != nil {
			return err
		}
		absRow := []string{ds.Name}
		for _, alg := range PaperAlgorithms() {
			gsd, err := e.run("graphsd", alg)
			if err != nil {
				return err
			}
			hus, err := e.run("husgraph", alg)
			if err != nil {
				return err
			}
			lum, err := e.run("lumos", alg)
			if err != nil {
				return err
			}
			g, h, l := gsd.ExecTime(), hus.ExecTime(), lum.ExecTime()
			norm.AddRow(ds.Name, alg.Name, "1.00x", metrics.Ratio(h, g), metrics.Ratio(l, g))
			absRow = append(absRow, metrics.Dur(g))
			rh := float64(h) / float64(g)
			rl := float64(l) / float64(g)
			sumHUS += rh
			sumLumos += rl
			count++
			if rh > worstHUS {
				worstHUS = rh
			}
			if rl > worstLumos {
				worstLumos = rl
			}
		}
		abs.AddRow(absRow...)
	}
	if count > 0 {
		norm.AddNote("speedup over HUS-Graph: avg %.2fx, max %.2fx (paper: avg 1.7x, up to 2.7x)", sumHUS/float64(count), worstHUS)
		norm.AddNote("speedup over Lumos:     avg %.2fx, max %.2fx (paper: avg 2.7x, up to 3.9x)", sumLumos/float64(count), worstLumos)
	}
	if err := norm.Render(w); err != nil {
		return err
	}
	return abs.Render(w)
}

// runFig6 regenerates Figure 6: the I/O vs vertex-update breakdown of each
// system's execution time on the Twitter stand-in.
func runFig6(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("twitter-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 6 — runtime breakdown on "+ds.Name,
		"algorithm", "system", "total", "disk I/O", "I/O share", "vertex update")
	var gsdIO, husIO, lumIO time.Duration
	for _, alg := range PaperAlgorithms() {
		for _, sys := range []string{"graphsd", "husgraph", "lumos"} {
			res, err := e.run(sys, alg)
			if err != nil {
				return err
			}
			t.AddRow(alg.Name, sys, metrics.Dur(res.ExecTime()),
				metrics.Dur(res.IOTime()), metrics.Pct(res.IOTime(), res.ExecTime()),
				metrics.Dur(res.ComputeTime))
			switch sys {
			case "graphsd":
				gsdIO += res.IOTime()
			case "husgraph":
				husIO += res.IOTime()
			case "lumos":
				lumIO += res.IOTime()
			}
		}
	}
	if husIO > 0 && lumIO > 0 {
		t.AddNote("GraphSD disk I/O time is %.0f%% of HUS-Graph and %.0f%% of Lumos (paper: 73%% and 49%%)",
			100*float64(gsdIO)/float64(husIO), 100*float64(gsdIO)/float64(lumIO))
	}
	return t.Render(w)
}

// runFig7 regenerates Figure 7: I/O traffic on the Twitter and UK stand-ins.
func runFig7(cfg *Config, w io.Writer) error {
	t := metrics.NewTable("Figure 7 — I/O traffic",
		"dataset", "algorithm", "GraphSD", "HUS-Graph", "Lumos")
	var sumHUS, sumLumos float64
	var count int
	for _, name := range []string{"twitter-sim", "uk-sim"} {
		ds, err := cfg.dataset(name)
		if err != nil {
			return err
		}
		e, err := newEnv(cfg, ds)
		if err != nil {
			return err
		}
		for _, alg := range PaperAlgorithms() {
			gsd, err := e.run("graphsd", alg)
			if err != nil {
				return err
			}
			hus, err := e.run("husgraph", alg)
			if err != nil {
				return err
			}
			lum, err := e.run("lumos", alg)
			if err != nil {
				return err
			}
			t.AddRow(name, alg.Name,
				storage.FormatBytes(gsd.IO.TotalBytes()),
				storage.FormatBytes(hus.IO.TotalBytes()),
				storage.FormatBytes(lum.IO.TotalBytes()))
			sumHUS += float64(hus.IO.TotalBytes()) / float64(gsd.IO.TotalBytes())
			sumLumos += float64(lum.IO.TotalBytes()) / float64(gsd.IO.TotalBytes())
			count++
		}
	}
	if count > 0 {
		t.AddNote("traffic vs GraphSD: HUS-Graph avg %.2fx, Lumos avg %.2fx (paper: 1.6x and 5.5x)",
			sumHUS/float64(count), sumLumos/float64(count))
	}
	return t.Render(w)
}

// runFig8 regenerates Figure 8: preprocessing cost per system. The
// reported time is simulated I/O time plus measured partition/sort CPU
// time, mirroring the execution-time metric.
func runFig8(cfg *Config, w io.Writer) error {
	dss, err := cfg.selectedDatasets()
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 8 — preprocessing time",
		"dataset", "system", "time", "written", "vs lumos")
	for _, ds := range dss {
		e, err := newEnv(cfg, ds)
		if err != nil {
			return err
		}
		times := map[string]time.Duration{}
		written := map[string]int64{}
		for _, sys := range []string{"husgraph", "graphsd", "lumos"} {
			if _, err := e.layout(sys, false); err != nil {
				return err
			}
			p := e.preps[sys]
			times[sys] = p.simTime
			written[sys] = p.io.WriteBytes()
		}
		for _, sys := range []string{"husgraph", "graphsd", "lumos"} {
			t.AddRow(ds.Name, sys, metrics.Dur(times[sys]),
				storage.FormatBytes(written[sys]),
				metrics.Ratio(times[sys], times["lumos"]))
		}
	}
	t.AddNote("paper: HUS-Graph ≈ 1.8x and GraphSD ≈ 1.3x the preprocessing time of Lumos")
	return t.Render(w)
}

// runFig9 regenerates Figure 9: GraphSD against its own ablations b1
// (no cross-iteration updates) and b2 (no selective loading) on the
// Twitter stand-in, in execution time and I/O traffic.
func runFig9(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("twitter-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 9 — update-strategy ablations on "+ds.Name,
		"algorithm", "variant", "exec time", "vs graphsd", "I/O traffic", "traffic ratio")
	for _, alg := range PaperAlgorithms() {
		base, err := e.run("graphsd", alg)
		if err != nil {
			return err
		}
		t.AddRow(alg.Name, "graphsd", metrics.Dur(base.ExecTime()), "1.00x",
			storage.FormatBytes(base.IO.TotalBytes()), "1.00x")
		for _, variant := range []string{"graphsd-b1", "graphsd-b2"} {
			res, err := e.run(variant, alg)
			if err != nil {
				return err
			}
			t.AddRow(alg.Name, variant, metrics.Dur(res.ExecTime()),
				metrics.Ratio(res.ExecTime(), base.ExecTime()),
				storage.FormatBytes(res.IO.TotalBytes()),
				metrics.RatioF(float64(res.IO.TotalBytes()), float64(base.IO.TotalBytes())))
		}
	}
	t.AddNote("paper: GraphSD outruns b1 by 1.7x and b2 by 2.8x; traffic 1.6x / 5.4x lower")
	return t.Render(w)
}

// runFig10 regenerates Figure 10: per-iteration execution time of CC on
// the UKUnion stand-in under the adaptive scheduler versus the two forced
// models; the adaptive line must track the lower envelope.
func runFig10(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("ukunion-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}
	alg := PaperAlgorithms()[2] // CC
	adaptive, err := e.run("graphsd", alg)
	if err != nil {
		return err
	}
	full, err := e.run("graphsd-b3", alg)
	if err != nil {
		return err
	}
	ondemand, err := e.run("graphsd-b4", alg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 10 — per-iteration time, CC on "+ds.Name,
		"iteration", "active", "adaptive", "path", "full-only (b3)", "on-demand-only (b4)")
	iters := len(adaptive.IterStats)
	if len(full.IterStats) > iters {
		iters = len(full.IterStats)
	}
	if len(ondemand.IterStats) > iters {
		iters = len(ondemand.IterStats)
	}
	cell := func(stats []core.IterStat, i int) string {
		if i < len(stats) {
			return metrics.Dur(stats[i].Time())
		}
		return "—"
	}
	wins := 0
	for i := 0; i < iters; i++ {
		active, path := "—", "—"
		if i < len(adaptive.IterStats) {
			active = fmt.Sprint(adaptive.IterStats[i].Active)
			path = adaptive.IterStats[i].Path
			better := adaptive.IterStats[i].Time()
			if i < len(full.IterStats) && i < len(ondemand.IterStats) {
				lower := full.IterStats[i].Time()
				if ondemand.IterStats[i].Time() < lower {
					lower = ondemand.IterStats[i].Time()
				}
				// Allow 25% slack: iteration boundaries of FCIU pairs shift.
				if float64(better) <= 1.25*float64(lower) {
					wins++
				}
			}
		}
		t.AddRow(fmt.Sprint(i), active, cell(adaptive.IterStats, i), path,
			cell(full.IterStats, i), cell(ondemand.IterStats, i))
	}
	t.AddNote("totals — adaptive %v, full-only %v, on-demand-only %v",
		metrics.Dur(adaptive.ExecTime()), metrics.Dur(full.ExecTime()), metrics.Dur(ondemand.ExecTime()))
	t.AddNote("adaptive tracked the per-iteration lower envelope in %d/%d comparable iterations", wins, iters)
	return t.Render(w)
}

// runFig11 regenerates Figure 11: the CPU overhead of the benefit
// evaluation against the I/O time it saves relative to the forced models.
func runFig11(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("twitter-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 11 — scheduling overhead vs reduced I/O time on "+ds.Name,
		"algorithm", "evaluation overhead", "I/O saved vs full-only", "I/O saved vs on-demand-only")
	for _, alg := range PaperAlgorithms() {
		adaptive, err := e.run("graphsd", alg)
		if err != nil {
			return err
		}
		full, err := e.run("graphsd-b3", alg)
		if err != nil {
			return err
		}
		ondemand, err := e.run("graphsd-b4", alg)
		if err != nil {
			return err
		}
		savedFull := full.IOTime() - adaptive.IOTime()
		savedOD := ondemand.IOTime() - adaptive.IOTime()
		t.AddRow(alg.Name, metrics.Dur(adaptive.SchedulerOverhead), metrics.Dur(savedFull), metrics.Dur(savedOD))
	}
	t.AddNote("paper: overhead negligible (e.g. PR-D: 3.4s evaluation vs 158s I/O saved)")
	return t.Render(w)
}

// runFig12 regenerates Figure 12: execution time with and without the
// secondary sub-block buffering scheme on the UKUnion stand-in.
func runFig12(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("ukunion-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 12 — buffering scheme on "+ds.Name,
		"algorithm", "with buffering", "without", "improvement", "buffer hits", "bytes saved")
	for _, alg := range PaperAlgorithms() {
		with, err := e.run("graphsd", alg)
		if err != nil {
			return err
		}
		without, err := e.run("graphsd-nobuf", alg)
		if err != nil {
			return err
		}
		imp := "—"
		if without.ExecTime() > 0 {
			imp = fmt.Sprintf("%.0f%%", 100*(1-float64(with.ExecTime())/float64(without.ExecTime())))
		}
		t.AddRow(alg.Name, metrics.Dur(with.ExecTime()), metrics.Dur(without.ExecTime()),
			imp, fmt.Sprint(with.Buffer.Hits), storage.FormatBytes(with.Buffer.BytesSaved))
	}
	t.AddNote("paper: buffering improves performance by up to 21%%")
	return t.Render(w)
}
