package harness

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// Acceptance thresholds for the asynchronous-execution experiment, enforced
// here so the harness test (and the CI async job) fail on regression.
const (
	// asyncByteReductionMin is the minimum device-byte reduction async
	// execution must deliver over the BSP baseline on the sparse-frontier
	// traversals (BFS, SSSP): async bytes must be ≤ (1-min)× BSP bytes.
	asyncByteReductionMin = 0.25
	// asyncRegressionMax caps device bytes against the committed baseline:
	// a run moving more than baseline×max fails the experiment.
	asyncRegressionMax = 1.05
	// asyncPRDTolerance bounds the per-vertex rank difference between async
	// and BSP PR-D fixed points. Both run the same 1e-6 update tolerance,
	// but each engine parks sub-tolerance mass at different vertices and
	// times, and parked mass amplifies by ~1/(1-damping) per hop through
	// hubs, so the observable gap is orders of magnitude above the update
	// tolerance itself.
	asyncPRDTolerance = 1e-2
)

// asyncRunRecord is one async/BSP pair in the BENCH_async.json artifact.
type asyncRunRecord struct {
	Algorithm       string  `json:"algorithm"`
	Config          string  `json:"config"`
	BaseBytes       int64   `json:"base_device_bytes"`
	AsyncBytes      int64   `json:"async_device_bytes"`
	Reduction       float64 `json:"byte_reduction"`
	BSPIterations   int     `json:"bsp_iterations"`
	Steps           int64   `json:"async_steps"`
	SelectiveSteps  int64   `json:"async_selective_steps"`
	BlocksScheduled int64   `json:"async_blocks_scheduled"`
	Reactivations   int64   `json:"async_reactivations"`
	Identical       bool    `json:"bit_identical"`
}

// asyncArtifact is the JSON written to $ASYNC_OUT for the CI trend line.
type asyncArtifact struct {
	Dataset       string           `json:"dataset"`
	Seed          int64            `json:"seed"`
	Quick         bool             `json:"quick"`
	ReductionMin  float64          `json:"byte_reduction_min"`
	RegressionMax float64          `json:"regression_max"`
	Runs          []asyncRunRecord `json:"runs"`
}

// asyncBaselineJSON is the committed reference for the regression gate. It
// was produced by this experiment (quick scale, seed 1) and is only enforced
// when the current run matches that configuration, so local full-scale or
// reseeded runs don't trip it.
//
//go:embed testdata/async_baseline.json
var asyncBaselineJSON []byte

// roadGraph builds the sparse-frontier configuration: a chain backbone with
// a shortcut every eight vertices, the high-diameter road-network regime
// where a traversal's frontier stays a handful of vertices wide for the
// whole run. This is where asynchronous label-correcting execution wins —
// the BSP engine sweeps value arrays for hundreds of near-empty iterations.
func roadGraph(n int) *graph.Graph {
	g := gen.Chain(n)
	for i := 0; i+8 < n; i += 8 {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 8)})
	}
	return g
}

// roadLayout materializes the road graph (weighted or not) under WorkDir.
func roadLayout(cfg *Config, g *graph.Graph, key string) (*partition.Layout, error) {
	dir := filepath.Join(cfg.WorkDir, "road-sim", key)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("harness: cleaning %s: %w", dir, err)
	}
	dev, err := storage.OpenDevice(dir, cfg.profile())
	if err != nil {
		return nil, err
	}
	l, err := partition.Build(dev, g, chooseP(g, cfg.Quick))
	if err != nil {
		return nil, fmt.Errorf("harness: preprocessing road-sim: %w", err)
	}
	return l, nil
}

// runFigAsync is the proof-of-win study for asynchronous execution with
// priority sub-block scheduling. Three checks, all hard-enforced:
//
//  1. Sparse frontiers — BFS and SSSP under -async must move at least
//     asyncByteReductionMin fewer device bytes than the adaptive BSP
//     baseline, with bit-identical outputs (min-programs have a unique
//     fixed point).
//  2. PR-Delta — async must converge in fewer sub-block activations than
//     the BSP schedule's iterations×P² grid sweeps, with per-vertex ranks
//     within asyncPRDTolerance of the BSP fixed point.
//  3. Regression gate — when the run matches the committed baseline's
//     configuration, async device bytes must stay within
//     asyncRegressionMax× of the baseline.
//
// Device traffic is simulated, so every assertion is deterministic.
func runFigAsync(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("uk-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}

	// The traversals run on the road-sim sparse-frontier configuration from
	// vertex 0 (the chain head, so the frontier stays narrow end to end);
	// PR-D runs on the web-like uk-sim where active mass decays gradually.
	road := roadGraph(e.g.NumVertices)
	roadW := gen.Weighted(road.Clone(), 16, cfg.Seed+1)
	prd := func() core.Program { return &algorithms.PageRankDelta{Iterations: 200, Tolerance: 1e-6} }
	workloads := []struct {
		alg      Algorithm
		frontier string
		config   string
		layout   func() (*partition.Layout, error)
		source   graph.VertexID
	}{
		{Algorithm{"BFS", false, func(src graph.VertexID) core.Program { return &algorithms.BFS{Source: src} }},
			"sparse", "road-sim", func() (*partition.Layout, error) { return roadLayout(cfg, road, "u") }, 0},
		{Algorithm{"SSSP", true, func(src graph.VertexID) core.Program { return &algorithms.SSSP{Source: src} }},
			"sparse", "road-sim", func() (*partition.Layout, error) { return roadLayout(cfg, roadW, "w") }, 0},
		{Algorithm{"PR-D", false, func(graph.VertexID) core.Program { return prd() }},
			"decaying", ds.Name, func() (*partition.Layout, error) { return e.layout("graphsd", false) }, e.source},
	}

	t := metrics.NewTable("Asynchronous priority scheduling vs BSP",
		"algorithm", "config", "frontier", "bsp bytes", "async bytes", "reduction", "blocks", "bsp iters×P²", "identical")
	var records []asyncRunRecord
	for _, wl := range workloads {
		l, err := wl.layout()
		if err != nil {
			return err
		}
		base, err := core.Run(l, wl.alg.New(wl.source), core.Options{DefaultBuffer: true})
		if err != nil {
			return err
		}
		async, err := core.Run(l, wl.alg.New(wl.source), core.Options{Async: true, DefaultBuffer: true})
		if err != nil {
			return err
		}
		if !async.Async.Enabled || !async.Converged {
			return fmt.Errorf("harness: async %s did not converge (enabled=%t)", wl.alg.Name, async.Async.Enabled)
		}

		identical := identicalOutputs(base.Outputs, async.Outputs)
		rec := asyncRunRecord{
			Algorithm:       wl.alg.Name,
			Config:          wl.config,
			BaseBytes:       base.IO.TotalBytes(),
			AsyncBytes:      async.IO.TotalBytes(),
			BSPIterations:   base.Iterations,
			Steps:           int64(async.Async.Steps),
			SelectiveSteps:  int64(async.Async.SelectiveSteps),
			BlocksScheduled: async.Async.BlocksScheduled,
			Reactivations:   async.Async.Reactivations,
			Identical:       identical,
		}
		if rec.BaseBytes > 0 {
			rec.Reduction = 1 - float64(rec.AsyncBytes)/float64(rec.BaseBytes)
		}
		records = append(records, rec)
		gridSweeps := int64(base.Iterations) * int64(l.Meta.P) * int64(l.Meta.P)
		t.AddRow(wl.alg.Name, wl.config, wl.frontier,
			storage.FormatBytes(rec.BaseBytes), storage.FormatBytes(rec.AsyncBytes),
			fmt.Sprintf("%.1f%%", rec.Reduction*100),
			fmt.Sprint(rec.BlocksScheduled), fmt.Sprint(gridSweeps),
			fmt.Sprint(identical))

		switch wl.frontier {
		case "sparse":
			if !identical {
				return fmt.Errorf("harness: async %s outputs differ from the BSP fixed point", wl.alg.Name)
			}
			if rec.Reduction < asyncByteReductionMin {
				return fmt.Errorf("harness: async %s moved %d device bytes vs %d BSP (%.1f%% reduction, floor %.0f%%)",
					wl.alg.Name, rec.AsyncBytes, rec.BaseBytes, rec.Reduction*100, asyncByteReductionMin*100)
			}
		case "decaying":
			if rec.BlocksScheduled >= gridSweeps {
				return fmt.Errorf("harness: async %s scheduled %d sub-blocks, BSP swept %d (%d iters × %d²) — no activation win",
					wl.alg.Name, rec.BlocksScheduled, gridSweeps, base.Iterations, l.Meta.P)
			}
			var maxDiff float64
			for i := range base.Outputs {
				if d := math.Abs(base.Outputs[i] - async.Outputs[i]); d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > asyncPRDTolerance {
				return fmt.Errorf("harness: async %s fixed point off by %.3e (tolerance %.0e)",
					wl.alg.Name, maxDiff, asyncPRDTolerance)
			}
		}
	}
	t.AddNote("BSP baseline is the adaptive scheduler; async charges value traffic per touched interval instead of full sweeps")
	if err := t.Render(w); err != nil {
		return err
	}

	if out := os.Getenv("ASYNC_OUT"); out != "" {
		art := asyncArtifact{
			Dataset:       ds.Name,
			Seed:          cfg.Seed,
			Quick:         cfg.Quick,
			ReductionMin:  asyncByteReductionMin,
			RegressionMax: asyncRegressionMax,
			Runs:          records,
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("harness: writing ASYNC_OUT: %w", err)
		}
		fmt.Fprintf(w, "wrote async artifact to %s\n", out)
	}

	// Regression gate against the committed baseline, enforced only when
	// this run reproduces the baseline's configuration.
	var baseline asyncArtifact
	if err := json.Unmarshal(asyncBaselineJSON, &baseline); err != nil {
		return fmt.Errorf("harness: corrupt committed async baseline: %w", err)
	}
	if cfg.Quick == baseline.Quick && cfg.Seed == baseline.Seed && cfg.profile() == storage.ScaledHDD {
		byAlg := map[string]asyncRunRecord{}
		for _, r := range baseline.Runs {
			byAlg[r.Algorithm] = r
		}
		for _, r := range records {
			b, ok := byAlg[r.Algorithm]
			if !ok {
				continue
			}
			if float64(r.AsyncBytes) > float64(b.AsyncBytes)*asyncRegressionMax {
				return fmt.Errorf("harness: async %s moved %d device bytes, committed baseline %d — >%.2fx regression",
					r.Algorithm, r.AsyncBytes, b.AsyncBytes, asyncRegressionMax)
			}
		}
	}
	return nil
}
