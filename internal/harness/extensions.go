package harness

import (
	"fmt"
	"io"

	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/storage"
)

// Extension experiments beyond the paper's evaluation: the storage
// sensitivity study motivated by the paper's conclusion ("exploit emerging
// storage devices such as Intel Optane PMM") and an interval-count (P)
// sweep over the design's main structural parameter.

// runExtStorage compares the adaptive scheduler across device classes.
// The prediction: cheaper seeks shift the on-demand/full crossover so the
// scheduler picks on-demand in more iterations, and the adaptive engine
// remains at (or under) the better forced model on every device.
func runExtStorage(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("ukunion-sim")
	if err != nil {
		return err
	}
	alg := PaperAlgorithms()[2] // CC
	t := metrics.NewTable("ext-storage — CC on "+ds.Name+" across device classes",
		"device", "adaptive", "full-only", "on-demand-only", "on-demand iters")
	for _, dev := range []struct {
		name string
		prof storage.Profile
	}{
		{"scaled-hdd", storage.ScaledHDD},
		{"ssd", storage.SSD},
		{"pmem", storage.PMem},
	} {
		sub := *cfg
		sub.Profile = &dev.prof
		sub.WorkDir = cfg.WorkDir + "/ext-" + dev.name
		e, err := newEnv(&sub, ds)
		if err != nil {
			return err
		}
		adaptive, err := e.run("graphsd", alg)
		if err != nil {
			return err
		}
		full, err := e.run("graphsd-b3", alg)
		if err != nil {
			return err
		}
		ondemand, err := e.run("graphsd-b4", alg)
		if err != nil {
			return err
		}
		onDemandIters := 0
		for _, d := range adaptive.Decisions {
			if d.Model == iosched.OnDemandIO {
				onDemandIters++
			}
		}
		t.AddRow(dev.name,
			metrics.Dur(adaptive.ExecTime()), metrics.Dur(full.ExecTime()),
			metrics.Dur(ondemand.ExecTime()),
			fmt.Sprintf("%d/%d", onDemandIters, len(adaptive.Decisions)))
	}
	t.AddNote("cheaper seeks → more on-demand iterations; adaptive stays at the lower envelope on every device")
	return t.Render(w)
}

// runExtBufferPolicy compares the paper's priority eviction against naive
// FIFO caching for the secondary sub-block buffer, the design choice §4.3
// argues for. With a buffer smaller than the secondary working set, FIFO
// churns blocks regardless of their active-edge count while the priority
// scheme pins the profitable ones.
func runExtBufferPolicy(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("ukunion-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}
	l, err := e.layout("graphsd", false)
	if err != nil {
		return err
	}
	// A quarter of the secondary triangle: forces eviction decisions.
	var secondaryBytes int64
	for i := 0; i < l.Meta.P; i++ {
		for j := 0; j < i; j++ {
			secondaryBytes += l.Meta.SubBlockBytes(i, j)
		}
	}
	capacity := secondaryBytes / 4
	t := metrics.NewTable("ext-buffer-policy — CC on "+ds.Name+
		fmt.Sprintf(" (buffer = %s, secondary = %s)", storage.FormatBytes(capacity), storage.FormatBytes(secondaryBytes)),
		"policy", "exec time", "buffer hits", "bytes saved")
	alg := PaperAlgorithms()[2] // CC
	for _, pol := range []struct {
		name   string
		policy buffer.Policy
	}{
		{"priority (paper)", buffer.PriorityPolicy},
		{"fifo", buffer.FIFOPolicy},
	} {
		res, err := core.Run(l, alg.New(e.source), core.Options{
			BufferBytes:  capacity,
			BufferPolicy: pol.policy,
		})
		if err != nil {
			return err
		}
		t.AddRow(pol.name, metrics.Dur(res.ExecTime()),
			fmt.Sprint(res.Buffer.Hits), storage.FormatBytes(res.Buffer.BytesSaved))
	}
	return t.Render(w)
}

// runExtPSweep sweeps the interval count P, the grid's structural knob:
// more intervals mean finer selective loads but more positioning seeks and
// a smaller fraction of edges eligible for cross-iteration propagation
// (the diagonal shrinks as 1/P).
func runExtPSweep(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("uk-sim")
	if err != nil {
		return err
	}
	alg := PaperAlgorithms()[2] // CC
	t := metrics.NewTable("ext-psweep — CC on "+ds.Name+" over interval counts",
		"P", "exec time", "I/O traffic", "iterations")
	for _, p := range []int{2, 4, 8, 16} {
		sub := *cfg
		sub.WorkDir = fmt.Sprintf("%s/ext-p%d", cfg.WorkDir, p)
		e, err := newEnv(&sub, ds)
		if err != nil {
			return err
		}
		e.p = p
		res, err := e.run("graphsd", alg)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprint(p), metrics.Dur(res.ExecTime()),
			storage.FormatBytes(res.IO.TotalBytes()), fmt.Sprint(res.Iterations))
	}
	t.AddNote("the paper fixes P by the 5%% memory budget; the sweep shows the cost of over- and under-partitioning")
	return t.Render(w)
}
