package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/storage"
)

// Acceptance thresholds for the semi-external-memory experiment, enforced
// here so the harness test (and the CI sem job) fail on regression.
const (
	// semCapacityRatioMin is the minimum effective-capacity multiplier the
	// compressed cache tier must deliver on an unweighted run: decoded graph
	// bytes represented per RAM byte spent.
	semCapacityRatioMin = 2.0
)

// semRunRecord is one SEM-on/SEM-off pair in the BENCH_sem.json artifact.
type semRunRecord struct {
	Algorithm     string  `json:"algorithm"`
	Frontier      string  `json:"frontier"` // "sparse" or "dense"
	BaseReadBytes int64   `json:"base_read_bytes"`
	SEMReadBytes  int64   `json:"sem_read_bytes"`
	BlocksSkipped int64   `json:"blocks_skipped"`
	BytesSkipped  int64   `json:"bytes_skipped"`
	Iterations    int     `json:"iterations"`
	Identical     bool    `json:"bit_identical"`
}

// semArtifact is the JSON written to $SEM_OUT for the CI trend line.
type semArtifact struct {
	Dataset          string         `json:"dataset"`
	CapacityRatioMin float64        `json:"capacity_ratio_min"`
	CapacityRatio    float64        `json:"capacity_ratio"`
	CompressedBytes  int64          `json:"compressed_bytes"`
	DecodedBytes     int64          `json:"decoded_bytes"`
	WarmHits         int64          `json:"warm_compressed_hits"`
	Runs             []semRunRecord `json:"runs"`
}

// identicalOutputs reports whether two output vectors match bit for bit.
func identicalOutputs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// runFigSEM is the proof-of-win study for the semi-external-memory fast
// path. Three checks, all hard-enforced:
//
//  1. Sparse frontiers — forced-full BFS and SSSP with SEM on must skip
//     dead sub-blocks (BlocksSkipped > 0) and move strictly fewer device
//     bytes than the SEM-off baseline, with bit-identical outputs.
//  2. Dense frontiers — PR keeps every vertex active, so SEM must skip
//     nothing and change nothing: bit-identical outputs, no extra bytes.
//  3. Compressed tier — a compressed shared cache on the unweighted graph
//     must represent at least semCapacityRatioMin decoded bytes per RAM
//     byte, and a warm re-run must actually hit that tier.
//
// Device traffic is simulated, so every assertion is deterministic.
func runFigSEM(cfg *Config, w io.Writer) error {
	ds, err := cfg.dataset("uk-sim")
	if err != nil {
		return err
	}
	e, err := newEnv(cfg, ds)
	if err != nil {
		return err
	}

	workloads := []struct {
		alg      Algorithm
		frontier string
	}{
		{Algorithm{"BFS", false, func(src graph.VertexID) core.Program { return &algorithms.BFS{Source: src} }}, "sparse"},
		{Algorithm{"SSSP", true, func(src graph.VertexID) core.Program { return &algorithms.SSSP{Source: src} }}, "sparse"},
		{Algorithm{"PR", false, func(graph.VertexID) core.Program { return &algorithms.PageRank{Iterations: 5} }}, "dense"},
	}

	t := metrics.NewTable("Semi-external-memory fast path — forced-full on "+ds.Name,
		"algorithm", "frontier", "base read", "sem read", "saved", "blocks skipped", "identical")
	var records []semRunRecord
	for _, wl := range workloads {
		l, err := e.layout("graphsd", wl.alg.Weighted)
		if err != nil {
			return err
		}
		prog := wl.alg.New(e.source)
		opts := core.Options{ForceModel: core.ForceFull, DefaultBuffer: true}
		base, err := core.Run(l, prog, opts)
		if err != nil {
			return err
		}
		opts.SEM = true
		sem, err := core.Run(l, wl.alg.New(e.source), opts)
		if err != nil {
			return err
		}

		identical := identicalOutputs(base.Outputs, sem.Outputs) &&
			sem.Iterations == base.Iterations && sem.Converged == base.Converged
		rec := semRunRecord{
			Algorithm:     wl.alg.Name,
			Frontier:      wl.frontier,
			BaseReadBytes: base.IO.ReadBytes(),
			SEMReadBytes:  sem.IO.ReadBytes(),
			BlocksSkipped: sem.SEM.BlocksSkipped,
			BytesSkipped:  sem.SEM.BytesSkipped,
			Iterations:    sem.Iterations,
			Identical:     identical,
		}
		records = append(records, rec)
		t.AddRow(wl.alg.Name, wl.frontier,
			storage.FormatBytes(rec.BaseReadBytes), storage.FormatBytes(rec.SEMReadBytes),
			storage.FormatBytes(rec.BaseReadBytes-rec.SEMReadBytes),
			fmt.Sprintf("%d (%s)", rec.BlocksSkipped, storage.FormatBytes(rec.BytesSkipped)),
			fmt.Sprint(identical))

		if !identical {
			return fmt.Errorf("harness: %s outputs with SEM differ from SEM-off baseline", wl.alg.Name)
		}
		switch wl.frontier {
		case "sparse":
			if rec.BlocksSkipped == 0 {
				return fmt.Errorf("harness: sparse-frontier %s skipped no sub-blocks under SEM", wl.alg.Name)
			}
			if rec.SEMReadBytes >= rec.BaseReadBytes {
				return fmt.Errorf("harness: %s read %d device bytes under SEM, baseline %d — skips saved nothing",
					wl.alg.Name, rec.SEMReadBytes, rec.BaseReadBytes)
			}
		case "dense":
			if rec.BlocksSkipped != 0 {
				return fmt.Errorf("harness: dense-frontier %s skipped %d sub-blocks — bitmap miscounts activity",
					wl.alg.Name, rec.BlocksSkipped)
			}
			if rec.SEMReadBytes > rec.BaseReadBytes {
				return fmt.Errorf("harness: dense-frontier %s read %d bytes under SEM, baseline %d — SEM added traffic",
					wl.alg.Name, rec.SEMReadBytes, rec.BaseReadBytes)
			}
		}
	}

	// Compressed tier: cold run measures the capacity multiplier over every
	// sub-block offered to the tier; warm run must be served by it.
	l, err := e.layout("graphsd", false)
	if err != nil {
		return err
	}
	shared := buffer.NewSharedCompressed(l.Meta.EdgeBytesTotal())
	prProg := func() core.Program { return &algorithms.PageRank{Iterations: 5} }
	plain, err := core.Run(l, prProg(), core.Options{DefaultBuffer: true, ForceModel: core.ForceFull})
	if err != nil {
		return err
	}
	cold, err := core.Run(l, prProg(), core.Options{SharedBlocks: shared, ForceModel: core.ForceFull})
	if err != nil {
		return err
	}
	warm, err := core.Run(l, prProg(), core.Options{SharedBlocks: shared, ForceModel: core.ForceFull})
	if err != nil {
		return err
	}
	if !identicalOutputs(plain.Outputs, cold.Outputs) || !identicalOutputs(plain.Outputs, warm.Outputs) {
		return fmt.Errorf("harness: compressed-tier outputs differ from the uncached baseline")
	}
	ratio := cold.SEM.EffectiveCapacityRatio()
	t.AddNote("compressed tier — %s decoded graph held in %s RAM: %.2fx effective capacity (floor %.2fx); warm run %d compressed hits, decode %v",
		storage.FormatBytes(cold.SEM.DecodedBytes), storage.FormatBytes(cold.SEM.CompressedBytes),
		ratio, semCapacityRatioMin, warm.SEM.CompressedHits, shared.Stats().DecodeTime.Round(1000))
	if err := t.Render(w); err != nil {
		return err
	}

	if out := os.Getenv("SEM_OUT"); out != "" {
		art := semArtifact{
			Dataset:          ds.Name,
			CapacityRatioMin: semCapacityRatioMin,
			CapacityRatio:    ratio,
			CompressedBytes:  cold.SEM.CompressedBytes,
			DecodedBytes:     cold.SEM.DecodedBytes,
			WarmHits:         warm.SEM.CompressedHits,
			Runs:             records,
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("harness: writing SEM_OUT: %w", err)
		}
		fmt.Fprintf(w, "wrote semi-external-memory artifact to %s\n", out)
	}

	if ratio < semCapacityRatioMin {
		return fmt.Errorf("harness: compressed tier holds %.2fx decoded bytes per RAM byte, floor %.2fx",
			ratio, semCapacityRatioMin)
	}
	if warm.SEM.CompressedHits == 0 {
		return fmt.Errorf("harness: warm run never hit the compressed shared tier")
	}
	return nil
}
