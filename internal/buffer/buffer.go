// Package buffer implements GraphSD's sub-block buffering scheme (paper
// §4.3): secondary sub-blocks — the strictly-lower-triangle grid cells that
// the FCIU model must read twice — are cached in a bounded in-memory buffer.
// Each cached sub-block carries a priority equal to its active-edge count;
// when space is needed the lowest-priority resident is evicted, and a
// candidate whose priority is below every resident's is simply not cached.
package buffer

import (
	"fmt"

	"github.com/graphsd/graphsd/internal/graph"
)

// Key identifies a sub-block by its grid coordinates plus the content
// generation of the block at load time. Immutable layouts always use
// generation 0; mutable layouts bump a sub-block's generation on every
// mutation that touches it, so cache entries loaded before a write or a
// compaction publish can never be served afterwards — the stale entries
// simply stop being addressed and age out of the LRU.
type Key struct {
	I, J int
	Gen  int64
}

// String returns the key as "(i,j)" or "(i,j)@gen" for mutable layouts.
func (k Key) String() string {
	if k.Gen != 0 {
		return fmt.Sprintf("(%d,%d)@%d", k.I, k.J, k.Gen)
	}
	return fmt.Sprintf("(%d,%d)", k.I, k.J)
}

// Stats counts buffer outcomes for the Figure 12 experiment.
type Stats struct {
	Hits       int64
	Misses     int64
	Insertions int64
	Evictions  int64
	Rejections int64
	// BytesSaved is the total I/O bytes avoided by hits.
	BytesSaved int64
}

// Add returns the field-wise sum of s and o — used to aggregate per-job
// buffer stats across runs for the server's /metrics endpoint.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:       s.Hits + o.Hits,
		Misses:     s.Misses + o.Misses,
		Insertions: s.Insertions + o.Insertions,
		Evictions:  s.Evictions + o.Evictions,
		Rejections: s.Rejections + o.Rejections,
		BytesSaved: s.BytesSaved + o.BytesSaved,
	}
}

// Policy selects the eviction discipline.
type Policy int

const (
	// PriorityPolicy evicts the resident with the fewest active edges, the
	// paper's scheme (§4.3).
	PriorityPolicy Policy = iota
	// FIFOPolicy evicts the oldest resident regardless of priority — the
	// naive alternative the paper argues against; kept for the
	// buffer-policy ablation experiment.
	FIFOPolicy
)

type entry struct {
	// Exactly one of edges/payload is set: decoded entries hold edges,
	// compressed-tier entries hold the delta-coded payload instead.
	edges   []graph.Edge
	payload []byte
	// size is the capacity charge (decoded bytes for edge entries, encoded
	// bytes for payload entries); saved is the I/O volume a hit avoids
	// (always the decoded sub-block size, so BytesSaved is comparable
	// across tiers).
	size     int64
	saved    int64
	priority int64
	seq      int64 // insertion order, for FIFO
}

// Buffer is a bounded priority cache of decoded sub-blocks.
//
// Concurrency contract: Buffer is single-writer, zero-reader — it must only
// be accessed from one goroutine at a time, with no concurrent readers. In
// the engine that goroutine is the FCIU pass driver; the I/O pipeline's
// fetch workers never touch the buffer (residency is snapshotted before a
// pass starts, see core.newFCIUPass). Code that needs a cache shared across
// goroutines — such as the job server deduplicating sub-block loads between
// concurrent engines — must use the mutex-guarded Shared type instead.
type Buffer struct {
	capacity int64
	used     int64
	policy   Policy
	seq      int64
	entries  map[Key]*entry
	stats    Stats
}

// New returns a buffer holding at most capacity bytes of sub-block payload
// under the paper's priority eviction scheme. A zero or negative capacity
// yields a buffer that caches nothing, which is how the "buffering
// disabled" ablation is expressed.
func New(capacity int64) *Buffer {
	return NewWithPolicy(capacity, PriorityPolicy)
}

// NewWithPolicy returns a buffer with an explicit eviction policy.
func NewWithPolicy(capacity int64, policy Policy) *Buffer {
	return &Buffer{capacity: capacity, policy: policy, entries: make(map[Key]*entry)}
}

// Capacity returns the configured byte capacity.
func (b *Buffer) Capacity() int64 { return b.capacity }

// Used returns the bytes currently cached.
func (b *Buffer) Used() int64 { return b.used }

// Len returns the number of cached sub-blocks.
func (b *Buffer) Len() int { return len(b.entries) }

// Stats returns the accumulated outcome counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Get returns the cached edges for k, if resident as a decoded entry. A
// hit records the avoided I/O volume in the stats. Payload entries miss:
// callers on the decoded path cannot use them (use GetEntry instead).
func (b *Buffer) Get(k Key) ([]graph.Edge, bool) {
	e, ok := b.entries[k]
	if !ok || e.payload != nil {
		b.stats.Misses++
		return nil, false
	}
	b.stats.Hits++
	b.stats.BytesSaved += e.saved
	return e.edges, true
}

// GetEntry returns whichever form sub-block k is resident in — decoded
// edges or a delta-coded payload (exactly one is non-nil on a hit). Hit and
// saved-bytes accounting matches Get.
func (b *Buffer) GetEntry(k Key) (edges []graph.Edge, payload []byte, ok bool) {
	e, found := b.entries[k]
	if !found {
		b.stats.Misses++
		return nil, nil, false
	}
	b.stats.Hits++
	b.stats.BytesSaved += e.saved
	return e.edges, e.payload, true
}

// Peek returns the cached edges for k without touching the hit/miss
// counters. Used by the engine to recompute priorities after an iteration.
// Payload entries return (nil, false) like Get; use PeekEntry to see both
// forms.
func (b *Buffer) Peek(k Key) ([]graph.Edge, bool) {
	e, ok := b.entries[k]
	if !ok || e.payload != nil {
		return nil, false
	}
	return e.edges, true
}

// PeekEntry returns sub-block k in whichever form it is resident, without
// touching the hit/miss counters.
func (b *Buffer) PeekEntry(k Key) (edges []graph.Edge, payload []byte, ok bool) {
	e, found := b.entries[k]
	if !found {
		return nil, nil, false
	}
	return e.edges, e.payload, true
}

// Keys returns the keys of all resident sub-blocks in unspecified order.
func (b *Buffer) Keys() []Key {
	out := make([]Key, 0, len(b.entries))
	for k := range b.entries {
		out = append(out, k)
	}
	return out
}

// Contains reports residency without touching the hit/miss counters.
func (b *Buffer) Contains(k Key) bool {
	_, ok := b.entries[k]
	return ok
}

// Put offers sub-block k (decoded edges, on-disk size, priority) to the
// buffer. If k is already resident only its priority is refreshed. To make
// room, resident sub-blocks with priority strictly below the candidate's
// are evicted lowest-first; if that cannot free enough space the candidate
// is rejected. Returns whether the sub-block is resident afterwards.
func (b *Buffer) Put(k Key, edges []graph.Edge, size int64, priority int64) bool {
	return b.put(k, &entry{edges: edges, size: size, saved: size, priority: priority})
}

// PutBytes offers sub-block k to the buffer as a delta-coded payload — the
// semi-external-memory compressed tier. Capacity is charged by the encoded
// size (len(payload)); saved is the decoded sub-block size a future hit
// avoids loading, so BytesSaved stays comparable with the decoded tier.
// Admission and eviction follow Put exactly.
func (b *Buffer) PutBytes(k Key, payload []byte, saved int64, priority int64) bool {
	return b.put(k, &entry{payload: payload, size: int64(len(payload)), saved: saved, priority: priority})
}

func (b *Buffer) put(k Key, cand *entry) bool {
	if e, ok := b.entries[k]; ok {
		e.priority = cand.priority
		return true
	}
	if cand.size > b.capacity || cand.size < 0 {
		b.stats.Rejections++
		return false
	}
	for b.used+cand.size > b.capacity {
		victim, ok := b.pickVictim(cand.priority)
		if !ok {
			b.stats.Rejections++
			return false
		}
		b.evict(victim)
	}
	b.seq++
	cand.seq = b.seq
	b.entries[k] = cand
	b.used += cand.size
	b.stats.Insertions++
	return true
}

// pickVictim selects an evictable resident: the lowest-priority one with
// priority strictly below the candidate's under PriorityPolicy, or the
// oldest resident under FIFOPolicy.
func (b *Buffer) pickVictim(limit int64) (Key, bool) {
	if b.policy == FIFOPolicy {
		var bestKey Key
		var best *entry
		for k, e := range b.entries {
			if best == nil || e.seq < best.seq {
				best, bestKey = e, k
			}
		}
		return bestKey, best != nil
	}
	return b.lowestPriorityBelow(limit)
}

// UpdatePriority sets the priority of k if resident, as the paper requires
// after a secondary sub-block is processed in FCIU's first iteration.
func (b *Buffer) UpdatePriority(k Key, priority int64) {
	if e, ok := b.entries[k]; ok {
		e.priority = priority
	}
}

// Remove drops k from the buffer if resident.
func (b *Buffer) Remove(k Key) {
	if e, ok := b.entries[k]; ok {
		b.used -= e.size
		delete(b.entries, k)
	}
}

// Clear empties the buffer, keeping the statistics.
func (b *Buffer) Clear() {
	b.entries = make(map[Key]*entry)
	b.used = 0
}

// lowestPriorityBelow returns the resident with the smallest priority
// strictly below limit, tie-broken by insertion order so that eviction —
// and therefore every engine run — is fully deterministic.
func (b *Buffer) lowestPriorityBelow(limit int64) (Key, bool) {
	var bestKey Key
	var best *entry
	for k, e := range b.entries {
		if e.priority >= limit {
			continue
		}
		if best == nil || e.priority < best.priority ||
			(e.priority == best.priority && e.seq < best.seq) {
			best, bestKey = e, k
		}
	}
	return bestKey, best != nil
}

func (b *Buffer) evict(k Key) {
	e := b.entries[k]
	b.used -= e.size
	delete(b.entries, k)
	b.stats.Evictions++
}
