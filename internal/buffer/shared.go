package buffer

import (
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
)

// SharedStats counts the outcomes of a Shared cache. All counters are
// monotonic, so deltas between snapshots attribute activity to a window.
type SharedStats struct {
	// Hits served a sub-block with zero device I/O in the calling
	// goroutine — from residency or by a successful dedup wait; BytesSaved
	// is the on-disk volume those hits avoided re-reading.
	Hits       int64
	BytesSaved int64
	// Misses triggered a device load (the single flight for the key).
	Misses int64
	// DedupWaits counts callers that found a load for their key already in
	// flight and waited for it instead of issuing a duplicate device read.
	// A wait whose flight succeeded also counts as a Hit; a wait whose
	// flight failed counts as neither hit nor miss.
	DedupWaits int64
	// Insertions/Evictions/Rejections mirror the Buffer counters: blocks
	// cached after a load, blocks dropped to make room (least recently used
	// first), and loaded blocks too large to cache.
	Insertions int64
	Evictions  int64
	Rejections int64
	// CompressedHits is the subset of Hits served from the compressed tier
	// (GetOrLoadBytes on a cache built with NewSharedCompressed); each such
	// hit hands the caller a delta payload it must decode itself.
	// DecodeTime accumulates the wall time those callers reported spending
	// on that decode, via NoteDecode.
	CompressedHits int64
	DecodeTime     time.Duration
}

// Sub returns the counter-wise delta s − prev.
func (s SharedStats) Sub(prev SharedStats) SharedStats {
	return SharedStats{
		Hits:           s.Hits - prev.Hits,
		BytesSaved:     s.BytesSaved - prev.BytesSaved,
		Misses:         s.Misses - prev.Misses,
		DedupWaits:     s.DedupWaits - prev.DedupWaits,
		Insertions:     s.Insertions - prev.Insertions,
		Evictions:      s.Evictions - prev.Evictions,
		Rejections:     s.Rejections - prev.Rejections,
		CompressedHits: s.CompressedHits - prev.CompressedHits,
		DecodeTime:     s.DecodeTime - prev.DecodeTime,
	}
}

// Add returns the counter-wise sum of s and o.
func (s SharedStats) Add(o SharedStats) SharedStats {
	return SharedStats{
		Hits:           s.Hits + o.Hits,
		BytesSaved:     s.BytesSaved + o.BytesSaved,
		Misses:         s.Misses + o.Misses,
		DedupWaits:     s.DedupWaits + o.DedupWaits,
		Insertions:     s.Insertions + o.Insertions,
		Evictions:      s.Evictions + o.Evictions,
		Rejections:     s.Rejections + o.Rejections,
		CompressedHits: s.CompressedHits + o.CompressedHits,
		DecodeTime:     s.DecodeTime + o.DecodeTime,
	}
}

// flight is one in-progress load that late arrivals for the same key wait
// on instead of duplicating the device read. size is the loaded on-disk
// size, set before done closes so waiters can account the read they saved.
type flight struct {
	done    chan struct{}
	edges   []graph.Edge
	payload []byte // compressed caches carry the delta payload instead
	size    int64
	err     error
}

// sharedEntry is one resident sub-block of a Shared cache. Decoded caches
// set edges; compressed caches set payload. size is the capacity charge
// (decoded bytes, or encoded bytes for payload entries); saved is the
// device volume a hit avoids (always decoded bytes, so BytesSaved stays
// comparable across tiers).
type sharedEntry struct {
	edges   []graph.Edge
	payload []byte
	size    int64
	saved   int64
	touch   int64 // last-access clock tick, for LRU eviction
}

// Shared is the concurrency-safe read cache the job server places in front
// of a layout: concurrent engines on the same graph route their full
// sub-block loads through GetOrLoad, so a block is read from the device at
// most once per residency no matter how many jobs want it. It differs from
// Buffer on purpose:
//
//   - it is mutex-guarded and safe for any number of goroutines;
//   - loads are single-flight per key: the first caller performs the device
//     read, every concurrent caller for the same key waits for that one
//     result instead of issuing its own;
//   - eviction is least-recently-used by bytes, not active-edge priority —
//     a cross-job cache has no single frontier to rank blocks by.
//
// Cached edge slices are shared between jobs and with the in-flight loader;
// callers must treat them as immutable (the engine only ever reads decoded
// edges, so this holds today by construction).
//
// A Shared cache stores one payload representation, fixed at construction:
// decoded []graph.Edge (NewShared, accessed via GetOrLoad) or delta-coded
// bytes (NewSharedCompressed, accessed via GetOrLoadBytes). Callers must use
// the accessor matching the cache's mode; mixing them on one cache is not
// supported.
type Shared struct {
	mu         sync.Mutex
	capacity   int64
	compressed bool
	used       int64
	clock      int64
	entries    map[Key]*sharedEntry
	inflight   map[Key]*flight
	stats      SharedStats
}

// NewShared returns a shared cache holding at most capacity bytes of
// decoded sub-block payload. A zero or negative capacity caches nothing but
// still deduplicates concurrent loads of the same key. Negative capacities
// are clamped to zero at construction so insert's reject/evict arithmetic
// sees one consistent "cache nothing" regime.
func NewShared(capacity int64) *Shared {
	if capacity < 0 {
		capacity = 0
	}
	return &Shared{
		capacity: capacity,
		entries:  make(map[Key]*sharedEntry),
		inflight: make(map[Key]*flight),
	}
}

// NewSharedCompressed returns a shared cache that stores delta-coded
// payloads instead of decoded edges — the semi-external-memory compressed
// tier, holding 2–5× more graph per RAM byte at the price of a decode on
// every hit (run by the caller, via GetOrLoadBytes). Capacity accounting is
// byte-exact on the encoded size.
func NewSharedCompressed(capacity int64) *Shared {
	s := NewShared(capacity)
	s.compressed = true
	return s
}

// Compressed reports whether this cache stores delta-coded payloads
// (constructed with NewSharedCompressed) and must be accessed through
// GetOrLoadBytes.
func (s *Shared) Compressed() bool { return s.compressed }

// NoteDecode accumulates wall time a caller spent decoding a compressed-tier
// hit, surfaced as SharedStats.DecodeTime.
func (s *Shared) NoteDecode(d time.Duration) {
	s.mu.Lock()
	s.stats.DecodeTime += d
	s.mu.Unlock()
}

// Capacity returns the configured byte capacity.
func (s *Shared) Capacity() int64 { return s.capacity }

// Used returns the bytes currently cached.
func (s *Shared) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of resident sub-blocks.
func (s *Shared) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the outcome counters.
func (s *Shared) Stats() SharedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// GetOrLoad returns the edges for k, loading them through load on a miss.
// load must return the decoded edges and their cacheable size in bytes (the
// on-disk size, matching what a hit saves the device). hit reports whether
// the call was actually served without invoking load in this goroutine —
// from residency, or by waiting on another caller's in-flight load that
// succeeded. Successful waits count as Hits/BytesSaved: they saved a device
// read just like a resident hit.
//
// A failed load is not cached and wakes all waiters with the same error;
// those waiters report hit=false (nothing was served, and hit-derived
// metrics must not count them). Transient device faults stay retriable: the
// next GetOrLoad for the key starts a fresh flight.
func (s *Shared) GetOrLoad(k Key, load func() ([]graph.Edge, int64, error)) (edges []graph.Edge, hit bool, err error) {
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.clock++
		e.touch = s.clock
		s.stats.Hits++
		s.stats.BytesSaved += e.size
		s.mu.Unlock()
		return e.edges, true, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.stats.DedupWaits++
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			// The flight this caller piggybacked on failed: nothing was
			// served, so this is not a hit and must not inflate the
			// hit-derived metrics. The error stays retriable — the next
			// GetOrLoad starts a fresh flight.
			return nil, false, f.err
		}
		s.mu.Lock()
		s.stats.Hits++
		s.stats.BytesSaved += f.size
		s.mu.Unlock()
		return f.edges, true, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[k] = f
	s.stats.Misses++
	s.mu.Unlock()

	f.edges, f.size, f.err = load()

	s.mu.Lock()
	delete(s.inflight, k)
	if f.err == nil {
		s.insert(k, &sharedEntry{edges: f.edges, size: f.size, saved: f.size})
	}
	s.mu.Unlock()
	close(f.done)
	return f.edges, false, f.err
}

// GetOrLoadBytes is GetOrLoad for compressed caches: it returns the
// delta-coded payload for k, loading it through load on a miss. load must
// return the encoded payload and the decoded sub-block size in bytes — the
// capacity charge is the encoded size (what the payload occupies in RAM),
// while hits save the decoded size (what a hit avoids materializing from
// the device). The caller decodes the payload itself, in its own worker,
// and should report the decode wall time of hits via NoteDecode. Hit,
// dedup, and failure semantics match GetOrLoad exactly; hits additionally
// count as CompressedHits.
func (s *Shared) GetOrLoadBytes(k Key, load func() (payload []byte, decodedSize int64, err error)) (payload []byte, hit bool, err error) {
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.clock++
		e.touch = s.clock
		s.stats.Hits++
		s.stats.CompressedHits++
		s.stats.BytesSaved += e.saved
		s.mu.Unlock()
		return e.payload, true, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.stats.DedupWaits++
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		s.mu.Lock()
		s.stats.Hits++
		s.stats.CompressedHits++
		s.stats.BytesSaved += f.size
		s.mu.Unlock()
		return f.payload, true, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[k] = f
	s.stats.Misses++
	s.mu.Unlock()

	f.payload, f.size, f.err = load()

	s.mu.Lock()
	delete(s.inflight, k)
	if f.err == nil {
		s.insert(k, &sharedEntry{payload: f.payload, size: int64(len(f.payload)), saved: f.size})
	}
	s.mu.Unlock()
	close(f.done)
	return f.payload, false, f.err
}

// Peek returns the cached edges for k without touching any counter or the
// LRU clock. On compressed caches every entry is a payload, so Peek always
// misses there.
//
// Aliasing contract: Peek returns the cached slice itself, with no
// defensive copy — the same slice GetOrLoad handed to every caller of the
// key. Eviction only removes the cache's reference; a slice a caller
// retained stays valid (the garbage collector keeps it alive) and is never
// reused or overwritten by the cache, because entries are immutable from
// insertion to eviction and a re-load after eviction allocates a fresh
// slice. Callers must uphold their half: treat the slice as read-only.
func (s *Shared) Peek(k Key) ([]graph.Edge, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.payload != nil {
		return nil, false
	}
	return e.edges, true
}

// insert caches e under k, evicting least-recently-used residents until it
// fits. An existing entry for k (possible only if the cache's two accessors
// are mixed, which is unsupported but must not corrupt accounting) is
// replaced. Callers hold s.mu.
func (s *Shared) insert(k Key, e *sharedEntry) {
	if old, ok := s.entries[k]; ok {
		s.used -= old.size
		delete(s.entries, k)
	}
	if e.size > s.capacity || e.size < 0 {
		s.stats.Rejections++
		return
	}
	for s.used+e.size > s.capacity {
		var victim Key
		var oldest *sharedEntry
		for kk, ee := range s.entries {
			if oldest == nil || ee.touch < oldest.touch {
				oldest, victim = ee, kk
			}
		}
		if oldest == nil {
			s.stats.Rejections++
			return
		}
		s.used -= oldest.size
		delete(s.entries, victim)
		s.stats.Evictions++
	}
	s.clock++
	e.touch = s.clock
	s.entries[k] = e
	s.used += e.size
	s.stats.Insertions++
}
