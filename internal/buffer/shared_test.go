package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphsd/graphsd/internal/graph"
)

func mkEdges(i, j, n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for k := range edges {
		edges[k] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(j + k)}
	}
	return edges
}

func TestSharedHitMiss(t *testing.T) {
	s := NewShared(1 << 20)
	loads := 0
	load := func() ([]graph.Edge, int64, error) {
		loads++
		return mkEdges(1, 2, 3), 100, nil
	}
	edges, hit, err := s.GetOrLoad(Key{I: 1, J: 2}, load)
	if err != nil || hit || len(edges) != 3 {
		t.Fatalf("first GetOrLoad: edges=%d hit=%t err=%v", len(edges), hit, err)
	}
	edges, hit, err = s.GetOrLoad(Key{I: 1, J: 2}, load)
	if err != nil || !hit || len(edges) != 3 {
		t.Fatalf("second GetOrLoad: edges=%d hit=%t err=%v", len(edges), hit, err)
	}
	if loads != 1 {
		t.Fatalf("load called %d times, want 1", loads)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 100 || st.Insertions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSharedLRUEviction(t *testing.T) {
	s := NewShared(250)
	put := func(k Key) {
		s.GetOrLoad(k, func() ([]graph.Edge, int64, error) { return mkEdges(k.I, k.J, 1), 100, nil })
	}
	put(Key{I: 0, J: 0})
	put(Key{I: 1, J: 0})
	// Touch (0,0) so (1,0) is the LRU victim.
	put(Key{I: 0, J: 0})
	put(Key{I: 2, J: 0})
	if !s.has(Key{I: 0, J: 0}) || s.has(Key{I: 1, J: 0}) || !s.has(Key{I: 2, J: 0}) {
		t.Fatalf("LRU eviction picked the wrong victim: %+v", s.Stats())
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// A block larger than capacity is served but never cached.
	_, _, err := s.GetOrLoad(Key{I: 9, J: 9}, func() ([]graph.Edge, int64, error) { return mkEdges(9, 9, 1), 1000, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.has(Key{I: 9, J: 9}) {
		t.Fatal("oversized block was cached")
	}
	if st := s.Stats(); st.Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", st.Rejections)
	}
}

func (s *Shared) has(k Key) bool {
	_, ok := s.Peek(k)
	return ok
}

func TestSharedFailedLoadNotCachedAndRetriable(t *testing.T) {
	s := NewShared(1 << 20)
	boom := errors.New("boom")
	_, _, err := s.GetOrLoad(Key{I: 1, J: 1}, func() ([]graph.Edge, int64, error) { return nil, 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	edges, _, err := s.GetOrLoad(Key{I: 1, J: 1}, func() ([]graph.Edge, int64, error) { return mkEdges(1, 1, 2), 10, nil })
	if err != nil || len(edges) != 2 {
		t.Fatalf("retry after failed load: edges=%d err=%v", len(edges), err)
	}
}

// TestSharedSingleFlight: concurrent callers for one key perform exactly one
// load between them.
func TestSharedSingleFlight(t *testing.T) {
	s := NewShared(1 << 20)
	var loads atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			edges, _, err := s.GetOrLoad(Key{I: 3, J: 4}, func() ([]graph.Edge, int64, error) {
				loads.Add(1)
				return mkEdges(3, 4, 5), 50, nil
			})
			if err != nil || len(edges) != 5 {
				t.Errorf("GetOrLoad: edges=%d err=%v", len(edges), err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1 (single-flight)", n)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits+st.DedupWaits != callers-1 {
		t.Fatalf("stats after single-flight fan-in: %+v", st)
	}
}

// TestSharedStress hammers one small cache from many goroutines over an
// overlapping key set — run under -race this is the goroutine-safety proof
// for the server's shared cache.
func TestSharedStress(t *testing.T) {
	s := NewShared(2000) // holds ~half the key set: hits and eviction churn
	const (
		workers = 8
		keys    = 16
		rounds  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := Key{I: (w + r) % keys, J: r % 4}
				edges, _, err := s.GetOrLoad(k, func() ([]graph.Edge, int64, error) {
					return mkEdges(k.I, k.J, k.I+1), int64(50 + k.I), nil
				})
				if err != nil {
					t.Errorf("GetOrLoad(%v): %v", k, err)
					return
				}
				if len(edges) != k.I+1 || int(edges[0].Src) != k.I {
					t.Errorf("GetOrLoad(%v) returned wrong edges (%d)", k, len(edges))
					return
				}
				if r%7 == 0 {
					s.Peek(k)
					s.Used()
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("stress produced no cache activity: %+v", st)
	}
	if s.Used() > 2000 {
		t.Fatalf("used %d exceeds capacity", s.Used())
	}
	t.Logf("stress: %+v", st)
}

// TestSharedFailedFlightWaitersNotHits pins the dedup-wait accounting: a
// waiter whose in-flight load fails got nothing, so it must report hit=false
// and must not count toward Hits or BytesSaved — SharedHits-derived metrics
// would otherwise report device reads saved by loads that never happened.
func TestSharedFailedFlightWaitersNotHits(t *testing.T) {
	s := NewShared(1 << 20)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	loaderDone := make(chan struct{})
	go func() {
		defer close(loaderDone)
		_, hit, err := s.GetOrLoad(Key{I: 5, J: 5}, func() ([]graph.Edge, int64, error) {
			close(started)
			<-release
			return nil, 0, boom
		})
		if hit || !errors.Is(err, boom) {
			t.Errorf("loader: hit=%t err=%v", hit, err)
		}
	}()
	<-started

	const waiters = 4
	var wg sync.WaitGroup
	for c := 0; c < waiters; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			edges, hit, err := s.GetOrLoad(Key{I: 5, J: 5}, func() ([]graph.Edge, int64, error) {
				t.Error("waiter ran its own load while a flight was pending")
				return nil, 0, nil
			})
			if hit {
				t.Error("waiter on a failed flight reported hit=true")
			}
			if edges != nil || !errors.Is(err, boom) {
				t.Errorf("waiter: edges=%v err=%v", edges, err)
			}
		}()
	}
	// Wait until all waiters are parked on the flight before failing it.
	for {
		if st := s.Stats(); st.DedupWaits == waiters {
			break
		}
	}
	close(release)
	<-loaderDone
	wg.Wait()

	st := s.Stats()
	if st.Hits != 0 || st.BytesSaved != 0 {
		t.Fatalf("failed flight inflated hit metrics: %+v", st)
	}
	if st.Misses != 1 || st.DedupWaits != waiters {
		t.Fatalf("stats: %+v", st)
	}

	// Contrast: waiters on a SUCCESSFUL flight are hits and save bytes.
	started2 := make(chan struct{})
	release2 := make(chan struct{})
	go func() {
		s.GetOrLoad(Key{I: 6, J: 6}, func() ([]graph.Edge, int64, error) {
			close(started2)
			<-release2
			return mkEdges(6, 6, 2), 77, nil
		})
	}()
	<-started2
	waited := make(chan struct{})
	go func() {
		defer close(waited)
		edges, hit, err := s.GetOrLoad(Key{I: 6, J: 6}, func() ([]graph.Edge, int64, error) {
			return nil, 0, errors.New("should not run")
		})
		if !hit || err != nil || len(edges) != 2 {
			t.Errorf("successful-flight waiter: edges=%d hit=%t err=%v", len(edges), hit, err)
		}
	}()
	for {
		if st := s.Stats(); st.DedupWaits == waiters+1 {
			break
		}
	}
	close(release2)
	<-waited
	st = s.Stats()
	if st.Hits != 1 || st.BytesSaved != 77 {
		t.Fatalf("successful dedup wait not counted as hit: %+v", st)
	}
}

// TestSharedNegativeCapacityClamped: a negative capacity behaves exactly
// like zero — nothing cached, inserts rejected cleanly, no eviction-loop
// arithmetic on a negative budget.
func TestSharedNegativeCapacityClamped(t *testing.T) {
	s := NewShared(-1)
	if s.Capacity() != 0 {
		t.Fatalf("Capacity() = %d, want 0", s.Capacity())
	}
	edges, hit, err := s.GetOrLoad(Key{I: 1, J: 1}, func() ([]graph.Edge, int64, error) {
		return mkEdges(1, 1, 3), 30, nil
	})
	if err != nil || hit || len(edges) != 3 {
		t.Fatalf("GetOrLoad on clamped cache: edges=%d hit=%t err=%v", len(edges), hit, err)
	}
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatalf("clamped cache cached an entry: len=%d used=%d", s.Len(), s.Used())
	}
	if st := s.Stats(); st.Rejections != 1 || st.Insertions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSharedGenerationFlipUnderConcurrentLoad is the mutable-graph cache
// contract under -race: while readers hammer GetOrLoad, a writer keeps
// bumping the content generation (as the delta store does after every
// mutation batch). A reader that keys its load with generation G must only
// ever be handed edges loaded for generation G — stale pre-mutation blocks
// may stay resident under their old keys, but must never satisfy a
// new-generation request.
func TestSharedGenerationFlipUnderConcurrentLoad(t *testing.T) {
	s := NewShared(4000) // small: old-generation entries churn out under pressure
	const (
		workers = 8
		blocks  = 6
		rounds  = 400
	)
	var gen atomic.Int64
	// Writer: flips the generation mid-traffic, like a mutation burst.
	stop := make(chan struct{})
	flipperDone := make(chan struct{})
	go func() {
		defer close(flipperDone)
		for {
			select {
			case <-stop:
				return
			default:
				gen.Add(1)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				g := gen.Load()
				k := Key{I: (w + r) % blocks, J: r % 2, Gen: g}
				// The loader stamps the generation into the edge it
				// returns; a hit from any other generation is detected
				// below.
				edges, _, err := s.GetOrLoad(k, func() ([]graph.Edge, int64, error) {
					return []graph.Edge{{Src: graph.VertexID(k.I), Dst: graph.VertexID(g)}}, 60, nil
				})
				if err != nil {
					t.Errorf("GetOrLoad(%v): %v", k, err)
					return
				}
				if int64(edges[0].Dst) != g || int(edges[0].Src) != k.I {
					t.Errorf("key %v served generation %d content", k, edges[0].Dst)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-flipperDone

	st := s.Stats()
	if st.Misses == 0 {
		t.Fatalf("generation flips forced no reloads: %+v", st)
	}
	if s.Used() > 4000 {
		t.Fatalf("used %d exceeds capacity", s.Used())
	}
	t.Logf("generation flip: %+v, final gen %d", st, gen.Load())
}

func TestSharedZeroCapacityStillDedups(t *testing.T) {
	s := NewShared(0)
	var loads atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.GetOrLoad(Key{I: 1, J: 1}, func() ([]graph.Edge, int64, error) {
				loads.Add(1)
				return mkEdges(1, 1, 1), 10, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("zero-capacity cache holds %d entries", s.Len())
	}
	// Sequential calls each load (nothing resident), but any concurrent
	// overlap deduplicates; either way at most 8 loads and at least 1.
	if n := loads.Load(); n < 1 || n > 8 {
		t.Fatalf("loads = %d", n)
	}
	_ = fmt.Sprint(s.Stats())
}
