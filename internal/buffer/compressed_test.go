package buffer

import (
	"sync"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/graph"
)

// The compressed tier: payload entries in the per-run Buffer (PutBytes /
// GetEntry / PeekEntry) and the Shared compressed mode (NewSharedCompressed /
// GetOrLoadBytes), plus the Peek aliasing contract under concurrent eviction.

func TestBufferPayloadEntries(t *testing.T) {
	b := New(100)
	k := Key{I: 1, J: 0}
	payload := []byte{1, 2, 3, 4}
	if !b.PutBytes(k, payload, 40, 5) {
		t.Fatal("payload rejected with room to spare")
	}
	// Capacity is charged at the encoded size, not the decoded size.
	if b.Used() != int64(len(payload)) {
		t.Fatalf("used %d, want encoded size %d", b.Used(), len(payload))
	}

	// The decoded-path accessors must miss: they cannot hand a payload to
	// a caller expecting edges.
	if _, ok := b.Get(k); ok {
		t.Fatal("Get returned a payload entry")
	}
	if _, ok := b.Peek(k); ok {
		t.Fatal("Peek returned a payload entry")
	}

	// The entry accessors see it, with hit accounting at the decoded size.
	gotE, gotP, ok := b.GetEntry(k)
	if !ok || gotE != nil || string(gotP) != string(payload) {
		t.Fatalf("GetEntry = (%v, %v, %t)", gotE, gotP, ok)
	}
	if st := b.Stats(); st.Hits != 1 || st.BytesSaved != 40 {
		t.Fatalf("after payload hit: hits=%d saved=%d, want 1/40", st.Hits, st.BytesSaved)
	}
	peekE, peekP, ok := b.PeekEntry(k)
	if !ok || peekE != nil || string(peekP) != string(payload) {
		t.Fatalf("PeekEntry = (%v, %v, %t)", peekE, peekP, ok)
	}
	if st := b.Stats(); st.Hits != 1 {
		t.Fatal("PeekEntry touched the hit counter")
	}
}

func TestBufferPayloadEviction(t *testing.T) {
	b := New(10)
	if !b.PutBytes(Key{I: 1, J: 0}, make([]byte, 6), 60, 1) {
		t.Fatal("first payload rejected")
	}
	// A higher-priority candidate evicts the low-priority payload resident.
	if !b.PutBytes(Key{I: 2, J: 0}, make([]byte, 8), 80, 9) {
		t.Fatal("higher-priority payload rejected")
	}
	if b.Contains(Key{I: 1, J: 0}) {
		t.Fatal("low-priority payload survived eviction")
	}
	if st := b.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	// A lower-priority candidate that doesn't fit is rejected.
	if b.PutBytes(Key{I: 3, J: 0}, make([]byte, 8), 80, 1) {
		t.Fatal("low-priority payload displaced a higher-priority resident")
	}
}

func TestSharedCompressedRoundTrip(t *testing.T) {
	s := NewSharedCompressed(1000)
	if !s.Compressed() {
		t.Fatal("NewSharedCompressed not marked compressed")
	}
	if NewShared(1000).Compressed() {
		t.Fatal("NewShared marked compressed")
	}

	k := Key{I: 0, J: 1}
	payload := []byte{9, 8, 7}
	loads := 0
	load := func() ([]byte, int64, error) {
		loads++
		return payload, 30, nil
	}

	got, hit, err := s.GetOrLoadBytes(k, load)
	if err != nil || hit || string(got) != string(payload) {
		t.Fatalf("cold GetOrLoadBytes = (%v, %t, %v)", got, hit, err)
	}
	got, hit, err = s.GetOrLoadBytes(k, load)
	if err != nil || !hit || string(got) != string(payload) {
		t.Fatalf("warm GetOrLoadBytes = (%v, %t, %v)", got, hit, err)
	}
	if loads != 1 {
		t.Fatalf("load ran %d times, want 1", loads)
	}

	st := s.Stats()
	if st.Hits != 1 || st.CompressedHits != 1 || st.Misses != 1 {
		t.Fatalf("stats hits=%d compressed=%d misses=%d, want 1/1/1", st.Hits, st.CompressedHits, st.Misses)
	}
	// Hits save the decoded size; capacity is charged at the encoded size.
	if st.BytesSaved != 30 {
		t.Fatalf("bytes saved %d, want decoded 30", st.BytesSaved)
	}
	if s.Used() != int64(len(payload)) {
		t.Fatalf("used %d, want encoded %d", s.Used(), len(payload))
	}

	s.NoteDecode(3 * time.Millisecond)
	s.NoteDecode(2 * time.Millisecond)
	if d := s.Stats().DecodeTime; d != 5*time.Millisecond {
		t.Fatalf("decode time %v, want 5ms", d)
	}

	// Peek never exposes payload entries: there are no decoded edges to
	// alias.
	if _, ok := s.Peek(k); ok {
		t.Fatal("Peek returned a compressed entry")
	}
}

func TestSharedCompressedDedup(t *testing.T) {
	s := NewSharedCompressed(1000)
	release := make(chan struct{})
	var loads int
	const callers = 4
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p, _, err := s.GetOrLoadBytes(Key{I: 5, J: 5}, func() ([]byte, int64, error) {
				loads++ // single flight: only one goroutine runs this
				<-release
				return []byte{42}, 10, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[c] = p
		}(c)
	}
	// Let the callers pile up on the single flight, then release it.
	for s.Stats().DedupWaits+1 < callers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if loads != 1 {
		t.Fatalf("load ran %d times under %d concurrent callers", loads, callers)
	}
	for c, p := range results {
		if len(p) != 1 || p[0] != 42 {
			t.Fatalf("caller %d got %v", c, p)
		}
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != callers-1 || st.CompressedHits != callers-1 {
		t.Fatalf("stats %+v after dedup, want 1 miss and %d compressed hits", st, callers-1)
	}
}

// TestSharedPeekSurvivesEviction exercises the documented aliasing contract
// under the race detector: a slice returned by Peek stays valid and unchanged
// while concurrent loads evict the entry it came from.
func TestSharedPeekSurvivesEviction(t *testing.T) {
	rec := int64(graph.EdgeBytes)
	s := NewShared(4 * rec) // room for ~4 single-edge blocks
	loadOne := func(i, j int) func() ([]graph.Edge, int64, error) {
		return func() ([]graph.Edge, int64, error) {
			return []graph.Edge{{Src: graph.VertexID(i), Dst: graph.VertexID(j)}}, rec, nil
		}
	}
	if _, _, err := s.GetOrLoad(Key{I: 0, J: 0}, loadOne(0, 0)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: churn the cache so Key{0,0} is evicted and reloaded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.GetOrLoad(Key{I: i % 64, J: 1}, loadOne(i%64, 1))
			s.GetOrLoad(Key{I: 0, J: 0}, loadOne(0, 0))
		}
	}()
	// Readers: peek and then keep reading the returned slice after the
	// entry may have been evicted. Any write-after-evict would trip -race.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				if edges, ok := s.Peek(Key{I: 0, J: 0}); ok {
					if edges[0].Src != 0 || edges[0].Dst != 0 {
						t.Error("peeked slice mutated after eviction")
						return
					}
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
