package buffer

import (
	"testing"
	"testing/quick"

	"github.com/graphsd/graphsd/internal/graph"
)

func edges(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return out
}

func TestEmptyBufferMisses(t *testing.T) {
	b := New(100)
	if _, ok := b.Get(Key{I: 0, J: 0}); ok {
		t.Fatal("empty buffer hit")
	}
	s := b.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	b := New(1000)
	e := edges(5)
	if !b.Put(Key{I: 1, J: 2}, e, 40, 10) {
		t.Fatal("Put rejected with ample space")
	}
	got, ok := b.Get(Key{I: 1, J: 2})
	if !ok || len(got) != 5 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	s := b.Stats()
	if s.Hits != 1 || s.Insertions != 1 || s.BytesSaved != 40 {
		t.Fatalf("stats = %+v", s)
	}
	if b.Used() != 40 || b.Len() != 1 || b.Capacity() != 1000 {
		t.Fatalf("Used=%d Len=%d Cap=%d", b.Used(), b.Len(), b.Capacity())
	}
}

func TestZeroCapacityCachesNothing(t *testing.T) {
	b := New(0)
	if b.Put(Key{I: 0, J: 0}, edges(1), 8, 100) {
		t.Fatal("zero-capacity buffer accepted an entry")
	}
	if b.Stats().Rejections != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestOversizeRejected(t *testing.T) {
	b := New(100)
	if b.Put(Key{I: 0, J: 0}, edges(20), 160, 1) {
		t.Fatal("oversize entry accepted")
	}
	if b.Put(Key{I: 0, J: 0}, nil, -1, 1) {
		t.Fatal("negative size accepted")
	}
}

func TestEvictsLowestPriority(t *testing.T) {
	b := New(100)
	b.Put(Key{I: 0, J: 0}, edges(1), 40, 5)  // low priority
	b.Put(Key{I: 1, J: 0}, edges(1), 40, 50) // high priority
	// Needs 40 bytes; must evict (0,0), not (1,0).
	if !b.Put(Key{I: 2, J: 0}, edges(1), 40, 20) {
		t.Fatal("insertion with evictable victim rejected")
	}
	if b.Contains(Key{I: 0, J: 0}) {
		t.Fatal("low-priority entry survived")
	}
	if !b.Contains(Key{I: 1, J: 0}) || !b.Contains(Key{I: 2, J: 0}) {
		t.Fatal("wrong victim evicted")
	}
	if b.Stats().Evictions != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestRejectsWhenAllResidentsHigherPriority(t *testing.T) {
	b := New(80)
	b.Put(Key{I: 0, J: 0}, edges(1), 40, 100)
	b.Put(Key{I: 1, J: 0}, edges(1), 40, 90)
	if b.Put(Key{I: 2, J: 0}, edges(1), 40, 10) {
		t.Fatal("low-priority candidate displaced higher-priority residents")
	}
	if !b.Contains(Key{I: 0, J: 0}) || !b.Contains(Key{I: 1, J: 0}) {
		t.Fatal("residents were disturbed")
	}
	// Equal priority must not displace either (strict inequality).
	if b.Put(Key{I: 3, J: 0}, edges(1), 40, 90) {
		t.Fatal("equal-priority candidate displaced a resident")
	}
}

func TestEvictsMultipleVictims(t *testing.T) {
	b := New(100)
	b.Put(Key{I: 0, J: 0}, edges(1), 30, 1)
	b.Put(Key{I: 1, J: 0}, edges(1), 30, 2)
	b.Put(Key{I: 2, J: 0}, edges(1), 30, 3)
	// 90 bytes used; an 80-byte candidate at priority 10 must evict all three.
	if !b.Put(Key{I: 3, J: 0}, edges(1), 80, 10) {
		t.Fatal("multi-victim insertion rejected")
	}
	if b.Len() != 1 || b.Used() != 80 {
		t.Fatalf("Len=%d Used=%d", b.Len(), b.Used())
	}
	if b.Stats().Evictions != 3 {
		t.Fatalf("evictions = %d", b.Stats().Evictions)
	}
}

func TestPutExistingRefreshesPriority(t *testing.T) {
	b := New(100)
	b.Put(Key{I: 0, J: 0}, edges(1), 40, 1)
	b.Put(Key{I: 1, J: 0}, edges(1), 40, 50)
	// Refresh (0,0) to a high priority; no new insertion recorded.
	if !b.Put(Key{I: 0, J: 0}, edges(1), 40, 60) {
		t.Fatal("refresh rejected")
	}
	if b.Stats().Insertions != 2 {
		t.Fatalf("insertions = %d", b.Stats().Insertions)
	}
	// Now (1,0) is the lowest priority and must be the victim.
	if !b.Put(Key{I: 2, J: 0}, edges(1), 40, 55) {
		t.Fatal("insertion rejected")
	}
	if b.Contains(Key{I: 1, J: 0}) || !b.Contains(Key{I: 0, J: 0}) {
		t.Fatal("priority refresh not honoured by eviction")
	}
}

func TestUpdatePriority(t *testing.T) {
	b := New(80)
	b.Put(Key{I: 0, J: 0}, edges(1), 40, 100)
	b.Put(Key{I: 1, J: 0}, edges(1), 40, 90)
	b.UpdatePriority(Key{I: 0, J: 0}, 1)
	// (0,0) now evictable by a priority-10 candidate.
	if !b.Put(Key{I: 2, J: 0}, edges(1), 40, 10) {
		t.Fatal("insertion after priority downgrade rejected")
	}
	if b.Contains(Key{I: 0, J: 0}) {
		t.Fatal("downgraded entry survived")
	}
	// Updating an absent key is a no-op.
	b.UpdatePriority(Key{I: 9, J: 9}, 5)
}

func TestRemoveAndClear(t *testing.T) {
	b := New(100)
	b.Put(Key{I: 0, J: 0}, edges(1), 40, 1)
	b.Remove(Key{I: 0, J: 0})
	if b.Contains(Key{I: 0, J: 0}) || b.Used() != 0 {
		t.Fatal("Remove failed")
	}
	b.Remove(Key{I: 0, J: 0}) // absent: no-op
	b.Put(Key{I: 1, J: 1}, edges(1), 40, 1)
	b.Clear()
	if b.Len() != 0 || b.Used() != 0 {
		t.Fatal("Clear failed")
	}
	if b.Stats().Insertions != 2 {
		t.Fatal("Clear dropped stats")
	}
}

func TestPriorityTiesBreakByInsertionOrder(t *testing.T) {
	// Equal priorities: the earliest-inserted entry must be the victim,
	// deterministically, regardless of map iteration order.
	for trial := 0; trial < 20; trial++ {
		b := New(120)
		b.Put(Key{I: 0, J: 0}, edges(1), 40, 5)
		b.Put(Key{I: 1, J: 0}, edges(1), 40, 5)
		b.Put(Key{I: 2, J: 0}, edges(1), 40, 5)
		if !b.Put(Key{I: 3, J: 0}, edges(1), 40, 9) {
			t.Fatal("insertion rejected")
		}
		if b.Contains(Key{I: 0, J: 0}) || !b.Contains(Key{I: 1, J: 0}) || !b.Contains(Key{I: 2, J: 0}) {
			t.Fatalf("trial %d: wrong victim among ties", trial)
		}
	}
}

func TestFIFOPolicyEvictsOldest(t *testing.T) {
	b := NewWithPolicy(80, FIFOPolicy)
	b.Put(Key{I: 0, J: 0}, edges(1), 40, 1000) // oldest, highest priority
	b.Put(Key{I: 1, J: 0}, edges(1), 40, 1)
	// FIFO ignores priority: (0,0) goes first despite priority 1000.
	if !b.Put(Key{I: 2, J: 0}, edges(1), 40, 5) {
		t.Fatal("FIFO insertion rejected")
	}
	if b.Contains(Key{I: 0, J: 0}) {
		t.Fatal("FIFO kept the oldest entry")
	}
	if !b.Contains(Key{I: 1, J: 0}) || !b.Contains(Key{I: 2, J: 0}) {
		t.Fatal("FIFO evicted the wrong entry")
	}
}

func TestFIFONeverRejectsFittingEntry(t *testing.T) {
	b := NewWithPolicy(40, FIFOPolicy)
	for i := 0; i < 10; i++ {
		if !b.Put(Key{I: i, J: 0}, edges(1), 40, int64(i)) {
			t.Fatalf("FIFO rejected fitting entry %d", i)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("FIFO holds %d entries in a one-slot buffer", b.Len())
	}
}

// Property: Used() always equals the sum of resident sizes and never
// exceeds capacity, for any operation sequence.
func TestPropertyUsedWithinCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		const capacity = 500
		b := New(capacity)
		for _, op := range ops {
			k := Key{I: int(op % 7), J: int(op / 7 % 7)}
			switch op % 4 {
			case 0:
				b.Put(k, nil, int64(op%200), int64(op%13))
			case 1:
				b.Get(k)
			case 2:
				b.Remove(k)
			case 3:
				b.UpdatePriority(k, int64(op%29))
			}
			if b.Used() > capacity || b.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
