package vertexstore

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/graphsd/graphsd/internal/storage"
)

func testDevice(t *testing.T) *storage.Device {
	t.Helper()
	d, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	dev := testDevice(t)
	if _, err := New(dev, "x", -1); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := New(dev, "", 10); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	dev := testDevice(t)
	s, err := New(dev, "ranks", 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Exists() {
		t.Fatal("fresh store Exists")
	}
	vals := []float64{0, 1.5, -2.25, math.Inf(1), math.SmallestNonzeroFloat64}
	if err := s.Write(vals); err != nil {
		t.Fatal(err)
	}
	if !s.Exists() {
		t.Fatal("written store does not Exist")
	}
	got := make([]float64, 5)
	if err := s.Read(got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] && !(math.IsInf(got[i], 1) && math.IsInf(vals[i], 1)) {
			t.Fatalf("value %d = %v, want %v", i, got[i], vals[i])
		}
	}
	if s.Bytes() != 40 || s.Len() != 5 {
		t.Fatalf("Bytes=%d Len=%d", s.Bytes(), s.Len())
	}
}

func TestLengthMismatch(t *testing.T) {
	dev := testDevice(t)
	s, err := New(dev, "x", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(make([]float64, 4)); err == nil {
		t.Error("oversized write accepted")
	}
	if err := s.Write(make([]float64, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(make([]float64, 2)); err == nil {
		t.Error("undersized read accepted")
	}
}

func TestReadMissing(t *testing.T) {
	dev := testDevice(t)
	s, err := New(dev, "missing", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Read(make([]float64, 2)); err == nil {
		t.Fatal("reading unwritten store succeeded")
	}
}

func TestRemove(t *testing.T) {
	dev := testDevice(t)
	s, err := New(dev, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(); err != nil {
		t.Fatal("removing absent store errored")
	}
	if err := s.Write([]float64{7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if s.Exists() {
		t.Fatal("store survives Remove")
	}
}

func TestIOAccounted(t *testing.T) {
	dev := testDevice(t)
	s, err := New(dev, "x", 100)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	if err := s.Write(make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.Bytes[storage.SeqWrite] != 800 || st.Bytes[storage.SeqRead] != 800 {
		t.Fatalf("accounting wrong: %+v", st)
	}
}

// Property: Write then Read is the identity on bit patterns (NaN payloads
// aside, which quick does not generate by default).
func TestPropertyRoundTrip(t *testing.T) {
	dev := testDevice(t)
	f := func(vals []float64) bool {
		s, err := New(dev, "prop", len(vals))
		if err != nil {
			return false
		}
		if err := s.Write(vals); err != nil {
			return false
		}
		got := make([]float64, len(vals))
		if err := s.Read(got); err != nil {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
