// Package vertexstore persists per-vertex value arrays on a storage
// Device. The paper's cost model charges a sequential read of the vertex
// values at the start of every iteration and a sequential write-back at
// the end (the |V|·N terms in both C_s and C_r); by default the engine
// models those transfers with storage.Charge. With core.Options.
// PersistValues the engine instead routes them through this store, so the
// bytes genuinely hit the device files — useful when the repository is
// used as a real out-of-core library rather than a simulator, and as the
// basis for inspecting intermediate state after a run.
package vertexstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/graphsd/graphsd/internal/storage"
)

// Store is a named, fixed-length float64 array persisted on a device.
type Store struct {
	dev  *storage.Device
	name string
	n    int
	buf  []byte // reused encode/decode buffer
}

// New returns a store for n float64 values under the given device-relative
// name. Nothing is written until the first Write.
func New(dev *storage.Device, name string, n int) (*Store, error) {
	if n < 0 {
		return nil, fmt.Errorf("vertexstore: negative length %d", n)
	}
	if name == "" {
		return nil, fmt.Errorf("vertexstore: empty name")
	}
	return &Store{dev: dev, name: "values/" + name + ".f64", n: n}, nil
}

// Len returns the array length.
func (s *Store) Len() int { return s.n }

// Name returns the device-relative file name backing the store.
func (s *Store) Name() string { return s.name }

// Exists reports whether the array has been written.
func (s *Store) Exists() bool { return s.dev.Exists(s.name) }

// Bytes returns the on-disk size of the array.
func (s *Store) Bytes() int64 { return int64(s.n) * 8 }

// Write persists vals as one sequential stream. len(vals) must equal Len.
func (s *Store) Write(vals []float64) error {
	if len(vals) != s.n {
		return fmt.Errorf("vertexstore: writing %d values to a store of %d", len(vals), s.n)
	}
	if cap(s.buf) < s.n*8 {
		s.buf = make([]byte, s.n*8)
	}
	buf := s.buf[:s.n*8]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return s.dev.WriteFile(s.name, buf)
}

// Read fills dst from the persisted array. len(dst) must equal Len.
func (s *Store) Read(dst []float64) error {
	if len(dst) != s.n {
		return fmt.Errorf("vertexstore: reading %d values from a store of %d", len(dst), s.n)
	}
	data, err := s.dev.ReadFile(s.name)
	if err != nil {
		return err
	}
	if len(data) != s.n*8 {
		return fmt.Errorf("vertexstore: %s holds %d bytes, want %d", s.name, len(data), s.n*8)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return nil
}

// Remove deletes the persisted array, if present.
func (s *Store) Remove() error {
	if !s.Exists() {
		return nil
	}
	return s.dev.Remove(s.name)
}
