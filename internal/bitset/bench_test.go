package bitset

import "testing"

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkCountRange(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountRange(1000, 1<<19)
	}
}

func BenchmarkForEachSparse(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 1024 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEach(func(int) bool { n++; return true })
		if n != 1024 {
			b.Fatalf("visited %d", n)
		}
	}
}

func BenchmarkActiveSetActivate(b *testing.B) {
	s := NewActiveSet(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Activate(i & (1<<20 - 1))
	}
}
