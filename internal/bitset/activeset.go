package bitset

// ActiveSet tracks the set of active vertices in one iteration of a graph
// algorithm. It is a thin wrapper over a dense Bitset that additionally
// maintains the population count incrementally, because the state-aware I/O
// scheduler queries |A| every iteration and per-interval counts for every
// sub-block decision.
//
// ActiveSet is not safe for concurrent mutation; the engine activates
// vertices from a single goroutine per interval (or uses per-worker sets
// that are merged with UnionFrom).
type ActiveSet struct {
	bits  *Bitset
	count int
}

// NewActiveSet returns an empty active set over n vertices.
func NewActiveSet(n int) *ActiveSet {
	return &ActiveSet{bits: New(n)}
}

// Len returns the total number of vertices the set ranges over.
func (s *ActiveSet) Len() int { return s.bits.Len() }

// Count returns the number of active vertices.
func (s *ActiveSet) Count() int { return s.count }

// Empty reports whether no vertex is active.
func (s *ActiveSet) Empty() bool { return s.count == 0 }

// Activate marks vertex v active. It reports whether v was newly activated.
func (s *ActiveSet) Activate(v int) bool {
	if s.bits.TestAndSet(v) {
		return false
	}
	s.count++
	return true
}

// ActivateNoCount marks vertex v active without maintaining the cached
// population count, reporting whether v was newly activated. It exists for
// the engine's destination-partitioned parallel scatter: each worker owns a
// 64-aligned, word-disjoint vertex range, activates within it, and the
// workers' newly-activated totals are folded back in one AddCount call
// after the merge barrier. Callers that cannot guarantee word-disjoint
// ranges must use Activate.
func (s *ActiveSet) ActivateNoCount(v int) bool {
	return !s.bits.TestAndSet(v)
}

// AddCount adjusts the cached population count by delta, the summed
// newly-activated counts returned by ActivateNoCount across workers.
func (s *ActiveSet) AddCount(delta int) { s.count += delta }

// Deactivate clears vertex v. It reports whether v was previously active.
func (s *ActiveSet) Deactivate(v int) bool {
	if !s.bits.Test(v) {
		return false
	}
	s.bits.Clear(v)
	s.count--
	return true
}

// Contains reports whether vertex v is active.
func (s *ActiveSet) Contains(v int) bool { return s.bits.Test(v) }

// CountRange returns the number of active vertices in [lo, hi).
func (s *ActiveSet) CountRange(lo, hi int) int { return s.bits.CountRange(lo, hi) }

// ForEach visits every active vertex in ascending order.
func (s *ActiveSet) ForEach(fn func(v int) bool) { s.bits.ForEach(fn) }

// ForEachRange visits every active vertex in [lo, hi) in ascending order.
func (s *ActiveSet) ForEachRange(lo, hi int, fn func(v int) bool) {
	s.bits.ForEachRange(lo, hi, fn)
}

// Reset deactivates every vertex.
func (s *ActiveSet) Reset() {
	s.bits.Reset()
	s.count = 0
}

// ActivateAll marks every vertex active.
func (s *ActiveSet) ActivateAll() {
	s.bits.Fill()
	s.count = s.bits.Len()
}

// Clone returns a deep copy of the set.
func (s *ActiveSet) Clone() *ActiveSet {
	return &ActiveSet{bits: s.bits.Clone(), count: s.count}
}

// CopyFrom overwrites the receiver with src. Capacities must match.
func (s *ActiveSet) CopyFrom(src *ActiveSet) {
	s.bits.CopyFrom(src.bits)
	s.count = src.count
}

// UnionFrom activates every vertex active in other. Capacities must match.
func (s *ActiveSet) UnionFrom(other *ActiveSet) {
	s.bits.Union(other.bits)
	s.count = s.bits.Count()
}

// Subtract deactivates every vertex active in other. Capacities must match.
func (s *ActiveSet) Subtract(other *ActiveSet) {
	s.bits.AndNot(other.bits)
	s.count = s.bits.Count()
}

// Slice returns the active vertices as a sorted slice. Intended for tests
// and small sets; allocates.
func (s *ActiveSet) Slice() []int {
	out := make([]int, 0, s.count)
	s.bits.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Bits exposes the underlying dense bitset for read-only use.
func (s *ActiveSet) Bits() *Bitset { return s.bits }

// Words exposes the underlying bit words for serialization (see
// Bitset.Words). Read-only.
func (s *ActiveSet) Words() []uint64 { return s.bits.Words() }

// LoadWords overwrites the set from a Words snapshot, recomputing the
// cached population count.
func (s *ActiveSet) LoadWords(words []uint64) error {
	if err := s.bits.SetWords(words); err != nil {
		return err
	}
	s.count = s.bits.Count()
	return nil
}
