package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if b.Count() != 0 {
		t.Fatalf("Count = %d, want 0", b.Count())
	}
	if !b.None() {
		t.Fatal("None() = false for fresh bitset")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d clear after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, fn := range map[string]func(){
		"Set":   func() { b.Set(10) },
		"Clear": func() { b.Clear(-1) },
		"Test":  func() { b.Test(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTestAndSet(t *testing.T) {
	b := New(70)
	if b.TestAndSet(69) {
		t.Fatal("TestAndSet returned true on clear bit")
	}
	if !b.TestAndSet(69) {
		t.Fatal("TestAndSet returned false on set bit")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
}

func TestFillRespectsCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		b := New(n)
		b.Fill()
		if got := b.Count(); got != n {
			t.Errorf("n=%d: Count after Fill = %d", n, got)
		}
	}
}

func TestResetClearsAll(t *testing.T) {
	b := New(100)
	b.Fill()
	b.Reset()
	if !b.None() {
		t.Fatal("bits remain set after Reset")
	}
}

func TestNextSet(t *testing.T) {
	b := New(300)
	for _, i := range []int{5, 64, 130, 299} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {131, 299}, {299, 299},
		{-10, 5},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := b.NextSet(300); got != -1 {
		t.Errorf("NextSet(300) = %d, want -1", got)
	}
	b.Clear(299)
	if got := b.NextSet(131); got != -1 {
		t.Errorf("NextSet(131) after clearing = %d, want -1", got)
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	b := New(150)
	want := []int{3, 64, 65, 100, 149}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
	// Early stop after two elements.
	count := 0
	b.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestForEachRange(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i += 10 {
		b.Set(i)
	}
	var got []int
	b.ForEachRange(25, 75, func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{30, 40, 50, 60, 70}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCountRange(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 3 {
		b.Set(i)
	}
	for _, c := range []struct{ lo, hi int }{
		{0, 256}, {0, 0}, {10, 10}, {0, 1}, {0, 64}, {63, 65},
		{64, 128}, {100, 101}, {5, 250}, {-5, 300}, {250, 200},
	} {
		want := 0
		for i := max(0, c.lo); i < min(256, c.hi); i++ {
			if b.Test(i) {
				want++
			}
		}
		if got := b.CountRange(c.lo, c.hi); got != want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, want)
		}
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}

	u := a.Clone()
	u.Union(b)
	inter := a.Clone()
	inter.Intersect(b)
	diff := a.Clone()
	diff.AndNot(b)

	for i := 0; i < 100; i++ {
		ea, eb := i%2 == 0, i%3 == 0
		if u.Test(i) != (ea || eb) {
			t.Errorf("union bit %d wrong", i)
		}
		if inter.Test(i) != (ea && eb) {
			t.Errorf("intersect bit %d wrong", i)
		}
		if diff.Test(i) != (ea && !eb) {
			t.Errorf("andnot bit %d wrong", i)
		}
	}
}

func TestSetOpsCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	for name, fn := range map[string]func(){
		"Union":     func() { a.Union(b) },
		"Intersect": func() { a.Intersect(b) },
		"AndNot":    func() { a.AndNot(b) },
		"CopyFrom":  func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched capacity did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(7)
	c := a.Clone()
	c.Set(8)
	if a.Test(8) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(7) {
		t.Fatal("clone lost original bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(90), New(90)
	if !a.Equal(b) {
		t.Fatal("fresh equal-capacity bitsets not Equal")
	}
	a.Set(89)
	if a.Equal(b) {
		t.Fatal("different bitsets reported Equal")
	}
	b.Set(89)
	if !a.Equal(b) {
		t.Fatal("identical bitsets not Equal")
	}
	if a.Equal(New(91)) {
		t.Fatal("different capacities reported Equal")
	}
}

func TestStringSmall(t *testing.T) {
	b := New(10)
	b.Set(1)
	b.Set(4)
	if got := b.String(); got != "{1 4}" {
		t.Fatalf("String() = %q, want {1 4}", got)
	}
}

// Property: Count always equals the number of indices for which Test is true,
// under any sequence of Set/Clear operations.
func TestPropertyCountMatchesTest(t *testing.T) {
	f := func(ops []uint16, setBits []bool) bool {
		const n = 512
		b := New(n)
		ref := make(map[int]bool)
		for i, op := range ops {
			idx := int(op) % n
			set := i < len(setBits) && setBits[i]
			if set {
				b.Set(idx)
				ref[idx] = true
			} else {
				b.Clear(idx)
				delete(ref, idx)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextSet walks exactly the set bits, in order.
func TestPropertyNextSetEnumerates(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1000
		b := New(n)
		ref := make(map[int]bool)
		for _, r := range raw {
			idx := int(r) % n
			b.Set(idx)
			ref[idx] = true
		}
		seen := 0
		prev := -1
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			if i <= prev || !ref[i] {
				return false
			}
			prev = i
			seen++
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountRange(lo,hi) + CountRange(hi,n) + CountRange(0,lo) == Count.
func TestPropertyCountRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 777
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
		}
	}
	for trial := 0; trial < 500; trial++ {
		lo, hi := rng.Intn(n+1), rng.Intn(n+1)
		if lo > hi {
			lo, hi = hi, lo
		}
		total := b.CountRange(0, lo) + b.CountRange(lo, hi) + b.CountRange(hi, n)
		if total != b.Count() {
			t.Fatalf("partition counts %d != total %d (lo=%d hi=%d)", total, b.Count(), lo, hi)
		}
	}
}
