// Package bitset provides a dense fixed-capacity bitset and a hybrid
// active-vertex set used throughout the GraphSD engine to track which
// vertices are active in an iteration.
//
// The representations are chosen for the access patterns of out-of-core
// graph processing: O(1) activation, cheap population counts (needed every
// iteration by the state-aware I/O scheduler), and fast in-order iteration
// (needed by the selective update model to walk active vertices interval by
// interval).
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitset is a fixed-capacity dense bitset. The zero value is an empty
// bitset of capacity zero; use New to create one with capacity.
//
// Bitset is not safe for concurrent mutation. Concurrent readers are safe
// once all writers have finished.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a Bitset capable of holding n bits, all initially clear.
func New(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Bitset{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the capacity of the bitset in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. It panics if i is out of range.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (b *Bitset) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether it was previously set.
func (b *Bitset) TestAndSet(i int) bool {
	b.check(i)
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := b.words[w]&m != 0
	b.words[w] |= m
	return old
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in the half-open range [lo, hi).
func (b *Bitset) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return 0
	}
	c := 0
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	if loW == hiW {
		mask := rangeMask(uint(lo%wordBits), uint((hi-1)%wordBits)+1)
		return bits.OnesCount64(b.words[loW] & mask)
	}
	c += bits.OnesCount64(b.words[loW] &^ ((1 << (uint(lo) % wordBits)) - 1))
	for w := loW + 1; w < hiW; w++ {
		c += bits.OnesCount64(b.words[w])
	}
	last := uint((hi-1)%wordBits) + 1
	c += bits.OnesCount64(b.words[hiW] & rangeMask(0, last))
	return c
}

// rangeMask returns a mask with bits [lo, hi) set, hi <= 64.
func rangeMask(lo, hi uint) uint64 {
	if hi >= wordBits {
		return ^uint64(0) << lo
	}
	return (^uint64(0) << lo) & ((1 << hi) - 1)
}

// None reports whether no bits are set.
func (b *Bitset) None() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill sets every bit in [0, Len()).
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Zero the bits beyond n in the final word.
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Words exposes the underlying 64-bit words (LSB-first within each word)
// for serialization. The returned slice aliases the bitset; callers must
// treat it as read-only.
func (b *Bitset) Words() []uint64 { return b.words }

// SetWords overwrites the bitset from a Words snapshot of a bitset with the
// same capacity.
func (b *Bitset) SetWords(words []uint64) error {
	if len(words) != len(b.words) {
		return fmt.Errorf("bitset: SetWords length %d, want %d", len(words), len(b.words))
	}
	copy(b.words, words)
	return nil
}

// Clone returns a deep copy of the bitset.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites the receiver with the contents of src.
// The two bitsets must have the same capacity.
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic(fmt.Sprintf("bitset: CopyFrom capacity mismatch %d != %d", b.n, src.n))
	}
	copy(b.words, src.words)
}

// Union sets the receiver to b ∪ other. Capacities must match.
func (b *Bitset) Union(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitset: Union capacity mismatch %d != %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Intersect sets the receiver to b ∩ other. Capacities must match.
func (b *Bitset) Intersect(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitset: Intersect capacity mismatch %d != %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot clears every bit in the receiver that is set in other.
func (b *Bitset) AndNot(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitset: AndNot capacity mismatch %d != %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	w := i / wordBits
	word := b.words[w] >> (uint(i) % wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false, iteration stops early.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for w, word := range b.words {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			if !fn(w*wordBits + tz) {
				return
			}
			word &= word - 1
		}
	}
}

// ForEachRange calls fn for every set bit in [lo, hi) in ascending order.
// If fn returns false, iteration stops early.
func (b *Bitset) ForEachRange(lo, hi int, fn func(i int) bool) {
	for i := b.NextSet(lo); i >= 0 && i < hi; i = b.NextSet(i + 1) {
		if !fn(i) {
			return
		}
	}
}

// Equal reports whether b and other contain exactly the same bits and have
// the same capacity.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if other.words[i] != w {
			return false
		}
	}
	return true
}

// String renders small bitsets as a list of set indices for debugging.
func (b *Bitset) String() string {
	const maxShown = 32
	out := "{"
	shown := 0
	b.ForEach(func(i int) bool {
		if shown > 0 {
			out += " "
		}
		if shown == maxShown {
			out += "..."
			return false
		}
		out += fmt.Sprint(i)
		shown++
		return true
	})
	return out + "}"
}
