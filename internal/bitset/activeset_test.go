package bitset

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestActiveSetBasics(t *testing.T) {
	s := NewActiveSet(100)
	if !s.Empty() || s.Count() != 0 || s.Len() != 100 {
		t.Fatalf("fresh set: Empty=%v Count=%d Len=%d", s.Empty(), s.Count(), s.Len())
	}
	if !s.Activate(10) {
		t.Fatal("Activate(10) reported not new")
	}
	if s.Activate(10) {
		t.Fatal("second Activate(10) reported new")
	}
	if s.Count() != 1 || !s.Contains(10) {
		t.Fatalf("Count=%d Contains(10)=%v", s.Count(), s.Contains(10))
	}
	if !s.Deactivate(10) {
		t.Fatal("Deactivate(10) reported not present")
	}
	if s.Deactivate(10) {
		t.Fatal("second Deactivate(10) reported present")
	}
	if !s.Empty() {
		t.Fatal("set not empty after deactivation")
	}
}

func TestActiveSetActivateAllReset(t *testing.T) {
	s := NewActiveSet(65)
	s.ActivateAll()
	if s.Count() != 65 {
		t.Fatalf("Count after ActivateAll = %d, want 65", s.Count())
	}
	s.Reset()
	if !s.Empty() {
		t.Fatal("not empty after Reset")
	}
}

func TestActiveSetRangeOps(t *testing.T) {
	s := NewActiveSet(100)
	for i := 0; i < 100; i += 5 {
		s.Activate(i)
	}
	if got := s.CountRange(10, 31); got != 5 { // 10,15,20,25,30
		t.Fatalf("CountRange(10,31) = %d, want 5", got)
	}
	var visited []int
	s.ForEachRange(10, 31, func(v int) bool {
		visited = append(visited, v)
		return true
	})
	want := []int{10, 15, 20, 25, 30}
	if len(visited) != len(want) {
		t.Fatalf("ForEachRange visited %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("ForEachRange visited %v, want %v", visited, want)
		}
	}
}

func TestActiveSetCloneAndCopy(t *testing.T) {
	s := NewActiveSet(50)
	s.Activate(3)
	s.Activate(40)
	c := s.Clone()
	c.Activate(5)
	if s.Contains(5) {
		t.Fatal("clone mutation leaked into original")
	}
	d := NewActiveSet(50)
	d.CopyFrom(s)
	if d.Count() != 2 || !d.Contains(3) || !d.Contains(40) {
		t.Fatalf("CopyFrom result wrong: %v", d.Slice())
	}
}

func TestActiveSetUnionSubtract(t *testing.T) {
	a, b := NewActiveSet(30), NewActiveSet(30)
	a.Activate(1)
	a.Activate(2)
	b.Activate(2)
	b.Activate(3)
	a.UnionFrom(b)
	if a.Count() != 3 {
		t.Fatalf("union count = %d, want 3 (%v)", a.Count(), a.Slice())
	}
	a.Subtract(b)
	if a.Count() != 1 || !a.Contains(1) {
		t.Fatalf("subtract result wrong: %v", a.Slice())
	}
}

func TestActiveSetSliceSorted(t *testing.T) {
	s := NewActiveSet(64)
	for _, v := range []int{40, 2, 63, 17} {
		s.Activate(v)
	}
	got := s.Slice()
	want := []int{2, 17, 40, 63}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

// Property: Count is always consistent with the number of Contains() hits
// under random activate/deactivate interleavings.
func TestPropertyActiveSetCount(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 256
		s := NewActiveSet(n)
		ref := make(map[int]bool)
		for i, op := range ops {
			v := int(op) % n
			if i%2 == 0 {
				s.Activate(v)
				ref[v] = true
			} else {
				s.Deactivate(v)
				delete(ref, v)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		sum := 0
		for v := range ref {
			if !s.Contains(v) {
				return false
			}
			sum++
		}
		return sum == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of interval counts equals the total count for any interval
// partitioning, which is exactly what the I/O scheduler relies on.
func TestPropertyActiveSetIntervalCounts(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		const n = 512
		s := NewActiveSet(n)
		for _, r := range raw {
			s.Activate(int(r) % n)
		}
		p := int(pRaw)%8 + 1
		per := (n + p - 1) / p
		total := 0
		for i := 0; i < p; i++ {
			lo := i * per
			hi := min(n, lo+per)
			total += s.CountRange(lo, hi)
		}
		return total == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestActiveSetActivateNoCount checks the deferred-count activation used by
// the parallel scatter: word-disjoint concurrent activation plus one
// AddCount must be indistinguishable from serial Activate calls.
func TestActiveSetActivateNoCount(t *testing.T) {
	const n = 1024
	s := NewActiveSet(n)
	s.Activate(5)
	s.Activate(700)

	// Two workers over 64-aligned halves, with duplicates.
	var wg sync.WaitGroup
	newly := make([]int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*512, (w+1)*512
			cnt := 0
			for _, v := range []int{lo, lo + 5, lo + 5, lo + 188, hi - 1} {
				if s.ActivateNoCount(v) {
					cnt++
				}
			}
			newly[w] = cnt
		}(w)
	}
	wg.Wait()
	s.AddCount(newly[0] + newly[1])

	want := NewActiveSet(n)
	for _, v := range []int{5, 700, 0, 5, 188, 511, 512, 517, 700, 1023} {
		want.Activate(v)
	}
	if s.Count() != want.Count() {
		t.Fatalf("count = %d, want %d", s.Count(), want.Count())
	}
	for v := 0; v < n; v++ {
		if s.Contains(v) != want.Contains(v) {
			t.Fatalf("vertex %d: contains = %t, want %t", v, s.Contains(v), want.Contains(v))
		}
	}
}
