package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/storage"
)

// TestServerAsync serves a graph with the async scheduler enabled: monotonic
// jobs run asynchronously and agree with a plain (BSP) server's outputs, a
// non-monotonic job silently falls back to BSP instead of failing, and
// /metrics exposes the graphsd_async_* counter family.
func TestServerAsync(t *testing.T) {
	dir, _ := buildLayoutDir(t, 9, 7, 4)
	gc := GraphConfig{Name: "rmat9", Dir: dir, Profile: storage.HDD}
	_, plainTS := newTestServer(t, Config{Graphs: []GraphConfig{gc}})
	gc.Async = true
	asyncSrv, asyncTS := newTestServer(t, Config{Graphs: []GraphConfig{gc}})

	run := func(ts *httptest.Server, req jobs.Request) []float64 {
		t.Helper()
		code, st := postJob(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit %+v: HTTP %d", req, code)
		}
		waitDone(t, ts, st.ID)
		var full struct {
			Full []float64 `json:"full"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?full=1", &full); code != http.StatusOK {
			t.Fatalf("result: HTTP %d", code)
		}
		return full.Full
	}

	// Min-program labels must match BSP bit for bit under async execution.
	bfs := jobs.Request{Graph: "rmat9", Algorithm: "bfs", Source: 1}
	want := run(plainTS, bfs)
	got := run(asyncTS, bfs)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("output lengths: plain=%d async=%d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("bfs vertex %d: plain=%v async=%v", i, want[i], got[i])
		}
	}

	// Plain PageRank is not monotonic: the async server must fall back to
	// BSP and still complete the job with matching outputs.
	pr := jobs.Request{Graph: "rmat9", Algorithm: "pr"}
	wantPR := run(plainTS, pr)
	gotPR := run(asyncTS, pr)
	for i := range wantPR {
		if wantPR[i] != gotPR[i] {
			t.Fatalf("pr vertex %d: plain=%v async=%v", i, wantPR[i], gotPR[i])
		}
	}

	g := asyncSrv.graphs["rmat9"]
	g.mu.Lock()
	asyncRuns, asyncSteps := g.asyncRuns, g.asyncSteps
	g.mu.Unlock()
	if asyncRuns != 1 {
		t.Fatalf("async runs folded = %d, want 1 (bfs async, pr BSP fallback)", asyncRuns)
	}
	if asyncSteps == 0 {
		t.Fatal("async run folded zero scheduler steps")
	}

	resp, err := http.Get(asyncTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		`graphsd_async_runs_total{graph="rmat9"} 1`,
		`graphsd_async_steps_total{graph="rmat9"}`,
		`graphsd_async_blocks_scheduled_total{graph="rmat9"}`,
		`graphsd_async_reactivations_total{graph="rmat9"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
