// Package server implements `graphsd serve`: a resident job server that
// keeps preprocessed layouts open across requests and exposes an HTTP API
// for submitting algorithm runs. Jobs on the same graph share one
// concurrency-safe sub-block cache (buffer.Shared), so a warm job loads
// strictly fewer sub-blocks from the device than a cold one, and one
// storage.Device per graph, so /metrics reports exact per-graph traffic.
//
// API (JSON unless noted):
//
//	POST   /v1/jobs              submit {graph, algorithm, source?, max_iterations?, timeout_ms?} → 202 status
//	GET    /v1/jobs              list job statuses in submission order, paginated (?offset, ?limit; default limit 100)
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/result  top-k (?top=N) or full (?full=1, streamed; ?offset/&limit paginate) vertex values; 409 until done
//	POST   /v1/jobs/{id}/cancel  request cancellation (also DELETE /v1/jobs/{id})
//	POST   /v1/graphs/{g}/edges  apply {mutations: [{op, src, dst, weight?}]} to a mutable graph
//	POST   /v1/graphs/{g}/compact fold sealed delta layers into the base grid now
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text exposition
//
// With Config.Tenants set, every /v1 endpoint requires `Authorization:
// Bearer <token>`; jobs are scoped to the submitting tenant, the scheduler
// shares workers by tenant weight, and per-tenant quotas map to 429
// (queue, mutation rate) or 401/403 (bad token, impersonation).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/checkpoint"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
)

// GraphConfig registers one preprocessed layout with the server.
type GraphConfig struct {
	// Name is the identifier clients use in job requests.
	Name string
	// Dir is the layout directory (output of `graphsd preprocess`).
	Dir string
	// Profile is the simulated disk model for the graph's device.
	Profile storage.Profile
	// CacheBytes sizes the graph's shared sub-block cache. Zero selects
	// half the decoded edge data, mirroring an engine's default buffer.
	CacheBytes int64
	// Retries, when positive, retries transient read faults on the
	// graph's device under exponential backoff.
	Retries int
	// SEM runs every job on this graph through the semi-external-memory
	// fast path (block-activity bitmaps skip dead sub-blocks).
	SEM bool
	// Compressed stores the shared sub-block cache delta-coded, trading a
	// per-hit decode for roughly double the effective capacity.
	Compressed bool
	// Async runs jobs whose program is monotonic (prd, cc, sssp, bfs)
	// through the asynchronous priority scheduler; other programs fall back
	// to BSP. AsyncEpsilon is the residual stop threshold for those runs
	// (zero: run to frontier drain).
	Async        bool
	AsyncEpsilon float64
	// Mutable opens the graph through the delta store: POST
	// /v1/graphs/{name}/edges accepts mutations, jobs pin a snapshot at
	// submission, and a background compactor folds delta layers into the
	// base grid. MemtableBytes caps the in-memory write buffer before a
	// seal (0: delta.Options default); CompactThreshold is the sealed-layer
	// count that triggers compaction (0: default).
	Mutable          bool
	MemtableBytes    int64
	CompactThreshold int
}

// Config sizes the server.
type Config struct {
	// Graphs are the layouts served. At least one is required.
	Graphs []GraphConfig
	// Workers, QueueDepth, and MemBudget configure the job scheduler; see
	// jobs.Config. Workers and QueueDepth default to 2 and 16.
	Workers    int
	QueueDepth int
	MemBudget  int64
	// JournalDir, when set, makes the server durable: job lifecycle records
	// are written to a WAL under <dir>/wal before they are acknowledged,
	// per-job engine checkpoints live under <dir>/checkpoints, and a
	// restarted server replays the journal — finished jobs stay finished,
	// unfinished jobs are re-queued and resume from their checkpoints with
	// results bit-identical to an uninterrupted run. Empty keeps the
	// pre-durability behaviour (jobs die with the process).
	JournalDir string
	// JournalSegmentBytes is the WAL rotation threshold (0: 1 MiB).
	JournalSegmentBytes int64
	// CheckpointEvery is the per-job engine checkpoint interval in
	// iterations (0 with a journal: every iteration); CheckpointKeep
	// retains the last N terminal jobs' checkpoint directories for
	// debugging instead of pruning them at job completion.
	CheckpointEvery int
	CheckpointKeep  int
	// JobRetries re-runs a job up to N extra attempts when it fails with a
	// transient storage error; JobTimeout bounds any job's running time
	// when the request carries no timeout of its own.
	JobRetries int
	JobTimeout time.Duration
	// Tenants, when non-empty, turns on multi-tenant serving: every /v1
	// request must carry one of the configured bearer tokens, jobs are
	// visible only to the tenant that submitted them, the scheduler
	// dequeues by weighted fair share, and per-tenant quotas (queue,
	// concurrency, mutation bytes/sec) apply. See LoadTenantsFile.
	Tenants []jobs.Tenant
	// RetainJobs bounds how many terminal (done/failed/cancelled/expired)
	// jobs the scheduler keeps retrievable; beyond it the oldest-finished
	// are evicted, result payloads and all. 0 keeps everything — only
	// sensible for short-lived test servers.
	RetainJobs int
}

// graphEntry is one registered graph: its device, layout, shared cache, and
// the per-graph aggregates folded in as jobs on it complete.
type graphEntry struct {
	name   string
	dev    *storage.Device
	layout *partition.Layout // nil for mutable graphs: jobs pin a snapshot instead
	store  *delta.Store      // non-nil iff the graph is mutable
	// meta is the sizing snapshot taken at open (vertex count, edge
	// bytes), used for cache sizing. Mutable graphs drift from it as
	// mutations and compactions land — anything that sizes or validates a
	// new request must go through manifest(), not meta.
	meta     partition.Manifest
	shared   *buffer.Shared
	sem      bool
	async    bool
	asyncEps float64

	mu       sync.Mutex
	jobsRun  int64 // completed (Done) jobs folded into the aggregates
	buffer   buffer.Stats
	pipeline pipeline.Stats
	// Async aggregates across completed async runs: runs, scheduler steps,
	// sub-blocks scheduled, and frontier reactivations.
	asyncRuns   int64
	asyncSteps  int64
	asyncBlocks int64
	asyncReacts int64
	// Scheduler calibration accuracy, summed/held across completed runs:
	// observed iterations, summed mean-mispredict weighted by observations
	// (for a cross-run mean), the worst ratio seen, and the most recent
	// run's final correction factors.
	schedObserved     int64
	schedMispredict   float64 // Σ run.MeanMispredict · run.Observed
	schedMaxMispred   float64
	schedCorrFull     float64
	schedCorrOnDemand float64
}

// manifest returns the graph's current sizing manifest. Immutable graphs
// return the open-time snapshot; mutable graphs read the store's live
// snapshot, because EdgeBytesTotal (and with it admission estimates and
// buffer sizing inputs) drifts as ingest and compaction land. Using the
// stale open-time meta here was a bug: after heavy ingest, admission
// control under-estimated job memory against the grown edge volume.
func (g *graphEntry) manifest() partition.Manifest {
	if g.store != nil {
		v := g.store.Snapshot()
		m := *v.Meta()
		v.Release()
		return m
	}
	return g.meta
}

// fold accumulates a completed run's per-job stats into the graph's
// aggregates for /metrics.
func (g *graphEntry) fold(res *core.Result) {
	g.mu.Lock()
	g.jobsRun++
	g.buffer = g.buffer.Add(res.Buffer)
	g.pipeline = g.pipeline.Add(res.Pipeline)
	if res.Async.Enabled {
		g.asyncRuns++
		g.asyncSteps += int64(res.Async.Steps)
		g.asyncBlocks += res.Async.BlocksScheduled
		g.asyncReacts += res.Async.Reactivations
	}
	if acc := res.SchedAccuracy; acc.Observed > 0 {
		g.schedObserved += int64(acc.Observed)
		g.schedMispredict += acc.MeanMispredict * float64(acc.Observed)
		if acc.MaxMispredict > g.schedMaxMispred {
			g.schedMaxMispred = acc.MaxMispredict
		}
		g.schedCorrFull = acc.CorrFull
		g.schedCorrOnDemand = acc.CorrOnDemand
	}
	g.mu.Unlock()
}

// Server is the resident job server. Create with New, serve its Handler,
// and stop with Close.
type Server struct {
	graphs  map[string]*graphEntry
	names   []string // sorted, for deterministic /metrics output
	sched   *jobs.Scheduler
	journal *jobs.Journal // nil without Config.JournalDir
	mux     *http.ServeMux
	handler http.Handler // mux, behind auth when tenants are configured
	start   time.Time

	// Multi-tenant auth state, fixed at New: token → tenant name, and one
	// mutation-rate bucket per metered tenant. authOn iff Config.Tenants
	// was non-empty.
	authOn  bool
	tokens  map[string]string
	buckets map[string]*rateBucket

	// Background compactor for mutable graphs; stopCompact is closed once,
	// by whichever of Close/Kill runs first.
	compactWG   sync.WaitGroup
	stopCompact chan struct{}
	stopOnce    sync.Once
}

// New opens every configured graph and starts the job scheduler.
func New(cfg Config) (*Server, error) {
	if len(cfg.Graphs) == 0 {
		return nil, errors.New("server: no graphs configured")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	s := &Server{
		graphs:      make(map[string]*graphEntry, len(cfg.Graphs)),
		start:       time.Now(),
		stopCompact: make(chan struct{}),
	}
	for _, gc := range cfg.Graphs {
		if gc.Name == "" {
			return nil, errors.New("server: graph with empty name")
		}
		if _, dup := s.graphs[gc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate graph name %q", gc.Name)
		}
		dev, err := storage.OpenDevice(gc.Dir, gc.Profile)
		if err != nil {
			return nil, fmt.Errorf("server: graph %q: %w", gc.Name, err)
		}
		var store *delta.Store
		var l *partition.Layout
		if gc.Mutable {
			// The delta store replays the mutation WAL and sweeps crash
			// leftovers before the graph serves its first job.
			store, err = delta.Open(dev, delta.Options{
				MemtableBytes: gc.MemtableBytes,
				CompactLayers: gc.CompactThreshold,
			})
			if err != nil {
				return nil, fmt.Errorf("server: graph %q: %w", gc.Name, err)
			}
		} else {
			l, err = partition.Load(dev)
			if err != nil {
				return nil, fmt.Errorf("server: graph %q: %w", gc.Name, err)
			}
			if l.Meta.System != "graphsd" {
				return nil, fmt.Errorf("server: graph %q: layout system %q not servable (need graphsd)", gc.Name, l.Meta.System)
			}
		}
		if gc.Retries > 0 {
			pol := storage.DefaultRetryPolicy
			pol.MaxRetries = gc.Retries
			dev.SetRetryPolicy(pol)
		}
		var meta partition.Manifest
		if store != nil {
			v := store.Snapshot()
			meta = *v.Meta()
			v.Release()
		} else {
			meta = l.Meta
		}
		cache := gc.CacheBytes
		if cache <= 0 {
			cache = meta.EdgeBytesTotal() / 2
		}
		newShared := buffer.NewShared
		if gc.Compressed {
			newShared = buffer.NewSharedCompressed
		}
		s.graphs[gc.Name] = &graphEntry{
			name:     gc.Name,
			dev:      dev,
			layout:   l,
			store:    store,
			meta:     meta,
			shared:   newShared(cache),
			sem:      gc.SEM,
			async:    gc.Async,
			asyncEps: gc.AsyncEpsilon,
		}
		s.names = append(s.names, gc.Name)
	}
	sort.Strings(s.names)
	if len(cfg.Tenants) > 0 {
		if err := ValidateTenants(cfg.Tenants); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.authOn = true
		s.tokens = make(map[string]string, len(cfg.Tenants))
		s.buckets = make(map[string]*rateBucket, len(cfg.Tenants))
		for _, t := range cfg.Tenants {
			s.tokens[t.Token] = t.Name
			if t.MutationBytesPerSec > 0 {
				s.buckets[t.Name] = newRateBucket(t.MutationBytesPerSec)
			}
		}
	}
	jcfg := jobs.Config{
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		MemBudget:      cfg.MemBudget,
		EstimateBytes:  s.estimateBytes,
		Run:            s.runJob,
		Retries:        cfg.JobRetries,
		DefaultTimeout: cfg.JobTimeout,
		Tenants:        cfg.Tenants,
		RetainJobs:     cfg.RetainJobs,
	}
	if cfg.JournalDir != "" {
		jr, err := jobs.OpenJournal(filepath.Join(cfg.JournalDir, "wal"), cfg.JournalSegmentBytes)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.journal = jr
		jcfg.Journal = jr
		jcfg.CheckpointRoot = filepath.Join(cfg.JournalDir, "checkpoints")
		jcfg.CheckpointEvery = cfg.CheckpointEvery
		jcfg.CheckpointKeep = cfg.CheckpointKeep
	}
	s.sched = jobs.New(jcfg)
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = http.Handler(s.mux)
	if s.authOn {
		s.handler = s.withAuth(s.mux)
	}
	for _, g := range s.graphs {
		if g.store != nil {
			s.compactWG.Add(1)
			go s.compactLoop(g)
		}
	}
	return s, nil
}

// compactLoop folds sealed delta layers into the base grid whenever the
// store crosses its compaction threshold. Compaction never blocks writers
// or pinned readers (snapshots keep the retired generation alive until
// released), so a coarse poll is enough.
func (s *Server) compactLoop(g *graphEntry) {
	defer s.compactWG.Done()
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCompact:
			return
		case <-tick.C:
			if g.store.NeedsCompaction() {
				// Failures (a crashed device, a fault window) leave the old
				// generation serving; the next tick retries.
				g.store.Compact()
			}
		}
	}
}

// Journal returns the server's job journal, nil when durability is off.
func (s *Server) Journal() *jobs.Journal { return s.journal }

// Recovery reports what the startup journal replay did.
func (s *Server) Recovery() jobs.RecoveryStats { return s.sched.Recovery() }

// Handler returns the server's HTTP handler (wrapped in bearer-token
// auth when tenants are configured).
func (s *Server) Handler() http.Handler { return s.handler }

// Scheduler exposes the job scheduler, for tests and the CLI.
func (s *Server) Scheduler() *jobs.Scheduler { return s.sched }

// Graph returns a registered graph's shared cache and device, for tests.
func (s *Server) Graph(name string) (*buffer.Shared, *storage.Device, bool) {
	g, ok := s.graphs[name]
	if !ok {
		return nil, nil, false
	}
	return g.shared, g.dev, true
}

// Store returns a mutable graph's delta store, nil for read-only graphs or
// unknown names. For tests and the CLI.
func (s *Server) Store(name string) *delta.Store {
	if g, ok := s.graphs[name]; ok {
		return g.store
	}
	return nil
}

// Close drains the scheduler (cancelling running jobs, waiting for the
// workers within ctx's deadline) and seals the journal. During the drain
// new submissions are rejected with 503 + Retry-After.
func (s *Server) Close(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopCompact) })
	s.compactWG.Wait()
	err := s.sched.Close(ctx)
	if s.journal != nil {
		if jerr := s.journal.Close(); err == nil {
			err = jerr
		}
	}
	for _, g := range s.graphs {
		if g.store != nil {
			if serr := g.store.Close(); err == nil {
				err = serr
			}
		}
	}
	return err
}

// Kill abandons the server the way SIGKILL would — no drain, no terminal
// journal records, the on-disk journal and checkpoints frozen mid-flight —
// for restart chaos tests that then reopen the same JournalDir.
func (s *Server) Kill(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopCompact) })
	s.compactWG.Wait()
	err := s.sched.Kill(ctx)
	if s.journal != nil {
		s.journal.Close()
	}
	for _, g := range s.graphs {
		if g.store != nil {
			g.store.Close()
		}
	}
	return err
}

// runJob is the jobs.Runner: it binds an admitted request to the engine
// with the graph's shared cache and the job's private checkpoint directory
// wired in.
func (s *Server) runJob(ctx context.Context, req jobs.Request, info jobs.RunInfo) (*core.Result, error) {
	g, ok := s.graphs[req.Graph]
	if !ok {
		return nil, fmt.Errorf("server: unknown graph %q", req.Graph)
	}
	prog, err := algorithms.ByName(req.Algorithm, graph.VertexID(req.Source))
	if err != nil {
		return nil, err
	}
	// Mutable graphs: pin a snapshot for the job's whole run. Mutations,
	// seals, and compactions landing while it executes cannot change what
	// it reads; the pin keeps retired base generations on disk until
	// released.
	layout := g.layout
	if g.store != nil {
		v := g.store.Snapshot()
		defer v.Release()
		layout = v.Layout()
	}
	opts := core.Options{
		MaxIterations: req.MaxIterations,
		DefaultBuffer: true,
		SharedBlocks:  g.shared,
		SEM:           g.sem,
		OnIteration:   info.OnIteration,
	}
	// Async applies only to monotonic programs; others (pr, widestpath)
	// silently run BSP so one server flag serves mixed workloads.
	if _, mono := prog.(core.Monotonic); mono && g.async {
		opts.Async = true
		opts.AsyncEpsilon = g.asyncEps
	}
	if info.CheckpointDir != "" {
		opts.Checkpoint = core.CheckpointOptions{
			Every:  info.CheckpointEvery,
			Dir:    info.CheckpointDir,
			Resume: info.Resume && s.resumableCheckpoint(info.CheckpointDir, prog.Name(), opts.Async, g),
		}
	}
	res, err := core.RunContext(ctx, layout, prog, opts)
	if err != nil {
		return nil, err
	}
	g.fold(res)
	return res, nil
}

// resumableCheckpoint decides whether the checkpoint in dir (if any) can
// seed this run: same algorithm, same layout shape, same engine mode (a BSP
// run cannot resume an async checkpoint or vice versa — the loop states
// differ). A mismatched or corrupt checkpoint is discarded so the recovered
// job re-runs from scratch instead of failing: the journaled request is the
// contract, the checkpoint only an accelerator.
func (s *Server) resumableCheckpoint(dir, progName string, async bool, g *graphEntry) bool {
	if !checkpoint.Exists(dir) {
		return true // nothing there: Resume is a no-op, the run starts fresh
	}
	ci, err := checkpoint.Inspect(dir)
	if err == nil && ci.Algorithm == progName && ci.Async == async &&
		ci.NumVertices == g.manifest().NumVertices {
		return true
	}
	checkpoint.Remove(dir)
	return false
}

// estimateBytes predicts a job's peak engine memory for admission control:
// the BSP vertex arrays (two float64 values, two accumulators, two
// bitsets), the default secondary buffer (1/4 of edge data), and the
// default prefetch window.
func (s *Server) estimateBytes(req jobs.Request) int64 {
	g, ok := s.graphs[req.Graph]
	if !ok {
		return 0
	}
	m := g.manifest() // live snapshot: mutable graphs' edge volume drifts
	n := int64(m.NumVertices)
	const perVertex = 4*8 + 2 // valPrev/valCur/acc/accNext + 2 bitsets
	return n*perVertex + m.EdgeBytesTotal()/4 + 16<<20
}

// validate rejects a request the scheduler would accept but the runner
// would fail, so clients get a 400 instead of a failed job.
func (s *Server) validate(req jobs.Request) error {
	if req.Graph == "" || req.Algorithm == "" {
		return errors.New("graph and algorithm are required")
	}
	g, ok := s.graphs[req.Graph]
	if !ok {
		return fmt.Errorf("unknown graph %q (have %v)", req.Graph, s.names)
	}
	if _, err := algorithms.ByName(req.Algorithm, graph.VertexID(req.Source)); err != nil {
		return err
	}
	if nv := g.manifest().NumVertices; int(req.Source) >= nv {
		return fmt.Errorf("source %d out of range (graph has %d vertices)", req.Source, nv)
	}
	if req.MaxIterations < 0 || req.TimeoutMS < 0 {
		return errors.New("max_iterations and timeout_ms must be non-negative")
	}
	return nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleMutate)
	s.mux.HandleFunc("POST /v1/graphs/{name}/compact", s.handleCompact)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// mutationReq is one entry of a POST /v1/graphs/{name}/edges batch.
type mutationReq struct {
	Op     string  `json:"op"` // "insert" or "delete"
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
}

// mutableGraph resolves {name} to a mutable graph or writes the error:
// 404 for an unknown graph, 405 for one served read-only.
func (s *Server) mutableGraph(w http.ResponseWriter, r *http.Request) (*graphEntry, bool) {
	name := r.PathValue("name")
	g, ok := s.graphs[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q (have %v)", name, s.names)
		return nil, false
	}
	if g.store == nil {
		writeError(w, http.StatusMethodNotAllowed, "graph %q is not mutable (serve it with -mutable)", name)
		return nil, false
	}
	return g, true
}

// handleMutate applies one batch of edge mutations. The 200 response is the
// durability acknowledgement: every mutation in the batch is in the fsynced
// WAL and visible to snapshots taken after this call. Batches are
// all-or-nothing — any invalid mutation rejects the whole batch with 400
// and nothing is applied.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	g, ok := s.mutableGraph(w, r)
	if !ok {
		return
	}
	// Meter the batch against the tenant's mutation-bytes budget before
	// reading it — an over-quota tenant costs the server one header parse,
	// not a decode of up to 8 MiB.
	if n := r.ContentLength; n > 0 {
		if ok, retry := s.admitMutation(r, n); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds()+0.5)))
			writeError(w, http.StatusTooManyRequests, "tenant %q over its mutation rate; retry in %v", tenantFrom(r), retry.Round(time.Millisecond))
			return
		}
	}
	var body struct {
		Mutations []mutationReq `json:"mutations"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(body.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, "empty mutation batch")
		return
	}
	muts := make([]delta.Mutation, len(body.Mutations))
	for i, m := range body.Mutations {
		switch m.Op {
		case "insert":
			muts[i].Op = delta.OpInsert
		case "delete":
			muts[i].Op = delta.OpDelete
		default:
			writeError(w, http.StatusBadRequest, "mutation %d: op %q (want insert or delete)", i, m.Op)
			return
		}
		muts[i].Src = graph.VertexID(m.Src)
		muts[i].Dst = graph.VertexID(m.Dst)
		muts[i].Weight = m.Weight
	}
	err := g.store.Apply(muts)
	switch {
	case err == nil:
		st := g.store.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"accepted":        len(muts),
			"mutations_total": st.MutationsTotal,
			"delta_layers":    st.Layers,
			"memtable_bytes":  st.MemtableBytes,
		})
	case errors.Is(err, delta.ErrWALUnavailable):
		// The mutation log cannot take durable appends (device fault,
		// torn write): shed writes until a restart replays and re-opens it.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, delta.ErrClosed):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		// Validation failures reject the batch before anything is staged.
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleCompact triggers a synchronous compaction, folding every sealed
// delta layer into a new base generation. Idempotent: with nothing sealed
// it publishes nothing and still returns 200.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	g, ok := s.mutableGraph(w, r)
	if !ok {
		return
	}
	if err := g.store.Compact(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := g.store.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":   st.Generation,
		"delta_layers": st.Layers,
		"delta_bytes":  st.LayerBytes,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// With auth on, the authenticated identity is the tenant — a request
	// body naming someone else is an impersonation attempt, not a typo.
	if s.authOn {
		me := tenantFrom(r)
		if req.Tenant != "" && req.Tenant != me {
			writeError(w, http.StatusForbidden, "authenticated as tenant %q, cannot submit as %q", me, req.Tenant)
			return
		}
		req.Tenant = me
	}
	if err := s.validate(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.sched.Submit(req)
	switch {
	case err == nil:
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, j.Status())
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrMemBudget),
		errors.Is(err, jobs.ErrTenantQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, jobs.ErrUnknownTenant):
		writeError(w, http.StatusForbidden, "%v", err)
	case errors.Is(err, jobs.ErrClosed), errors.Is(err, jobs.ErrUnavailable), errors.Is(err, jobs.ErrJournalUnavailable):
		// Draining, or the journal is gone: the server sheds load instead
		// of accepting work it cannot run or make durable. Clients retry
		// after the restart (or against a healthy replica).
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// queryInt parses a non-negative integer query parameter, def when absent.
// ok is false (and the 400 written) on garbage or negative values.
func queryInt(w http.ResponseWriter, r *http.Request, key string, def int) (int, bool) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, "bad %s=%q (want a non-negative integer)", key, v)
		return 0, false
	}
	return n, true
}

// listDefaultLimit pages GET /v1/jobs; clients walk next_offset for more.
const listDefaultLimit = 100

// handleList returns the caller-visible jobs in submission order, paginated:
// ?offset=N skips, ?limit=N caps the page (default 100, 0 for just the
// total). total counts the caller's jobs; next_offset appears while more
// remain. With auth on, each tenant sees only its own jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	offset, ok := queryInt(w, r, "offset", 0)
	if !ok {
		return
	}
	limit, ok := queryInt(w, r, "limit", listDefaultLimit)
	if !ok {
		return
	}
	// Visibility filtering needs the full (retention-bounded) list; the
	// page is cut after filtering so offsets are stable per tenant.
	visible := []jobs.Status{} // non-nil: an empty listing encodes as []
	for _, j := range s.sched.Jobs() {
		if st := j.Status(); s.visible(r, st) {
			visible = append(visible, st)
		}
	}
	total := len(visible)
	if offset > total {
		offset = total
	}
	end := total
	if offset+limit < end {
		end = offset + limit
	}
	out := map[string]any{
		"jobs":   visible[offset:end],
		"total":  total,
		"offset": offset,
	}
	if end < total {
		out["next_offset"] = end
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves {id} to a job the caller may see. Cross-tenant IDs 404
// exactly like unknown ones, so probing leaks nothing.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok || !s.visible(r, j.Status()) {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.sched.Cancel(j.ID()); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// jsonFloat encodes like float64 but renders the non-finite values a
// traversal run produces (unreachable vertices are +Inf) as JSON strings,
// which encoding/json otherwise rejects outright.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Infinity"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Infinity"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// vertexValue is one row of a result payload.
type vertexValue struct {
	Vertex uint32    `json:"vertex"`
	Value  jsonFloat `json:"value"`
}

// resultPayload is the /result response body for top-k requests. Full
// results (?full=1) are streamed by streamFullResult instead — they never
// materialise as one document in server memory.
type resultPayload struct {
	jobs.Status
	// Top holds the top-k vertices by descending value (?top=N, default
	// 10).
	Top []vertexValue `json:"top,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	res := j.Result()
	if res == nil {
		st := j.Status()
		switch st.State {
		case "failed", "cancelled", "expired":
			writeJSON(w, http.StatusConflict, st)
		case "done":
			// A job that finished before a restart: the journal preserves
			// outcomes, not result payloads. Resubmitting the same request
			// recomputes the identical values.
			writeError(w, http.StatusGone, "job %s finished before a server restart; its result payload was not retained — resubmit the request to recompute it", j.ID())
		default:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusConflict, st)
		}
		return
	}
	if r.URL.Query().Get("full") == "1" {
		offset, ok := queryInt(w, r, "offset", 0)
		if !ok {
			return
		}
		limit, ok := queryInt(w, r, "limit", -1) // no limit: stream it all
		if !ok {
			return
		}
		streamFullResult(w, j.Status(), res.Outputs,
			resultPage{offset: offset, limit: limit, total: len(res.Outputs)})
		return
	}
	top := 10
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad top=%q", t)
			return
		}
		top = n
	}
	writeJSON(w, http.StatusOK, resultPayload{Status: j.Status(), Top: topK(res.Outputs, top)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"graphs":   s.names,
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}
