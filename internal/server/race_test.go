//go:build race

package server

// raceEnabled reports whether the race detector is compiled in; timing-
// sensitive SLO tests skip themselves under it (instrumentation slows the
// engine ~10x, so throughput and fairness floors stop meaning anything).
const raceEnabled = true
