// Result delivery: constant-memory streaming of full vertex-value arrays,
// offset/limit pagination, and the bounded-heap top-k selection.
//
// The old ?full=1 path materialised a []jsonFloat copy of the whole result
// and indent-encoded it through encoding/json — three full-size allocations
// for a payload that can be hundreds of megabytes. Here the values stream
// through a reused per-value scratch buffer and a fixed bufio window, so
// server memory per request is O(page), independent of graph size.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"github.com/graphsd/graphsd/internal/jobs"
)

// streamChunkBytes is the bufio window for streamed results: large enough
// to amortise chunked-transfer framing, small enough to stay O(1).
const streamChunkBytes = 32 << 10

// appendJSONFloat appends v's JSON encoding to b: a plain number for
// finite values, the jsonFloat string forms ("Infinity", "-Infinity",
// "NaN") for the non-finite ones a traversal run produces.
func appendJSONFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, `"Infinity"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Infinity"`...)
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// resultPage is the window of a full-result response selected by
// ?offset/&limit. next < 0 means the page reaches the end of the values.
type resultPage struct {
	offset int
	limit  int // -1: through the end
	total  int
}

func (p resultPage) bounds() (lo, hi, next int) {
	lo = p.offset
	if lo > p.total {
		lo = p.total // offset past the end: an empty page, not an error
	}
	hi = p.total
	if p.limit >= 0 && lo+p.limit < hi {
		hi = lo + p.limit
	}
	next = -1
	if hi < p.total {
		next = hi
	}
	return lo, hi, next
}

// streamFullResult writes a full-result payload as one chunked JSON
// object: the job status fields, the pagination envelope (total, offset,
// and next_offset when another page remains), then "full" as an array
// streamed value-by-value. A mid-stream client disconnect surfaces as a
// sticky bufio error and just stops the stream — there is nothing to
// recover, the response is already committed.
func streamFullResult(w http.ResponseWriter, st jobs.Status, vals []float64, page resultPage) {
	head, err := json.Marshal(st)
	if err != nil || len(head) < 2 {
		writeError(w, http.StatusInternalServerError, "encoding status: %v", err)
		return
	}
	lo, hi, next := page.bounds()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, streamChunkBytes)
	bw.Write(head[:len(head)-1]) // reopen the status object: strip '}'
	fmt.Fprintf(bw, ",\"total\":%d,\"offset\":%d", page.total, lo)
	if next >= 0 {
		fmt.Fprintf(bw, ",\"next_offset\":%d", next)
	}
	bw.WriteString(",\"full\":[")
	scratch := make([]byte, 0, 32)
	for i := lo; i < hi; i++ {
		if i > lo {
			bw.WriteByte(',')
		}
		scratch = appendJSONFloat(scratch[:0], vals[i])
		if _, err := bw.Write(scratch); err != nil {
			return // client gone; the error is sticky, stop feeding it
		}
	}
	bw.WriteString("]}\n")
	bw.Flush()
}

// valueClass ranks a float64 into the total-order classes the top-k
// comparator uses: NaN sorts below everything (it means "no value"),
// -Inf below every finite, +Inf above. Within a class finite values
// compare numerically; NaNs and same-signed Infs compare equal.
func valueClass(v float64) int {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, -1):
		return 1
	case math.IsInf(v, 1):
		return 3
	}
	return 2
}

// rankLess reports whether (va, ia) ranks strictly below (vb, ib) in
// top-k order. Unlike `va > vb` it is a total order under NaN, so the
// selection is deterministic for any input. Equal values rank the higher
// vertex ID lower, preserving the lower-ID-wins tie-break.
func rankLess(va float64, ia uint32, vb float64, ib uint32) bool {
	ca, cb := valueClass(va), valueClass(vb)
	if ca != cb {
		return ca < cb
	}
	if ca == 2 && va != vb {
		return va < vb
	}
	return ia > ib
}

// topK returns the k highest-ranked values with their vertex IDs,
// descending. A bounded min-heap of the k best seen so far replaces the
// old full-index sort: O(N log k) time and O(k) extra space instead of
// O(N log N)/O(N), and the total order keeps NaN-laden results stable.
func topK(vals []float64, k int) []vertexValue {
	if k > len(vals) {
		k = len(vals)
	}
	if k <= 0 {
		return nil
	}
	type item struct {
		v  float64
		id uint32
	}
	h := make([]item, 0, k)
	// Min-heap under rankLess: h[0] is the worst of the kept k.
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !rankLess(h[i].v, h[i].id, h[p].v, h[p].id) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && rankLess(h[r].v, h[r].id, h[l].v, h[l].id) {
				m = r
			}
			if !rankLess(h[m].v, h[m].id, h[i].v, h[i].id) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i, v := range vals {
		if len(h) < k {
			h = append(h, item{v, uint32(i)})
			siftUp(len(h) - 1)
		} else if rankLess(h[0].v, h[0].id, v, uint32(i)) {
			h[0] = item{v, uint32(i)}
			siftDown(0)
		}
	}
	// Pop ascending, fill from the back: out comes out descending.
	out := make([]vertexValue, len(h))
	for n := len(h) - 1; n >= 0; n-- {
		out[n] = vertexValue{Vertex: h[0].id, Value: jsonFloat(h[0].v)}
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDown(0)
	}
	return out
}
