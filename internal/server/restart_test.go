package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/storage"
)

// durableConfig is the one-graph durable server config the restart suite
// reopens across simulated crashes.
func durableConfig(layoutDir, journalDir string, async bool) Config {
	return Config{
		Graphs:     []GraphConfig{{Name: "g", Dir: layoutDir, Profile: storage.HDD, Async: async}},
		Workers:    1,
		QueueDepth: 16,
		JournalDir: journalDir,
	}
}

// waitJob polls a job until it reaches want.
func waitJob(t *testing.T, j *jobs.Job, want jobs.State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s (err: %v)", j.ID(), j.State(), want, j.Err())
}

// refOutputs runs req on a fresh non-durable server and returns the
// uninterrupted run's outputs — the bit-identical yardstick for recovery.
func refOutputs(t *testing.T, layoutDir string, async bool, req jobs.Request) []float64 {
	t.Helper()
	cfg := durableConfig(layoutDir, "", async)
	cfg.JournalDir = ""
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	j, err := s.Scheduler().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, jobs.Done)
	res := j.Result()
	if res == nil {
		t.Fatal("reference run returned no result")
	}
	return append([]float64(nil), res.Outputs...)
}

// killMidRun waits until j has completed at least minIter iterations (so at
// least one engine checkpoint is durably on disk), then freezes the graph
// device and kills the server — the in-process equivalent of SIGKILL at an
// arbitrary point inside an iteration.
func killMidRun(t *testing.T, s *Server, j *jobs.Job, minIter int) {
	t.Helper()
	_, dev, _ := s.Graph("g")
	gate := make(chan struct{})
	var armed atomic.Bool
	dev.SetFaultInjector(func(op, name string) error {
		if armed.Load() && strings.HasPrefix(op, "read") {
			<-gate
		}
		return nil
	})
	deadline := time.Now().Add(60 * time.Second)
	for j.Status().Iterations < minIter {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached iteration %d (state %s, err %v)",
				j.ID(), minIter, j.State(), j.Err())
		}
		time.Sleep(500 * time.Microsecond)
	}
	armed.Store(true)
	killErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		killErr <- s.Kill(ctx)
	}()
	// Give the kill's context cancellation a moment to land, then unfreeze
	// the device so the aborted engine can observe it and the workers exit.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if err := <-killErr; err != nil {
		t.Fatalf("kill: %v", err)
	}
}

// TestServerRestartResume is the tentpole scenario, in both engine modes: a
// server is SIGKILL-equivalently killed mid-run; the restarted server must
// keep finished jobs finished, resume the interrupted job from its engine
// checkpoint, and produce outputs bit-identical to an uninterrupted run.
func TestServerRestartResume(t *testing.T) {
	layoutDir, _ := buildLayoutDir(t, 11, 7, 4)
	cases := []struct {
		name  string
		async bool
		req   jobs.Request
	}{
		// pr is non-monotonic: BSP in either mode. cc under Async exercises
		// the async scheduler's checkpoint format.
		{"bsp", false, jobs.Request{Graph: "g", Algorithm: "pr"}},
		{"async", true, jobs.Request{Graph: "g", Algorithm: "cc"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := refOutputs(t, layoutDir, tc.async, tc.req)
			jdir := t.TempDir()

			s1, err := New(durableConfig(layoutDir, jdir, tc.async))
			if err != nil {
				t.Fatal(err)
			}
			// A quick job that finishes before the crash: it must be
			// recovered terminal, not re-run.
			quick, err := s1.Scheduler().Submit(jobs.Request{Graph: "g", Algorithm: "bfs", Source: 1, MaxIterations: 2})
			if err != nil {
				t.Fatal(err)
			}
			waitJob(t, quick, jobs.Done)
			long, err := s1.Scheduler().Submit(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			killMidRun(t, s1, long, 2)
			if !checkpointDirExists(t, jdir, long.ID()) {
				t.Fatal("no checkpoint on disk after mid-run kill")
			}

			s2, err := New(durableConfig(layoutDir, jdir, tc.async))
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				s2.Close(ctx)
			}()
			rec := s2.Recovery()
			if rec.Recovered != 1 || rec.Requeued != 1 || rec.Resumable != 1 || rec.Lost != 0 {
				t.Fatalf("recovery = %+v, want recovered=1 requeued=1 resumable=1 lost=0", rec)
			}

			q2, ok := s2.Scheduler().Get(quick.ID())
			if !ok || q2.State() != jobs.Done {
				t.Fatalf("finished job after restart: ok=%v state=%v", ok, q2.State())
			}
			l2, ok := s2.Scheduler().Get(long.ID())
			if !ok {
				t.Fatalf("interrupted job %s lost across restart", long.ID())
			}
			waitJob(t, l2, jobs.Done)
			res := l2.Result()
			if res == nil {
				t.Fatal("recovered job has no result")
			}
			if !res.Resumed {
				t.Fatal("recovered job re-ran from scratch instead of resuming its checkpoint")
			}
			if tc.async != res.Async.Enabled {
				t.Fatalf("async mode flipped across restart: %v", res.Async.Enabled)
			}
			if len(res.Outputs) != len(ref) {
				t.Fatalf("output length %d vs reference %d", len(res.Outputs), len(ref))
			}
			for i := range ref {
				if res.Outputs[i] != ref[i] {
					t.Fatalf("vertex %d: resumed %v != uninterrupted %v — recovery not bit-identical", i, res.Outputs[i], ref[i])
				}
			}
			// The durability metric families must have moved across the
			// restart.
			assertRestartMetrics(t, s2)
		})
	}
}

// checkpointDirExists reports whether the job's checkpoint directory exists
// under the journal dir's checkpoint root.
func checkpointDirExists(t *testing.T, journalDir, id string) bool {
	t.Helper()
	fi, err := os.Stat(filepath.Join(journalDir, "checkpoints", id))
	return err == nil && fi.IsDir()
}

// assertRestartMetrics scrapes /metrics on a restarted server and checks the
// recovery and journal families report the restart.
func assertRestartMetrics(t *testing.T, s *Server) {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code := 0
	body := ""
	{
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		code, body = resp.StatusCode, buf.String()
	}
	if code != 200 {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"graphsd_jobs_recovered_total 1",
		"graphsd_jobs_requeued_total 1",
		"graphsd_jobs_lost_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The replay saw records and the restarted process appended new ones
	// (start/final of the resumed job).
	for _, name := range []string{"graphsd_journal_replay_records_total", "graphsd_journal_records_total", "graphsd_journal_bytes_total"} {
		v, ok := metricValue(body, name)
		if !ok || v <= 0 {
			t.Errorf("metric %s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	if _, ok := metricValue(body, "graphsd_journal_replay_seconds"); !ok {
		t.Error("metrics missing graphsd_journal_replay_seconds")
	}
}

// metricValue extracts an unlabelled sample's value from a Prometheus text
// body.
func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// TestServerRestartModeMismatch: a BSP checkpoint cannot seed an async run.
// The restarted server — now configured async — must discard the stale
// checkpoint and re-run the recovered job from scratch rather than fail it.
func TestServerRestartModeMismatch(t *testing.T) {
	layoutDir, _ := buildLayoutDir(t, 11, 3, 4)
	// cc is monotonic: BSP when Async=false, async-scheduled when true.
	req := jobs.Request{Graph: "g", Algorithm: "cc"}
	ref := refOutputs(t, layoutDir, true, req)
	jdir := t.TempDir()

	s1, err := New(durableConfig(layoutDir, jdir, false))
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Scheduler().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	killMidRun(t, s1, j, 1)
	if !checkpointDirExists(t, jdir, j.ID()) {
		t.Fatal("no BSP checkpoint on disk after kill")
	}

	s2, err := New(durableConfig(layoutDir, jdir, true)) // async now
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	if rec := s2.Recovery(); rec.Requeued != 1 || rec.Lost != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	j2, _ := s2.Scheduler().Get(j.ID())
	waitJob(t, j2, jobs.Done)
	res := j2.Result()
	if res == nil {
		t.Fatal("no result after mismatch re-run")
	}
	if res.Resumed {
		t.Fatal("async run resumed a BSP checkpoint — mode mismatch not detected")
	}
	if !res.Async.Enabled {
		t.Fatal("recovered job did not run async")
	}
	for i := range ref {
		if res.Outputs[i] != ref[i] {
			t.Fatalf("vertex %d: %v != %v after mismatch re-run", i, res.Outputs[i], ref[i])
		}
	}
}

// durabilityArtifact is the JSON written to $DURABILITY_OUT for the CI
// trend line.
type durabilityArtifact struct {
	CrashPoints      int     `json:"crash_points"`
	JobsSubmitted    int64   `json:"jobs_submitted"`
	JobsRecovered    int64   `json:"jobs_recovered"`
	JobsRequeued     int64   `json:"jobs_requeued"`
	JobsLost         int64   `json:"jobs_lost"`
	MaxReplaySeconds float64 `json:"max_replay_seconds"`
	RecoverySeconds  float64 `json:"recovery_seconds"`
}

// TestServerRestartCrashPoints sweeps a seeded crash point across the job
// journal's append stream — including the very first submit append — kills
// the server at each, restarts it, and asserts the accounting invariant:
// zero journaled jobs lost, every job terminal after recovery. The final
// point is a torn append (half a frame reaches disk) instead of a clean
// crash.
func TestServerRestartCrashPoints(t *testing.T) {
	layoutDir, _ := buildLayoutDir(t, 9, 5, 4)
	const points = 20
	art := durabilityArtifact{CrashPoints: points}
	recoverStart := time.Now()

	for k := 1; k <= points; k++ {
		jdir := t.TempDir()
		s1, err := New(durableConfig(layoutDir, jdir, false))
		if err != nil {
			t.Fatalf("point %d: %v", k, err)
		}
		opts := storage.ChaosOptions{
			Seed:  int64(k),
			Match: func(op, name string) bool { return op == "append" },
		}
		if k == points {
			opts.TornWriteProb = 1 // every append torn: the first one kills the journal
		} else {
			opts.CrashAfterOps = int64(k)
		}
		chaos := storage.NewChaos(opts)
		s1.Journal().SetFaultInjector(chaos.Injector())

		var accepted []*jobs.Job
		for i := 0; i < 4; i++ {
			j, err := s1.Scheduler().Submit(jobs.Request{Graph: "g", Algorithm: "bfs", Source: uint32(i), MaxIterations: 3})
			if err != nil {
				continue // journal down: the submission was refused, the client knows
			}
			accepted = append(accepted, j)
			waitJob(t, j, jobs.Done)
		}
		art.JobsSubmitted += int64(len(accepted))
		killCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = s1.Kill(killCtx)
		cancel()
		if err != nil {
			t.Fatalf("point %d: kill: %v", k, err)
		}

		s2, err := New(durableConfig(layoutDir, jdir, false))
		if err != nil {
			t.Fatalf("point %d: restart: %v", k, err)
		}
		rec := s2.Recovery()
		if rec.Lost != 0 {
			t.Fatalf("point %d: %d jobs lost (recovery %+v)", k, rec.Lost, rec)
		}
		if got := rec.Recovered + rec.Requeued; got > int64(len(accepted)) {
			t.Fatalf("point %d: replay invented jobs: %d > %d accepted", k, got, len(accepted))
		}
		// Every accepted job whose submit record survived must reach a
		// terminal state on the restarted server; jobs whose submit append
		// crashed were refused at submission and are legitimately absent.
		for _, j := range s2.Scheduler().Jobs() {
			waitJob(t, j, jobs.Done)
		}
		art.JobsRecovered += rec.Recovered
		art.JobsRequeued += rec.Requeued
		art.JobsLost += rec.Lost
		if rec.ReplaySeconds > art.MaxReplaySeconds {
			art.MaxReplaySeconds = rec.ReplaySeconds
		}
		closeCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
		err = s2.Close(closeCtx)
		cancel2()
		if err != nil {
			t.Fatalf("point %d: close: %v", k, err)
		}
	}
	art.RecoverySeconds = time.Since(recoverStart).Seconds()
	t.Logf("crash sweep: %+v", art)

	if out := os.Getenv("DURABILITY_OUT"); out != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerDrain503: submissions during a drain are shed with 503 and a
// Retry-After header — graceful degradation, not queueing into a dying
// process.
func TestServerDrain503(t *testing.T) {
	layoutDir, _ := buildLayoutDir(t, 9, 8, 4)
	s, err := New(durableConfig(layoutDir, t.TempDir(), false))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(jobs.Request{Graph: "g", Algorithm: "pr"})
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("submit during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestServerRecoveredResultGone: a job that finished before the restart
// keeps its terminal status, but its result payload is gone — the API says
// so with 410 instead of pretending the job never ran.
func TestServerRecoveredResultGone(t *testing.T) {
	layoutDir, _ := buildLayoutDir(t, 9, 4, 4)
	jdir := t.TempDir()
	s1, err := New(durableConfig(layoutDir, jdir, false))
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Scheduler().Submit(jobs.Request{Graph: "g", Algorithm: "bfs", Source: 1, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, jobs.Done)
	killCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	s1.Kill(killCtx)
	cancel()

	s2, err := New(durableConfig(layoutDir, jdir, false))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, c := context.WithTimeout(context.Background(), 30*time.Second)
		defer c()
		s2.Close(ctx)
	}()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	var st jobs.Status
	if code := getJSON(t, ts.URL+"/v1/jobs/"+j.ID(), &st); code != 200 || st.State != "done" || !st.Recovered {
		t.Fatalf("recovered status: HTTP %d, %+v", code, st)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+j.ID()+"/result", nil); code != 410 {
		t.Fatalf("recovered result: HTTP %d, want 410 Gone", code)
	}
}
