package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/storage"
)

// TestServerSEMCompressed serves a graph with the SEM fast path and the
// compressed shared cache: jobs must agree exactly with a plain server's
// outputs, a warm job must hit the compressed tier, and /metrics must
// expose the new SEM and compressed-cache families.
func TestServerSEMCompressed(t *testing.T) {
	dir, _ := buildLayoutDir(t, 9, 7, 4)
	// The cache must hold the whole grid so the warm job can hit it.
	gc := GraphConfig{Name: "rmat9", Dir: dir, Profile: storage.HDD, CacheBytes: 1 << 30}
	_, plainTS := newTestServer(t, Config{Graphs: []GraphConfig{gc}})
	gc.SEM = true
	gc.Compressed = true
	sem, semTS := newTestServer(t, Config{Graphs: []GraphConfig{gc}})

	run := func(ts *httptest.Server, req jobs.Request) []float64 {
		t.Helper()
		code, st := postJob(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit %+v: HTTP %d", req, code)
		}
		waitDone(t, ts, st.ID)
		var full struct {
			Full []float64 `json:"full"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?full=1", &full); code != http.StatusOK {
			t.Fatalf("result: HTTP %d", code)
		}
		return full.Full
	}

	// BFS distances are integers, exact under every execution path, so the
	// SEM server must reproduce the plain server's output bit for bit even
	// though the adaptive scheduler is free to pick different models.
	bfs := jobs.Request{Graph: "rmat9", Algorithm: "bfs", Source: 1}
	want := run(plainTS, bfs)
	got := run(semTS, bfs)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("output lengths: plain=%d sem=%d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("bfs vertex %d: plain=%v sem=%v", i, want[i], got[i])
		}
	}

	// A dense PR job runs the full model, so the warm repeat must be served
	// from the compressed tier; its outputs must match the cold run exactly.
	pr := jobs.Request{Graph: "rmat9", Algorithm: "pr"}
	cold := run(semTS, pr)
	warm := run(semTS, pr)
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("pr vertex %d: cold=%v warm=%v", i, cold[i], warm[i])
		}
	}
	shared, _, ok := sem.Graph("rmat9")
	if !ok {
		t.Fatal("graph not registered")
	}
	if !shared.Compressed() {
		t.Fatal("server built a decoded cache despite Compressed config")
	}
	if st := shared.Stats(); st.CompressedHits == 0 {
		t.Fatalf("warm job recorded no compressed-tier hits: %+v", st)
	}

	resp, err := http.Get(semTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		`graphsd_sem_blocks_skipped_total{graph="rmat9"}`,
		`graphsd_sem_bytes_skipped_total{graph="rmat9"}`,
		`graphsd_shared_cache_compressed_hits_total{graph="rmat9"}`,
		`graphsd_shared_cache_decode_seconds_total{graph="rmat9"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, `graphsd_shared_cache_compressed_hits_total{graph="rmat9"} 0`) {
		t.Error("compressed-hit counter stuck at zero after warm job")
	}
}
