package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/loadgen"
	"github.com/graphsd/graphsd/internal/storage"
)

// ---------- streaming + pagination ----------

// fullResponse decodes a streamed ?full=1 payload. Values are RawMessage
// because non-finite floats render as JSON strings.
type fullResponse struct {
	jobs.Status
	Total      int               `json:"total"`
	Offset     int               `json:"offset"`
	NextOffset *int              `json:"next_offset"`
	Full       []json.RawMessage `json:"full"`
}

func getFull(t *testing.T, url string) (int, fullResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out fullResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, out
}

func TestResultStreamPagination(t *testing.T) {
	dir, g := buildLayoutDir(t, 9, 7, 4)
	_, ts := newTestServer(t, Config{Graphs: []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}}})
	code, st := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitDone(t, ts, st.ID)
	base := ts.URL + "/v1/jobs/" + st.ID + "/result?full=1"

	// The whole stream: every vertex, correct envelope, no next page.
	code, whole := getFull(t, base)
	if code != http.StatusOK || len(whole.Full) != g.NumVertices || whole.Total != g.NumVertices {
		t.Fatalf("full stream: HTTP %d, %d/%d values, total %d", code, len(whole.Full), g.NumVertices, whole.Total)
	}
	if whole.NextOffset != nil {
		t.Fatalf("unpaginated stream advertised next_offset %d", *whole.NextOffset)
	}
	if whole.State != "done" || whole.ID != st.ID {
		t.Fatalf("stream lost the status envelope: %+v", whole.Status)
	}

	// A middle page: values must be the same window of the whole stream.
	code, page := getFull(t, base+"&offset=100&limit=50")
	if code != http.StatusOK || page.Total != g.NumVertices || page.Offset != 100 || len(page.Full) != 50 {
		t.Fatalf("page: HTTP %d total=%d offset=%d len=%d", code, page.Total, page.Offset, len(page.Full))
	}
	if page.NextOffset == nil || *page.NextOffset != 150 {
		t.Fatalf("page next_offset: %v", page.NextOffset)
	}
	for i, v := range page.Full {
		if !bytes.Equal(v, whole.Full[100+i]) {
			t.Fatalf("page value %d: %s != whole[%d]=%s", i, v, 100+i, whole.Full[100+i])
		}
	}

	// Walking next_offset visits every value exactly once.
	seen := 0
	for off := 0; ; {
		_, p := getFull(t, fmt.Sprintf("%s&offset=%d&limit=97", base, off))
		seen += len(p.Full)
		if p.NextOffset == nil {
			break
		}
		off = *p.NextOffset
	}
	if seen != g.NumVertices {
		t.Fatalf("pagination walk saw %d values, want %d", seen, g.NumVertices)
	}

	// Edge: offset past the end is an empty 200 page, not an error.
	code, past := getFull(t, base+"&offset=99999999&limit=10")
	if code != http.StatusOK || len(past.Full) != 0 || past.Total != g.NumVertices || past.NextOffset != nil {
		t.Fatalf("offset past end: HTTP %d len=%d total=%d next=%v", code, len(past.Full), past.Total, past.NextOffset)
	}
	// Edge: limit=0 returns just the envelope — the cheap "how big is it".
	code, empty := getFull(t, base+"&limit=0")
	if code != http.StatusOK || len(empty.Full) != 0 || empty.Total != g.NumVertices {
		t.Fatalf("limit=0: HTTP %d len=%d total=%d", code, len(empty.Full), empty.Total)
	}
	if empty.NextOffset == nil || *empty.NextOffset != 0 {
		t.Fatalf("limit=0 next_offset: %v", empty.NextOffset)
	}
	// Edge: garbage pagination params are a 400, not a panic or a default.
	for _, q := range []string{"&offset=-1", "&limit=x", "&offset=1e3"} {
		resp, err := http.Get(base + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestStreamNonFinite feeds Inf/NaN mid-stream and checks they arrive as
// the documented JSON strings with everything after them intact.
func TestStreamNonFinite(t *testing.T) {
	vals := []float64{1.5, math.Inf(1), 0, math.Inf(-1), math.NaN(), 2.25}
	rec := httptest.NewRecorder()
	streamFullResult(rec, jobs.Status{ID: "j", State: "done"}, vals, resultPage{limit: -1, total: len(vals)})
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var out fullResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("stream is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	want := []string{"1.5", `"Infinity"`, "0", `"-Infinity"`, `"NaN"`, "2.25"}
	if len(out.Full) != len(want) {
		t.Fatalf("got %d values", len(out.Full))
	}
	for i, w := range want {
		if string(out.Full[i]) != w {
			t.Fatalf("value %d: %s, want %s", i, out.Full[i], w)
		}
	}
}

// discardWriter counts bytes; the stream's sink for the memory test.
type discardWriter struct {
	h http.Header
	n int64
}

func (d *discardWriter) Header() http.Header { return d.h }
func (d *discardWriter) WriteHeader(int)     {}
func (d *discardWriter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}

// TestStreamConstantMemory is the acceptance check for the streaming
// rewrite: streaming a 1M-vertex result must allocate O(page) memory —
// the old path materialised a []jsonFloat copy (8 MB) plus the encoder's
// buffer of the entire indented document (~20 MB).
func TestStreamConstantMemory(t *testing.T) {
	vals := make([]float64, 1_000_000)
	for i := range vals {
		vals[i] = float64(i) * 1.25
	}
	vals[17] = math.Inf(1) // non-finite values must not break the fast path
	st := jobs.Status{ID: "big", State: "done"}
	d := &discardWriter{h: make(http.Header)}
	streamFullResult(d, st, vals, resultPage{limit: -1, total: len(vals)}) // warm up

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	streamFullResult(d, st, vals, resultPage{limit: -1, total: len(vals)})
	runtime.ReadMemStats(&after)

	if d.n < 2*8_000_000 { // sanity: two streams of ~1M values actually flowed
		t.Fatalf("stream wrote only %d bytes", d.n)
	}
	alloc := after.TotalAlloc - before.TotalAlloc
	if alloc > 1<<20 {
		t.Fatalf("streaming 1M values allocated %d bytes, want O(page) (<1MiB)", alloc)
	}
}

// failAfterWriter simulates a client disconnect: writes error out after a
// budget is spent, like an http.ResponseWriter on a closed connection.
type failAfterWriter struct {
	h      http.Header
	budget int
	n      int
}

func (f *failAfterWriter) Header() http.Header { return f.h }
func (f *failAfterWriter) WriteHeader(int)     {}
func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n >= f.budget {
		return 0, errors.New("client disconnected")
	}
	f.n += len(p)
	return len(p), nil
}

// TestStreamClientDisconnect: a mid-chunk disconnect must stop the stream
// promptly instead of iterating the rest of a million values into a dead
// socket (or panicking).
func TestStreamClientDisconnect(t *testing.T) {
	vals := make([]float64, 1_000_000)
	f := &failAfterWriter{h: make(http.Header), budget: 64 << 10}
	done := make(chan struct{})
	go func() {
		streamFullResult(f, jobs.Status{ID: "j", State: "done"}, vals, resultPage{limit: -1, total: len(vals)})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not return after the client disconnected")
	}
	// bufio reports the failure one flush after the budget: the stream
	// must have stopped within a couple of chunks, not drained the array.
	if f.n > f.budget+2*streamChunkBytes {
		t.Fatalf("wrote %d bytes into a dead connection (budget %d)", f.n, f.budget)
	}
}

// ---------- topK total order (bugfix regression) ----------

// TestTopKTotalOrder: the old sort.Slice comparator violated strict weak
// ordering under NaN (va != vb is true for NaN pairs, va > vb always
// false), making output nondeterministic. The heap's explicit classes fix
// the order: +Inf first, finite descending, -Inf, NaN last; equal values
// break toward the lower vertex ID.
func TestTopKTotalOrder(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	vals := []float64{nan, 3, inf, nan, 5, -math.Inf(1), 5, nan, 1, inf}
	got := topK(vals, len(vals))
	wantVertex := []uint32{2, 9, 4, 6, 1, 8, 5, 0, 3, 7}
	if len(got) != len(wantVertex) {
		t.Fatalf("got %d rows", len(got))
	}
	for i, w := range wantVertex {
		if got[i].Vertex != w {
			t.Fatalf("rank %d: vertex %d, want %d (full: %+v)", i, got[i].Vertex, w, got)
		}
	}
	// Determinism: identical output across repeats (the old comparator
	// could legally return anything for NaN-laden input).
	for run := 0; run < 10; run++ {
		again := topK(vals, len(vals))
		for i := range got {
			if again[i].Vertex != got[i].Vertex {
				t.Fatalf("run %d diverged at rank %d", run, i)
			}
		}
	}
	// k < N keeps the same prefix.
	for _, k := range []int{1, 3, 7} {
		head := topK(vals, k)
		if len(head) != k {
			t.Fatalf("topK(%d) returned %d rows", k, len(head))
		}
		for i := 0; i < k; i++ {
			if head[i].Vertex != got[i].Vertex {
				t.Fatalf("topK(%d) rank %d: vertex %d, want %d", k, i, head[i].Vertex, got[i].Vertex)
			}
		}
	}
	// Tie-break regression: equal finite values rank lower IDs first.
	ties := topK([]float64{2, 7, 7, 7, 1}, 3)
	for i, w := range []uint32{1, 2, 3} {
		if ties[i].Vertex != w {
			t.Fatalf("tie-break: %+v", ties)
		}
	}
}

// ---------- stale manifest on mutable graphs (bugfix regression) ----------

// TestMutableManifestRefresh: validate/estimateBytes used the manifest
// snapshot taken at open, so a mutable graph's admission estimates never
// moved as ingest grew the edge volume. They now read the store's current
// snapshot.
func TestMutableManifestRefresh(t *testing.T) {
	dir, g := buildLayoutDir(t, 8, 11, 3)
	s, _ := newTestServer(t, Config{Graphs: []GraphConfig{{
		Name: "m", Dir: dir, Profile: storage.SSD,
		Mutable: true, MemtableBytes: 1, // seal after every batch
	}}})

	req := jobs.Request{Graph: "m", Algorithm: "pr"}
	before := s.estimateBytes(req)
	if before <= 0 {
		t.Fatalf("estimate before ingest: %d", before)
	}
	// Ingest a dense wave of new edges and fold it into the base grid.
	var muts []delta.Mutation
	for src := 0; src < g.NumVertices; src++ {
		for d := 1; d <= 4; d++ {
			muts = append(muts, delta.Mutation{
				Op:  delta.OpInsert,
				Src: graph.VertexID(src), Dst: graph.VertexID((src + d*37) % g.NumVertices),
			})
		}
	}
	if err := s.Store("m").Apply(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.Store("m").Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.estimateBytes(req)
	if after <= before {
		t.Fatalf("admission estimate did not grow with the graph: before=%d after=%d (stale manifest)", before, after)
	}
	// And validation still tracks the live vertex bound.
	if err := s.validate(jobs.Request{Graph: "m", Algorithm: "pr", Source: uint32(g.NumVertices - 1)}); err != nil {
		t.Fatalf("in-range source rejected: %v", err)
	}
	if err := s.validate(jobs.Request{Graph: "m", Algorithm: "pr", Source: uint32(g.NumVertices)}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

// ---------- tenant isolation e2e ----------

func authedReq(t *testing.T, method, url, token string, body []byte) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return req
}

func doJSON(t *testing.T, req *http.Request, v any) int {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		json.NewDecoder(resp.Body).Decode(v)
	}
	return resp.StatusCode
}

func tenantCfg(dir string) Config {
	return Config{
		Graphs: []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD, Mutable: true}},
		Tenants: []jobs.Tenant{
			{Name: "alice", Token: "tok-alice", MaxQueued: 1, MutationBytesPerSec: 512},
			{Name: "bob", Token: "tok-bob"},
		},
		Workers: 1, QueueDepth: 16,
	}
}

func TestTenantAuthAndIsolation(t *testing.T) {
	dir, _ := buildLayoutDir(t, 8, 5, 2)
	_, ts := newTestServer(t, tenantCfg(dir))

	// No token and a bad token are 401 with a challenge; the unauthenticated
	// probes /healthz and /metrics stay open.
	for _, tok := range []string{"", "tok-wrong"} {
		resp, err := http.DefaultClient.Do(authedReq(t, "GET", ts.URL+"/v1/jobs", tok, nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized || resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("token %q: HTTP %d, challenge %q", tok, resp.StatusCode, resp.Header.Get("WWW-Authenticate"))
		}
	}
	for _, open := range []string{"/healthz", "/metrics"} {
		if code := getJSON(t, ts.URL+open, nil); code != http.StatusOK {
			t.Fatalf("%s without token: HTTP %d", open, code)
		}
	}

	// Alice submits; the job is stamped with her tenant.
	body, _ := json.Marshal(jobs.Request{Graph: "g", Algorithm: "pr"})
	var st jobs.Status
	if code := doJSON(t, authedReq(t, "POST", ts.URL+"/v1/jobs", "tok-alice", body), &st); code != http.StatusAccepted {
		t.Fatalf("alice submit: HTTP %d", code)
	}
	if st.Tenant != "alice" {
		t.Fatalf("job tenant %q, want alice", st.Tenant)
	}
	// Impersonation: alice's token cannot submit as bob.
	imp, _ := json.Marshal(jobs.Request{Graph: "g", Algorithm: "pr", Tenant: "bob"})
	if code := doJSON(t, authedReq(t, "POST", ts.URL+"/v1/jobs", "tok-alice", imp), nil); code != http.StatusForbidden {
		t.Fatalf("impersonation: HTTP %d, want 403", code)
	}

	// Cross-tenant visibility: bob gets 404 on alice's job ID — same as a
	// bogus ID — on status, result, and cancel; and his listing is empty.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + st.ID},
		{"GET", "/v1/jobs/" + st.ID + "/result"},
		{"POST", "/v1/jobs/" + st.ID + "/cancel"},
	} {
		if code := doJSON(t, authedReq(t, probe.method, ts.URL+probe.path, "tok-bob", nil), nil); code != http.StatusNotFound {
			t.Fatalf("bob %s %s: HTTP %d, want 404", probe.method, probe.path, code)
		}
	}
	var listA, listB struct {
		Jobs  []jobs.Status `json:"jobs"`
		Total int           `json:"total"`
	}
	doJSON(t, authedReq(t, "GET", ts.URL+"/v1/jobs", "tok-alice", nil), &listA)
	doJSON(t, authedReq(t, "GET", ts.URL+"/v1/jobs", "tok-bob", nil), &listB)
	if listA.Total != 1 || len(listA.Jobs) != 1 || listA.Jobs[0].ID != st.ID {
		t.Fatalf("alice's listing: %+v", listA)
	}
	if listB.Total != 0 || len(listB.Jobs) != 0 {
		t.Fatalf("bob sees alice's jobs: %+v", listB)
	}
}

func TestTenantQuotas429(t *testing.T) {
	dir, _ := buildLayoutDir(t, 8, 5, 2)
	_, ts := newTestServer(t, tenantCfg(dir))

	// Queue quota: alice is capped at one queued job. Jobs drain at CPU
	// speed (device time is simulated), so a serial loop never observes a
	// full queue — burst concurrently so submissions outrun the single
	// worker. The cap must bite with 429 while admissions still happen.
	body, _ := json.Marshal(jobs.Request{Graph: "g", Algorithm: "pr", MaxIterations: 500})
	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if accepted.Load() > 0 && rejected.Load() > 0 {
					return
				}
				code := doJSON(t, authedReq(t, "POST", ts.URL+"/v1/jobs", "tok-alice", body), nil)
				switch code {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("burst submit: HTTP %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if accepted.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("queue quota never engaged: %d accepted, %d rejected", accepted.Load(), rejected.Load())
	}

	// Mutation rate: alice's budget is 512 B/s with a 512 B burst. The
	// first oversized batch rides the full bucket into debt; the second
	// must bounce with 429 + Retry-After.
	muts := `{"mutations":[`
	for i := 0; i < 40; i++ {
		if i > 0 {
			muts += ","
		}
		muts += fmt.Sprintf(`{"op":"insert","src":%d,"dst":%d}`, i, i+1)
	}
	muts += `]}`
	if len(muts) < 600 {
		t.Fatalf("test batch too small to exceed the burst: %d bytes", len(muts))
	}
	first := doJSON(t, authedReq(t, "POST", ts.URL+"/v1/graphs/g/edges", "tok-alice", []byte(muts)), nil)
	if first != http.StatusOK {
		t.Fatalf("first batch: HTTP %d", first)
	}
	resp, err := http.DefaultClient.Do(authedReq(t, "POST", ts.URL+"/v1/graphs/g/edges", "tok-alice", []byte(muts)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("second batch: HTTP %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Bob is unmetered: the same batch lands.
	if code := doJSON(t, authedReq(t, "POST", ts.URL+"/v1/graphs/g/edges", "tok-bob", []byte(muts)), nil); code != http.StatusOK {
		t.Fatalf("bob's batch: HTTP %d", code)
	}
}

// ---------- retention over HTTP (leak bugfix) ----------

func TestRetentionOverHTTP(t *testing.T) {
	dir, _ := buildLayoutDir(t, 8, 3, 2)
	_, ts := newTestServer(t, Config{
		Graphs:     []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}},
		RetainJobs: 3, Workers: 1,
	})
	var ids []string
	for i := 0; i < 8; i++ {
		code, st := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr", Source: uint32(i)})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		waitDone(t, ts, st.ID) // serialise: finish order == submission order
		ids = append(ids, st.ID)
	}
	// The oldest five are gone — status and result both 404.
	for _, id := range ids[:5] {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusNotFound {
			t.Fatalf("evicted job %s: HTTP %d, want 404", id, code)
		}
	}
	// The newest three still serve results.
	for _, id := range ids[5:] {
		var res struct {
			Top []struct{} `json:"top"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK || len(res.Top) == 0 {
			t.Fatalf("retained job %s: HTTP %d, %d top rows", id, code, len(res.Top))
		}
	}
	// The listing is bounded and the counters tell the truth.
	var list struct {
		Jobs  []jobs.Status `json:"jobs"`
		Total int           `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if list.Total != 3 || len(list.Jobs) != 3 {
		t.Fatalf("bounded listing: total=%d len=%d", list.Total, len(list.Jobs))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := copyAll(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"graphsd_jobs_evicted_total 5", "graphsd_jobs_retained 3"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

func copyAll(dst *strings.Builder, src interface{ Read([]byte) (int, error) }) (int64, error) {
	buf := make([]byte, 32<<10)
	var n int64
	for {
		k, err := src.Read(buf)
		dst.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

func TestListPagination(t *testing.T) {
	dir, _ := buildLayoutDir(t, 8, 9, 2)
	_, ts := newTestServer(t, Config{Graphs: []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}}, Workers: 1})
	var ids []string
	for i := 0; i < 7; i++ {
		code, st := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr", Source: uint32(i)})
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", code)
		}
		ids = append(ids, st.ID)
	}
	var page struct {
		Jobs       []jobs.Status `json:"jobs"`
		Total      int           `json:"total"`
		Offset     int           `json:"offset"`
		NextOffset *int          `json:"next_offset"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?offset=2&limit=3", &page); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if page.Total != 7 || page.Offset != 2 || len(page.Jobs) != 3 || page.Jobs[0].ID != ids[2] {
		t.Fatalf("page: total=%d offset=%d len=%d", page.Total, page.Offset, len(page.Jobs))
	}
	if page.NextOffset == nil || *page.NextOffset != 5 {
		t.Fatalf("next_offset: %v", page.NextOffset)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?offset=100", &page); code != http.StatusOK || len(page.Jobs) != 0 || page.Total != 7 {
		t.Fatalf("offset past end: HTTP %d len=%d total=%d", code, len(page.Jobs), page.Total)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?limit=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit: HTTP %d", code)
	}
}

// ---------- serve SLO: throughput + fairness under flooding ----------

// TestServeSLO is the CI serve-slo gate: a two-tenant server (equal
// weight), one tenant flooding the admission queue with 8-deep burst
// submissions, the quiet one trickling single jobs. Weighted fair-share
// must hold the quiet tenant at ≥40% of completed jobs — under FIFO the
// flood's standing backlog queues ahead of every quiet job and throttles
// the quiet tenant's closed loop to a fraction of that. Writes
// BENCH_serve.json when SERVE_OUT is set.
func TestServeSLO(t *testing.T) {
	if raceEnabled {
		t.Skip("SLO floors are timing-sensitive; the race detector's ~10x slowdown invalidates them")
	}
	dir, g := buildLayoutDir(t, 14, 13, 4)
	_, ts := newTestServer(t, Config{
		Graphs: []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD, Mutable: true}},
		Tenants: []jobs.Tenant{
			{Name: "quiet", Token: "tok-quiet"},
			{Name: "flood", Token: "tok-flood"},
		},
		Workers: 1, QueueDepth: 64, RetainJobs: 200,
	})

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL: ts.URL,
		Graph:   "g",
		Tenants: []loadgen.Tenant{
			// Fairness needs the server queue to be the bottleneck: jobs
			// are long (scale-14 graph, 10 iterations) relative to the
			// client's submit→poll overhead, the flood rides a deep burst
			// instead of many polling goroutines (client CPU competes
			// with the server on small runners), and the quiet tenant's
			// three workers keep its queue non-empty.
			{Name: "quiet", Token: "tok-quiet", Workers: 3},
			{Name: "flood", Token: "tok-flood", Workers: 2, Burst: 8},
		},
		Algorithms:    []string{"pr"},
		NumVertices:   g.NumVertices,
		MaxIterations: 10,
		MutateEvery:   9, MutateBatch: 8,
		PollInterval:  time.Millisecond,
		Duration:      3 * time.Second,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serve SLO: %d jobs, %.1f jobs/s, p50=%.2fms p99=%.2fms, min share %.2f, %d mutation batches, %d rejected, %d errors",
		rep.Jobs, rep.JobsPS, rep.P50ms, rep.P99ms, rep.MinShare, rep.Mutates, rep.Rejected, rep.Errors)

	// Throughput floor: a scale-9 graph with 3-iteration jobs must clear
	// this on any CI runner; the gate catches order-of-magnitude serving
	// regressions, not hardware variance.
	if rep.JobsPS < 5 {
		t.Errorf("SLO violation: %.1f jobs/s below the 5 jobs/s floor", rep.JobsPS)
	}
	if rep.P99ms <= 0 || rep.P50ms > rep.P99ms {
		t.Errorf("latency digest inconsistent: p50=%.2f p99=%.2f", rep.P50ms, rep.P99ms)
	}
	if rep.Errors > 0 {
		t.Errorf("%d errored operations during the run", rep.Errors)
	}
	if rep.Mutates == 0 {
		t.Errorf("mixed traffic never exercised the mutation path")
	}
	// Fairness: the flooding tenant cannot push the quiet one below 40%
	// of total completions despite a 7:3 worker imbalance.
	var quiet loadgen.TenantReport
	for _, tr := range rep.Tenants {
		if tr.Name == "quiet" {
			quiet = tr
		}
	}
	if quiet.Jobs == 0 {
		t.Fatal("quiet tenant starved outright")
	}
	if quiet.Share < 0.40 {
		t.Errorf("fairness violation: quiet tenant's share %.2f < 0.40 under flooding", quiet.Share)
	}

	if out := os.Getenv("SERVE_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("serve SLO report written to %s", out)
	}
}
