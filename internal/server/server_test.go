package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// buildLayoutDir preprocesses a small RMAT graph into a fresh directory and
// returns it, for registering with a test server.
func buildLayoutDir(t *testing.T, scale int, seed int64, p int) (string, *graph.Graph) {
	t.Helper()
	g, err := gen.RMAT(scale, 8, gen.Graph500, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dev, err := storage.OpenDevice(dir, storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Build(dev, g, p); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req jobs.Request) (int, jobs.Status) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		json.NewDecoder(resp.Body).Decode(v)
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "cancelled":
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobs.Status{}
}

func TestServerJobRoundTrip(t *testing.T) {
	dir, _ := buildLayoutDir(t, 9, 7, 4)
	_, ts := newTestServer(t, Config{Graphs: []GraphConfig{{Name: "rmat9", Dir: dir, Profile: storage.HDD}}})

	code, st := postJob(t, ts, jobs.Request{Graph: "rmat9", Algorithm: "pr"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.ID == "" || st.Graph != "rmat9" {
		t.Fatalf("submit status: %+v", st)
	}
	final := waitDone(t, ts, st.ID)
	if final.Iterations == 0 {
		t.Fatalf("no iterations recorded: %+v", final)
	}

	// Top-k result.
	var res struct {
		jobs.Status
		Top []struct {
			Vertex uint32  `json:"vertex"`
			Value  float64 `json:"value"`
		} `json:"top"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?top=5", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if len(res.Top) != 5 {
		t.Fatalf("top-5 returned %d rows", len(res.Top))
	}
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Value > res.Top[i-1].Value {
			t.Fatalf("top-k not descending: %+v", res.Top)
		}
	}

	// Full result.
	var full struct {
		Full []float64 `json:"full"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?full=1", &full); code != http.StatusOK {
		t.Fatalf("full result: HTTP %d", code)
	}
	if len(full.Full) == 0 {
		t.Fatal("full result empty")
	}

	// Listing includes the job.
	var list struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list: HTTP %d, %d jobs", code, len(list.Jobs))
	}
}

func TestServerValidation(t *testing.T) {
	dir, g := buildLayoutDir(t, 9, 3, 4)
	_, ts := newTestServer(t, Config{Graphs: []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}}})

	cases := []jobs.Request{
		{Graph: "nope", Algorithm: "pr"},
		{Graph: "g", Algorithm: "nope"},
		{Graph: "g"},
		{Algorithm: "pr"},
		{Graph: "g", Algorithm: "bfs", Source: uint32(g.NumVertices)},
		{Graph: "g", Algorithm: "pr", MaxIterations: -1},
	}
	for _, req := range cases {
		if code, _ := postJob(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("%+v: HTTP %d, want 400", req, code)
		}
	}

	// Unknown fields and malformed JSON are 400 too.
	for _, body := range []string{`{"graph":"g","algorithm":"pr","bogus":1}`, `{not json`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown job IDs are 404.
	if code := getJSON(t, ts.URL+"/v1/jobs/jnope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/jnope/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job result: HTTP %d", code)
	}
}

func TestServerResultConflictWhilePending(t *testing.T) {
	dir, _ := buildLayoutDir(t, 10, 5, 4)
	_, ts := newTestServer(t, Config{
		Graphs:  []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}},
		Workers: 1,
	})
	code, st := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Immediately asking for the result races the run; both 409 (not done)
	// and 200 (already done) are legal, but nothing else.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("pending result: HTTP %d", code)
	}
	waitDone(t, ts, st.ID)
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusOK {
		t.Fatalf("done result: HTTP %d", code)
	}
}

func TestServerCancel(t *testing.T) {
	dir, _ := buildLayoutDir(t, 11, 9, 4)
	_, ts := newTestServer(t, Config{
		Graphs:  []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}},
		Workers: 1,
	})
	code, st := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobs.Status
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		if cur.State == "cancelled" || cur.State == "done" {
			break // done is legal if the run beat the cancel
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	dir, _ := buildLayoutDir(t, 9, 1, 4)
	s, ts := newTestServer(t, Config{
		Graphs:     []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}},
		Workers:    1,
		QueueDepth: 1,
	})
	// Park the running job inside a device read so the queue stays full:
	// the injector blocks block reads until the gate opens.
	gate := make(chan struct{})
	var openGate sync.Once
	release := func() { openGate.Do(func() { close(gate) }) }
	t.Cleanup(release) // runs before the server Close registered earlier
	_, dev, _ := s.Graph("g")
	dev.SetFaultInjector(func(op, name string) error {
		if strings.HasPrefix(op, "read") && strings.HasPrefix(name, "blocks/") {
			<-gate
		}
		return nil
	})

	// Saturate: 1 parked running + 1 queued, then a deterministic 429.
	// The second submit can race the worker's dequeue of the first, so a
	// transient 429 before saturation is retried.
	deadline := time.Now().Add(10 * time.Second)
	for accepted := 0; accepted < 2; {
		code, _ := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr"})
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("submit: HTTP %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("could not saturate queue")
		}
	}
	for {
		if n, _ := s.Scheduler().QueueDepth(); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	code, _ := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit to full queue: HTTP %d, want 429", code)
	}
	release()
	if est := s.estimateBytes(jobs.Request{Graph: "g"}); est <= 16<<20 {
		t.Fatalf("memory estimate suspiciously small: %d", est)
	}
}

func TestServerMemBudgetRejection(t *testing.T) {
	dir, _ := buildLayoutDir(t, 9, 6, 4)
	_, ts := newTestServer(t, Config{
		Graphs:    []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD}},
		MemBudget: 1, // below any job's estimate: every submission rejected
	})
	code, _ := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "pr"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit under 1-byte budget: HTTP %d, want 429", code)
	}
}

func TestServerHealthzAndMetrics(t *testing.T) {
	dir, _ := buildLayoutDir(t, 9, 2, 4)
	_, ts := newTestServer(t, Config{Graphs: []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD, Retries: 3}}})

	var hz struct {
		Status string   `json:"status"`
		Graphs []string `json:"graphs"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" || len(hz.Graphs) != 1 {
		t.Fatalf("healthz: HTTP %d, %+v", code, hz)
	}

	_, st := postJob(t, ts, jobs.Request{Graph: "g", Algorithm: "bfs", Source: 1})
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	body := buf.String()

	for _, want := range []string{
		`graphsd_jobs_total{state="done"} 1`,
		`graphsd_device_read_bytes_total{graph="g"}`,
		`graphsd_device_retries_total{graph="g"}`,
		`graphsd_shared_cache_misses_total{graph="g"}`,
		`graphsd_pipeline_fallbacks_total{graph="g"}`,
		`graphsd_pipeline_blocks_total{graph="g"}`,
		`graphsd_buffer_hits_total{graph="g"}`,
		`graphsd_sched_observed_iterations_total{graph="g"}`,
		`graphsd_sched_mispredict_mean_ratio{graph="g"}`,
		`graphsd_sched_correction_factor{graph="g",model="full"}`,
		`graphsd_sched_correction_factor{graph="g",model="on-demand"}`,
		"graphsd_uptime_seconds",
		"graphsd_queue_capacity",
		"graphsd_mem_budget_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every sample family is announced: no sample line without a TYPE.
	seen := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]] = true
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !seen[name] {
			t.Errorf("sample %q has no TYPE header", line)
		}
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no graphs accepted")
	}
	dir, _ := buildLayoutDir(t, 9, 4, 4)
	if _, err := New(Config{Graphs: []GraphConfig{
		{Name: "a", Dir: dir, Profile: storage.HDD},
		{Name: "a", Dir: dir, Profile: storage.HDD},
	}}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New(Config{Graphs: []GraphConfig{{Name: "a", Dir: t.TempDir(), Profile: storage.HDD}}}); err == nil {
		t.Fatal("empty layout dir accepted")
	}
}
