package server

import (
	"net/http"
	"time"

	"github.com/graphsd/graphsd/internal/buffer"
	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/pipeline"
	"github.com/graphsd/graphsd/internal/storage"
)

// handleMetrics renders the Prometheus text exposition: scheduler counters
// and gauges, then per-graph device traffic (including retry counters),
// shared-cache effectiveness, and the pipeline/buffer aggregates folded in
// from completed jobs.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := metrics.NewProm(w)

	p.Header("graphsd_uptime_seconds", "gauge", "Seconds since the server started.")
	p.Val("graphsd_uptime_seconds", time.Since(s.start).Seconds())

	p.Header("graphsd_jobs_total", "counter", "Jobs finished, by terminal state.")
	finished := s.sched.FinishedCounts()
	for _, st := range []jobs.State{jobs.Done, jobs.Failed, jobs.Cancelled, jobs.Expired} {
		p.Int("graphsd_jobs_total", finished[st], metrics.L("state", st.String()))
	}

	// Durability: what the startup journal replay did, plus live journal
	// traffic. All zero when the server runs without -journal.
	rec := s.sched.Recovery()
	p.Header("graphsd_jobs_recovered_total", "counter", "Journaled jobs restored already-terminal at startup replay.")
	p.Int("graphsd_jobs_recovered_total", rec.Recovered)
	p.Header("graphsd_jobs_requeued_total", "counter", "Journaled jobs re-queued for execution at startup replay (Resumable of them hold an engine checkpoint).")
	p.Int("graphsd_jobs_requeued_total", rec.Requeued)
	p.Header("graphsd_jobs_lost_total", "counter", "Journaled jobs the replay could neither finish nor re-queue. Must stay 0.")
	p.Int("graphsd_jobs_lost_total", rec.Lost)
	p.Header("graphsd_jobs_expired_deadline_total", "counter", "Jobs expired past their Request.Deadline (at replay or at runtime).")
	p.Int("graphsd_jobs_expired_deadline_total", s.sched.ExpiredDeadline())
	p.Header("graphsd_jobs_retried_total", "counter", "Job-level retry attempts after transient storage failures.")
	p.Int("graphsd_jobs_retried_total", s.sched.Retried())
	if s.journal != nil {
		js := s.journal.Stats()
		p.Header("graphsd_journal_records_total", "counter", "Records appended to the job journal by this process.")
		p.Int("graphsd_journal_records_total", js.Records)
		p.Header("graphsd_journal_bytes_total", "counter", "Bytes appended to the job journal by this process.")
		p.Int("graphsd_journal_bytes_total", js.Bytes)
		p.Header("graphsd_journal_segments", "gauge", "Journal segment files on disk, including the active one.")
		p.Int("graphsd_journal_segments", int64(js.Segments))
		p.Header("graphsd_journal_replay_records_total", "counter", "Records replayed from the journal at startup.")
		p.Int("graphsd_journal_replay_records_total", js.ReplayRecords)
		p.Header("graphsd_journal_replay_seconds", "gauge", "Wall clock the startup journal replay took.")
		p.Val("graphsd_journal_replay_seconds", js.ReplayTime.Seconds())
	}

	// Retention: how many terminal jobs remain retrievable vs evicted to
	// bound memory. evicted > 0 with lost = 0 is the healthy steady state
	// of a long-running bounded server.
	p.Header("graphsd_jobs_retained", "gauge", "Terminal jobs still retrievable (bounded by -retain-jobs).")
	p.Int("graphsd_jobs_retained", int64(s.sched.Retained()))
	p.Header("graphsd_jobs_evicted_total", "counter", "Terminal jobs evicted by retention, result payloads and all.")
	p.Int("graphsd_jobs_evicted_total", s.sched.Evicted())

	// Per-tenant scheduler state: admission counts and live queue/running
	// occupancy, for fairness audits. A single-tenant server reports one
	// "default" row.
	tenants := s.sched.Tenants()
	p.Header("graphsd_tenant_jobs_submitted_total", "counter", "Jobs admitted, by tenant.")
	for _, t := range tenants {
		p.Int("graphsd_tenant_jobs_submitted_total", t.Submitted, metrics.L("tenant", t.Name))
	}
	p.Header("graphsd_tenant_jobs_done_total", "counter", "Jobs finished Done, by tenant.")
	for _, t := range tenants {
		p.Int("graphsd_tenant_jobs_done_total", t.Done, metrics.L("tenant", t.Name))
	}
	p.Header("graphsd_tenant_jobs_queued", "gauge", "Jobs waiting in the tenant's queue.")
	for _, t := range tenants {
		p.Int("graphsd_tenant_jobs_queued", int64(t.Queued), metrics.L("tenant", t.Name))
	}
	p.Header("graphsd_tenant_jobs_running", "gauge", "Jobs the tenant has running.")
	for _, t := range tenants {
		p.Int("graphsd_tenant_jobs_running", int64(t.Running), metrics.L("tenant", t.Name))
	}
	p.Header("graphsd_tenant_weight", "gauge", "Fair-share weight.")
	for _, t := range tenants {
		p.Int("graphsd_tenant_weight", int64(t.Weight), metrics.L("tenant", t.Name))
	}

	p.Header("graphsd_jobs_current", "gauge", "Jobs currently queued or running.")
	counts := s.sched.Counts()
	for _, st := range []jobs.State{jobs.Queued, jobs.Running} {
		p.Int("graphsd_jobs_current", counts[st], metrics.L("state", st.String()))
	}

	qLen, qCap := s.sched.QueueDepth()
	p.Header("graphsd_queue_depth", "gauge", "Jobs admitted but not yet running.")
	p.Int("graphsd_queue_depth", int64(qLen))
	p.Header("graphsd_queue_capacity", "gauge", "Admission queue capacity.")
	p.Int("graphsd_queue_capacity", int64(qCap))

	memUsed, memBudget := s.sched.MemReserved()
	p.Header("graphsd_mem_reserved_bytes", "gauge", "Summed memory estimates of queued and running jobs.")
	p.Int("graphsd_mem_reserved_bytes", memUsed)
	p.Header("graphsd_mem_budget_bytes", "gauge", "Admission memory budget (0 = unlimited).")
	p.Int("graphsd_mem_budget_bytes", memBudget)

	// Per-graph device traffic. These are whole-device counters — exact
	// even while concurrent jobs share the device.
	p.Header("graphsd_device_read_bytes_total", "counter", "Bytes read from the graph's device.")
	for _, name := range s.names {
		p.Int("graphsd_device_read_bytes_total", s.graphs[name].dev.Stats().ReadBytes(), metrics.L("graph", name))
	}
	p.Header("graphsd_device_write_bytes_total", "counter", "Bytes written to the graph's device.")
	for _, name := range s.names {
		p.Int("graphsd_device_write_bytes_total", s.graphs[name].dev.Stats().WriteBytes(), metrics.L("graph", name))
	}
	p.Header("graphsd_device_ops_total", "counter", "Device operations, by access class.")
	classes := []struct {
		c     storage.Class
		label string
	}{
		{storage.SeqRead, "seq_read"},
		{storage.RandRead, "rand_read"},
		{storage.SeqWrite, "seq_write"},
		{storage.RandWrite, "rand_write"},
	}
	for _, name := range s.names {
		st := s.graphs[name].dev.Stats()
		for _, cl := range classes {
			p.Int("graphsd_device_ops_total", st.Ops[cl.c], metrics.L("graph", name), metrics.L("class", cl.label))
		}
	}
	p.Header("graphsd_device_retries_total", "counter", "Read attempts repeated after transient faults.")
	for _, name := range s.names {
		p.Int("graphsd_device_retries_total", s.graphs[name].dev.Stats().Retries, metrics.L("graph", name))
	}
	p.Header("graphsd_device_busy_seconds_total", "counter", "Simulated device time consumed.")
	for _, name := range s.names {
		p.Val("graphsd_device_busy_seconds_total", s.graphs[name].dev.Stats().TotalTime().Seconds(), metrics.L("graph", name))
	}

	// Mutable-graph write path: all-time mutation and compaction counts
	// ride in the manifest (MutationsTotal, Generation), so these counters
	// survive restarts; layer count/bytes and the memtable are live state.
	// Read-only graphs are omitted — absence distinguishes "not mutable"
	// from "no writes yet".
	var mutable []string
	for _, name := range s.names {
		if s.graphs[name].store != nil {
			mutable = append(mutable, name)
		}
	}
	if len(mutable) > 0 {
		p.Header("graphsd_mutations_total", "counter", "Edge mutations durably applied to the graph over its lifetime (survives restarts).")
		for _, name := range mutable {
			p.Int("graphsd_mutations_total", s.graphs[name].store.Stats().MutationsTotal, metrics.L("graph", name))
		}
		p.Header("graphsd_compactions_total", "counter", "Compactions published over the graph's lifetime (the layout generation; survives restarts).")
		for _, name := range mutable {
			p.Int("graphsd_compactions_total", int64(s.graphs[name].store.Stats().Generation), metrics.L("graph", name))
		}
		p.Header("graphsd_delta_layers", "gauge", "Sealed delta layers awaiting compaction.")
		for _, name := range mutable {
			p.Int("graphsd_delta_layers", int64(s.graphs[name].store.Stats().Layers), metrics.L("graph", name))
		}
		p.Header("graphsd_delta_bytes", "gauge", "On-disk bytes of sealed delta layers (pending-compaction volume).")
		for _, name := range mutable {
			p.Int("graphsd_delta_bytes", s.graphs[name].store.Stats().LayerBytes, metrics.L("graph", name))
		}
		p.Header("graphsd_memtable_bytes", "gauge", "Estimated bytes of unsealed mutations in the memtable.")
		for _, name := range mutable {
			p.Int("graphsd_memtable_bytes", s.graphs[name].store.Stats().MemtableBytes, metrics.L("graph", name))
		}
		p.Header("graphsd_mutation_batches_total", "counter", "Mutation batches acknowledged by this process.")
		for _, name := range mutable {
			p.Int("graphsd_mutation_batches_total", s.graphs[name].store.Stats().Batches, metrics.L("graph", name))
		}
		p.Header("graphsd_memtable_seals_total", "counter", "Memtable seals into delta layers by this process.")
		for _, name := range mutable {
			p.Int("graphsd_memtable_seals_total", s.graphs[name].store.Stats().Seals, metrics.L("graph", name))
		}
		p.Header("graphsd_snapshot_pins", "gauge", "Live job snapshots pinning a layout generation.")
		for _, name := range mutable {
			p.Int("graphsd_snapshot_pins", int64(s.graphs[name].store.Stats().Pins), metrics.L("graph", name))
		}
	}

	// Shared sub-block cache, per graph.
	p.Header("graphsd_shared_cache_hits_total", "counter", "Sub-block loads served from the cross-job shared cache (incl. single-flight dedup waits).")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_hits_total", s.graphs[name].shared.Stats().Hits, metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_misses_total", "counter", "Sub-block loads that went to the device.")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_misses_total", s.graphs[name].shared.Stats().Misses, metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_bytes_saved_total", "counter", "Device bytes avoided by shared-cache hits.")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_bytes_saved_total", s.graphs[name].shared.Stats().BytesSaved, metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_evictions_total", "counter", "Shared-cache LRU evictions.")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_evictions_total", s.graphs[name].shared.Stats().Evictions, metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_compressed_hits_total", "counter", "Shared-cache hits served from the compressed (delta-coded) tier.")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_compressed_hits_total", s.graphs[name].shared.Stats().CompressedHits, metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_decode_seconds_total", "counter", "Wall time spent decoding compressed-tier hits (overlapped with compute).")
	for _, name := range s.names {
		p.Val("graphsd_shared_cache_decode_seconds_total", s.graphs[name].shared.Stats().DecodeTime.Seconds(), metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_used_bytes", "gauge", "Decoded bytes resident in the shared cache.")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_used_bytes", s.graphs[name].shared.Used(), metrics.L("graph", name))
	}
	p.Header("graphsd_shared_cache_capacity_bytes", "gauge", "Shared cache capacity.")
	for _, name := range s.names {
		p.Int("graphsd_shared_cache_capacity_bytes", s.graphs[name].shared.Capacity(), metrics.L("graph", name))
	}

	// Aggregates folded from completed jobs: I/O pipeline (including the
	// synchronous-fallback counter) and per-run priority buffer.
	type agg struct {
		name          string
		runs          int64
		pipe          pipeline.Stats
		buf           buffer.Stats
		schedObserved int64
		schedMean     float64
		schedMax      float64
		corrFull      float64
		corrOnDemand  float64
		asyncRuns     int64
		asyncSteps    int64
		asyncBlocks   int64
		asyncReacts   int64
	}
	aggs := make([]agg, 0, len(s.names))
	for _, name := range s.names {
		g := s.graphs[name]
		g.mu.Lock()
		a := agg{name: name, runs: g.jobsRun, pipe: g.pipeline, buf: g.buffer,
			schedObserved: g.schedObserved, schedMax: g.schedMaxMispred,
			corrFull: g.schedCorrFull, corrOnDemand: g.schedCorrOnDemand,
			asyncRuns: g.asyncRuns, asyncSteps: g.asyncSteps,
			asyncBlocks: g.asyncBlocks, asyncReacts: g.asyncReacts}
		if g.schedObserved > 0 {
			a.schedMean = g.schedMispredict / float64(g.schedObserved)
		}
		g.mu.Unlock()
		aggs = append(aggs, a)
	}
	p.Header("graphsd_jobs_completed_runs_total", "counter", "Completed runs folded into the per-graph aggregates.")
	for _, a := range aggs {
		p.Int("graphsd_jobs_completed_runs_total", a.runs, metrics.L("graph", a.name))
	}
	p.Header("graphsd_pipeline_blocks_total", "counter", "Sub-blocks delivered by the I/O pipeline.")
	for _, a := range aggs {
		p.Int("graphsd_pipeline_blocks_total", int64(a.pipe.Blocks), metrics.L("graph", a.name))
	}
	p.Header("graphsd_pipeline_fallbacks_total", "counter", "Sub-blocks loaded synchronously after a pipeline degrade on a transient fault.")
	for _, a := range aggs {
		p.Int("graphsd_pipeline_fallbacks_total", int64(a.pipe.Fallbacks), metrics.L("graph", a.name))
	}
	p.Header("graphsd_sem_blocks_skipped_total", "counter", "Non-empty sub-blocks never read because the SEM block-activity bitmap proved them dead.")
	for _, a := range aggs {
		p.Int("graphsd_sem_blocks_skipped_total", int64(a.pipe.Skipped), metrics.L("graph", a.name))
	}
	p.Header("graphsd_sem_bytes_skipped_total", "counter", "On-disk bytes of SEM-skipped sub-blocks — device traffic the bitmap avoided.")
	for _, a := range aggs {
		p.Int("graphsd_sem_bytes_skipped_total", a.pipe.SkippedBytes, metrics.L("graph", a.name))
	}
	p.Header("graphsd_pipeline_stall_seconds_total", "counter", "Compute time spent waiting on prefetches.")
	for _, a := range aggs {
		p.Val("graphsd_pipeline_stall_seconds_total", a.pipe.Stall.Seconds(), metrics.L("graph", a.name))
	}
	p.Header("graphsd_pipeline_overlap_seconds_total", "counter", "I/O time overlapped with compute.")
	for _, a := range aggs {
		p.Val("graphsd_pipeline_overlap_seconds_total", a.pipe.Overlap.Seconds(), metrics.L("graph", a.name))
	}
	p.Header("graphsd_buffer_hits_total", "counter", "Per-run priority-buffer hits, summed over completed jobs.")
	for _, a := range aggs {
		p.Int("graphsd_buffer_hits_total", a.buf.Hits, metrics.L("graph", a.name))
	}
	p.Header("graphsd_buffer_bytes_saved_total", "counter", "Device bytes avoided by per-run buffer hits, summed over completed jobs.")
	for _, a := range aggs {
		p.Int("graphsd_buffer_bytes_saved_total", a.buf.BytesSaved, metrics.L("graph", a.name))
	}
	p.Header("graphsd_async_runs_total", "counter", "Completed jobs executed by the asynchronous priority scheduler.")
	for _, a := range aggs {
		p.Int("graphsd_async_runs_total", a.asyncRuns, metrics.L("graph", a.name))
	}
	p.Header("graphsd_async_steps_total", "counter", "Async scheduler pops (one source interval processed per step), summed over completed jobs.")
	for _, a := range aggs {
		p.Int("graphsd_async_steps_total", a.asyncSteps, metrics.L("graph", a.name))
	}
	p.Header("graphsd_async_blocks_scheduled_total", "counter", "Sub-blocks processed by async steps, summed over completed jobs.")
	for _, a := range aggs {
		p.Int("graphsd_async_blocks_scheduled_total", a.asyncBlocks, metrics.L("graph", a.name))
	}
	p.Header("graphsd_async_reactivations_total", "counter", "Vertices re-entering the frontier after having been consumed, summed over completed async jobs.")
	for _, a := range aggs {
		p.Int("graphsd_async_reactivations_total", a.asyncReacts, metrics.L("graph", a.name))
	}
	p.Header("graphsd_sched_observed_iterations_total", "counter", "Iterations fed back through the scheduler's calibration loop, summed over completed jobs.")
	for _, a := range aggs {
		p.Int("graphsd_sched_observed_iterations_total", a.schedObserved, metrics.L("graph", a.name))
	}
	p.Header("graphsd_sched_mispredict_mean_ratio", "gauge", "Observation-weighted mean |predicted-actual|/actual of the scheduler's iteration cost predictions.")
	for _, a := range aggs {
		p.Val("graphsd_sched_mispredict_mean_ratio", a.schedMean, metrics.L("graph", a.name))
	}
	p.Header("graphsd_sched_mispredict_max_ratio", "gauge", "Worst per-iteration misprediction ratio seen across completed jobs.")
	for _, a := range aggs {
		p.Val("graphsd_sched_mispredict_max_ratio", a.schedMax, metrics.L("graph", a.name))
	}
	p.Header("graphsd_sched_correction_factor", "gauge", "Final EWMA cost-correction factors of the most recent completed job, by I/O model.")
	for _, a := range aggs {
		p.Val("graphsd_sched_correction_factor", a.corrFull, metrics.L("graph", a.name), metrics.L("model", "full"))
		p.Val("graphsd_sched_correction_factor", a.corrOnDemand, metrics.L("graph", a.name), metrics.L("model", "on-demand"))
	}
	if err := p.Err(); err != nil {
		// The client went away mid-scrape; nothing recoverable.
		return
	}
}
