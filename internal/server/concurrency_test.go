package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// submitAndWait submits directly to the scheduler and blocks until the job
// reaches a terminal state, returning it.
func submitAndWait(t *testing.T, s *Server, req jobs.Request) *jobs.Job {
	t.Helper()
	j, err := s.Scheduler().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for !j.State().Final() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", j.ID(), j.State())
		}
		time.Sleep(time.Millisecond)
	}
	return j
}

// TestConcurrentJobsBitIdentical is the PR's acceptance test: N
// simultaneous PageRank and BFS jobs over one layout, with 5% transient
// chaos faults on block reads and retries enabled, each producing outputs
// bit-identical to a plain sequential core.Run on the same layout. Run
// under -race in CI, it also proves the shared cache and two-phase scatter
// race-free under real concurrency.
func TestConcurrentJobsBitIdentical(t *testing.T) {
	g, err := gen.RMAT(11, 8, gen.Graph500, 17)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bdev, err := storage.OpenDevice(dir, storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.Build(bdev, g, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference runs, one per request shape, on the pristine
	// build device (no chaos, no sharing).
	want := map[string][]float64{}
	reqs := []jobs.Request{
		{Graph: "g", Algorithm: "pr"},
		{Graph: "g", Algorithm: "bfs", Source: 1},
		{Graph: "g", Algorithm: "cc"},
	}
	for _, r := range reqs {
		prog, err := algorithms.ByName(r.Algorithm, graph.VertexID(r.Source))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(layout, prog, core.Options{DefaultBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		want[r.Algorithm] = res.Outputs
	}

	s, err := New(Config{
		Graphs:  []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD, Retries: 8}},
		Workers: 4, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	// 5% transient faults on every block read; the device retry policy
	// (Retries: 8) recovers them, so jobs still finish — with the
	// retries visible in the device counters.
	_, dev, _ := s.Graph("g")
	chaos := storage.NewChaos(storage.ChaosOptions{
		Seed:              99,
		TransientReadProb: 0.05,
		Match: func(op, name string) bool {
			return (op == "read" || op == "readat") && len(name) > 7 && name[:7] == "blocks/"
		},
	})
	dev.SetFaultInjector(chaos.Injector())

	// Launch 3 shapes × 3 copies = 9 simultaneous jobs.
	const copies = 3
	type launched struct {
		req jobs.Request
		job *jobs.Job
	}
	var all []launched
	for c := 0; c < copies; c++ {
		for _, r := range reqs {
			j, err := s.Scheduler().Submit(r)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, launched{req: r, job: j})
		}
	}
	deadline := time.Now().Add(120 * time.Second)
	for _, l := range all {
		for !l.job.State().Final() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", l.job.ID(), l.job.State())
			}
			time.Sleep(time.Millisecond)
		}
		if st := l.job.State(); st != jobs.Done {
			t.Fatalf("job %s (%s) ended %s: %v", l.job.ID(), l.req.Algorithm, st, l.job.Err())
		}
		res := l.job.Result()
		ref := want[l.req.Algorithm]
		if len(res.Outputs) != len(ref) {
			t.Fatalf("%s: %d outputs, want %d", l.req.Algorithm, len(res.Outputs), len(ref))
		}
		for v := range ref {
			if res.Outputs[v] != ref[v] {
				t.Fatalf("%s under concurrency+chaos: vertex %d = %v, want bit-identical %v",
					l.req.Algorithm, v, res.Outputs[v], ref[v])
			}
		}
	}
	if chaos.Stats().Transient == 0 {
		t.Fatal("chaos injected no faults — test proved nothing")
	}
	if dev.Stats().Retries == 0 {
		t.Fatal("no retries recorded despite injected transient faults")
	}
}

// TestWarmJobLoadsFewerBlocks is the shared-cache acceptance bar: with two
// jobs run back-to-back on one graph, the second job's device read delta is
// strictly smaller than the first's, and the cache records hits for it.
func TestWarmJobLoadsFewerBlocks(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.Graph500, 23)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bdev, err := storage.OpenDevice(dir, storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Build(bdev, g, 4); err != nil {
		t.Fatal(err)
	}
	// The cache must hold the whole grid: at half the edge data (the
	// default) a sequential scan over the cells LRU-thrashes to zero hits.
	s, err := New(Config{
		Graphs:  []GraphConfig{{Name: "g", Dir: dir, Profile: storage.HDD, CacheBytes: 1 << 30}},
		Workers: 1, QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	req := jobs.Request{Graph: "g", Algorithm: "pr"}
	cold := submitAndWait(t, s, req)
	warm := submitAndWait(t, s, req)
	for name, j := range map[string]*jobs.Job{"cold": cold, "warm": warm} {
		if j.State() != jobs.Done {
			t.Fatalf("%s job ended %s: %v", name, j.State(), j.Err())
		}
	}
	cr, wr := cold.Result(), warm.Result()
	if cr.SharedMisses == 0 {
		t.Fatal("cold job recorded no shared-cache misses")
	}
	if wr.SharedHits == 0 {
		t.Fatal("warm job recorded no shared-cache hits")
	}
	coldLoads := cr.SharedMisses
	warmLoads := wr.SharedMisses
	if warmLoads >= coldLoads {
		t.Fatalf("warm job loaded %d sub-blocks from device, cold job %d — cache saved nothing",
			warmLoads, coldLoads)
	}
	if wr.IO.ReadBytes() >= cr.IO.ReadBytes() {
		t.Fatalf("warm read %d bytes >= cold %d", wr.IO.ReadBytes(), cr.IO.ReadBytes())
	}
	shared, _, _ := s.Graph("g")
	st := shared.Stats()
	if st.Hits == 0 || st.BytesSaved == 0 {
		t.Fatalf("shared cache counters empty: %+v", st)
	}
	t.Logf("cold loads=%d warm loads=%d (hits=%d, %s saved)",
		coldLoads, warmLoads, wr.SharedHits, fmt.Sprint(st.BytesSaved))
}
