package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/jobs"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func postMutations(t *testing.T, ts *httptest.Server, graphName string, muts []map[string]any) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"mutations": muts})
	resp, err := http.Post(ts.URL+"/v1/graphs/"+graphName+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// scrapeMetric pulls one sample value out of the Prometheus exposition.
func scrapeMetric(t *testing.T, ts *httptest.Server, name, graphName string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s\{graph="%s"[^}]*\} (\S+)$`, name, graphName))
	m := re.FindSubmatch(text)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", name, m[1])
	}
	return v, true
}

// TestMutableGraphEndToEnd drives the whole write path over HTTP:
// ingest → query → explicit compact → restart, with the mutation metrics
// asserted before and after the restart (they ride in the manifest, not in
// process memory).
func TestMutableGraphEndToEnd(t *testing.T) {
	dir, g := buildLayoutDir(t, 8, 11, 3)
	cfg := Config{Graphs: []GraphConfig{{
		Name: "m", Dir: dir, Profile: storage.SSD,
		Mutable: true, MemtableBytes: 1, // seal after every batch
	}}}
	s, ts := newTestServer(t, cfg)

	// Reference: the same query against the mutated edge set, computed on
	// the quiet base via the delta store's reference semantics.
	muts := []map[string]any{
		{"op": "insert", "src": 0, "dst": 5},
		{"op": "insert", "src": 5, "dst": 9},
		{"op": "delete", "src": uint32(g.Edges[0].Src), "dst": uint32(g.Edges[0].Dst)},
	}
	code, out := postMutations(t, ts, "m", muts)
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d %v", code, out)
	}
	if out["accepted"].(float64) != 3 {
		t.Fatalf("accepted = %v, want 3", out["accepted"])
	}
	dm := []delta.Mutation{
		{Op: delta.OpInsert, Src: 0, Dst: 5},
		{Op: delta.OpInsert, Src: 5, Dst: 9},
		{Op: delta.OpDelete, Src: g.Edges[0].Src, Dst: g.Edges[0].Dst},
	}
	wantLayout := func() *core.Result {
		dev2, err := storage.OpenDevice(t.TempDir(), storage.SSD)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := partition.Build(dev2, delta.ApplyToGraph(g, dm), 3); err != nil {
			t.Fatal(err)
		}
		l, err := partition.Load(dev2)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := algorithms.ByName("pr", 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(l, prog, core.Options{DefaultBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	// Query through the server: the job pins a snapshot of base + deltas.
	code, st := postJob(t, ts, jobs.Request{Graph: "m", Algorithm: "pr"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitDone(t, ts, st.ID)
	var res struct {
		Full []float64 `json:"full"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?full=1", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	for i, v := range wantLayout.Outputs {
		if res.Full[i] != v {
			t.Fatalf("vertex %d = %v, want %v (mutations not visible to job)", i, res.Full[i], v)
		}
	}

	// Error paths.
	if code, _ := postMutations(t, ts, "nope", muts); code != http.StatusNotFound {
		t.Fatalf("unknown graph: HTTP %d, want 404", code)
	}
	if code, _ := postMutations(t, ts, "m", []map[string]any{{"op": "upsert", "src": 1, "dst": 2}}); code != http.StatusBadRequest {
		t.Fatalf("bad op: HTTP %d, want 400", code)
	}
	if code, _ := postMutations(t, ts, "m", []map[string]any{{"op": "insert", "src": 1 << 30, "dst": 2}}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: HTTP %d, want 400", code)
	}
	if code, _ := postMutations(t, ts, "m", nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", code)
	}

	// Metrics before compaction: three mutations, at least one sealed layer.
	if v, ok := scrapeMetric(t, ts, "graphsd_mutations_total", "m"); !ok || v != 3 {
		t.Fatalf("graphsd_mutations_total = %v (present=%t), want 3", v, ok)
	}
	if v, ok := scrapeMetric(t, ts, "graphsd_delta_layers", "m"); !ok || v < 1 {
		t.Fatalf("graphsd_delta_layers = %v (present=%t), want >= 1", v, ok)
	}
	if v, ok := scrapeMetric(t, ts, "graphsd_delta_bytes", "m"); !ok || v <= 0 {
		t.Fatalf("graphsd_delta_bytes = %v (present=%t), want > 0", v, ok)
	}

	// Explicit compaction folds the layers into a new base generation.
	resp, err := http.Post(ts.URL+"/v1/graphs/m/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cout map[string]any
	json.NewDecoder(resp.Body).Decode(&cout)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cout["delta_layers"].(float64) != 0 {
		t.Fatalf("compact: HTTP %d %v", resp.StatusCode, cout)
	}
	if v, _ := scrapeMetric(t, ts, "graphsd_compactions_total", "m"); v != 1 {
		t.Fatalf("graphsd_compactions_total = %v, want 1", v)
	}

	// Restart: a second server over the same directory. The lifetime
	// counters come back from the manifest, not from process memory.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	_, ts2 := newTestServer(t, cfg)
	if v, ok := scrapeMetric(t, ts2, "graphsd_mutations_total", "m"); !ok || v != 3 {
		t.Fatalf("after restart: graphsd_mutations_total = %v (present=%t), want 3", v, ok)
	}
	if v, _ := scrapeMetric(t, ts2, "graphsd_compactions_total", "m"); v != 1 {
		t.Fatalf("after restart: graphsd_compactions_total = %v, want 1", v)
	}
	if v, _ := scrapeMetric(t, ts2, "graphsd_delta_layers", "m"); v != 0 {
		t.Fatalf("after restart: graphsd_delta_layers = %v, want 0", v)
	}

	// And the compacted graph still answers queries identically.
	code, st2 := postJob(t, ts2, jobs.Request{Graph: "m", Algorithm: "pr"})
	if code != http.StatusAccepted {
		t.Fatalf("submit after restart: HTTP %d", code)
	}
	waitDone(t, ts2, st2.ID)
	var res2 struct {
		Full []float64 `json:"full"`
	}
	getJSON(t, ts2.URL+"/v1/jobs/"+st2.ID+"/result?full=1", &res2)
	for i, v := range wantLayout.Outputs {
		if res2.Full[i] != v {
			t.Fatalf("after restart: vertex %d = %v, want %v", i, res2.Full[i], v)
		}
	}
}

// TestMutateReadOnlyGraphRejected pins the 405 contract for graphs served
// without -mutable.
func TestMutateReadOnlyGraphRejected(t *testing.T) {
	dir, _ := buildLayoutDir(t, 8, 13, 2)
	_, ts := newTestServer(t, Config{Graphs: []GraphConfig{{Name: "ro", Dir: dir, Profile: storage.SSD}}})
	code, out := postMutations(t, ts, "ro", []map[string]any{{"op": "insert", "src": 1, "dst": 2}})
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("mutating a read-only graph: HTTP %d %v, want 405", code, out)
	}
}

// TestWALFaultSheds503 injects a WAL append failure and asserts writes are
// shed with 503 + Retry-After while queries keep working.
func TestWALFaultSheds503(t *testing.T) {
	dir, _ := buildLayoutDir(t, 8, 17, 2)
	s, ts := newTestServer(t, Config{Graphs: []GraphConfig{{
		Name: "m", Dir: dir, Profile: storage.SSD, Mutable: true,
	}}})
	s.Store("m").SetWALFaultInjector(func(op, _ string) error {
		if op == "append" {
			return storage.ErrTornWrite
		}
		return nil
	})
	code, out := postMutations(t, ts, "m", []map[string]any{{"op": "insert", "src": 1, "dst": 2}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("mutate with dead WAL: HTTP %d %v, want 503", code, out)
	}
	// Reads are unaffected: the snapshot path never touches the WAL.
	code, st := postJob(t, ts, jobs.Request{Graph: "m", Algorithm: "cc"})
	if code != http.StatusAccepted {
		t.Fatalf("submit with dead WAL: HTTP %d", code)
	}
	waitDone(t, ts, st.ID)
}
