// Multi-tenant HTTP surface: bearer-token authentication, per-tenant
// mutation rate limiting, and cross-tenant visibility rules.
//
// The scheduler owns fairness and job quotas (internal/jobs); this file
// owns everything that needs the HTTP request: mapping Authorization
// headers to tenant names, hiding one tenant's jobs from another, and
// metering POST /v1/graphs/{g}/edges bytes through a token bucket.
//
// Auth is on iff Config.Tenants is non-empty. With it off the server
// behaves exactly as before this layer existed: no Authorization header
// required, every job visible to every caller, no mutation metering.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/jobs"
)

// LoadTenantsFile reads a tenants file for `graphsd serve -tenants`:
//
//	{"tenants": [
//	  {"name": "acme", "token": "s3cret", "weight": 2,
//	   "max_queued": 8, "max_running": 2, "mutation_bytes_per_sec": 1048576}
//	]}
//
// Every tenant needs a distinct non-empty name and token; the quota fields
// are optional (zero = unbounded, weight defaults to 1).
func LoadTenantsFile(path string) ([]jobs.Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var file struct {
		Tenants []jobs.Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	if err := ValidateTenants(file.Tenants); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	return file.Tenants, nil
}

// ValidateTenants checks a tenant set for the invariants auth depends on:
// non-empty unique names, non-empty unique tokens, non-negative quotas.
func ValidateTenants(ts []jobs.Tenant) error {
	if len(ts) == 0 {
		return fmt.Errorf("no tenants defined")
	}
	names := make(map[string]bool, len(ts))
	tokens := make(map[string]bool, len(ts))
	for i, t := range ts {
		if t.Name == "" {
			return fmt.Errorf("tenant %d: empty name", i)
		}
		if t.Token == "" {
			return fmt.Errorf("tenant %q: empty token", t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		if tokens[t.Token] {
			return fmt.Errorf("tenant %q: token reused by an earlier tenant", t.Name)
		}
		names[t.Name], tokens[t.Token] = true, true
		if t.Weight < 0 || t.MaxQueued < 0 || t.MaxRunning < 0 || t.MutationBytesPerSec < 0 {
			return fmt.Errorf("tenant %q: negative quota", t.Name)
		}
	}
	return nil
}

type tenantCtxKey struct{}

// tenantFrom returns the authenticated tenant name, "" when auth is off.
func tenantFrom(r *http.Request) string {
	name, _ := r.Context().Value(tenantCtxKey{}).(string)
	return name
}

// withAuth wraps the mux: /healthz and /metrics stay open (probes and
// scrapers don't carry tenant credentials), everything else requires
// `Authorization: Bearer <token>` matching a configured tenant. The
// resolved tenant name rides the request context into the handlers.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || tok == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="graphsd"`)
			writeError(w, http.StatusUnauthorized, "missing bearer token")
			return
		}
		name, ok := s.tokens[tok]
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="graphsd", error="invalid_token"`)
			writeError(w, http.StatusUnauthorized, "unknown bearer token")
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, name)))
	})
}

// visible reports whether the request's tenant may see job j. With auth
// off everything is visible; with it on, jobs belong to the tenant that
// submitted them and other tenants get the same 404 as a bogus ID — the
// job namespace itself leaks nothing across tenants.
func (s *Server) visible(r *http.Request, st jobs.Status) bool {
	if !s.authOn {
		return true
	}
	return st.Tenant == tenantFrom(r)
}

// rateBucket is a token bucket metering one tenant's mutation bytes.
// Capacity (burst) is one second of rate, so an idle tenant can always
// land one rate-sized batch immediately; a batch larger than the burst is
// admitted whenever the bucket is full and drives the balance negative,
// which delays the tenant's next batch proportionally instead of making
// oversized batches unsendable.
type rateBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newRateBucket(bytesPerSec int64) *rateBucket {
	b := &rateBucket{rate: float64(bytesPerSec), burst: float64(bytesPerSec)}
	b.tokens = b.burst
	return b
}

// admit charges n bytes. When the bucket cannot cover them it charges
// nothing and returns the wait until it could.
func (b *rateBucket) admit(n int64, now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += b.rate * now.Sub(b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	need := float64(n)
	if need > b.burst {
		need = b.burst // oversized batch: admit at full bucket, go negative
	}
	if b.tokens >= need {
		b.tokens -= float64(n)
		return true, 0
	}
	wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After is whole seconds; never advertise 0
	}
	return false, wait
}

// admitMutation applies the request tenant's mutation-bytes budget to a
// batch of n bytes. True when auth is off or the tenant is unmetered.
func (s *Server) admitMutation(r *http.Request, n int64) (ok bool, retryAfter time.Duration) {
	if !s.authOn {
		return true, 0
	}
	return s.buckets[tenantFrom(r)].admit(n, time.Now())
}
