package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Edge record encoding. All binary formats are little-endian.
//
// Unweighted edge record (EdgeBytes = 8):
//
//	[0:4] src uint32
//	[4:8] dst uint32
//
// Weighted edge record (EdgeBytes + WeightBytes = 12):
//
//	[0:4]  src uint32
//	[4:8]  dst uint32
//	[8:12] weight float32

// streamBlockBytes is the block size used by the bulk binary readers
// (ReadBinary, BinaryStream): records are read and decoded a block at a
// time instead of one ReadFull call per 8/12-byte record.
const streamBlockBytes = 1 << 20

// EncodeEdge appends the binary encoding of e to buf and returns the
// extended slice. If weighted is false the weight column is omitted.
func EncodeEdge(buf []byte, e Edge, weighted bool) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Src))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Dst))
	if weighted {
		buf = binary.LittleEndian.AppendUint32(buf, floatBits(e.Weight))
	}
	return buf
}

// DecodeEdge decodes one edge record from buf. buf must hold at least
// EdgeBytes (+WeightBytes if weighted) bytes.
func DecodeEdge(buf []byte, weighted bool) Edge {
	e := Edge{
		Src: VertexID(binary.LittleEndian.Uint32(buf[0:4])),
		Dst: VertexID(binary.LittleEndian.Uint32(buf[4:8])),
	}
	if weighted {
		e.Weight = bitsToFloat(binary.LittleEndian.Uint32(buf[8:12]))
	}
	return e
}

// DecodeEdges decodes all edge records in buf into a slice. It returns an
// error if buf is not a whole number of records.
func DecodeEdges(buf []byte, weighted bool) ([]Edge, error) {
	rec := EdgeBytes
	if weighted {
		rec += WeightBytes
	}
	if len(buf)%rec != 0 {
		return nil, fmt.Errorf("graph: %d bytes is not a multiple of record size %d", len(buf), rec)
	}
	return AppendEdges(make([]Edge, 0, len(buf)/rec), buf, weighted)
}

// AppendEdges decodes all edge records in buf, appending them to dst and
// returning the extended slice. Callers that hold a sized dst (block
// readers, the I/O pipeline's fetch workers) decode without allocating.
func AppendEdges(dst []Edge, buf []byte, weighted bool) ([]Edge, error) {
	rec := EdgeBytes
	if weighted {
		rec += WeightBytes
	}
	if len(buf)%rec != 0 {
		return dst, fmt.Errorf("graph: %d bytes is not a multiple of record size %d", len(buf), rec)
	}
	for off := 0; off < len(buf); off += rec {
		dst = append(dst, DecodeEdge(buf[off:], weighted))
	}
	return dst, nil
}

// WriteBinary writes the graph in the binary interchange format:
//
//	magic  "GSDG" (4 bytes)
//	flags  uint32 (bit 0: weighted, bit 1: delta-encoded edges)
//	numVertices uint64
//	numEdges    uint64
//	edge records
//
// Raw records are the fixed-width encoding above. With the delta flag set,
// each edge is instead zigzag-varint src and dst gaps from the previous edge
// (starting from vertex 0), followed inline by the float32 weight when
// weighted — a streaming-friendly variant of the sub-block delta codec for
// graphs that leave graphgen already sorted.
func WriteBinary(w io.Writer, g *Graph) error {
	return WriteBinaryCodec(w, g, CodecRaw)
}

// WriteBinaryCodec writes the interchange format with the given edge codec.
func WriteBinaryCodec(w io.Writer, g *Graph, codec Codec) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint32
	if g.Weighted {
		flags |= 1
	}
	if codec == CodecDelta {
		flags |= 2
	}
	hdr := make([]byte, 0, 24)
	hdr = append(hdr, 'G', 'S', 'D', 'G')
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(g.NumVertices))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(g.Edges)))
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	buf := make([]byte, 0, 24)
	var prevSrc, prevDst int64
	for _, e := range g.Edges {
		if codec == CodecDelta {
			s, d := int64(e.Src), int64(e.Dst)
			buf = binary.AppendVarint(buf[:0], s-prevSrc)
			buf = binary.AppendVarint(buf, d-prevDst)
			if g.Weighted {
				buf = binary.LittleEndian.AppendUint32(buf, floatBits(e.Weight))
			}
			prevSrc, prevDst = s, d
		} else {
			buf = EncodeEdge(buf[:0], e, g.Weighted)
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("graph: writing edges: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the binary interchange format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if string(hdr[0:4]) != "GSDG" {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[0:4])
	}
	flags := binary.LittleEndian.Uint32(hdr[4:8])
	weighted := flags&1 != 0
	delta := flags&2 != 0
	numV := binary.LittleEndian.Uint64(hdr[8:16])
	numE := binary.LittleEndian.Uint64(hdr[16:24])
	const maxReasonable = 1 << 40
	if numV > maxReasonable || numE > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header counts v=%d e=%d", numV, numE)
	}
	g := &Graph{NumVertices: int(numV), Weighted: weighted, Edges: make([]Edge, 0, numE)}
	if delta {
		if err := readBinaryDelta(br, g, numE); err != nil {
			return nil, err
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return g, nil
	}
	rec := EdgeBytes
	if weighted {
		rec += WeightBytes
	}
	// Read and decode in large blocks rather than one ReadFull per record;
	// the per-call overhead dominates on multi-million-edge graphs.
	perBlock := streamBlockBytes / rec
	buf := make([]byte, perBlock*rec)
	for remaining := int64(numE); remaining > 0; {
		n := int64(perBlock)
		if n > remaining {
			n = remaining
		}
		chunk := buf[:n*int64(rec)]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("graph: reading edges at %d: %w", int64(numE)-remaining, err)
		}
		var err error
		if g.Edges, err = AppendEdges(g.Edges, chunk, weighted); err != nil {
			return nil, err
		}
		remaining -= n
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readBinaryDelta decodes the delta-flagged interchange edge stream.
func readBinaryDelta(br *bufio.Reader, g *Graph, numE uint64) error {
	var prevSrc, prevDst int64
	wbuf := make([]byte, WeightBytes)
	for i := uint64(0); i < numE; i++ {
		sGap, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("graph: reading delta edge %d src: %w", i, err)
		}
		dGap, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("graph: reading delta edge %d dst: %w", i, err)
		}
		prevSrc += sGap
		prevDst += dGap
		if prevSrc < 0 || prevSrc > math.MaxUint32 || prevDst < 0 || prevDst > math.MaxUint32 {
			return fmt.Errorf("graph: delta edge %d out of uint32 range (%d, %d)", i, prevSrc, prevDst)
		}
		e := Edge{Src: VertexID(prevSrc), Dst: VertexID(prevDst)}
		if g.Weighted {
			if _, err := io.ReadFull(br, wbuf); err != nil {
				return fmt.Errorf("graph: reading delta edge %d weight: %w", i, err)
			}
			e.Weight = bitsToFloat(binary.LittleEndian.Uint32(wbuf))
		}
		g.Edges = append(g.Edges, e)
	}
	return nil
}

// ReadEdgeList parses a whitespace-separated text edge list, the common
// interchange format of SNAP and LAW datasets: one "src dst [weight]" pair
// per line, '#' or '%' comment lines ignored. Vertex IDs may be sparse; the
// vertex count is 1 + the maximum ID seen (or numVertices if larger).
func ReadEdgeList(r io.Reader, weighted bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &Graph{Weighted: weighted}
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q: %w", lineNo, fields[1], err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if weighted {
			if len(fields) >= 3 {
				w, err := strconv.ParseFloat(fields[2], 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
				}
				e.Weight = float32(w)
			} else {
				e.Weight = 1
			}
		}
		if int(src) > maxID {
			maxID = int(src)
		}
		if int(dst) > maxID {
			maxID = int(dst)
		}
		g.Edges = append(g.Edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	g.NumVertices = maxID + 1
	return g, nil
}

// WriteEdgeList writes the graph as a text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# vertices=%d edges=%d weighted=%t\n", g.NumVertices, len(g.Edges), g.Weighted)
	for _, e := range g.Edges {
		var err error
		if g.Weighted {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
		if err != nil {
			return fmt.Errorf("graph: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}

func floatBits(f float32) uint32   { return math.Float32bits(f) }
func bitsToFloat(b uint32) float32 { return math.Float32frombits(b) }
