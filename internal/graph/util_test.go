package graph

import "testing"

func TestRemoveSelfLoops(t *testing.T) {
	g := &Graph{
		NumVertices: 3,
		Edges: []Edge{
			{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 1, Dst: 1}, {Src: 2, Dst: 0},
		},
	}
	out := RemoveSelfLoops(g)
	if out.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", out.NumEdges())
	}
	for _, e := range out.Edges {
		if e.Src == e.Dst {
			t.Fatalf("loop %v survived", e)
		}
	}
	if g.NumEdges() != 4 {
		t.Fatal("input mutated")
	}
}

func TestDedupe(t *testing.T) {
	g := &Graph{
		NumVertices: 3,
		Weighted:    true,
		Edges: []Edge{
			{Src: 0, Dst: 1, Weight: 2},
			{Src: 0, Dst: 1, Weight: 2}, // exact duplicate
			{Src: 0, Dst: 1, Weight: 3}, // same endpoints, different weight: kept
			{Src: 1, Dst: 2, Weight: 1},
			{Src: 0, Dst: 1, Weight: 2}, // duplicate again
		},
	}
	out := Dedupe(g)
	if out.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", out.NumEdges())
	}
	if out.Edges[0] != (Edge{Src: 0, Dst: 1, Weight: 2}) {
		t.Fatalf("first-occurrence order broken: %v", out.Edges[0])
	}
	if out.Edges[1] != (Edge{Src: 0, Dst: 1, Weight: 3}) {
		t.Fatalf("distinct-weight edge dropped: %v", out.Edges[1])
	}
}

func TestDedupeEmpty(t *testing.T) {
	out := Dedupe(&Graph{NumVertices: 5})
	if out.NumEdges() != 0 || out.NumVertices != 5 {
		t.Fatalf("empty dedupe: %+v", out)
	}
}
