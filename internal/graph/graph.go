// Package graph defines the core graph data types shared by every GraphSD
// component: vertex identifiers, edges, the on-disk edge record layout, and
// an in-memory CSR representation used as the correctness oracle for the
// out-of-core engines.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. GraphSD uses dense 32-bit IDs in
// [0, NumVertices); real-world graphs at the paper's scale (up to 1 B
// vertices for Kron30) fit in uint32.
type VertexID uint32

// Edge is a directed, weighted edge. Weight is meaningful only for weighted
// algorithms (SSSP); unweighted algorithms ignore it. The on-disk encoded
// size of an edge is EdgeBytes.
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight float32
}

// Sizes of the on-disk records, in bytes. These are the M, N and W constants
// of the paper's cost model (Table 2): an edge structure is two 4-byte vertex
// IDs, a vertex value record is 8 bytes (float64 or packed state), and an
// edge weight is 4 bytes.
const (
	EdgeBytes        = 8 // src + dst, uint32 each
	WeightBytes      = 4 // float32
	VertexValueBytes = 8
	IndexEntryBytes  = 8 // per-vertex offset entry in a sub-block index
)

// Graph is an immutable in-memory edge list with metadata. It is the
// interchange format between generators, preprocessors and the reference
// engines. Out-of-core engines never hold a whole Graph for large inputs;
// they read the partitioned on-disk layout instead.
type Graph struct {
	NumVertices int
	Edges       []Edge
	Weighted    bool
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Validate checks structural invariants: every endpoint is within range.
func (g *Graph) Validate() error {
	if g.NumVertices < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.NumVertices)
	}
	n := VertexID(g.NumVertices)
	for i, e := range g.Edges {
		if e.Src >= n || e.Dst >= n {
			return fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
	}
	return nil
}

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Dst]++
	}
	return deg
}

// SortBySrc sorts edges by (src, dst) in place. GraphSD's representation
// requires source-major order within each sub-block so that a per-vertex
// index can locate the contiguous edge list of any active vertex.
func (g *Graph) SortBySrc() {
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return &Graph{NumVertices: g.NumVertices, Edges: edges, Weighted: g.Weighted}
}

// Bytes returns the total on-disk size of the edge data in bytes, the |E|×(M+W)
// term of the paper's cost model. Unweighted graphs omit the weight column.
func (g *Graph) Bytes() int64 {
	per := int64(EdgeBytes)
	if g.Weighted {
		per += WeightBytes
	}
	return per * int64(len(g.Edges))
}

// EdgeRecordBytes returns the per-edge record size for this graph:
// M (+W if weighted) in the paper's notation.
func (g *Graph) EdgeRecordBytes() int {
	if g.Weighted {
		return EdgeBytes + WeightBytes
	}
	return EdgeBytes
}

// RemoveSelfLoops returns a copy of g without self-loop edges. Generators
// sampling endpoints independently produce loops; some algorithms (e.g.
// PageRank mass conservation arguments) prefer them gone.
func RemoveSelfLoops(g *Graph) *Graph {
	out := &Graph{NumVertices: g.NumVertices, Weighted: g.Weighted}
	for _, e := range g.Edges {
		if e.Src != e.Dst {
			out.Edges = append(out.Edges, e)
		}
	}
	return out
}

// Dedupe returns a copy of g with exact duplicate edges removed (same
// source, destination and weight), preserving first-occurrence order.
func Dedupe(g *Graph) *Graph {
	out := &Graph{NumVertices: g.NumVertices, Weighted: g.Weighted}
	seen := make(map[Edge]bool, len(g.Edges))
	for _, e := range g.Edges {
		if !seen[e] {
			seen[e] = true
			out.Edges = append(out.Edges, e)
		}
	}
	return out
}

// Symmetrize returns a new graph with every edge mirrored (u→v adds v→u,
// preserving the weight), turning directed inputs into undirected ones for
// algorithms with undirected semantics (connected components in the
// undirected sense). Existing reverse edges are not deduplicated — grid
// layouts and label propagation are insensitive to parallel edges.
func Symmetrize(g *Graph) *Graph {
	out := &Graph{
		NumVertices: g.NumVertices,
		Weighted:    g.Weighted,
		Edges:       make([]Edge, 0, 2*len(g.Edges)),
	}
	out.Edges = append(out.Edges, g.Edges...)
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return out
}

// CSR is a compressed sparse row view of a graph: for each source vertex,
// the contiguous slice of its outgoing edges. It is the in-memory oracle
// representation used by reference implementations and tests.
type CSR struct {
	NumVertices int
	Offsets     []int64 // len NumVertices+1
	Dst         []VertexID
	Weight      []float32 // nil for unweighted graphs
}

// BuildCSR constructs a CSR from a graph. The input edge order is not
// disturbed; edges within a row appear in input order.
func BuildCSR(g *Graph) *CSR {
	n := g.NumVertices
	offsets := make([]int64, n+1)
	for _, e := range g.Edges {
		offsets[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	dst := make([]VertexID, len(g.Edges))
	var weight []float32
	if g.Weighted {
		weight = make([]float32, len(g.Edges))
	}
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range g.Edges {
		p := cursor[e.Src]
		dst[p] = e.Dst
		if weight != nil {
			weight[p] = e.Weight
		}
		cursor[e.Src]++
	}
	return &CSR{NumVertices: n, Offsets: offsets, Dst: dst, Weight: weight}
}

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v VertexID) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// Neighbors returns the destination slice for v's outgoing edges.
// The returned slice aliases internal storage and must not be modified.
func (c *CSR) Neighbors(v VertexID) []VertexID {
	return c.Dst[c.Offsets[v]:c.Offsets[v+1]]
}

// Weights returns v's outgoing edge weights, aligned with Neighbors(v).
// It returns nil for unweighted graphs.
func (c *CSR) Weights(v VertexID) []float32 {
	if c.Weight == nil {
		return nil
	}
	return c.Weight[c.Offsets[v]:c.Offsets[v+1]]
}

// NumEdges returns the number of edges in the CSR.
func (c *CSR) NumEdges() int { return len(c.Dst) }
