package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeEdgeRoundTrip(t *testing.T) {
	cases := []struct {
		e        Edge
		weighted bool
	}{
		{Edge{Src: 0, Dst: 0}, false},
		{Edge{Src: 1, Dst: 2}, false},
		{Edge{Src: 4294967295, Dst: 7}, false},
		{Edge{Src: 3, Dst: 9, Weight: 1.25}, true},
		{Edge{Src: 3, Dst: 9, Weight: -0.5}, true},
	}
	for _, c := range cases {
		buf := EncodeEdge(nil, c.e, c.weighted)
		wantLen := EdgeBytes
		if c.weighted {
			wantLen += WeightBytes
		}
		if len(buf) != wantLen {
			t.Fatalf("encoded length %d, want %d", len(buf), wantLen)
		}
		got := DecodeEdge(buf, c.weighted)
		if got != c.e {
			t.Fatalf("round trip %v -> %v", c.e, got)
		}
	}
}

func TestDecodeEdgesRejectsPartialRecords(t *testing.T) {
	if _, err := DecodeEdges(make([]byte, 7), false); err == nil {
		t.Fatal("7 bytes accepted as unweighted records")
	}
	if _, err := DecodeEdges(make([]byte, 8), true); err == nil {
		t.Fatal("8 bytes accepted as weighted records")
	}
	edges, err := DecodeEdges(make([]byte, 16), false)
	if err != nil || len(edges) != 2 {
		t.Fatalf("DecodeEdges(16 bytes) = %v, %v", edges, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := tinyGraph()
		g.Weighted = weighted
		if weighted {
			for i := range g.Edges {
				g.Edges[i].Weight = float32(i) + 0.5
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if got.NumVertices != g.NumVertices || got.Weighted != g.Weighted {
			t.Fatalf("metadata mismatch: %+v vs %+v", got, g)
		}
		if len(got.Edges) != len(g.Edges) {
			t.Fatalf("edge count %d, want %d", len(got.Edges), len(g.Edges))
		}
		for i := range g.Edges {
			if got.Edges[i] != g.Edges[i] {
				t.Fatalf("edge %d: %v, want %v", i, got.Edges[i], g.Edges[i])
			}
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXXGARBAGEGARBAGEGARBAGE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := tinyGraph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% other comment
0 1
1 2

2 0
5 1
`
	g, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices)
	}
	if len(g.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(g.Edges))
	}
	if g.Edges[3] != (Edge{Src: 5, Dst: 1}) {
		t.Fatalf("edge 3 = %v", g.Edges[3])
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 2.5\n1 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].Weight != 2.5 {
		t.Fatalf("weight = %v, want 2.5", g.Edges[0].Weight)
	}
	// Missing weight defaults to 1.
	if g.Edges[1].Weight != 1 {
		t.Fatalf("default weight = %v, want 1", g.Edges[1].Weight)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n", "0 1 x\n"} {
		weighted := strings.Count(in, " ") >= 2
		if _, err := ReadEdgeList(strings.NewReader(in), weighted); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteEdgeListRoundTrip(t *testing.T) {
	g := tinyGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(g.Edges) {
		t.Fatalf("edges = %d, want %d", len(got.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		if got.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got.Edges[i], g.Edges[i])
		}
	}
}

// Property: binary round trip is the identity for arbitrary graphs.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(raw []uint32, weighted bool) bool {
		const n = 1000
		g := &Graph{NumVertices: n, Weighted: weighted}
		for i := 0; i+1 < len(raw); i += 2 {
			e := Edge{Src: VertexID(raw[i] % n), Dst: VertexID(raw[i+1] % n)}
			if weighted {
				e.Weight = float32(raw[i]%97) / 7
			}
			g.Edges = append(g.Edges, e)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got.Edges) != len(g.Edges) {
			return false
		}
		for i := range g.Edges {
			if got.Edges[i] != g.Edges[i] {
				return false
			}
		}
		return got.NumVertices == n && got.Weighted == weighted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
