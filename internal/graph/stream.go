package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// EdgeStream yields edges one at a time, allowing preprocessors to consume
// graphs far larger than memory. Implementations are not safe for
// concurrent use.
type EdgeStream interface {
	// Next returns the next edge. ok is false at end of stream.
	Next() (e Edge, ok bool, err error)
}

// SliceStream adapts an in-memory edge slice to EdgeStream.
type SliceStream struct {
	edges []Edge
	pos   int
}

// NewSliceStream returns a stream over edges.
func NewSliceStream(edges []Edge) *SliceStream { return &SliceStream{edges: edges} }

// Next implements EdgeStream.
func (s *SliceStream) Next() (Edge, bool, error) {
	if s.pos >= len(s.edges) {
		return Edge{}, false, nil
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true, nil
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// BinaryStream reads the GSDG binary interchange format incrementally,
// never holding more than one buffered block in memory. Records are pulled
// from the reader a block at a time and decoded from the block buffer, so
// the per-record cost is a slice index, not an io.ReadFull call.
type BinaryStream struct {
	br        *bufio.Reader
	remaining uint64
	rec       int
	buf       []byte // current block, whole records
	pos       int    // next undecoded record offset in buf

	// delta-flagged streams decode varint gaps straight off the reader.
	delta            bool
	prevSrc, prevDst int64
	wbuf             []byte

	// NumVertices and Weighted are read from the header.
	NumVertices int
	Weighted    bool
	NumEdges    uint64
}

// NewBinaryStream validates the header of a GSDG binary graph and returns
// a stream over its edge records.
func NewBinaryStream(r io.Reader) (*BinaryStream, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading stream header: %w", err)
	}
	if string(hdr[0:4]) != "GSDG" {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[0:4])
	}
	flags := binary.LittleEndian.Uint32(hdr[4:8])
	weighted := flags&1 != 0
	rec := EdgeBytes
	if weighted {
		rec += WeightBytes
	}
	return &BinaryStream{
		br:          br,
		remaining:   binary.LittleEndian.Uint64(hdr[16:24]),
		rec:         rec,
		delta:       flags&2 != 0,
		wbuf:        make([]byte, WeightBytes),
		NumVertices: int(binary.LittleEndian.Uint64(hdr[8:16])),
		Weighted:    weighted,
		NumEdges:    binary.LittleEndian.Uint64(hdr[16:24]),
	}, nil
}

// Next implements EdgeStream.
func (s *BinaryStream) Next() (Edge, bool, error) {
	if s.delta {
		return s.nextDelta()
	}
	if s.pos >= len(s.buf) {
		if s.remaining == 0 {
			return Edge{}, false, nil
		}
		if err := s.fill(); err != nil {
			return Edge{}, false, err
		}
	}
	e := DecodeEdge(s.buf[s.pos:], s.Weighted)
	s.pos += s.rec
	return e, true, nil
}

// nextDelta decodes the next edge of a delta-flagged stream (WriteBinaryCodec
// with CodecDelta): zigzag-varint src and dst gaps, inline float32 weight.
func (s *BinaryStream) nextDelta() (Edge, bool, error) {
	if s.remaining == 0 {
		return Edge{}, false, nil
	}
	sGap, err := binary.ReadVarint(s.br)
	if err != nil {
		return Edge{}, false, fmt.Errorf("graph: reading delta edge src: %w", err)
	}
	dGap, err := binary.ReadVarint(s.br)
	if err != nil {
		return Edge{}, false, fmt.Errorf("graph: reading delta edge dst: %w", err)
	}
	s.prevSrc += sGap
	s.prevDst += dGap
	if s.prevSrc < 0 || s.prevSrc > maxVertex || s.prevDst < 0 || s.prevDst > maxVertex {
		return Edge{}, false, fmt.Errorf("graph: delta edge out of uint32 range (%d, %d)", s.prevSrc, s.prevDst)
	}
	e := Edge{Src: VertexID(s.prevSrc), Dst: VertexID(s.prevDst)}
	if s.Weighted {
		if _, err := io.ReadFull(s.br, s.wbuf); err != nil {
			return Edge{}, false, fmt.Errorf("graph: reading delta edge weight: %w", err)
		}
		e.Weight = bitsToFloat(binary.LittleEndian.Uint32(s.wbuf))
	}
	s.remaining--
	return e, true, nil
}

// maxVertex is the largest representable VertexID.
const maxVertex = int64(^uint32(0))

// fill reads the next block of whole records into the internal buffer.
func (s *BinaryStream) fill() error {
	n := uint64(streamBlockBytes / s.rec)
	if n > s.remaining {
		n = s.remaining
	}
	want := int(n) * s.rec
	if cap(s.buf) < want {
		s.buf = make([]byte, want)
	}
	s.buf = s.buf[:want]
	if _, err := io.ReadFull(s.br, s.buf); err != nil {
		return fmt.Errorf("graph: reading edge block: %w", err)
	}
	s.remaining -= n
	s.pos = 0
	return nil
}
