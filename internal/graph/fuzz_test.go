package graph

import (
	"bytes"
	"testing"
)

// FuzzEdgeRecordRoundTrip checks that the fixed-width edge record codec is
// an exact inverse pair for any (src, dst, weight, weighted) input.
func FuzzEdgeRecordRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), float32(0), false)
	f.Add(uint32(1), uint32(2), float32(1.5), true)
	f.Add(^uint32(0), ^uint32(0), float32(-1), true)
	f.Add(uint32(1<<31), uint32(7), float32(3.25e-9), false)
	f.Fuzz(func(t *testing.T, src, dst uint32, w float32, weighted bool) {
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if weighted {
			e.Weight = w
		}
		buf := EncodeEdge(nil, e, weighted)
		rec := EdgeBytes
		if weighted {
			rec += WeightBytes
		}
		if len(buf) != rec {
			t.Fatalf("encoded %d bytes, want %d", len(buf), rec)
		}
		got := DecodeEdge(buf, weighted)
		// NaN weights don't compare equal; compare the bit patterns instead.
		if got.Src != e.Src || got.Dst != e.Dst || floatBits(got.Weight) != floatBits(e.Weight) {
			t.Fatalf("round trip %+v -> %+v", e, got)
		}
	})
}

// FuzzDeltaBlockRoundTrip builds an edge slice from fuzzed bytes, encodes it
// with the delta block codec, and checks the decode reproduces it exactly —
// including unsorted and duplicate edges, which the codec must tolerate.
func FuzzDeltaBlockRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint32(0), uint32(0), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint32(100), uint32(300), true)
	f.Add(bytes.Repeat([]byte{0xff}, 40), uint32(1<<20), uint32(0), false)
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, 9, 9, 9, 9}, uint32(0), uint32(7), true)
	f.Fuzz(func(t *testing.T, raw []byte, srcBase, dstBase uint32, weighted bool) {
		// Interpret the fuzz bytes as edge records relative to the bases so
		// most inputs land near the bases (realistic cells) while high bytes
		// still exercise far-out vertices.
		var edges []Edge
		for off := 0; off+8 <= len(raw) && len(edges) < 1<<12; off += 8 {
			s := uint64(srcBase) + uint64(raw[off]) | uint64(raw[off+1])<<8
			d := uint64(dstBase) + uint64(raw[off+2]) | uint64(raw[off+3])<<16
			if s > uint64(^uint32(0)) || d > uint64(^uint32(0)) {
				continue
			}
			e := Edge{Src: VertexID(s), Dst: VertexID(d)}
			if weighted {
				e.Weight = bitsToFloat(uint32(raw[off+4]) | uint32(raw[off+5])<<8 | uint32(raw[off+6])<<16 | uint32(raw[off+7])<<24)
			}
			edges = append(edges, e)
		}
		// Encoding requires every src >= srcBase; clamp the base down.
		base := VertexID(srcBase)
		for _, e := range edges {
			if e.Src < base {
				base = e.Src
			}
		}
		data := EncodeDeltaBlock(nil, edges, base, VertexID(dstBase), weighted)
		got, err := AppendDeltaBlock(nil, data, base, VertexID(dstBase), weighted)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(got) != len(edges) {
			t.Fatalf("decoded %d edges, want %d", len(got), len(edges))
		}
		for i := range edges {
			if got[i].Src != edges[i].Src || got[i].Dst != edges[i].Dst ||
				floatBits(got[i].Weight) != floatBits(edges[i].Weight) {
				t.Fatalf("edge %d: %+v != %+v", i, got[i], edges[i])
			}
		}
	})
}

// FuzzDeltaBlockDecode feeds arbitrary bytes to the delta block decoder: it
// may reject them, but must never panic, hang, or allocate unboundedly.
func FuzzDeltaBlockDecode(f *testing.F) {
	f.Add([]byte{}, uint32(0), uint32(0), false)
	f.Add(EncodeDeltaBlock(nil, []Edge{{Src: 5, Dst: 9}, {Src: 5, Dst: 11}}, 0, 0, false), uint32(0), uint32(0), false)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, uint32(0), uint32(0), true)
	f.Fuzz(func(t *testing.T, data []byte, srcBase, dstBase uint32, weighted bool) {
		edges, err := AppendDeltaBlock(nil, data, VertexID(srcBase), VertexID(dstBase), weighted)
		if err != nil {
			return
		}
		// Accepted input must re-encode to a decodable block of equal length.
		again := EncodeDeltaBlock(nil, edges, minSrc(edges, VertexID(srcBase)), VertexID(dstBase), weighted)
		got, err := AppendDeltaBlock(nil, again, minSrc(edges, VertexID(srcBase)), VertexID(dstBase), weighted)
		if err != nil {
			t.Fatalf("re-encode not decodable: %v", err)
		}
		if len(got) != len(edges) {
			t.Fatalf("re-encode edge count %d, want %d", len(got), len(edges))
		}
	})
}

func minSrc(edges []Edge, base VertexID) VertexID {
	for _, e := range edges {
		if e.Src < base {
			base = e.Src
		}
	}
	return base
}
