package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Delta codec for edge payloads ("delta" in partition manifests). Sub-blocks
// hold edges from one narrow (source, destination) interval pair, sorted by
// (src, dst) — exactly the layout where storing destination gaps as zigzag
// varints beats the fixed 8/12-byte record.
//
// Block payload layout:
//
//	uvarint  n        edge count
//	runs              per-source runs (see below)
//	weights           n × float32 LE, present only in weighted blocks
//
// Each run encodes the consecutive edges of one source vertex:
//
//	uvarint  srcRel   src − srcBase
//	uvarint  runLen   number of edges in the run (≥ 1)
//	runLen × varint   zigzag dst gaps; the first gap is taken from dstBase,
//	                  each following gap from the previous dst
//
// Runs are self-contained given (srcBase, dstBase) — no decoder state
// crosses a run boundary — so a per-vertex byte index over run starts gives
// the same selective-load capability as fixed-width records. Weights live in
// a trailing column so the varint section stays densely packed and a
// vertex's weights can be fetched by record offset.

// Codec identifies an edge payload encoding.
type Codec int

const (
	// CodecRaw is the fixed-width record encoding (EncodeEdge/DecodeEdges).
	CodecRaw Codec = iota
	// CodecDelta is the per-source-run zigzag-delta varint encoding above.
	CodecDelta
)

// String returns the manifest/flag spelling of the codec.
func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecDelta:
		return "delta"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// ParseCodec parses a codec name as spelled in manifests and CLI flags.
// The empty string means raw, so pre-codec manifests load unchanged.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "raw":
		return CodecRaw, nil
	case "delta":
		return CodecDelta, nil
	}
	return CodecRaw, fmt.Errorf("graph: unknown codec %q (want raw or delta)", s)
}

// EncodeDeltaRun appends one run to buf: the given edges must share a single
// source vertex (>= srcBase). Destinations may be in any order — unsorted
// input still round-trips, it just compresses worse.
func EncodeDeltaRun(buf []byte, edges []Edge, srcBase, dstBase VertexID) []byte {
	if len(edges) == 0 {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(edges[0].Src-srcBase))
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	prev := int64(dstBase)
	for _, e := range edges {
		d := int64(e.Dst)
		buf = binary.AppendVarint(buf, d-prev)
		prev = d
	}
	return buf
}

// DecodeDeltaRun decodes one run from the front of data, appending its edges
// to dst. It returns the extended slice and the number of bytes consumed.
// Weights are left zero; block-level decoders fill them from the weight
// column.
func DecodeDeltaRun(dst []Edge, data []byte, srcBase, dstBase VertexID) ([]Edge, int, error) {
	srcRel, k := binary.Uvarint(data)
	if k <= 0 {
		return dst, 0, fmt.Errorf("graph: delta run: bad source varint")
	}
	off := k
	src := uint64(srcBase) + srcRel
	if src > math.MaxUint32 {
		return dst, 0, fmt.Errorf("graph: delta run: source %d overflows uint32", src)
	}
	runLen, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return dst, 0, fmt.Errorf("graph: delta run: bad length varint")
	}
	off += k
	// Each gap takes at least one byte, so a valid runLen never exceeds the
	// remaining payload — reject early instead of allocating for it.
	if runLen > uint64(len(data)-off) {
		return dst, 0, fmt.Errorf("graph: delta run: length %d exceeds %d remaining bytes", runLen, len(data)-off)
	}
	prev := int64(dstBase)
	for i := uint64(0); i < runLen; i++ {
		gap, k := binary.Varint(data[off:])
		if k <= 0 {
			return dst, 0, fmt.Errorf("graph: delta run: bad gap varint at edge %d", i)
		}
		off += k
		prev += gap
		if prev < 0 || prev > math.MaxUint32 {
			return dst, 0, fmt.Errorf("graph: delta run: destination %d out of uint32 range", prev)
		}
		dst = append(dst, Edge{Src: VertexID(src), Dst: VertexID(prev)})
	}
	return dst, off, nil
}

// AppendDeltaRuns decodes consecutive runs until data is exhausted,
// appending the edges to dst. Used for whole-block and chunked decodes where
// the byte range is known to cover whole runs.
func AppendDeltaRuns(dst []Edge, data []byte, srcBase, dstBase VertexID) ([]Edge, error) {
	for len(data) > 0 {
		var n int
		var err error
		dst, n, err = DecodeDeltaRun(dst, data, srcBase, dstBase)
		if err != nil {
			return dst, err
		}
		data = data[n:]
	}
	return dst, nil
}

// EncodeDeltaBlock appends the delta encoding of a whole block to buf:
// edge-count header, one run per maximal group of consecutive equal-source
// edges, then the weight column if weighted. Any edge order round-trips;
// src-sorted input yields one run per source and the best ratio.
func EncodeDeltaBlock(buf []byte, edges []Edge, srcBase, dstBase VertexID, weighted bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for start := 0; start < len(edges); {
		end := start + 1
		for end < len(edges) && edges[end].Src == edges[start].Src {
			end++
		}
		buf = EncodeDeltaRun(buf, edges[start:end], srcBase, dstBase)
		start = end
	}
	if weighted {
		for _, e := range edges {
			buf = binary.LittleEndian.AppendUint32(buf, floatBits(e.Weight))
		}
	}
	return buf
}

// AppendDeltaBlock decodes a delta block produced by EncodeDeltaBlock,
// appending the edges to dst and returning the extended slice.
func AppendDeltaBlock(dst []Edge, data []byte, srcBase, dstBase VertexID, weighted bool) ([]Edge, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return dst, fmt.Errorf("graph: delta block: bad count varint")
	}
	if n > uint64(len(data)) {
		return dst, fmt.Errorf("graph: delta block: count %d exceeds %d payload bytes", n, len(data))
	}
	weightBytes := 0
	if weighted {
		weightBytes = int(n) * WeightBytes
		if weightBytes > len(data)-k {
			return dst, fmt.Errorf("graph: delta block: weight column truncated")
		}
	}
	base := len(dst)
	body := data[k : len(data)-weightBytes]
	dst, err := AppendDeltaRuns(dst, body, srcBase, dstBase)
	if err != nil {
		return dst, err
	}
	if got := len(dst) - base; uint64(got) != n {
		return dst, fmt.Errorf("graph: delta block: decoded %d edges, header says %d", got, n)
	}
	if weighted {
		col := data[len(data)-weightBytes:]
		for i := range dst[base:] {
			dst[base+i].Weight = bitsToFloat(binary.LittleEndian.Uint32(col[i*WeightBytes:]))
		}
	}
	return dst, nil
}
