package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func deltaTestEdges(weighted bool) []Edge {
	// A src-sorted cell over intervals src [100,200), dst [300,400) with
	// clustered destinations — the layout the codec is built for.
	rng := rand.New(rand.NewSource(42))
	var edges []Edge
	for v := 100; v < 200; v += 3 {
		deg := rng.Intn(8)
		dst := 300 + rng.Intn(10)
		for k := 0; k < deg; k++ {
			e := Edge{Src: VertexID(v), Dst: VertexID(dst)}
			if weighted {
				e.Weight = rng.Float32()
			}
			edges = append(edges, e)
			dst += 1 + rng.Intn(12)
			if dst >= 400 {
				break
			}
		}
	}
	return edges
}

func TestDeltaBlockRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		edges := deltaTestEdges(weighted)
		data := EncodeDeltaBlock(nil, edges, 100, 300, weighted)
		got, err := AppendDeltaBlock(nil, data, 100, 300, weighted)
		if err != nil {
			t.Fatalf("weighted=%t: %v", weighted, err)
		}
		if len(got) != len(edges) {
			t.Fatalf("weighted=%t: decoded %d edges, want %d", weighted, len(got), len(edges))
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("weighted=%t: edge %d = %+v, want %+v", weighted, i, got[i], edges[i])
			}
		}
	}
}

func TestDeltaBlockEmpty(t *testing.T) {
	data := EncodeDeltaBlock(nil, nil, 0, 0, false)
	got, err := AppendDeltaBlock(nil, data, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d edges from empty block", len(got))
	}
}

func TestDeltaBlockUnsortedStillRoundTrips(t *testing.T) {
	// Correctness must not depend on sort order — only the ratio does.
	edges := []Edge{{Src: 9, Dst: 70}, {Src: 3, Dst: 5}, {Src: 3, Dst: 2}, {Src: 9, Dst: 1}, {Src: 3, Dst: 5}}
	data := EncodeDeltaBlock(nil, edges, 0, 0, false)
	got, err := AppendDeltaBlock(nil, data, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], edges[i])
		}
	}
}

func TestDeltaBlockCompresses(t *testing.T) {
	edges := deltaTestEdges(false)
	data := EncodeDeltaBlock(nil, edges, 100, 300, false)
	raw := len(edges) * EdgeBytes
	if len(data)*2 > raw {
		t.Fatalf("delta %d bytes vs raw %d: want >= 2x reduction on sorted cell", len(data), raw)
	}
}

func TestDeltaRunSelfContained(t *testing.T) {
	// Decoding runs one at a time from arbitrary offsets must agree with the
	// block decode — this property is what per-vertex byte indexes rely on.
	edges := deltaTestEdges(false)
	var buf []byte
	var offs []int
	for start := 0; start < len(edges); {
		end := start + 1
		for end < len(edges) && edges[end].Src == edges[start].Src {
			end++
		}
		offs = append(offs, len(buf))
		buf = EncodeDeltaRun(buf, edges[start:end], 100, 300)
		start = end
	}
	offs = append(offs, len(buf))
	// Decode the runs in reverse order.
	var got []Edge
	for k := len(offs) - 2; k >= 0; k-- {
		var err error
		var n int
		got, n, err = DecodeDeltaRun(got, buf[offs[k]:offs[k+1]], 100, 300)
		if err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
		if n != offs[k+1]-offs[k] {
			t.Fatalf("run %d consumed %d bytes, want %d", k, n, offs[k+1]-offs[k])
		}
	}
	if len(got) != len(edges) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(edges))
	}
}

func TestDeltaBlockTruncated(t *testing.T) {
	edges := deltaTestEdges(true)
	data := EncodeDeltaBlock(nil, edges, 100, 300, true)
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		if _, err := AppendDeltaBlock(nil, data[:cut], 100, 300, true); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(data))
		}
	}
}

func TestDeltaBlockRejectsHostileCount(t *testing.T) {
	// A tiny payload claiming billions of edges must fail fast, not allocate.
	hostile := []byte{0xff, 0xff, 0xff, 0xff, 0x0f, 0x00}
	if _, err := AppendDeltaBlock(nil, hostile, 0, 0, false); err == nil {
		t.Fatal("hostile edge count accepted")
	}
}

func TestBinaryCodecDeltaRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := &Graph{NumVertices: 500, Weighted: weighted, Edges: deltaTestEdges(weighted)}
		var raw, del bytes.Buffer
		if err := WriteBinaryCodec(&raw, g, CodecRaw); err != nil {
			t.Fatal(err)
		}
		if err := WriteBinaryCodec(&del, g, CodecDelta); err != nil {
			t.Fatal(err)
		}
		if !weighted && del.Len()*2 > raw.Len() {
			t.Fatalf("delta interchange %d bytes vs raw %d: want >= 2x on sorted graph", del.Len(), raw.Len())
		}
		got, err := ReadBinary(bytes.NewReader(del.Bytes()))
		if err != nil {
			t.Fatalf("weighted=%t: %v", weighted, err)
		}
		if got.NumVertices != g.NumVertices || got.Weighted != g.Weighted || len(got.Edges) != len(g.Edges) {
			t.Fatalf("weighted=%t: header mismatch", weighted)
		}
		for i := range g.Edges {
			if got.Edges[i] != g.Edges[i] {
				t.Fatalf("weighted=%t: edge %d = %+v, want %+v", weighted, i, got.Edges[i], g.Edges[i])
			}
		}
		// The incremental stream reader must agree with ReadBinary.
		st, err := NewBinaryStream(bytes.NewReader(del.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			e, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				if i != len(g.Edges) {
					t.Fatalf("stream ended at %d, want %d", i, len(g.Edges))
				}
				break
			}
			if e != g.Edges[i] {
				t.Fatalf("stream edge %d = %+v, want %+v", i, e, g.Edges[i])
			}
		}
	}
}

func TestParseCodec(t *testing.T) {
	cases := []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"", CodecRaw, true},
		{"raw", CodecRaw, true},
		{"delta", CodecDelta, true},
		{"gzip", CodecRaw, false},
	}
	for _, c := range cases {
		got, err := ParseCodec(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseCodec(%q) = %v, %v", c.in, got, err)
		}
	}
	if CodecDelta.String() != "delta" || CodecRaw.String() != "raw" {
		t.Fatal("codec String() mismatch")
	}
}
