package graph

import (
	"testing"
	"testing/quick"
)

func tinyGraph() *Graph {
	// The example graph from the paper's Figure 2, re-indexed to 0-based:
	// vertices 0..5, two intervals {0,1,2} and {3,4,5}.
	return &Graph{
		NumVertices: 6,
		Edges: []Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 4},
			{Src: 1, Dst: 2}, {Src: 2, Dst: 0},
			{Src: 2, Dst: 3}, {Src: 3, Dst: 5},
			{Src: 4, Dst: 2}, {Src: 5, Dst: 4},
		},
	}
}

func TestValidate(t *testing.T) {
	g := tinyGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := &Graph{NumVertices: 3, Edges: []Edge{{Src: 0, Dst: 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	neg := &Graph{NumVertices: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestDegrees(t *testing.T) {
	g := tinyGraph()
	out := g.OutDegrees()
	in := g.InDegrees()
	wantOut := []uint32{2, 1, 2, 1, 1, 1}
	wantIn := []uint32{1, 1, 2, 1, 2, 1}
	for v := range wantOut {
		if out[v] != wantOut[v] {
			t.Errorf("out-degree of %d = %d, want %d", v, out[v], wantOut[v])
		}
		if in[v] != wantIn[v] {
			t.Errorf("in-degree of %d = %d, want %d", v, in[v], wantIn[v])
		}
	}
	var sumOut, sumIn uint32
	for v := range out {
		sumOut += out[v]
		sumIn += in[v]
	}
	if int(sumOut) != g.NumEdges() || int(sumIn) != g.NumEdges() {
		t.Fatalf("degree sums %d/%d != edge count %d", sumOut, sumIn, g.NumEdges())
	}
}

func TestSortBySrc(t *testing.T) {
	g := &Graph{
		NumVertices: 4,
		Edges: []Edge{
			{Src: 3, Dst: 0}, {Src: 1, Dst: 2}, {Src: 1, Dst: 0}, {Src: 0, Dst: 3},
		},
	}
	g.SortBySrc()
	for i := 1; i < len(g.Edges); i++ {
		a, b := g.Edges[i-1], g.Edges[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst > b.Dst) {
			t.Fatalf("edges not sorted at %d: %v before %v", i, a, b)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := tinyGraph()
	c := g.Clone()
	c.Edges[0].Dst = 5
	if g.Edges[0].Dst == 5 {
		t.Fatal("clone shares edge storage")
	}
}

func TestBytes(t *testing.T) {
	g := tinyGraph()
	if got := g.Bytes(); got != int64(8*EdgeBytes) {
		t.Fatalf("unweighted Bytes = %d, want %d", got, 8*EdgeBytes)
	}
	g.Weighted = true
	if got := g.Bytes(); got != int64(8*(EdgeBytes+WeightBytes)) {
		t.Fatalf("weighted Bytes = %d, want %d", got, 8*(EdgeBytes+WeightBytes))
	}
	if g.EdgeRecordBytes() != EdgeBytes+WeightBytes {
		t.Fatal("weighted EdgeRecordBytes wrong")
	}
}

func TestBuildCSR(t *testing.T) {
	g := tinyGraph()
	csr := BuildCSR(g)
	if csr.NumEdges() != g.NumEdges() {
		t.Fatalf("CSR edges = %d, want %d", csr.NumEdges(), g.NumEdges())
	}
	wantNeighbors := map[VertexID][]VertexID{
		0: {1, 4}, 1: {2}, 2: {0, 3}, 3: {5}, 4: {2}, 5: {4},
	}
	for v, want := range wantNeighbors {
		got := csr.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("neighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("neighbors(%d) = %v, want %v", v, got, want)
			}
		}
		if csr.OutDegree(v) != len(want) {
			t.Fatalf("OutDegree(%d) = %d, want %d", v, csr.OutDegree(v), len(want))
		}
	}
	if csr.Weights(0) != nil {
		t.Fatal("unweighted CSR returned weights")
	}
}

func TestBuildCSRWeighted(t *testing.T) {
	g := &Graph{
		NumVertices: 3,
		Weighted:    true,
		Edges: []Edge{
			{Src: 0, Dst: 1, Weight: 2.5},
			{Src: 0, Dst: 2, Weight: 1.5},
			{Src: 2, Dst: 0, Weight: 7},
		},
	}
	csr := BuildCSR(g)
	w := csr.Weights(0)
	if len(w) != 2 || w[0] != 2.5 || w[1] != 1.5 {
		t.Fatalf("Weights(0) = %v", w)
	}
	if got := csr.Weights(1); len(got) != 0 {
		t.Fatalf("Weights(1) = %v, want empty", got)
	}
}

// Property: CSR preserves every edge exactly once, for arbitrary graphs.
func TestPropertyCSRPreservesEdges(t *testing.T) {
	f := func(raw []uint32) bool {
		const n = 64
		g := &Graph{NumVertices: n}
		for i := 0; i+1 < len(raw); i += 2 {
			g.Edges = append(g.Edges, Edge{
				Src: VertexID(raw[i] % n), Dst: VertexID(raw[i+1] % n),
			})
		}
		csr := BuildCSR(g)
		type pair struct{ s, d VertexID }
		counts := map[pair]int{}
		for _, e := range g.Edges {
			counts[pair{e.Src, e.Dst}]++
		}
		for v := VertexID(0); v < n; v++ {
			for _, d := range csr.Neighbors(v) {
				counts[pair{v, d}]--
			}
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
