// Package wal implements the segmented, CRC32C-framed write-ahead log that
// backs both the job scheduler's journal and the mutable-graph mutation log.
// It owns the framing and recovery discipline; callers own the payload
// encoding and the decision of which appends must be durable.
//
// The log lives in a plain host directory — operational state deliberately
// outside the simulated storage.Device whose faults it must survive. It is
// segmented: frames are appended to the newest segment and the file rotates
// once it passes the configured size, so replay cost and torn-tail blast
// radius stay bounded. Each process run opens a fresh segment; earlier
// segments are never touched again, which is what makes the "only the newest
// segment of each run can be torn" replay rule sound.
//
// Frame format (little-endian):
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// Replay walks segments in creation order and tolerates a truncated or
// corrupt tail in any segment — the signature a crash mid-append leaves —
// by stopping that segment at the first bad frame and continuing with the
// next segment. Synced appends are fsynced before returning (durability
// precedes acknowledgement); unsynced appends are buffered by the OS.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/storage"
)

// ErrUnavailable is returned by Append once the log has failed: after any
// append error the log is considered lost for the remainder of the process
// (a real WAL on a failed disk is not coming back), and the caller degrades
// to shedding writes it cannot make durable.
var ErrUnavailable = errors.New("wal: log unavailable")

// DefaultSegmentBytes is the rotation threshold when Options leaves it zero.
const DefaultSegmentBytes = 1 << 20

// DefaultMaxFrameBytes bounds a single frame; a length field beyond it is
// treated as tail corruption, not an allocation request.
const DefaultMaxFrameBytes = 1 << 22

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a log.
type Options struct {
	// Prefix names segment files: "<prefix>-%06d.wal". Required.
	Prefix string
	// Magic opens every segment so a foreign file in the directory is
	// rejected instead of replayed. Required (all-zero is rejected).
	Magic [8]byte
	// SegmentBytes is the rotation threshold (0: DefaultSegmentBytes).
	SegmentBytes int64
	// MaxFrameBytes bounds one frame (0: DefaultMaxFrameBytes).
	MaxFrameBytes int
	// Accept, when set, validates each replayed payload; a rejected frame
	// is treated like a torn tail (the segment stops there). Callers whose
	// payloads have internal structure use it so replay never hands back a
	// frame they cannot decode.
	Accept func(payload []byte) bool
}

// Stats describes a log's activity.
type Stats struct {
	// Records and Bytes count appends by this process (frames, not payloads).
	Records int64
	Bytes   int64
	// Segments is the number of segment files on disk, including the
	// active one.
	Segments int
	// ReplayRecords is the number of frames recovered at open;
	// ReplayTruncated counts segments whose tail was torn or corrupt and
	// was discarded; ReplayTime is the wall clock the replay took.
	ReplayRecords   int64
	ReplayTruncated int
	ReplayTime      time.Duration
}

// Log is the append-side handle. Safe for concurrent use; appends are
// serialised.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	segIndex int
	segSize  int64
	stats    Stats
	replayed [][]byte
	fault    func(op, name string) error
	failed   error // sticky: first append failure
	closed   bool
}

// Open opens (creating if needed) the log in dir, replays every existing
// segment, and starts a fresh active segment for this process's appends.
// The replayed payloads are available from Replayed until ConsumeReplay.
func Open(dir string, opt Options) (*Log, error) {
	if opt.Prefix == "" {
		return nil, fmt.Errorf("wal: empty segment prefix")
	}
	if opt.Magic == ([8]byte{}) {
		return nil, fmt.Errorf("wal: zero magic")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.MaxFrameBytes <= 0 {
		opt.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	l := &Log{dir: dir, opt: opt}

	start := time.Now()
	names, err := l.segmentNames()
	if err != nil {
		return nil, err
	}
	maxIdx := 0
	for _, name := range names {
		idx := l.segmentIndex(name)
		if idx > maxIdx {
			maxIdx = idx
		}
		frames, truncated, err := l.replaySegment(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if truncated {
			l.stats.ReplayTruncated++
		}
		l.replayed = append(l.replayed, frames...)
	}
	l.stats.ReplayRecords = int64(len(l.replayed))
	l.stats.ReplayTime = time.Since(start)
	l.stats.Segments = len(names)

	l.segIndex = maxIdx + 1
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// segmentNames lists the log's segment files in index order.
func (l *Log) segmentNames() ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && l.segmentIndex(e.Name()) > 0 {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(a, b int) bool { return l.segmentIndex(names[a]) < l.segmentIndex(names[b]) })
	return names, nil
}

func (l *Log) segmentName(idx int) string { return fmt.Sprintf("%s-%06d.wal", l.opt.Prefix, idx) }

// segmentIndex parses a segment file name, returning 0 for foreign files.
func (l *Log) segmentIndex(name string) int {
	var idx int
	if _, err := fmt.Sscanf(name, l.opt.Prefix+"-%06d.wal", &idx); err != nil {
		return 0
	}
	return idx
}

// openSegment creates the segment at l.segIndex, writes the magic header,
// and fsyncs file and directory so the segment survives a crash.
func (l *Log) openSegment() error {
	p := filepath.Join(l.dir, l.segmentName(l.segIndex))
	f, err := os.OpenFile(p, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: segment: %w", err)
	}
	if _, err := f.Write(l.opt.Magic[:]); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(p)
		return fmt.Errorf("wal: segment: %w", err)
	}
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
	l.f = f
	l.segSize = int64(len(l.opt.Magic))
	l.stats.Segments++
	return nil
}

// Replayed returns the payloads recovered when the log was opened, in
// append order.
func (l *Log) Replayed() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayed
}

// ConsumeReplay returns the replayed payloads and releases the log's
// reference to them.
func (l *Log) ConsumeReplay() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	frames := l.replayed
	l.replayed = nil
	return frames
}

// SetFaultInjector installs fn on the append path, for chaos tests: it is
// consulted with op "append" and the active segment's name before every
// append. An error wrapping storage.ErrTornWrite leaves a torn half-frame
// on disk (the signature of a crash mid-append); any error marks the log
// failed — every later Append returns ErrUnavailable. A storage.Chaos
// injector slots in directly.
func (l *Log) SetFaultInjector(fn func(op, name string) error) {
	l.mu.Lock()
	l.fault = fn
	l.mu.Unlock()
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Err returns the sticky failure that made the log unavailable, nil while
// it is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Append frames payload and writes it to the active segment. With sync set
// the frame is fsynced before returning (durability precedes
// acknowledgement); without it the loss of the frame must cost the caller
// nothing more than a progress display. After the first failure every call
// returns ErrUnavailable.
func (l *Log) Append(payload []byte, sync bool) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, l.failed)
	}
	if l.closed {
		return fmt.Errorf("%w: closed", ErrUnavailable)
	}
	if l.fault != nil {
		if ferr := l.fault("append", l.segmentName(l.segIndex)); ferr != nil {
			if errors.Is(ferr, storage.ErrTornWrite) {
				// A crash mid-append: a prefix of the frame reaches the
				// disk and nothing after it ever will.
				l.f.Write(frame[:len(frame)/2])
				l.f.Sync()
			}
			l.failed = ferr
			return fmt.Errorf("%w: %w", ErrUnavailable, ferr)
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.failed = err
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	l.segSize += int64(len(frame))
	l.stats.Records++
	l.stats.Bytes += int64(len(frame))
	if l.segSize >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.failed = err
			return fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	return nil
}

// rotate seals the active segment and opens the next. Called with mu held.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segIndex++
	return l.openSegment()
}

// Close seals the log; subsequent appends fail with ErrUnavailable.
// Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	return errors.Join(serr, cerr)
}

// replaySegment decodes one segment, stopping at the first bad frame.
// truncated reports whether anything after the last good frame was
// discarded. A missing or foreign magic header is an error — that is not
// the signature of a crash.
func (l *Log) replaySegment(path string) (frames [][]byte, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) < len(l.opt.Magic) || string(data[:len(l.opt.Magic)]) != string(l.opt.Magic[:]) {
		return nil, false, fmt.Errorf("bad segment magic")
	}
	data = data[len(l.opt.Magic):]
	for len(data) > 0 {
		if len(data) < 8 {
			return frames, true, nil
		}
		n := binary.LittleEndian.Uint32(data)
		want := binary.LittleEndian.Uint32(data[4:])
		if n > uint32(l.opt.MaxFrameBytes) || int(n) > len(data)-8 {
			return frames, true, nil
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != want {
			return frames, true, nil
		}
		if l.opt.Accept != nil && !l.opt.Accept(payload) {
			return frames, true, nil
		}
		frames = append(frames, append([]byte(nil), payload...))
		data = data[8+n:]
	}
	return frames, false, nil
}

// ReadAll replays a log directory read-only — no segment is created or
// touched — returning the recovered payloads. Foreign-magic segments are an
// error; torn tails truncate like Open's replay. Tools (graphsd stats) use
// it to inspect a live server's pending mutations without disturbing the
// log.
func ReadAll(dir string, opt Options) (frames [][]byte, truncated int, err error) {
	if opt.MaxFrameBytes <= 0 {
		opt.MaxFrameBytes = DefaultMaxFrameBytes
	}
	l := &Log{dir: dir, opt: opt}
	names, err := l.segmentNames()
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	for _, name := range names {
		segFrames, torn, err := l.replaySegment(filepath.Join(dir, name))
		if err != nil {
			return frames, truncated, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if torn {
			truncated++
		}
		frames = append(frames, segFrames...)
	}
	return frames, truncated, nil
}
