package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/core"
)

// blockingRunner returns a Runner that blocks until released (or ctx
// cancellation) and then returns the given result/error.
type blockingRunner struct {
	mu      sync.Mutex
	started chan string // job graph names, as they begin
	release chan struct{}
	err     error
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
	b.started <- req.Graph
	info.OnIteration(core.IterStat{Index: 0, Active: 42})
	select {
	case <-b.release:
		b.mu.Lock()
		err := b.err
		b.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return &core.Result{Algorithm: req.Algorithm, Iterations: 3, Converged: true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID(), j.State(), want)
}

func TestJobLifecycleDone(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
	defer s.Close(context.Background())

	j, err := s.Submit(Request{Graph: "g", Algorithm: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	waitState(t, j, Running)
	st := j.Status()
	if st.Iterations != 1 || st.ActiveVert != 42 {
		t.Fatalf("progress not reported: %+v", st)
	}
	close(r.release)
	waitState(t, j, Done)
	res := j.Result()
	if res == nil || !res.Converged || res.Iterations != 3 {
		t.Fatalf("result: %+v", res)
	}
	if got := j.Status(); got.State != "done" || !got.Converged {
		t.Fatalf("status: %+v", got)
	}
	if c := s.FinishedCounts(); c[Done] != 1 {
		t.Fatalf("finished counts: %v", c)
	}
}

func TestJobFailure(t *testing.T) {
	r := newBlockingRunner()
	r.err = errors.New("disk on fire")
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
	defer s.Close(context.Background())

	j, _ := s.Submit(Request{Graph: "g", Algorithm: "pr"})
	<-r.started
	close(r.release)
	waitState(t, j, Failed)
	if j.Result() != nil {
		t.Fatal("failed job returned a result")
	}
	if st := j.Status(); st.Error == "" {
		t.Fatalf("status missing error: %+v", st)
	}
}

func TestCancelRunning(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
	defer s.Close(context.Background())

	j, _ := s.Submit(Request{Graph: "g", Algorithm: "pr"})
	<-r.started
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Cancelled)
	if !errors.Is(j.Err(), context.Canceled) {
		t.Fatalf("err = %v", j.Err())
	}
}

func TestCancelQueued(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
	defer s.Close(context.Background())

	running, _ := s.Submit(Request{Graph: "g1", Algorithm: "pr"})
	<-r.started
	queued, _ := s.Submit(Request{Graph: "g2", Algorithm: "pr"})
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, queued, Cancelled)
	close(r.release)
	waitState(t, running, Done)
	// The cancelled job must never have started.
	select {
	case g := <-r.started:
		t.Fatalf("cancelled queued job started: %s", g)
	default:
	}
}

func TestQueueFullAdmission(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 2, Run: r.run})
	defer func() { close(r.release); s.Close(context.Background()) }()

	// One running + two queued fills the system.
	s.Submit(Request{Graph: "a", Algorithm: "pr"})
	<-r.started
	s.Submit(Request{Graph: "b", Algorithm: "pr"})
	s.Submit(Request{Graph: "c", Algorithm: "pr"})
	_, err := s.Submit(Request{Graph: "d", Algorithm: "pr"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestMemBudgetAdmission(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{
		Workers: 1, QueueDepth: 8, MemBudget: 100,
		EstimateBytes: func(Request) int64 { return 60 },
		Run:           r.run,
	})
	j1, err := s.Submit(Request{Graph: "a", Algorithm: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Graph: "b", Algorithm: "pr"}); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("err = %v, want ErrMemBudget", err)
	}
	used, budget := s.MemReserved()
	if used != 60 || budget != 100 {
		t.Fatalf("reserved %d/%d", used, budget)
	}
	// Finishing the first job releases its reservation.
	<-r.started
	close(r.release)
	waitState(t, j1, Done)
	if _, err := s.Submit(Request{Graph: "b", Algorithm: "pr"}); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	s.Close(context.Background())
}

func TestDeterministicIDs(t *testing.T) {
	mk := func() []string {
		r := newBlockingRunner()
		close(r.release)
		s := New(Config{Workers: 1, QueueDepth: 8, Run: r.run})
		defer s.Close(context.Background())
		var ids []string
		for _, g := range []string{"g1", "g2"} {
			j, err := s.Submit(Request{Graph: g, Algorithm: "pr", Source: 3})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, j.ID())
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("IDs not deterministic: %v vs %v", a, b)
		}
	}
}

func TestJobTimeout(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
	defer s.Close(context.Background())

	j, _ := s.Submit(Request{Graph: "g", Algorithm: "pr", TimeoutMS: 20})
	<-r.started
	waitState(t, j, Cancelled)
	if !errors.Is(j.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err(j))
	}
}

func err(j *Job) error { return j.Err() }

func TestCloseCancelsEverything(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 2, QueueDepth: 8, Run: r.run})

	var all []*Job
	for i := 0; i < 4; i++ {
		j, errSubmit := s.Submit(Request{Graph: "g", Algorithm: "pr"})
		if errSubmit != nil {
			t.Fatal(errSubmit)
		}
		all = append(all, j)
	}
	<-r.started
	<-r.started

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if errClose := s.Close(ctx); errClose != nil {
		t.Fatalf("close: %v", errClose)
	}
	for _, j := range all {
		if st := j.State(); !st.Final() {
			t.Fatalf("job %s left in %s after close", j.ID(), st)
		}
	}
	if _, errSubmit := s.Submit(Request{Graph: "g", Algorithm: "pr"}); !errors.Is(errSubmit, ErrClosed) {
		t.Fatalf("submit after close: %v", errSubmit)
	}
	// Close is idempotent.
	if errClose := s.Close(context.Background()); errClose != nil {
		t.Fatalf("second close: %v", errClose)
	}
}

// TestSchedulerStress: many producers and cancellers against a small pool,
// run under -race in CI.
func TestSchedulerStress(t *testing.T) {
	run := func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
		for i := 0; i < 3; i++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Millisecond):
				info.OnIteration(core.IterStat{Index: i})
			}
		}
		return &core.Result{Iterations: 3, Converged: true}, nil
	}
	s := New(Config{Workers: 4, QueueDepth: 64, Run: run})
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j, err := s.Submit(Request{Graph: "g", Algorithm: "pr"})
				if err != nil {
					continue // queue full under pressure is fine
				}
				if i%3 == 0 {
					s.Cancel(j.ID())
				}
				j.Status()
			}
		}(p)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	counts := s.FinishedCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if used, _ := s.MemReserved(); used != 0 {
		t.Fatalf("memory still reserved after close: %d", used)
	}
	t.Logf("finished: %v (total %d)", counts, total)
}
